"""Fig. 7 / Eqs. 1-2: pipeline timing of the dual engines."""

from repro.eval import run_experiment
from repro.nn import MOBILENET_V1_CIFAR10_SPECS
from repro.sim import layer_latency


def test_bench_fig7_trace(benchmark):
    result = benchmark(run_experiment, "fig7")
    print()
    print(result.text)
    # "the initiation takes 9 clock cycles before generating the first
    # PWC output result"
    assert result.data["first_output_cycle"] == 9


def test_bench_eq1_eq2_whole_network(benchmark):
    def total_cycles():
        return sum(
            layer_latency(spec).total_cycles
            for spec in MOBILENET_V1_CIFAR10_SPECS
        )

    cycles = benchmark(total_cycles)
    # sum of the paper-implied per-layer latencies (see EXPERIMENTS.md)
    assert cycles == 92_784
