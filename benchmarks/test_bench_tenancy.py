"""Multi-fleet / predictive-governor performance trajectory.

Records the wall-clock of one correlated two-fleet co-simulation with
spillover, and the predictive-vs-reactive governor comparison on
diurnal traffic, so future PRs inherit both a tenancy throughput
baseline and the control-quality deltas (ramp behaviour folds into
p99) as ``extra_info``.
"""

import dataclasses

import pytest

from repro.control import (
    ControlScenario,
    MultiFleetScenario,
    SLOClass,
    simulate_controlled,
    simulate_multi_fleet,
)

TWO_FLEET = MultiFleetScenario(
    fleets=(
        ControlScenario(
            mix="v1-224",
            qps=2_500.0,
            requests=4_000,
            instances=1,
            max_batch=1,
            max_wait_ms=0.0,
            shedding="deadline",
            slo_classes=(
                SLOClass("only", deadline_ms=40.0, target=0.9),
            ),
        ),
        ControlScenario(
            mix="mixed",
            qps=1_500.0,
            requests=4_000,
            instances=4,
            shedding="deadline",
            slo_classes=(
                SLOClass(
                    "llm", deadline_ms=25.0, target=0.9,
                    model="mobilenet-v1-224",
                ),
                SLOClass(
                    "default", deadline_ms=50.0, target=0.9,
                    priority=1,
                ),
            ),
        ),
    ),
    modulator="diurnal",
    period_s=5.0,
    amplitude=0.6,
    spillover="deadline",
    seed=11,
)

DIURNAL = ControlScenario(
    requests=8_000,
    arrival="diurnal",
    qps=4_000.0,
    instances=8,
    autoscale="utilization",
    min_instances=1,
    diurnal_period_s=1.0,
    diurnal_amplitude=0.8,
    util_low=0.3,
    util_high=0.7,
    seed=0,
)


@pytest.mark.benchmark(group="tenancy")
def test_bench_two_fleet_spillover(benchmark):
    """Wall-clock of an 8k-request correlated two-fleet run with
    per-model SLOs and cross-fleet spillover."""
    report = benchmark(simulate_multi_fleet, TWO_FLEET)
    assert report.conserved
    assert report.spilled_requests > 0
    benchmark.extra_info["offered"] = report.offered_requests
    benchmark.extra_info["spilled"] = report.spilled_requests
    benchmark.extra_info["attainment"] = round(report.attainment, 4)
    benchmark.extra_info["p99_ms"] = round(
        1e3 * report.latency_p99_s, 3
    )


@pytest.mark.benchmark(group="tenancy")
def test_bench_predictive_vs_reactive(benchmark):
    """The predictive governor's quality deltas over band control on
    the same diurnal traffic, recorded alongside its wall-clock."""
    reactive = simulate_controlled(DIURNAL)

    def run_predictive():
        return simulate_controlled(
            dataclasses.replace(DIURNAL, autoscale="predictive")
        )

    predictive = benchmark(run_predictive)
    assert predictive.slo_attainment >= reactive.slo_attainment
    assert predictive.energy_joules <= reactive.energy_joules
    benchmark.extra_info["attainment_delta"] = round(
        predictive.slo_attainment - reactive.slo_attainment, 4
    )
    benchmark.extra_info["energy_saving_pct"] = round(
        100.0
        * (reactive.energy_joules - predictive.energy_joules)
        / reactive.energy_joules,
        2,
    )
    benchmark.extra_info["p99_ratio"] = round(
        predictive.latency_p99_s / reactive.latency_p99_s, 3
    )
