"""Fig. 8/9: layout area, area breakdown, power breakdown."""

import pytest

from repro.eval import run_experiment
from repro.power import AreaModel


def test_bench_fig8_area_model(benchmark):
    result = benchmark(run_experiment, "fig8")
    print()
    print(result.text)
    # total die area: paper quotes 0.58 mm2 (825.032 x 699.52 um)
    assert result.data["total"] == pytest.approx(0.577, abs=0.003)


def test_bench_fig9_breakdowns(benchmark):
    result = benchmark(run_experiment, "fig9")
    print()
    print(result.text)
    assert result.data["area"]["pwc_engine"] == pytest.approx(0.4790)
    assert result.data["power"]["pwc_engine"] == pytest.approx(0.6623)


def test_bench_fig8_engine_area_ratio(benchmark):
    model = benchmark(AreaModel.calibrated)
    # paper: PWC/DWC area ratio ~1.7x, tracking the 512/288 MAC ratio
    assert model.pwc_to_dwc_ratio() == pytest.approx(1.69, abs=0.02)
