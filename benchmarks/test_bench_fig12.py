"""Fig. 12: per-layer energy efficiency (TOPS/W)."""

import pytest

from repro.eval import PAPER_FIG12_EE_TOPS_W, run_experiment


def test_bench_fig12(benchmark, full_workload):
    result = benchmark(run_experiment, "fig12", full_workload)
    print()
    print(result.text)
    profile = result.data["profile_ee"]
    assert len(profile) == 13
    # with the paper's sparsity profile the EE peak lands on layer 10 or
    # 12 (the paper's two near-tied maxima: 13.43 vs 13.38 TOPS/W)
    assert result.data["profile_peak_layer"] in (10, 12)
    # peak magnitude within 20% of the paper's 13.43
    assert result.data["profile_peak_ee"] == pytest.approx(13.43, rel=0.2)


def test_bench_fig12_shape_vs_paper(benchmark, full_workload):
    result = benchmark(run_experiment, "fig12", full_workload)
    profile = result.data["profile_ee"]
    # least efficient layer is an early one, as in the paper (layer 1)
    worst = profile.index(min(profile))
    assert worst <= 2
    # deep stride-1 layers beat early layers (the paper's rising trend)
    assert profile[10] > profile[1]
    assert profile[9] > profile[2]
    # paper series and ours agree within 25% pointwise for the profile run
    for ours, theirs in zip(profile, PAPER_FIG12_EE_TOPS_W):
        assert ours == pytest.approx(theirs, rel=0.25)


def test_bench_fig12_measured_mode_reported(benchmark, full_workload):
    result = benchmark(run_experiment, "fig12", full_workload)
    measured = result.data["measured_ee"]
    # measured-sparsity EE is flatter (documented) but must stay in a
    # physically sensible band around the paper's range
    assert all(5.0 < v < 16.0 for v in measured)
