"""Shared fixtures for the benchmark harness.

The benchmarks regenerate every table and figure of the paper's
evaluation.  The measured experiments (Figs. 11/12) run on the full-width
(1.0) MobileNetV1 workload, prepared once per session: brief training on
synthetic data, int8 quantization, and one verified accelerator run.

Every benchmark's ``extra_info`` additionally records the process's
peak RSS, so memory claims (like the engine's flat-arena scaling) are
machine-checkable from the emitted benchmark JSON alongside wall-clock.

Each measured session also appends one record per benchmark —
wall-clock, events/sec where the benchmark reports one, and the full
``extra_info`` — to ``BENCH_engine.json`` next to this file, building
a machine-readable perf trajectory across runs (``--benchmark-disable``
sessions record nothing and leave the file untouched).
"""

import json
import resource
import time
from pathlib import Path

import pytest

from repro.eval.workloads import prepare_workload

#: Perf-trajectory log: one JSON array of session records, appended
#: per measured session so regressions are diffable in-repo.
BENCH_LOG = Path(__file__).with_name("BENCH_engine.json")

_session_records = []


@pytest.fixture(scope="session")
def full_workload():
    """Full-width MobileNetV1 workload (the paper's network)."""
    return prepare_workload(
        width_multiplier=1.0, num_samples=48, train_epochs=1, batch_size=12
    )


def _trajectory_record(node_name, benchmark):
    """One perf-trajectory entry, or None without measured stats
    (``--benchmark-disable``, or the benchmark body failed)."""
    metadata = getattr(benchmark, "stats", None)
    stats = getattr(metadata, "stats", None)
    if stats is None or not getattr(stats, "data", None):
        return None
    extra = dict(benchmark.extra_info)
    record = {
        "test": node_name,
        "group": getattr(benchmark, "group", None),
        "wall_clock_s": round(float(stats.min), 6),
        "mean_s": round(float(stats.mean), 6),
        "rounds": len(stats.data),
        "extra_info": extra,
    }
    # Surface a headline events/sec when the benchmark reports one
    # (the fast-path side when several rates are recorded).
    rates = [
        v
        for k, v in extra.items()
        if k.endswith("events_per_sec") and isinstance(v, (int, float))
    ]
    if rates:
        record["events_per_sec"] = max(rates)
    return record


@pytest.fixture(autouse=True)
def _record_benchmark_telemetry(request):
    """Record peak RSS into every benchmark's ``extra_info``, then
    queue the benchmark's perf-trajectory entry for the session log.

    ``ru_maxrss`` is a process-lifetime high-water mark (KiB on
    Linux), so the value is an upper bound per test — but regressions
    that leak memory proportional to workload size still surface in
    the emitted JSON.
    """
    # Resolve the fixture at setup: by teardown time the benchmark
    # fixture is already finalized and getfixturevalue refuses, but
    # the fixture object itself (stats, extra_info) outlives it.
    benchmark = (
        request.getfixturevalue("benchmark")
        if "benchmark" in request.fixturenames
        else None
    )
    yield
    if benchmark is None:
        return
    rss_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    benchmark.extra_info["peak_rss_mib"] = round(rss_kib / 1024, 1)
    record = _trajectory_record(request.node.name, benchmark)
    if record is not None:
        _session_records.append(record)


def pytest_sessionfinish(session, exitstatus):
    """Append this session's measured benchmarks to the trajectory."""
    if not _session_records:
        return
    history = []
    if BENCH_LOG.exists():
        try:
            history = json.loads(BENCH_LOG.read_text())
        except (OSError, ValueError):
            history = []
    if not isinstance(history, list):
        history = []
    history.append(
        {
            "timestamp": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            "benchmarks": _session_records,
        }
    )
    BENCH_LOG.write_text(json.dumps(history, indent=2) + "\n")
    _session_records.clear()
