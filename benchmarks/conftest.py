"""Shared fixtures for the benchmark harness.

The benchmarks regenerate every table and figure of the paper's
evaluation.  The measured experiments (Figs. 11/12) run on the full-width
(1.0) MobileNetV1 workload, prepared once per session: brief training on
synthetic data, int8 quantization, and one verified accelerator run.

Every benchmark's ``extra_info`` additionally records the process's
peak RSS, so memory claims (like the engine's flat-arena scaling) are
machine-checkable from the emitted benchmark JSON alongside wall-clock.
"""

import resource

import pytest

from repro.eval.workloads import prepare_workload


@pytest.fixture(scope="session")
def full_workload():
    """Full-width MobileNetV1 workload (the paper's network)."""
    return prepare_workload(
        width_multiplier=1.0, num_samples=48, train_epochs=1, batch_size=12
    )


@pytest.fixture(autouse=True)
def _record_peak_rss(request):
    """Record peak RSS (MiB) into every benchmark's ``extra_info``.

    ``ru_maxrss`` is a process-lifetime high-water mark (KiB on
    Linux), so the value is an upper bound per test — but regressions
    that leak memory proportional to workload size still surface in
    the emitted JSON.
    """
    yield
    if "benchmark" in request.fixturenames:
        try:
            benchmark = request.getfixturevalue("benchmark")
        except Exception:
            # The benchmark fixture tears down before autouse fixtures
            # when its test failed; nothing to annotate then.
            return
        rss_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        benchmark.extra_info["peak_rss_mib"] = round(rss_kib / 1024, 1)
