"""Shared fixtures for the benchmark harness.

The benchmarks regenerate every table and figure of the paper's
evaluation.  The measured experiments (Figs. 11/12) run on the full-width
(1.0) MobileNetV1 workload, prepared once per session: brief training on
synthetic data, int8 quantization, and one verified accelerator run.
"""

import pytest

from repro.eval.workloads import prepare_workload


@pytest.fixture(scope="session")
def full_workload():
    """Full-width MobileNetV1 workload (the paper's network)."""
    return prepare_workload(
        width_multiplier=1.0, num_samples=48, train_epochs=1, batch_size=12
    )
