"""Fig. 3: activation-access reduction from direct DWC->PWC transfer."""

from repro.eval import PAPER_FIG3_REDUCTION, run_experiment


def test_bench_fig3(benchmark):
    result = benchmark(run_experiment, "fig3")
    print()
    print(result.text)
    # Paper: 15.4%..46.9% per layer, 34.7% total.  Our documented "unique"
    # counting mode lands at 25%..50% and ~40% — same shape and magnitude;
    # the assertions bound the reproduction to that window.
    assert 15.0 <= result.data["min"] <= 30.0
    assert 40.0 <= result.data["max"] <= 55.0
    assert abs(result.data["total"] - PAPER_FIG3_REDUCTION["total_percent"]) < 10.0
