"""Engine kernel throughput: events/sec against the legacy event loop.

The unified :class:`repro.serve.engine.Engine` replaced the duplicated
heap loops of the serve and control simulators.  This benchmark pins
the refactor's performance claim: on the 50k-request mixed scenario the
kernel must process events at >= 1.5x the legacy loop's rate.  The
legacy kernel is preserved here verbatim (the pre-engine ``simulate``
loop: every arrival heaped up front, a batch materialized per
examination, the sequence counter boxed in a list) and driven over the
*same* request stream, fleet, and policy objects, so the measured delta
is the kernel machinery alone — arrival merging, the small heap, and
the launch-or-wake fast path.  Both kernels must produce identical
completion times, so the speedup is proven on equivalent work.

``extra_info`` records both events/sec figures and the ratio so the
kernel-throughput trajectory is tracked across PRs.
"""

import heapq
import time

import numpy as np
import pytest

from repro.serve import Fleet, ServingScenario, make_policy
from repro.serve.arrival import make_arrivals
from repro.serve.engine import Engine, build_requests
from repro.serve.profile import build_mix

SCENARIO = ServingScenario(requests=50_000, seed=42)

_ARRIVE, _COMPLETE, _WAKE = 0, 1, 2
_EPS = 1e-12


def _legacy_maybe_launch(instance, now, max_batch, max_wait, heap, seq):
    """The pre-engine launch check: materializes the head batch even
    when it only ends up scheduling a timeout wake."""
    if not instance.is_idle(now) or not instance.queue:
        return
    batch = instance.next_batch(max_batch)
    head = batch.requests[0]
    due = (
        len(batch) >= max_batch
        or now >= head.arrival + max_wait - _EPS
    )
    if due:
        finish = instance.launch(batch, now)
        seq[0] += 1
        heapq.heappush(heap, (finish, seq[0], _COMPLETE, instance.index))
    else:
        seq[0] += 1
        heapq.heappush(
            heap,
            (head.arrival + max_wait, seq[0], _WAKE, instance.index),
        )


def _legacy_kernel(requests, fleet, policy, max_batch, max_wait):
    """The pre-engine event loop, verbatim: all arrivals heaped up
    front, ``(time, seq, kind, payload)`` entries throughout."""
    heap = []
    seq = [0]
    for request in requests:
        seq[0] += 1
        heapq.heappush(heap, (request.arrival, seq[0], _ARRIVE, request))
    events = 0
    while heap:
        now, _, kind, payload = heapq.heappop(heap)
        events += 1
        if kind == _ARRIVE:
            instance = fleet[policy.choose(payload, fleet, now)]
            instance.enqueue(payload)
            _legacy_maybe_launch(
                instance, now, max_batch, max_wait, heap, seq
            )
        else:
            _legacy_maybe_launch(
                fleet[payload], now, max_batch, max_wait, heap, seq
            )
    return events


def _fresh_run_state():
    """A new fleet + request stream for one kernel run (runs mutate
    both, so every measurement starts from identical state)."""
    scenario = SCENARIO
    mix = build_mix(scenario.mix, scenario.config)
    capacity = scenario.instances / mix.mean_service_seconds()
    arrivals = make_arrivals(scenario.arrival, 0.7 * capacity)
    rng = np.random.default_rng(scenario.seed)
    times = arrivals.times(scenario.requests, rng)
    requests = build_requests(mix, times, rng)
    fleet = Fleet(scenario.instances)
    for instance in fleet:
        instance.window_end = float(times[-1])
    policy = make_policy(scenario.policy)
    policy.reset()
    return requests, fleet, policy


def _run_engine(state):
    requests, fleet, policy = state
    engine = Engine(
        fleet,
        policy,
        max_batch=SCENARIO.max_batch,
        max_wait_s=SCENARIO.max_wait_ms * 1e-3,
    )
    return engine.run(requests).events


def _run_legacy(state):
    requests, fleet, policy = state
    return _legacy_kernel(
        requests,
        fleet,
        policy,
        SCENARIO.max_batch,
        SCENARIO.max_wait_ms * 1e-3,
    )


def _best_events_per_sec(runner, repeats=3):
    best = 0.0
    events = 0
    for _ in range(repeats):
        state = _fresh_run_state()
        start = time.perf_counter()
        events = runner(state)
        elapsed = time.perf_counter() - start
        best = max(best, events / elapsed)
    return best, events


@pytest.mark.benchmark(group="engine")
def test_bench_kernel_events_per_sec(benchmark):
    """>= 1.5x legacy kernel throughput on the 50k-request scenario."""
    # Same work first: both kernels must drain to identical schedules.
    engine_state = _fresh_run_state()
    _run_engine(engine_state)
    legacy_state = _fresh_run_state()
    _run_legacy(legacy_state)
    finishes = [r.finish for r in engine_state[0]]
    assert finishes == [r.finish for r in legacy_state[0]]
    assert all(f >= 0 for f in finishes)

    legacy_eps, legacy_events = _best_events_per_sec(_run_legacy)
    engine_eps, engine_events = _best_events_per_sec(_run_engine)
    assert engine_events == legacy_events
    ratio = engine_eps / legacy_eps
    assert ratio >= 1.5, (
        f"engine kernel only {ratio:.2f}x legacy "
        f"({engine_eps:,.0f} vs {legacy_eps:,.0f} events/sec)"
    )

    benchmark.extra_info["events"] = engine_events
    benchmark.extra_info["engine_events_per_sec"] = round(engine_eps)
    benchmark.extra_info["legacy_events_per_sec"] = round(legacy_eps)
    benchmark.extra_info["speedup"] = round(ratio, 2)
    benchmark.pedantic(
        _run_engine,
        setup=lambda: ((_fresh_run_state(),), {}),
        rounds=3,
    )


@pytest.mark.benchmark(group="engine")
def test_bench_50k_simulation_wall_clock(benchmark):
    """End-to-end wall-clock of the 50k-request scenario (setup +
    kernel + summary), the number users feel in sweeps."""
    from repro.serve import simulate

    report = benchmark(simulate, SCENARIO)
    assert report.requests == 50_000
    benchmark.extra_info["sustained_qps"] = round(report.sustained_qps, 1)
    benchmark.extra_info["latency_p99_ms"] = round(
        1e3 * report.latency_p99_s, 3
    )
