"""Columnar engine throughput and memory against the PR-4 kernel.

PR 6 replaced the object-per-request event loop with a columnar core:
requests live in a :class:`repro.serve.arena.RequestArena`, and
hook-free runs dispatch to vectorized/specialized fast paths.  This
benchmark pins the two tentpole claims on the 50k-request scenario:

* **>= 10x events/sec over the PR-4 kernel** for the round-robin fast
  path, measured over the whole pipeline (build requests -> drain the
  kernel -> summarize) on identical work.  The PR-4 machinery is
  preserved verbatim in ``benchmarks/_pr4_kernel.py``; both sides are
  timed on the same event population (the PR-4 loop's event count), so
  the ratio is a pure wall-clock speedup on equivalent work.
* **Flat memory in request count** for sketch-mode streaming: peak
  allocation at 4x the requests must stay within 2x (it is dominated
  by the fixed arrival chunk, not the stream length).

Both fast paths must also be *bit-identical* to the PR-4 loop — every
completion timestamp equal as a float64 — so the speedups are proven on
the same physics, not a relaxation of it.

``extra_info`` records events/sec for both kernels, the ratio, and
(via ``conftest.py``) the process's peak RSS.
"""

import time
import tracemalloc
from unittest import mock

import numpy as np
import pytest

from _pr4_kernel import (
    PR4Engine,
    PR4Fleet,
    pr4_build_requests,
    pr4_summarize,
)
from repro.control import ControlScenario, simulate_controlled
from repro.control.sweep import static_frontier_sweep
from repro.serve import Fleet, ServingScenario, make_policy, simulate
from repro.serve.engine import Engine, build_requests, summarize_requests
from repro.serve.arrival import make_arrivals
from repro.serve.profile import build_mix

SCENARIO = ServingScenario(requests=50_000, seed=42, max_wait_ms=20.0)

#: Tentpole bar: the columnar round-robin pipeline must reach at least
#: this multiple of the PR-4 pipeline's events/sec.
RR_SPEEDUP_FLOOR = 10.0

#: The least-loaded path cannot vectorize (routing feedback), but its
#: specialized event loop must still clearly beat PR-4.  Typically
#: ~2x; the floor leaves headroom for timer noise on shared runners.
LL_SPEEDUP_FLOOR = 1.8

#: Control-plane bar: the fused-admission round-robin kernel
#: (``"rr-ctl"``) must reach at least this multiple of the general
#: loop's events/sec on the 50k-request deadline-shedding scenario.
#: Typically ~7x end to end; the floor leaves headroom for noise.
CTL_SPEEDUP_FLOOR = 5.0

#: Heavy deadline shedding under ~1.5x overload: four instances of
#: the mixed mix sustain ~8k QPS, so at 12k offered roughly half the
#: stream sheds — the admission rule runs on every arrival.
CTL_SCENARIO = ControlScenario(
    requests=50_000,
    qps=12_000.0,
    instances=4,
    policy="round-robin",
    shedding="deadline",
    seed=42,
)


def _force_general_loop():
    """Disable fast-path dispatch, forcing the general event loop."""
    return mock.patch.object(
        Engine, "_fast_mode", lambda self, arena: None
    )


def _scenario_inputs():
    mix = build_mix(SCENARIO.mix, SCENARIO.config)
    capacity = SCENARIO.instances / mix.mean_service_seconds()
    arrivals = make_arrivals(SCENARIO.arrival, 0.7 * capacity)
    rng = np.random.default_rng(SCENARIO.seed)
    times = arrivals.times(SCENARIO.requests, rng)
    return mix, times


def _model_rng():
    """The post-times RNG state (times are pre-drawn and shared)."""
    rng = np.random.default_rng(SCENARIO.seed)
    rng.exponential(1.0, SCENARIO.requests)
    return rng


def _run_pr4(policy_name, mix, times):
    """The full PR-4 pipeline: build objects, drain, summarize."""
    requests = pr4_build_requests(mix, times, _model_rng())
    fleet = PR4Fleet(SCENARIO.instances)
    policy = make_policy(policy_name)
    policy.reset()
    engine = PR4Engine(
        fleet,
        policy,
        SCENARIO.max_batch,
        SCENARIO.max_wait_ms * 1e-3,
    )
    events = engine.run(requests)
    summary = pr4_summarize(requests)
    return events, requests, summary


def _run_columnar(policy_name, mix, times):
    """The columnar pipeline on the same work."""
    arena = build_requests(mix, times, _model_rng())
    fleet = Fleet(SCENARIO.instances)
    policy = make_policy(policy_name)
    policy.reset()
    engine = Engine(
        fleet,
        policy,
        max_batch=SCENARIO.max_batch,
        max_wait_s=SCENARIO.max_wait_ms * 1e-3,
    )
    run = engine.run(arena)
    summary = summarize_requests(arena)
    return run.events, arena, summary


def _best_seconds(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best


def _speedup_case(policy_name, floor, benchmark):
    mix, times = _scenario_inputs()

    # Identical physics first: every completion equal as a float64.
    pr4_events, pr4_requests, pr4_summary = _run_pr4(
        policy_name, mix, times
    )
    _, arena, summary = _run_columnar(policy_name, mix, times)
    pr4_finish = np.array([r.finish for r in pr4_requests])
    assert np.array_equal(arena.finish, pr4_finish)
    assert np.array_equal(summary.latencies, pr4_summary["latencies"])
    assert summary.model_counts == pr4_summary["model_counts"]

    # Interleaved min-of-N: a load spike across the measurement
    # window biases both sides instead of whichever ran second.
    pr4_s = float("inf")
    col_s = float("inf")
    for _ in range(5):
        pr4_s = min(
            pr4_s,
            _best_seconds(
                lambda: _run_pr4(policy_name, mix, times), repeats=1
            ),
        )
        col_s = min(
            col_s,
            _best_seconds(
                lambda: _run_columnar(policy_name, mix, times),
                repeats=1,
            ),
        )
    # Same event population for both rates (the PR-4 loop's count), so
    # the events/sec ratio is a wall-clock ratio on identical work.
    pr4_eps = pr4_events / pr4_s
    col_eps = pr4_events / col_s
    ratio = col_eps / pr4_eps
    assert ratio >= floor, (
        f"columnar {policy_name} pipeline only {ratio:.1f}x PR-4 "
        f"({col_eps:,.0f} vs {pr4_eps:,.0f} events/sec)"
    )
    benchmark.extra_info["pr4_events"] = pr4_events
    benchmark.extra_info["pr4_events_per_sec"] = round(pr4_eps)
    benchmark.extra_info["columnar_events_per_sec"] = round(col_eps)
    benchmark.extra_info["speedup"] = round(ratio, 1)
    benchmark.pedantic(
        lambda: _run_columnar(policy_name, mix, times), rounds=3
    )


@pytest.mark.benchmark(group="engine")
def test_bench_round_robin_10x_pr4(benchmark):
    """Tentpole bar: >= 10x PR-4 events/sec, bit-identical schedule."""
    _speedup_case("round-robin", RR_SPEEDUP_FLOOR, benchmark)


@pytest.mark.benchmark(group="engine")
def test_bench_least_loaded_vs_pr4(benchmark):
    """The specialized least-loaded loop holds >= 2x PR-4."""
    _speedup_case("least-loaded", LL_SPEEDUP_FLOOR, benchmark)


@pytest.mark.benchmark(group="engine")
def test_bench_sketch_memory_flat(benchmark):
    """Sketch-mode streaming memory is flat in request count.

    Peak tracemalloc at 4x the requests must stay within 2x: resident
    state is the fixed arrival chunk plus bounded digests, never the
    full stream.
    """

    def peak_mib(n):
        scenario = ServingScenario(
            requests=n,
            seed=SCENARIO.seed,
            policy="round-robin",
            stats="sketch",
        )
        tracemalloc.start()
        report = simulate(scenario)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert report.requests == n
        return peak / 2**20

    base = peak_mib(50_000)
    big = peak_mib(200_000)
    assert big < 2.0 * base, (
        f"4x requests grew peak memory {big / base:.2f}x "
        f"({base:.1f} -> {big:.1f} MiB): not flat"
    )
    benchmark.extra_info["peak_mib_50k"] = round(base, 2)
    benchmark.extra_info["peak_mib_200k"] = round(big, 2)
    benchmark.pedantic(lambda: peak_mib(50_000), rounds=1)


@pytest.mark.benchmark(group="engine")
def test_bench_50k_simulation_wall_clock(benchmark):
    """End-to-end wall-clock of the 50k-request scenario (setup +
    kernel + summary), the number users feel in sweeps."""
    report = benchmark(simulate, SCENARIO)
    assert report.requests == 50_000
    benchmark.extra_info["sustained_qps"] = round(report.sustained_qps, 1)
    benchmark.extra_info["latency_p99_ms"] = round(
        1e3 * report.latency_p99_s, 3
    )


@pytest.mark.benchmark(group="engine")
def test_bench_snapshot_restore_cost(benchmark):
    """Checkpoint cost with ~50k requests in flight.

    An overloaded single-instance fleet is paused just past its last
    arrival, so nearly the whole 50k stream sits queued or batched:
    the worst case a periodic checkpoint serializes.  Measures the
    full round trip — ``snapshot()`` + pickle of the checkpoint
    payload, then unpickle + deterministic rebuild + ``restore()`` —
    and proves the restored engine finishes bit-identically.
    """
    import pickle

    from repro import checkpoint as cp

    scenario = ServingScenario(
        requests=50_000, seed=42, qps=1_000_000.0, instances=1
    )
    reference = cp.run_serve_checkpointed(scenario)

    execution, engine, finalize = cp._begin_serve(scenario)
    engine.run_until(float(execution.times[-1]))
    in_flight = sum(
        len(instance.queue) for instance in execution.fleet.instances
    )
    payload = cp._payload("serve", scenario, execution, 1.0, 2.0)

    serialize_s = _best_seconds(
        lambda: pickle.dumps(
            payload, protocol=pickle.HIGHEST_PROTOCOL
        )
    )
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)

    def deserialize():
        loaded = pickle.loads(blob)
        rebuilt = cp._rebuild_serve(
            loaded["scenario"], loaded["times"], loaded["requests"]
        )
        rebuilt.engine.begin(rebuilt.requests)
        rebuilt.engine.restore(loaded["snapshot"], rebuilt.requests)
        return rebuilt

    deserialize_s = _best_seconds(deserialize)

    rebuilt = deserialize()
    rebuilt.engine.run_until(float("inf"))
    assert finalize(rebuilt) == reference

    benchmark.extra_info["in_flight_requests"] = in_flight
    benchmark.extra_info["payload_mib"] = round(len(blob) / 2**20, 2)
    benchmark.extra_info["serialize_ms"] = round(1e3 * serialize_s, 2)
    benchmark.extra_info["deserialize_ms"] = round(
        1e3 * deserialize_s, 2
    )
    benchmark.pedantic(
        lambda: pickle.dumps(
            payload, protocol=pickle.HIGHEST_PROTOCOL
        ),
        rounds=3,
    )


@pytest.mark.benchmark(group="engine")
def test_bench_tracing_disabled_is_free(benchmark):
    """Telemetry off must cost nothing: the 50k round-robin scenario
    with an inactive observability session stays on the columnar fast
    path and within 2% of the plain run's wall clock.

    The timing interleaves plain/inactive pairs (min of N each) so a
    thermal or scheduler drift across the measurement window biases
    both sides equally rather than the second one.
    """
    from repro.obs import Observability

    scenario = ServingScenario(
        requests=50_000, seed=42, policy="round-robin",
        max_wait_ms=20.0,
    )
    inactive = Observability()
    reference = simulate(scenario)
    # Structural guarantee first: the inactive session must not knock
    # the run off the columnar fast path, and must not move physics.
    observed = simulate(scenario, obs=inactive)
    assert observed.engine_dispatch == "rr"
    assert observed == reference

    # One fast-path run is ~tens of ms, so a single-run sample is
    # timer-noise at a 2% bar; each sample batches several runs.
    batch = 5

    def time_batch(fn):
        start = time.perf_counter()
        for _ in range(batch):
            fn()
        return time.perf_counter() - start

    # The true ratio is ~1.00, but under full-suite load a lucky-fast
    # plain min can outrun every inactive min by more than 2% noise.
    # Min-of-rounds converges as rounds accumulate, so keep adding
    # interleaved rounds until the ratio clears the bar (or a hard
    # round cap proves a genuine regression).
    plain_s = float("inf")
    off_s = float("inf")
    ratio = float("inf")
    for round_no in range(1, 16):
        plain_s = min(plain_s, time_batch(lambda: simulate(scenario)))
        off_s = min(
            off_s,
            time_batch(
                lambda: simulate(scenario, obs=Observability())
            ),
        )
        ratio = off_s / plain_s
        if round_no >= 5 and ratio <= 1.02:
            break
    assert ratio <= 1.02, (
        f"tracing-disabled run is {ratio:.3f}x the plain run "
        f"({off_s:.3f}s vs {plain_s:.3f}s): over the 2% bar"
    )
    benchmark.extra_info["plain_s"] = round(plain_s, 4)
    benchmark.extra_info["tracing_off_s"] = round(off_s, 4)
    benchmark.extra_info["overhead_ratio"] = round(ratio, 4)

    # Trajectory point: tracing-enabled events/sec on the same work
    # (the general loop with span recording), for release-to-release
    # comparison — informational, not a bar.
    def traced():
        obs = Observability(trace=True)
        return simulate(scenario, obs=obs)

    traced_report = traced()
    assert traced_report == reference
    traced_s = _best_seconds(traced, repeats=3)
    benchmark.extra_info["traced_s"] = round(traced_s, 4)
    benchmark.extra_info["traced_events_per_sec"] = round(
        traced_report.engine_events / traced_s
    )
    benchmark.pedantic(
        lambda: simulate(scenario, obs=Observability()), rounds=3
    )


@pytest.mark.benchmark(group="engine")
def test_bench_epoch_stepped_multi_fleet_overhead(benchmark):
    """The epoch-stepped multi-fleet rebuild stays within 1.1x of the
    PR-5 monolithic loop's wall clock on the two-fleet benchmark
    scenario — epoch slicing and the exchange barrier must be
    bookkeeping, not a tax on the event loop."""
    from _pr5_tenancy import simulate_multi_fleet_monolithic
    from repro.control import simulate_multi_fleet
    from test_bench_tenancy import TWO_FLEET

    reference = simulate_multi_fleet_monolithic(TWO_FLEET)
    assert simulate_multi_fleet(TWO_FLEET) == reference

    mono_s = _best_seconds(
        lambda: simulate_multi_fleet_monolithic(TWO_FLEET)
    )
    epoch_s = _best_seconds(lambda: simulate_multi_fleet(TWO_FLEET))
    ratio = epoch_s / mono_s
    assert ratio <= 1.1, (
        f"epoch-stepped multi-fleet is {ratio:.2f}x the monolithic "
        f"loop ({epoch_s:.3f}s vs {mono_s:.3f}s): over the 1.1x bar"
    )
    benchmark.extra_info["monolithic_s"] = round(mono_s, 4)
    benchmark.extra_info["epoch_stepped_s"] = round(epoch_s, 4)
    benchmark.extra_info["overhead_ratio"] = round(ratio, 3)
    benchmark.pedantic(
        lambda: simulate_multi_fleet(TWO_FLEET), rounds=3
    )


@pytest.mark.benchmark(group="engine")
def test_bench_control_fastpath_5x_general(benchmark):
    """Control-plane bar: the fused-admission kernel holds >= 5x the
    general loop's events/sec on heavy deadline shedding.

    Identical physics first — same report (engine counters excluded
    from equality by design), fast path actually taken — then an
    interleaved min-of-N wall-clock comparison on the same event
    population (the general loop's count), so the events/sec ratio is
    a pure wall-clock speedup on identical work.
    """
    fast = simulate_controlled(CTL_SCENARIO)
    with _force_general_loop():
        general = simulate_controlled(CTL_SCENARIO)
    assert fast.engine_dispatch == "rr-ctl"
    assert general.engine_dispatch == "general"
    assert fast == general
    assert fast.shed_requests > 10_000, "scenario must shed heavily"

    fast_s = float("inf")
    gen_s = float("inf")
    for _ in range(5):
        fast_s = min(
            fast_s,
            _best_seconds(
                lambda: simulate_controlled(CTL_SCENARIO), repeats=1
            ),
        )
        with _force_general_loop():
            gen_s = min(
                gen_s,
                _best_seconds(
                    lambda: simulate_controlled(CTL_SCENARIO),
                    repeats=1,
                ),
            )
    gen_eps = general.engine_events / gen_s
    fast_eps = general.engine_events / fast_s
    ratio = fast_eps / gen_eps
    assert ratio >= CTL_SPEEDUP_FLOOR, (
        f"controlled kernel only {ratio:.1f}x the general loop "
        f"({fast_eps:,.0f} vs {gen_eps:,.0f} events/sec)"
    )
    benchmark.extra_info["general_events"] = general.engine_events
    benchmark.extra_info["general_events_per_sec"] = round(gen_eps)
    benchmark.extra_info["ctl_events_per_sec"] = round(fast_eps)
    benchmark.extra_info["speedup"] = round(ratio, 1)
    benchmark.pedantic(
        lambda: simulate_controlled(CTL_SCENARIO), rounds=3
    )


@pytest.mark.benchmark(group="engine")
def test_bench_control_frontier_sweep_speedup(benchmark):
    """Measured end-to-end speedup of a static frontier sweep on the
    controlled kernel — every grid point is a governor-less
    round-robin shedding run, exactly the shape ``"rr-ctl"`` serves.

    The voltage-only grid specs leave per-instance profiles unset, so
    DVFS latency scales and busy power stay kernel-eligible.  The bar
    is deliberately loose (the sweep also pays request generation and
    report aggregation); the measured ratio is the trajectory number.
    """
    base = ControlScenario(
        requests=20_000,
        qps=6_000.0,
        instances=4,
        policy="round-robin",
        shedding="deadline",
        seed=42,
    )
    voltages = (0.6, 0.7, 0.8)
    fleet_sizes = (2, 4)

    fast = static_frontier_sweep(base, voltages, fleet_sizes)
    assert [r.engine_dispatch for r in fast] == ["rr-ctl"] * 6
    with _force_general_loop():
        general = static_frontier_sweep(base, voltages, fleet_sizes)
    assert fast == general

    fast_s = float("inf")
    gen_s = float("inf")
    for _ in range(3):
        fast_s = min(
            fast_s,
            _best_seconds(
                lambda: static_frontier_sweep(
                    base, voltages, fleet_sizes
                ),
                repeats=1,
            ),
        )
        with _force_general_loop():
            gen_s = min(
                gen_s,
                _best_seconds(
                    lambda: static_frontier_sweep(
                        base, voltages, fleet_sizes
                    ),
                    repeats=1,
                ),
            )
    ratio = gen_s / fast_s
    assert ratio >= 1.5, (
        f"frontier sweep only {ratio:.2f}x on the controlled kernel "
        f"({fast_s:.3f}s vs {gen_s:.3f}s)"
    )
    benchmark.extra_info["sweep_general_s"] = round(gen_s, 4)
    benchmark.extra_info["sweep_ctl_s"] = round(fast_s, 4)
    benchmark.extra_info["sweep_speedup"] = round(ratio, 1)
    benchmark.pedantic(
        lambda: static_frontier_sweep(base, voltages, fleet_sizes),
        rounds=3,
    )
