"""Serving performance trajectory: QPS vs tail latency.

Records the throughput-latency frontier of a four-instance fleet under
the mixed scenario so future PRs inherit a serving-performance baseline:
the ``extra_info`` block carries sustained QPS and p99 per offered-load
point, and the benchmark itself times a full 10k-request simulation
(the acceptance bar is well under 30 s; the simulator does it in well
under one).
"""

import dataclasses

import pytest

from repro.eval import render_throughput_latency
from repro.serve import (
    ServingScenario,
    simulate,
    throughput_latency_curve,
)

BASE = ServingScenario(requests=10_000, instances=4, seed=42)

#: Offered-load ladder as fractions of the ~8.2k QPS mixed-fleet capacity.
CURVE_QPS = (2_000.0, 4_000.0, 6_000.0, 7_500.0)


@pytest.mark.benchmark(group="serving")
def test_bench_10k_request_simulation(benchmark):
    """Wall-clock of one 10k-request Poisson run (least-loaded, 4 inst)."""
    report = benchmark(simulate, BASE)
    assert report.requests == 10_000
    assert all(0.0 < u <= 1.0 for u in report.utilization)
    benchmark.extra_info["sustained_qps"] = round(report.sustained_qps, 1)
    benchmark.extra_info["latency_p99_ms"] = round(
        1e3 * report.latency_p99_s, 3
    )
    benchmark.extra_info["mean_utilization"] = round(
        report.mean_utilization, 4
    )


@pytest.mark.benchmark(group="serving")
def test_bench_qps_vs_p99_trajectory(benchmark):
    """The throughput-latency frontier, recorded for future comparison."""
    base = dataclasses.replace(BASE, requests=4_000)

    def run_curve():
        return throughput_latency_curve(base, CURVE_QPS)

    reports = benchmark(run_curve)
    p99s = [r.latency_p99_s for r in reports]
    assert all(a <= b for a, b in zip(p99s, p99s[1:]))
    for report in reports:
        key = f"p99_ms_at_{int(report.offered_qps)}qps"
        benchmark.extra_info[key] = round(1e3 * report.latency_p99_s, 3)
    print()
    print(render_throughput_latency(reports))
