"""Dual-engine vs unified / serial baselines (the paper's Section I case).

The paper argues dedicated parallel engines beat (a) unified single
engines ([2][3][4]: utilization imbalance between DWC and PWC) and
(b) separate-but-serial engines ([6]: no overlap).  Both baselines are
implemented as executable timing models over the same functional
substrate; this bench measures the whole-network comparison.
"""

from repro.arch import (
    SerialDualEngineModel,
    UnifiedEngineModel,
    dual_vs_baselines,
)
from repro.eval import render_table
from repro.nn import MOBILENET_V1_CIFAR10_SPECS
from repro.sim import layer_latency


def test_bench_baselines_network(benchmark):
    totals = benchmark(dual_vs_baselines, MOBILENET_V1_CIFAR10_SPECS)
    rows = [
        ["dual engine (EDEA)", totals["dual"], 1.0],
        ["serial dual [6]-style", totals["serial_dual"],
         round(totals["serial_dual"] / totals["dual"], 3)],
        ["unified array [4]-style", totals["unified"],
         round(totals["unified"] / totals["dual"], 3)],
    ]
    print()
    print(render_table(
        "Whole-network DSC cycles: dual engine vs baselines",
        ["Design", "Cycles", "Slowdown vs dual"],
        rows,
    ))
    assert totals["dual"] < totals["serial_dual"] < totals["unified"]


def test_bench_baselines_per_layer_utilization(benchmark):
    def profile():
        unified = UnifiedEngineModel()
        rows = []
        for spec in MOBILENET_V1_CIFAR10_SPECS:
            dual_cycles = layer_latency(spec).total_cycles
            rows.append(
                (
                    spec.index,
                    spec.total_macs / (dual_cycles * 800),
                    unified.average_utilization(spec),
                )
            )
        return rows

    rows = benchmark(profile)
    print()
    print(render_table(
        "Average PE-array utilization (useful MACs / cycle / 800)",
        ["Layer", "Dual engine", "Unified array"],
        [[i, round(d, 3), round(u, 3)] for i, d, u in rows],
    ))
    for _, dual_util, unified_util in rows:
        assert dual_util > unified_util


def test_bench_baselines_overlap_contribution(benchmark):
    """Quantify what the parallel overlap alone buys: the dual design
    hides every DWC pass behind the PWC stream."""

    def hidden_cycles():
        serial = SerialDualEngineModel()
        total = 0
        for spec in MOBILENET_V1_CIFAR10_SPECS:
            lat = serial.layer_latency(spec)
            total += lat.total_cycles - layer_latency(spec).total_cycles
        return total

    hidden = benchmark(hidden_cycles)
    dual_total = dual_vs_baselines(MOBILENET_V1_CIFAR10_SPECS)["dual"]
    print(f"\nDWC cycles hidden by the overlap: {hidden:,} "
          f"({100 * hidden / dual_total:.1f}% "
          "of the dual design's runtime)")
    assert hidden > 0
