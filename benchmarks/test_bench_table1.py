"""Table I: the explored tiling cases."""

from repro.dse import TABLE1_CASES
from repro.eval import run_experiment


def test_bench_table1(benchmark):
    result = benchmark(run_experiment, "table1")
    print()
    print(result.text)
    assert result.data["cases"] == TABLE1_CASES
    assert TABLE1_CASES[6] == (8, 16)  # the implemented design point
