"""Width/resolution scaling sweep of the timing model.

Shows how the paper's design point behaves across MobileNet's two scaling
knobs — and that the published operating point (width 1.0, 32x32) is the
hardest case for initiation amortization among CIFAR-scale settings.
"""

from repro.eval import render_table
from repro.eval.sweep import width_resolution_sweep


def test_bench_scaling_sweep(benchmark):
    points = benchmark(width_resolution_sweep)
    rows = [
        [
            p.width,
            p.resolution,
            p.total_macs,
            p.total_cycles,
            round(p.throughput_gops, 1),
            round(100 * p.init_fraction, 2),
        ]
        for p in points
    ]
    print()
    print(render_table(
        "MobileNetV1 width x resolution sweep on the EDEA timing model",
        ["Width", "Res", "MACs", "Cycles", "GOPS", "Init %"],
        rows,
    ))
    by_key = {(p.width, p.resolution): p for p in points}
    # the paper's point
    assert by_key[(1.0, 32)].total_cycles == 92_784
    # throughput rises toward the 224 ImageNet setting at every width
    for width in (0.25, 0.5, 0.75, 1.0):
        assert (by_key[(width, 224)].throughput_gops
                >= by_key[(width, 32)].throughput_gops)
    # all points within the physical envelope
    for p in points:
        assert 0 < p.throughput_gops <= 1600
