"""Fig. 11: per-layer power and activation zero percentage.

Runs on the full-width workload.  The measured series uses our synthetic-
data sparsity; the paper-profile series anchors the sparsity to the
paper's published layer-12 zero percentages and must then reproduce the
paper's endpoint powers (117.7 mW / 67.7 mW).
"""

import pytest

from repro.eval import build_efficiency_report, run_experiment


def test_bench_fig11(benchmark, full_workload):
    result = benchmark(run_experiment, "fig11", full_workload)
    print()
    print(result.text)
    measured = result.data["measured_power_w"]
    profile = result.data["profile_power_w"]
    assert len(measured) == len(profile) == 13
    # calibration matches the paper's high endpoint on layer 1
    assert measured[1] == pytest.approx(0.1177, rel=1e-6)
    # with the paper's sparsity profile both endpoints are met
    assert max(profile) == pytest.approx(0.1177, rel=0.02)
    assert min(profile) == pytest.approx(0.0677, rel=0.10)


def test_bench_fig11_power_falls_with_sparsity(benchmark, full_workload):
    def profile_report():
        return build_efficiency_report(
            full_workload.layer_stats,
            full_workload.run_stats.clock_hz,
            mode="paper_profile",
        )

    report = benchmark(profile_report)
    # paper: "the power reduces as the zero percentage increases" — among
    # the untiled stride-1 layers 6..10 (identical geometry, rising
    # sparsity), power must decrease monotonically
    powers = {x.index: x.power_w for x in report.layers}
    for idx in range(6, 10):
        assert powers[idx + 1] < powers[idx]


def test_bench_fig11_measured_zero_percentages(benchmark, full_workload):
    result = benchmark(run_experiment, "fig11", full_workload)
    # measured sparsity must be genuine (neither 0 nor 100%)
    for stats in full_workload.layer_stats:
        assert 0.05 < stats.dwc_zero_fraction < 0.99
        assert 0.05 < stats.pwc_zero_fraction < 0.99
    # depth trend: the deepest layer's DWC input is sparser than the first's
    assert (full_workload.layer_stats[12].dwc_zero_fraction
            > full_workload.layer_stats[0].dwc_zero_fraction)
    assert result.data["calibration_note"] is None or isinstance(
        result.data["calibration_note"], str
    )
