"""Table II: PE-array sizing and access equations for La, Tn=Tm=2."""

from repro.eval import run_experiment


def test_bench_table2(benchmark):
    result = benchmark(run_experiment, "table2")
    print()
    print(result.text)
    # the equations instantiate to the paper's engine sizes
    assert result.data["pe_dwc"] == 288
    assert result.data["pe_pwc"] == 512
    # 13 per-layer rows with positive access counts
    assert len(result.data["rows"]) == 13
    for row in result.data["rows"]:
        assert all(v > 0 for v in row[1:])
