"""The pre-epoch (PR-5) monolithic multi-fleet co-simulation.

Frozen copy of ``simulate_multi_fleet`` as it stood before the
epoch-stepped rebuild: every member fleet runs one-shot through
``execute_controlled``, donors first, receivers after one spillover
exchange.  Kept verbatim so the engine benchmark can hold the
epoch-stepped production path to its throughput (the rebuild must stay
within 1.1x of this loop on the two-fleet benchmark scenario) while
the equivalence tests pin its *reports* bit-for-bit.

Not part of the package: benchmark support only.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.control.simulator import (
    _DEFAULT_LOAD,
    build_control_fleet,
    execute_controlled,
)
from repro.control.slo import SLOClass
from repro.control.tenancy import (
    MultiFleetReport,
    MultiFleetScenario,
    _forward_target,
)
from repro.power.dvfs import DVFSModel
from repro.serve.engine import build_requests
from repro.serve.fleet import Request
from repro.serve.simulator import ServingReport

__all__ = ["simulate_multi_fleet_monolithic"]


def simulate_multi_fleet_monolithic(
    scenario: MultiFleetScenario,
) -> MultiFleetReport:
    """Run one correlated multi-fleet scenario in the PR-5 shape."""
    modulator = scenario.shared_modulator()
    path = modulator.build_path(
        np.random.default_rng([scenario.seed, 0])
    )
    dvfs_model = DVFSModel()

    n_fleets = len(scenario.fleets)
    setups = []  # (fleet, mix, capacity) per member
    rates = []
    for member in scenario.fleets:
        fleet, mix, capacity = build_control_fleet(member, dvfs_model)
        setups.append((fleet, mix, capacity))
        rates.append(
            member.qps
            if member.qps is not None
            else _DEFAULT_LOAD * capacity
        )

    rhos = [
        rates[k] / setups[k][2] if setups[k][2] > 0 else 0.0
        for k in range(n_fleets)
    ]

    home_requests = []
    for k, member in enumerate(scenario.fleets):
        rng = np.random.default_rng([scenario.seed, k + 1])
        fleet_times = modulator.fleet_times(
            member.requests, rates[k], path, rng
        )
        home_requests.append(
            build_requests(
                setups[k][1],
                fleet_times,
                rng,
                slo_classes=member.slo_classes,
            )
        )

    spill = scenario.spillover != "none"
    donors = [k for k in range(n_fleets) if spill and rhos[k] > 1.0]
    receivers = sorted(
        (k for k in range(n_fleets) if k not in donors),
        key=lambda k: (rhos[k], k),
    )
    hop_s = scenario.spillover_hop_ms * 1e-3
    mixes = {k: setups[k][1] for k in receivers}

    arrival_label = f"shared-{scenario.modulator}"
    reports: list[ServingReport | None] = [None] * n_fleets
    spilled: list[tuple[Request, Request]] = []
    forwarded: set[tuple[int, int]] = set()
    spill_ins: list[list[Request]] = [[] for _ in range(n_fleets)]
    class_specs: dict[str, SLOClass] = {}
    for member in scenario.fleets:
        for cls in member.slo_classes:
            class_specs.setdefault(cls.name, cls)

    def run_member(k: int, requests) -> None:
        fleet, mix, capacity = setups[k]
        member = replace(
            scenario.fleets[k], arrival=arrival_label
        )
        own = {cls.name for cls in member.slo_classes}
        foreign = []
        for request in spill_ins[k]:
            if request.slo not in own:
                own.add(request.slo)
                foreign.append(class_specs[request.slo])
        if foreign:
            member = replace(
                member,
                slo_classes=member.slo_classes + tuple(foreign),
            )
        stream_times = np.array(
            [request.arrival for request in requests]
        )
        reports[k] = execute_controlled(
            member, fleet, mix, capacity, rates[k],
            stream_times, requests, dvfs_model=dvfs_model,
        )

    for k in donors:
        run_member(k, home_requests[k])
        if not receivers:
            continue
        for request in home_requests[k]:
            if not request.shed:
                continue
            target, profile = _forward_target(
                request, receivers, mixes, hop_s
            )
            if target is None:
                continue
            clone = Request(
                index=0,
                model=request.model,
                profile=profile,
                arrival=request.arrival + hop_s,
                slo=request.slo,
                priority=request.priority,
                deadline=request.deadline,
            )
            spilled.append((clone, request))
            forwarded.add((k, request.index))
            spill_ins[target].append(clone)

    for k in receivers:
        merged = sorted(
            [*home_requests[k], *spill_ins[k]],
            key=lambda request: request.arrival,
        )
        for i, request in enumerate(merged):
            request.index = i
        run_member(k, merged)

    completed = met = terminally_shed = 0
    spill_completed = spill_met = 0
    final_latencies: list[float] = []
    for k in range(n_fleets):
        for request in home_requests[k]:
            if not request.shed:
                completed += 1
                met += request.finish <= request.deadline
                final_latencies.append(
                    request.finish - request.arrival
                )
            elif (k, request.index) not in forwarded:
                terminally_shed += 1
    for clone, original in spilled:
        if clone.shed:
            terminally_shed += 1
            continue
        completed += 1
        spill_completed += 1
        hit = clone.finish <= clone.deadline
        met += hit
        spill_met += hit
        final_latencies.append(clone.finish - original.arrival)

    offered = sum(member.requests for member in scenario.fleets)
    energy = sum(
        report.energy_joules or 0.0 for report in reports
    )
    return MultiFleetReport(
        fleets=tuple(reports),
        modulator=scenario.modulator,
        spillover=scenario.spillover,
        offered_requests=offered,
        completed_requests=completed,
        shed_requests=terminally_shed,
        spilled_requests=len(spilled),
        spill_completed=spill_completed,
        spill_met=int(spill_met),
        met_requests=int(met),
        attainment=met / offered if offered else 0.0,
        latency_p99_s=(
            float(np.percentile(final_latencies, 99))
            if final_latencies
            else 0.0
        ),
        energy_joules=float(energy),
        offered_load=tuple(rhos),
    )
