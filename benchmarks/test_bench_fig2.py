"""Fig. 2: design-space exploration — PE sizes and access counts."""

from repro.dse import LoopOrder, best_point, explore
from repro.eval import run_experiment


def test_bench_fig2a(benchmark):
    result = benchmark(run_experiment, "fig2a")
    print()
    print(result.text)
    totals = {(row[0], row[1]): row[4] for row in result.data["rows"]}
    # Fig. 2a's extremes: Case 1 at Tn=1 is the smallest array (117 MACs),
    # Case 6 at Tn=2 the largest (800 — the implemented design).
    assert totals[("La, Tn=Tm=1", 1)] == 4 * 9 + 4 * 4
    assert totals[("La, Tn=Tm=2", 6)] == 800
    # PE size is independent of loop order
    for case in range(1, 7):
        assert totals[("La, Tn=Tm=2", case)] == totals[("Lb, Tn=Tm=2", case)]


def test_bench_fig2b(benchmark):
    result = benchmark(run_experiment, "fig2b")
    print()
    print(result.text)
    # the paper's conclusion: La, Tn=Tm=2, Case 6 minimizes total accesses
    assert result.data["best_group"] == "La, Tn=Tm=2"
    assert result.data["best_case"] == 6


def test_bench_fig2b_qualitative_claims(benchmark):
    def claims():
        sweep = explore()
        for case in range(1, 7):
            for tn in (1, 2):
                points = {
                    p.order: p
                    for p in sweep.by_case(case)
                    if p.tiling.tn == tn
                }
                # "La consistently demonstrates higher activation access
                # count, while Lb consistently exhibits higher weight
                # access count"
                assert (points[LoopOrder.LA].activation_access
                        > points[LoopOrder.LB].activation_access)
                assert (points[LoopOrder.LB].weight_access
                        > points[LoopOrder.LA].weight_access)
        return best_point(sweep)

    best = benchmark(claims)
    assert best.pe_total == 800
