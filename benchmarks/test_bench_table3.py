"""Table III: comparison with state-of-the-art accelerators."""

import pytest

from repro.eval import build_comparison, edea_speedups, run_experiment


def test_bench_table3(benchmark):
    result = benchmark(run_experiment, "table3")
    print()
    print(result.text)
    speedups = result.data["speedups"]
    # raw energy-efficiency advantages quoted in the paper:
    # 14.6x, 9.87x, 2.72x, 2.65x over [16], [17], [18], [4]
    assert speedups["Chen et al. [16]"]["raw_ee"] == pytest.approx(14.6, abs=0.1)
    assert speedups["Hsiao et al. [17]"]["raw_ee"] == pytest.approx(9.87, abs=0.05)
    assert speedups["Jung et al. [18]"]["raw_ee"] == pytest.approx(2.72, abs=0.01)
    assert speedups["Chen et al. [4] (DWC engine)"]["raw_ee"] == pytest.approx(
        2.65, abs=0.01
    )


def test_bench_table3_normalized(benchmark):
    result = benchmark(run_experiment, "table3")
    speedups = result.data["speedups"]
    # normalized (22nm/0.8V/8bit) advantages: 1.74x, 3.11x, 1.37x, 2.65x
    assert speedups["Chen et al. [16]"]["normalized_ee"] == pytest.approx(
        1.74, abs=0.01
    )
    assert speedups["Hsiao et al. [17]"]["normalized_ee"] == pytest.approx(
        3.11, abs=0.01
    )
    assert speedups["Jung et al. [18]"]["normalized_ee"] == pytest.approx(
        1.37, abs=0.02
    )


def test_bench_table3_edea_wins_everywhere(benchmark):
    rows = benchmark(build_comparison)
    this = rows[-1]
    for row in rows[:-1]:
        assert this.energy_efficiency_tops_w > row.energy_efficiency_tops_w
        assert this.paper_normalized_ee > row.paper_normalized_ee
        assert this.paper_normalized_ae > row.paper_normalized_ae
    # headline: 13.43 TOPS/W, 973.55 GOPS, 1678.53 GOPS/mm2
    assert this.energy_efficiency_tops_w == pytest.approx(13.43)
    assert this.throughput_gops == pytest.approx(973.55)
    assert this.area_efficiency_gops_mm2 == pytest.approx(1678.53, abs=0.01)


def test_bench_table3_speedup_factors_helper(benchmark):
    speedups = benchmark(lambda: edea_speedups(build_comparison()))
    assert len(speedups) == 5
