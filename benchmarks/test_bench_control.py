"""Control-plane performance trajectory: energy vs p99 Pareto frontier.

Records the static energy/SLO design space (voltage x fleet size) and
the controlled-simulation wall-clock so future PRs inherit an
energy-efficiency baseline: each ``extra_info`` point carries energy,
p99, and attainment, plus which points sit on the Pareto frontier.
"""

import dataclasses

import pytest

from repro.control import (
    ControlScenario,
    SLOClass,
    pareto_frontier,
    simulate_controlled,
    static_frontier_sweep,
)

BASE = ControlScenario(
    requests=4_000,
    qps=2_500.0,
    instances=4,
    slo_classes=(SLOClass("svc", deadline_ms=50.0, target=0.95),),
    shedding="queue-depth",
    queue_threshold=64,
    seed=42,
)

VOLTAGES = (0.6, 0.7, 0.8)
FLEET_SIZES = (2, 4)


@pytest.mark.benchmark(group="control")
def test_bench_controlled_simulation(benchmark):
    """Wall-clock of one 4k-request controlled run (shedding + SLOs)."""
    report = benchmark(simulate_controlled, BASE)
    assert report.offered_requests == 4_000
    benchmark.extra_info["slo_attainment"] = round(
        report.slo_attainment, 4
    )
    benchmark.extra_info["energy_mj"] = round(
        1e3 * report.energy_joules, 3
    )
    benchmark.extra_info["latency_p99_ms"] = round(
        1e3 * report.latency_p99_s, 3
    )


@pytest.mark.benchmark(group="control")
def test_bench_energy_p99_pareto_trajectory(benchmark):
    """The energy-vs-p99 frontier, recorded for future comparison."""
    base = dataclasses.replace(BASE, requests=1_500)

    def run_frontier():
        return static_frontier_sweep(base, VOLTAGES, FLEET_SIZES)

    reports = benchmark(run_frontier)
    assert len(reports) == len(VOLTAGES) * len(FLEET_SIZES)
    frontier = pareto_frontier(reports)
    assert frontier  # a non-trivial frontier always exists
    labels = [f"{v}Vx{n}" for v in VOLTAGES for n in FLEET_SIZES]
    benchmark.extra_info["points"] = {
        labels[i]: {
            "energy_mj": round(1e3 * r.energy_joules, 3),
            "p99_ms": round(1e3 * r.latency_p99_s, 3),
            "attainment": round(r.slo_attainment, 4),
        }
        for i, r in enumerate(reports)
    }
    benchmark.extra_info["pareto"] = [labels[i] for i in frontier]
