"""Roofline / data-movement analysis (the paper's Section I motivation).

Not a printed figure of the paper, but the quantitative backing of its
introduction: DWC and PWC "both exhibit limitations in data reuse", so
eliminating intermediate data transfer matters.  The bench regenerates
per-layer arithmetic intensity and bandwidth demand with and without the
direct DWC->PWC transfer.
"""

from repro.eval import render_table, roofline_analysis
from repro.nn import mobilenet_v1_imagenet_specs, mobilenet_v2_dsc_specs


def test_bench_roofline_cifar(benchmark):
    profile = benchmark(roofline_analysis)
    rows = [
        [
            x.index,
            x.macs,
            x.external_bytes,
            round(x.arithmetic_intensity, 1),
            round(x.intensity_baseline, 1),
            round(x.required_bandwidth_gbs, 1),
        ]
        for x in profile
    ]
    print()
    print(render_table(
        "Roofline: arithmetic intensity and bandwidth demand per layer",
        ["Layer", "MACs", "Ext bytes", "MACs/B (direct)",
         "MACs/B (spill)", "BW need GB/s"],
        rows,
    ))
    # direct transfer always improves intensity
    for layer in profile:
        assert layer.arithmetic_intensity > layer.intensity_baseline
    # late layers are the bandwidth-hungry ones (weight-dominated)
    demand = [x.required_bandwidth_gbs for x in profile]
    assert max(demand[-2:]) > 2 * min(demand[:5])


def test_bench_roofline_other_networks(benchmark):
    def analyze():
        return (
            roofline_analysis(mobilenet_v1_imagenet_specs()),
            roofline_analysis(mobilenet_v2_dsc_specs()),
        )

    imagenet, mnv2 = benchmark(analyze)
    print(f"\nImageNet MobileNetV1: {len(imagenet)} layers, peak BW "
          f"{max(x.required_bandwidth_gbs for x in imagenet):.1f} GB/s")
    print(f"MobileNetV2 (DSC view): {len(mnv2)} layers, peak BW "
          f"{max(x.required_bandwidth_gbs for x in mnv2):.1f} GB/s")
    # large spatial maps on ImageNet -> much better reuse than CIFAR
    cifar = roofline_analysis()
    assert imagenet[0].arithmetic_intensity > cifar[0].arithmetic_intensity
