"""Fig. 13: per-layer throughput — reproduced exactly."""

import pytest

from repro.eval import PAPER_FIG13_THROUGHPUT_GOPS, run_experiment


def test_bench_fig13(benchmark):
    result = benchmark(run_experiment, "fig13")
    print()
    print(result.text)
    ours = result.data["throughput_gops"]
    for measured, paper in zip(ours, PAPER_FIG13_THROUGHPUT_GOPS):
        assert measured == pytest.approx(paper, abs=0.01)


def test_bench_fig13_plateaus(benchmark):
    result = benchmark(run_experiment, "fig13")
    ours = result.data["throughput_gops"]
    # "Layers 0 to 4 achieve the highest throughput of 1024 GOPS"
    assert all(v == pytest.approx(1024.0) for v in ours[:5])
    # "The lowest throughput in layers 11 and 12 is 905.6 GOPS"
    assert all(v == pytest.approx(905.64, abs=0.01) for v in ours[11:])
    # abstract: 973.55 GOPS at the peak-efficiency layers
    assert ours[10] == pytest.approx(973.55, abs=0.01)


def test_bench_fig13_average(benchmark):
    result = benchmark(run_experiment, "fig13")
    mean = sum(result.data["throughput_gops"]) / 13
    # paper: average throughput 981.42 GOPS (mean of its own per-layer
    # series is 982.5; we assert the window covering both)
    assert mean == pytest.approx(981.42, abs=2.0)
