"""Fig. 10: per-layer MAC operations and latency."""

import numpy as np
from repro.eval import run_experiment

#: Per-layer cycle counts implied by the paper's Eqs. 1-2 (at 1 GHz these
#: are the nanosecond latencies of Fig. 10's right axis).
PAPER_IMPLIED_LATENCY_NS = [
    4672, 4384, 8768, 4240, 8480, 4384,
    8768, 8768, 8768, 8768, 8768, 4672, 9344,
]


def test_bench_fig10(benchmark):
    result = benchmark(run_experiment, "fig10")
    print()
    print(result.text)
    np.testing.assert_allclose(
        result.data["latency_ns"], PAPER_IMPLIED_LATENCY_NS, rtol=1e-9
    )
    # stride-2 layers (1, 3, 5, 11) show the reduced-MAC dips of Fig. 10
    macs = result.data["macs"]
    for idx in (1, 3, 5, 11):
        assert macs[idx] < macs[idx - 1]
        assert macs[idx] < macs[idx + 1]
    # MACs and latency strongly correlated (paper's observation)
    r = np.corrcoef(np.array(macs, dtype=float),
                    np.array(result.data["latency_ns"]))[0, 1]
    assert r > 0.95


def test_bench_fig10_network_totals(benchmark):
    result = benchmark(run_experiment, "fig10")
    total_macs = sum(result.data["macs"])
    # MobileNetV1-CIFAR10 DSC stack: ~45.5M MACs
    assert total_macs == 45_459_456
