"""Verbatim snapshot of the PR-4 object-per-request serving kernel.

The columnar engine (PR 6) replaced the ``Request`` dataclass, the
per-object event loop, and the single-pass object ``summarize`` with
arena-backed equivalents.  This module preserves the PR-4 machinery
exactly as it shipped — one Python ``Request`` object per request,
deque-of-objects instance queues, the merged-arrival event loop, and
the O(n) object summarizer — so the engine benchmark can (a) measure
the columnar kernel against the real predecessor on identical work and
(b) assert the two produce bit-identical completion schedules.

Nothing here is exported to the package; it exists only for
``benchmarks/test_bench_engine.py`` and the exact-mode regression
tests.  Profiles, policies, and arrival processes are shared with the
live package (they were not changed by the columnar refactor).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Sequence

import numpy as np

from repro.errors import ConfigError
from repro.serve.profile import ScenarioMix, ServiceProfile

_COMPLETE, _WAKE, _TICK = 1, 2, 3
_EPS = 1e-12
_INF = float("inf")


@dataclass(slots=True)
class PR4Request:
    """The PR-4 per-request object (one Python object per request)."""

    index: int
    model: str
    profile: ServiceProfile
    arrival: float
    start: float = -1.0
    finish: float = -1.0
    slo: str = ""
    priority: int = 0
    deadline: float = float("inf")
    shed: bool = False


@dataclass(slots=True)
class PR4Instance:
    """The PR-4 instance: a deque of request objects per queue."""

    index: int
    busy_until: float = 0.0
    loaded_model: str | None = None
    queue: deque = field(default_factory=deque)
    busy_seconds: float = 0.0
    served: int = 0
    batches: int = 0
    setups: int = 0
    queued_seconds: float = 0.0
    active: bool = True
    latency_scale: float = 1.0
    window_end: float | None = None
    busy_seconds_window: float = 0.0
    profiles: dict[str, ServiceProfile] | None = None

    def enqueue(self, request, priority_aware: bool = False) -> None:
        if priority_aware and self.queue:
            key = (request.priority, request.index)
            pos = len(self.queue)
            for queued in reversed(self.queue):
                if (queued.priority, queued.index) <= key:
                    break
                pos -= 1
            if pos == len(self.queue):
                self.queue.append(request)
            else:
                self.queue.insert(pos, request)
        else:
            self.queue.append(request)
        self.queued_seconds += request.profile.per_image_seconds

    def is_idle(self, now: float) -> bool:
        return self.busy_until <= now

    def profile_for(self, model: str) -> ServiceProfile | None:
        if self.profiles is None:
            return None
        return self.profiles.get(model)

    def pending_seconds(self, now: float) -> float:
        pending = self.busy_until - now
        if pending < 0.0:
            pending = 0.0
        queued = self.queued_seconds
        if queued > 0.0:
            pending += queued * self.latency_scale
        return pending

    def _accrue_busy(self, now: float, duration: float) -> None:
        self.busy_seconds += duration
        if self.window_end is not None:
            start = min(now, self.window_end)
            end = min(now + duration, self.window_end)
            self.busy_seconds_window += max(0.0, end - start)

    def launch_head(self, max_batch: int, now: float) -> float:
        queue = self.queue
        if not queue:
            raise ConfigError("no queued requests to batch")
        model = queue[0].model
        members = [queue.popleft()]
        while (
            len(members) < max_batch
            and queue
            and queue[0].model == model
        ):
            members.append(queue.popleft())
        return self._serve(members, now)

    def _serve(self, requests, now: float) -> float:
        queue = self.queue
        queued_seconds = self.queued_seconds
        for request in requests:
            if queue and queue[0] is request:
                queue.popleft()
            queued_seconds -= request.profile.per_image_seconds
        self.queued_seconds = queued_seconds if queue else 0.0
        head = requests[0]
        model = head.model
        cold = self.loaded_model != model
        profile = self.profile_for(model) or head.profile
        setup = profile.setup_seconds if cold else 0.0
        per_image = profile.per_image_seconds * self.latency_scale
        base = now + setup
        count = 0
        for request in requests:
            count += 1
            request.start = now
            request.finish = base + count * per_image
        service = setup + count * per_image
        self.busy_until = now + service
        self._accrue_busy(now, service)
        self.served += count
        self.batches += 1
        if cold:
            self.setups += 1
        self.loaded_model = model
        return self.busy_until


class PR4Fleet:
    def __init__(self, instances: int) -> None:
        self.instances = [PR4Instance(index=i) for i in range(instances)]

    def __len__(self) -> int:
        return len(self.instances)

    def __iter__(self):
        return iter(self.instances)

    def __getitem__(self, index: int):
        return self.instances[index]


class PR4Engine:
    """The PR-4 event loop, verbatim (hooks stripped to the no-op
    serve-plane configuration the benchmark exercises)."""

    def __init__(self, fleet, policy, max_batch, max_wait_s) -> None:
        self.fleet = fleet
        self.policy = policy
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self._heap: list = []
        self._seq = 0

    def _maybe_launch(self, instance, now: float) -> None:
        if instance.busy_until > now or not instance.queue:
            return
        queue = instance.queue
        head = queue[0]
        max_batch = self.max_batch
        deadline = head.arrival + self.max_wait_s
        if now >= deadline - _EPS:
            due = True
        elif len(queue) >= max_batch:
            model = head.model
            count = 0
            for queued in queue:
                if queued.model != model:
                    break
                count += 1
                if count == max_batch:
                    break
            due = count == max_batch
        else:
            due = False
        self._seq += 1
        if due:
            finish = instance.launch_head(max_batch, now)
            heappush(
                self._heap,
                (finish, self._seq, _COMPLETE, instance.index),
            )
        else:
            heappush(
                self._heap, (deadline, self._seq, _WAKE, instance.index)
            )

    def run(self, requests: Sequence) -> int:
        instances = self.fleet.instances
        policy = self.policy
        heap = self._heap = []
        n = len(requests)
        self._seq = n
        i = 0
        events = 0
        next_arrival = requests[0].arrival if n else _INF
        while True:
            if i < n and (not heap or next_arrival <= heap[0][0]):
                request = requests[i]
                i += 1
                next_arrival = requests[i].arrival if i < n else _INF
                events += 1
                now = request.arrival
                instance = instances[
                    policy.choose(request, instances, now)
                ]
                instance.enqueue(request)
                self._maybe_launch(instance, now)
                continue
            if not heap:
                break
            now, _, kind, payload = heappop(heap)
            events += 1
            instance = instances[payload]
            self._maybe_launch(instance, now)
        return events


def pr4_build_requests(
    mix: ScenarioMix,
    times: np.ndarray,
    rng: np.random.Generator,
) -> list[PR4Request]:
    """PR-4 ``build_requests`` (serve-plane form): vectorized model
    draws, then one Python object per request."""
    n = len(times)
    weights = np.asarray(mix.weights, dtype=np.float64)
    cum_weights = np.cumsum(weights)
    u_model = rng.random(n)
    model_idx = np.minimum(
        np.searchsorted(
            cum_weights, u_model * cum_weights[-1], side="right"
        ),
        len(cum_weights) - 1,
    ).tolist()
    profiles = mix.profiles
    requests = []
    append = requests.append
    for i in range(n):
        profile = profiles[model_idx[i]]
        append(
            PR4Request(
                index=i,
                model=profile.name,
                profile=profile,
                arrival=float(times[i]),
            )
        )
    return requests


def pr4_summarize(requests: Sequence) -> dict:
    """PR-4 single-pass object summarizer (serve-plane fields)."""
    latencies: list[float] = []
    waits: list[float] = []
    counts: dict[str, int] = {}
    max_finish = float("-inf")
    for request in requests:
        finish = request.finish
        arrival = request.arrival
        latencies.append(finish - arrival)
        waits.append(request.start - arrival)
        model = request.model
        counts[model] = counts.get(model, 0) + 1
        if finish > max_finish:
            max_finish = finish
    return {
        "completed": len(latencies),
        "latencies": np.array(latencies),
        "waits": np.array(waits),
        "model_counts": tuple(sorted(counts.items())),
        "max_finish": max_finish,
    }
