"""Ablations of the design decisions DESIGN.md calls out.

These go beyond the paper's printed figures: each ablation isolates one
architectural choice (dataflow, Non-Conv folding, direct transfer, PE
scale, ifmap-buffer size, operating point) and quantifies its effect with
the same models that reproduce the paper's numbers.
"""

import pytest

from repro.arch import ArchConfig, DSCAccelerator, EDEA_CONFIG
from repro.dse import LoopOrder, layer_access, table1_case
from repro.nn import MOBILENET_V1_CIFAR10_SPECS
from repro.power import DVFSModel
from repro.quant import network_nonconv_op_counts
from repro.sim import layer_latency


EDEA_TILING = table1_case(6, tn=2)


def test_bench_ablation_dataflow(benchmark):
    """La vs Lb at the chosen tiling: the selected dataflow must win."""

    def totals():
        la = lb = 0
        for spec in MOBILENET_V1_CIFAR10_SPECS:
            la += layer_access(spec, EDEA_TILING, LoopOrder.LA).total
            lb += layer_access(spec, EDEA_TILING, LoopOrder.LB).total
        return la, lb

    la, lb = benchmark(totals)
    print(f"\nAblation dataflow: La={la:,} vs Lb={lb:,} accesses "
          f"({100 * (lb - la) / lb:.1f}% saved by La)")
    assert la < lb


def test_bench_ablation_nonconv_folding(benchmark):
    """Operation savings of the merged Non-Conv unit."""
    counts = benchmark(
        network_nonconv_op_counts, MOBILENET_V1_CIFAR10_SPECS
    )
    print(f"\nAblation Non-Conv: {counts.unfolded_ops:,} ops unfolded -> "
          f"{counts.folded_ops:,} folded "
          f"({counts.reduction_percent:.0f}% fewer)")
    # the single multiply-add halves the elementwise work
    assert counts.reduction_percent == pytest.approx(50.0)
    assert counts.saved_ops > 1_000_000  # ~1.4M elements x 4 ops


def test_bench_ablation_direct_transfer(benchmark, full_workload):
    """Measured external-traffic saving of the intermediate buffer."""

    def run_both():
        layer = full_workload.qmodel.layers[6]
        x_q = full_workload.qmodel.layer_input(full_workload.images[:1], 6)[0]
        direct = DSCAccelerator(EDEA_CONFIG, direct_transfer=True)
        direct.run_layer(layer, x_q)
        spilled = DSCAccelerator(EDEA_CONFIG, direct_transfer=False)
        spilled.run_layer(layer, x_q)
        return (
            direct.memory.total_activation_accesses,
            spilled.memory.total_activation_accesses,
        )

    direct_acc, spilled_acc = benchmark(run_both)
    reduction = 100 * (spilled_acc - direct_acc) / spilled_acc
    print(f"\nAblation direct transfer (layer 6): {spilled_acc:,} -> "
          f"{direct_acc:,} external activation accesses "
          f"(-{reduction:.1f}%)")
    assert direct_acc < spilled_acc
    assert reduction > 20.0


@pytest.mark.parametrize("td,tk,expected_speedup_min", [
    (16, 16, 1.8), (8, 32, 1.5), (16, 32, 3.0),
])
def test_bench_ablation_pe_scaling(benchmark, td, tk, expected_speedup_min):
    """The paper's scaling claim: larger Td/Tk cuts network latency."""

    def cycles(config):
        return sum(
            layer_latency(spec, config).total_cycles
            for spec in MOBILENET_V1_CIFAR10_SPECS
        )

    scaled = benchmark(cycles, ArchConfig(td=td, tk=tk))
    base = cycles(EDEA_CONFIG)
    speedup = base / scaled
    print(f"\nAblation PE scaling Td={td}, Tk={tk}: "
          f"{base:,} -> {scaled:,} cycles ({speedup:.2f}x)")
    assert speedup >= expected_speedup_min


def test_bench_ablation_ifmap_buffer(benchmark):
    """Ifmap-buffer (max output tile) sensitivity: smaller buffers pay
    more 9-cycle initiations; beyond 8x8 nothing improves for CIFAR
    geometry (32x32 maps split evenly either way)."""

    def cycles(edge):
        config = ArchConfig(max_output_tile=edge)
        return sum(
            layer_latency(spec, config).total_cycles
            for spec in MOBILENET_V1_CIFAR10_SPECS
        )

    at_8 = benchmark(cycles, 8)
    at_2, at_4, at_16, at_32 = cycles(2), cycles(4), cycles(16), cycles(32)
    print(f"\nAblation ifmap buffer: tile 2->{at_2:,}  4->{at_4:,}  "
          f"8->{at_8:,}  16->{at_16:,}  32->{at_32:,} cycles")
    assert at_2 > at_4 > at_8
    assert at_16 < at_8  # fewer tile initiations on the 32/16 maps
    assert at_32 <= at_16


def test_bench_ablation_dvfs(benchmark):
    """Operating-point study around the published 0.8 V / 1 GHz point."""
    model = DVFSModel()

    def sweep():
        return model.sweep([0.5, 0.6, 0.7, 0.8, 0.9, 1.0])

    points = benchmark(sweep)
    nominal = model.operating_point(0.8)
    print("\nAblation DVFS (f_max at each voltage):")
    for p in points:
        print(f"  {p.voltage_v:.1f} V  {p.frequency_hz / 1e9:5.2f} GHz  "
              f"{p.energy_efficiency_tops_w:6.2f} TOPS/W")
    # anchored at the paper's point
    assert nominal.frequency_hz == pytest.approx(1e9)
    assert nominal.energy_efficiency_tops_w == pytest.approx(13.43)
    # lower voltage -> better energy efficiency, lower throughput
    low = model.operating_point(0.6)
    assert low.energy_efficiency_tops_w > nominal.energy_efficiency_tops_w
    assert low.throughput_factor < 1.0
    # higher voltage -> faster but less efficient
    high = model.operating_point(1.0)
    assert high.throughput_factor > 1.0
    assert high.energy_efficiency_tops_w < nominal.energy_efficiency_tops_w
