"""Parallel design-point sweep: fan-out and warm-cache speedups.

Runs an eight-candidate architecture sweep (cycle-accurate, width-0.25
workload) three ways — serial, ``jobs=4``, and again with a warm
persistent cache — and reports the wall-clock ratios.  On a multi-core
runner the fan-out must beat serial by >= 3x; the warm-cache rerun must
beat serial by >= 10x everywhere (it replays pickles instead of
simulating).
"""

import os
import time

import pytest

from repro.arch.params import ArchConfig
from repro.eval import render_table
from repro.parallel import ResultCache, design_point_sweep

#: Eight feasible candidates around the paper's design point.
CANDIDATES = [
    ArchConfig(td=td, tk=tk, max_output_tile=mot)
    for td in (4, 8)
    for tk in (8, 16)
    for mot in (4, 8)
]


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


@pytest.mark.benchmark(group="parallel")
def test_bench_parallel_sweep_speedup(tmp_path):
    assert len(CANDIDATES) >= 8

    # Warm the per-process workload memo so every timed run measures
    # simulation, not model construction.
    design_point_sweep(CANDIDATES[:1], jobs=1)

    start = time.perf_counter()
    serial = design_point_sweep(
        CANDIDATES, jobs=1, cache=ResultCache(tmp_path)
    )
    t_serial = time.perf_counter() - start

    start = time.perf_counter()
    parallel = design_point_sweep(CANDIDATES, jobs=4)
    t_parallel = time.perf_counter() - start

    warm_cache = ResultCache(tmp_path)
    start = time.perf_counter()
    cached = design_point_sweep(CANDIDATES, jobs=1, cache=warm_cache)
    t_cached = time.perf_counter() - start

    rows = [
        ["serial (jobs=1)", round(t_serial, 3), 1.0],
        [
            "parallel (jobs=4)",
            round(t_parallel, 3),
            round(t_serial / t_parallel, 2),
        ],
        [
            "warm cache",
            round(t_cached, 4),
            round(t_serial / t_cached, 1),
        ],
    ]
    print()
    print(render_table(
        f"8-point cycle-accurate design sweep ({_available_cpus()} CPUs)",
        ["Mode", "Seconds", "Speedup vs serial"],
        rows,
    ))

    # Execution modes must agree bit-for-bit, in order.
    assert serial == parallel == cached
    assert [r.config for r in serial] == CANDIDATES

    # The warm cache replays pickles: >= 10x on any machine.
    assert t_serial / t_cached >= 10.0
    assert warm_cache.misses == 0

    # Fan-out needs real cores to show its >= 3x; assert where they exist.
    if _available_cpus() >= 4:
        assert t_serial / t_parallel >= 3.0
