"""Metric helpers and the technology-normalization model."""

import pytest

from repro.errors import ConfigError
from repro.power import (
    ScalingModel,
    energy_joules,
    gops,
    gops_per_mm2,
    precision_ops_factor,
    tops_per_watt,
)


class TestMetrics:
    def test_gops(self):
        assert gops(2_000_000_000, 1.0) == pytest.approx(2.0)

    def test_tops_per_watt(self):
        # the paper's headline point: 973.55 GOPS at 72.5 mW = 13.43 TOPS/W
        assert tops_per_watt(
            ops=973_550_000_000, seconds=1.0, watts=0.0725
        ) == pytest.approx(13.43, abs=0.01)

    def test_gops_per_mm2(self):
        # Table III: 973.55 GOPS / 0.58 mm2 = 1678.53 GOPS/mm2
        assert gops_per_mm2(973.55, 0.58) == pytest.approx(1678.53, abs=0.01)

    def test_energy(self):
        assert energy_joules(0.1, 2.0) == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ConfigError):
            gops(1, 0)
        with pytest.raises(ConfigError):
            tops_per_watt(1, 1, 0)
        with pytest.raises(ConfigError):
            gops_per_mm2(1, 0)
        with pytest.raises(ConfigError):
            energy_joules(-1, 1)


class TestPrecisionFactor:
    def test_8bit_is_identity(self):
        assert precision_ops_factor(8) == 1.0

    def test_16bit_counts_4x(self):
        # the paper's Table III footnote: (16/8)^2 = 4; 38.8 GOPS -> 155.2
        assert precision_ops_factor(16) == 4.0
        assert 38.8 * precision_ops_factor(16) == pytest.approx(155.2)

    def test_validation(self):
        with pytest.raises(ConfigError):
            precision_ops_factor(0)


class TestScalingModel:
    def test_reference_point_is_identity(self):
        model = ScalingModel()
        assert model.energy_efficiency_factor(22, 0.8) == 1.0
        assert model.area_efficiency_factor(22) == 1.0

    def test_older_node_scales_up(self):
        model = ScalingModel()
        assert model.energy_efficiency_factor(65, 0.8) > 1.0
        assert model.area_efficiency_factor(65) > 1.0

    def test_default_exponent_two(self):
        model = ScalingModel()
        assert model.area_efficiency_factor(44) == pytest.approx(4.0)

    def test_normalize_energy_efficiency_includes_precision(self):
        model = ScalingModel()
        raw_16bit = model.normalize_energy_efficiency(
            0.34, tech_nm=22, voltage_v=0.8, precision_bits=16
        )
        assert raw_16bit == pytest.approx(0.34 * 4)

    def test_model_within_tolerance_of_paper_for_isvlsi19(self):
        # [16]: 65nm, 1.08V, paper-normalized 7.73 from raw 0.92
        model = ScalingModel()
        ours = model.normalize_energy_efficiency(0.92, 65, 1.08)
        assert ours == pytest.approx(7.73, rel=0.10)

    def test_model_within_tolerance_of_paper_for_icce21(self):
        # [17]: 40nm, 16-bit, paper-normalized 4.32 (8-bit basis)
        model = ScalingModel()
        ours = model.normalize_energy_efficiency(0.34, 40, 0.9,
                                                 precision_bits=16)
        assert ours == pytest.approx(4.32, rel=0.10)

    def test_voltage_exponent_configurable(self):
        model = ScalingModel(beta_energy=2.0)
        boosted = model.energy_efficiency_factor(22, 1.6)
        assert boosted == pytest.approx(4.0)

    def test_validation(self):
        model = ScalingModel()
        with pytest.raises(ConfigError):
            model.energy_efficiency_factor(0, 0.8)
        with pytest.raises(ConfigError):
            model.area_efficiency_factor(-1)
