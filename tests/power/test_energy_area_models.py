"""Calibrated power and area models."""

import pytest

from repro.arch import ArchConfig, EDEA_CONFIG, LayerRunStats
from repro.errors import ConfigError
from repro.power import (
    PAPER_AREA_SHARES,
    PAPER_POWER_SHARES,
    AreaModel,
    PowerBreakdownShares,
    PowerModel,
)
from repro.power.area_model import paper_total_area_mm2


def synthetic_stats(layer_index, u_dwc, u_pwc, z_dwc, z_pwc, cycles=1000):
    """LayerRunStats with prescribed activity (for controlled model tests)."""
    return LayerRunStats(
        layer_index=layer_index,
        cycles=cycles,
        dwc_busy_cycles=int(u_dwc * cycles),
        pwc_busy_cycles=int(u_pwc * cycles),
        dwc_macs=288 * int(u_dwc * cycles),
        pwc_macs=512 * int(u_pwc * cycles),
        dwc_input_zeros=int(z_dwc * 10_000),
        dwc_input_elements=10_000,
        pwc_input_zeros=int(z_pwc * 10_000),
        pwc_input_elements=10_000,
    )


class TestShares:
    def test_paper_power_shares_sum_to_one(self):
        assert sum(PAPER_POWER_SHARES.values()) == pytest.approx(1.0, abs=0.01)

    def test_paper_area_shares_sum_to_one(self):
        assert sum(PAPER_AREA_SHARES.values()) == pytest.approx(1.0, abs=0.01)

    def test_invalid_shares_rejected(self):
        with pytest.raises(ConfigError):
            PowerBreakdownShares(pwc_engine=0.9, dwc_engine=0.9)


class TestPowerModelMechanics:
    def test_switching_factor_bounds(self):
        model = PowerModel(beta=0.3)
        assert model.switching_factor(0.0) == 1.0
        assert model.switching_factor(1.0) == pytest.approx(0.3)

    def test_switching_factor_validation(self):
        with pytest.raises(ConfigError):
            PowerModel().switching_factor(1.5)

    def test_power_decreases_with_sparsity(self):
        """The Fig. 11 mechanism: more zeros -> less power."""
        model = PowerModel(beta=0.2)
        dense = synthetic_stats(0, 0.1, 0.9, 0.1, 0.1)
        sparse = synthetic_stats(1, 0.1, 0.9, 0.9, 0.9)
        assert (model.layer_power(dense).total_watts
                > model.layer_power(sparse).total_watts)

    def test_power_decreases_with_idle_engines(self):
        model = PowerModel()
        busy = synthetic_stats(0, 0.5, 1.0, 0.5, 0.5)
        idle = synthetic_stats(1, 0.05, 0.5, 0.5, 0.5)
        assert (model.layer_power(busy).total_watts
                > model.layer_power(idle).total_watts)

    def test_constant_components_never_zero(self):
        model = PowerModel()
        silent = synthetic_stats(0, 0.0, 0.0, 1.0, 1.0)
        parts = model.layer_power(silent).components
        assert parts["clock_tree"] > 0  # clock tree burns regardless

    def test_component_split_follows_shares_at_full_activity(self):
        model = PowerModel(beta=1.0)  # activity-insensitive
        stats = synthetic_stats(0, 1.0, 1.0, 0.0, 0.0)
        parts = model.layer_power(stats).components
        total = sum(parts.values())
        # paper shares sum to 0.9999 (rounded percentages), so the
        # renormalized split can differ in the 4th decimal
        assert parts["pwc_engine"] / total == pytest.approx(
            PAPER_POWER_SHARES["pwc_engine"], abs=5e-4
        )

    def test_energy_and_efficiency(self):
        model = PowerModel()
        stats = synthetic_stats(0, 0.5, 1.0, 0.3, 0.3, cycles=2000)
        energy = model.layer_energy_joules(stats, clock_hz=1e9)
        power = model.layer_power(stats).total_watts
        assert energy == pytest.approx(power * 2000e-9)
        ee = model.layer_efficiency_tops_per_watt(stats, clock_hz=1e9)
        assert ee > 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            PowerModel(scale_watts=0)
        with pytest.raises(ConfigError):
            PowerModel(beta=0)
        with pytest.raises(ConfigError):
            PowerModel(beta=1.5)


class TestCalibration:
    def paper_like_stats(self):
        """Activity profile steep enough to reach the paper's 1.74 ratio."""
        stats = []
        for i in range(13):
            z = 0.5 + 0.45 * i / 12
            u_pwc = 0.93 if i < 11 else 0.88
            stats.append(synthetic_stats(i, u_pwc / 8, u_pwc, z, z))
        return stats

    def test_two_point_calibration_exact(self):
        model = PowerModel.calibrate(self.paper_like_stats(), strict=True)
        stats = {s.layer_index: s for s in self.paper_like_stats()}
        assert model.layer_power(stats[1]).total_watts == pytest.approx(
            0.1177, rel=1e-6
        )
        assert model.layer_power(stats[12]).total_watts == pytest.approx(
            0.0677, rel=1e-3
        )
        assert model.calibration_note is None

    def test_flat_profile_falls_back_with_note(self):
        flat = [synthetic_stats(i, 0.12, 0.93, 0.5, 0.5) for i in range(13)]
        model = PowerModel.calibrate(flat)
        assert model.calibration_note is not None
        stats1 = flat[1]
        assert model.layer_power(stats1).total_watts == pytest.approx(0.1177)

    def test_flat_profile_strict_raises(self):
        flat = [synthetic_stats(i, 0.12, 0.93, 0.5, 0.5) for i in range(13)]
        with pytest.raises(ConfigError):
            PowerModel.calibrate(flat, strict=True)

    def test_missing_layer_raises(self):
        with pytest.raises(ConfigError):
            PowerModel.calibrate([synthetic_stats(0, 0.1, 0.9, 0.5, 0.5)])

    def test_bad_targets_raise(self):
        with pytest.raises(ConfigError):
            PowerModel.calibrate(
                self.paper_like_stats(),
                high_power_watts=0.05,
                low_power_watts=0.06,
            )

    def test_calibrated_peak_efficiency_in_paper_ballpark(self):
        """With a paper-like sparsity profile, peak EE lands near the
        paper's 13.43 TOPS/W (within ~25%)."""
        stats = self.paper_like_stats()
        model = PowerModel.calibrate(stats, strict=True)
        ees = []
        for s in stats:
            # approximate per-layer ops from busy cycles at 1 GHz
            ee = model.layer_efficiency_tops_per_watt(s, clock_hz=1e9)
            ees.append(ee)
        assert 9.0 < max(ees) < 17.0


class TestAreaModel:
    def test_total_matches_paper_die(self):
        model = AreaModel.calibrated()
        assert model.total_area_mm2() == pytest.approx(
            paper_total_area_mm2(), rel=1e-6
        )
        assert model.total_area_mm2() == pytest.approx(0.58, abs=0.01)

    def test_breakdown_matches_fig9(self):
        model = AreaModel.calibrated()
        areas = model.component_areas_mm2()
        total = model.total_area_mm2()
        assert areas["pwc_engine"] / total == pytest.approx(0.4790, abs=1e-4)
        assert areas["dwc_engine"] / total == pytest.approx(0.2837, abs=1e-4)
        assert areas["nonconv"] / total == pytest.approx(0.1487, abs=1e-4)

    def test_pwc_to_dwc_ratio_near_1_7(self):
        # paper: "area ratio of PWC to DWC is approximately 1.7X"
        model = AreaModel.calibrated()
        assert model.pwc_to_dwc_ratio() == pytest.approx(1.69, abs=0.02)

    def test_scaling_doubles_engine_area(self):
        model = AreaModel.calibrated()
        base = model.component_areas_mm2(EDEA_CONFIG)
        scaled = model.component_areas_mm2(ArchConfig(td=16))
        assert scaled["dwc_engine"] == pytest.approx(2 * base["dwc_engine"])
        assert scaled["pwc_engine"] == pytest.approx(2 * base["pwc_engine"])
        assert scaled["fixed"] == base["fixed"]

    def test_scaled_total_grows_sublinearly(self):
        model = AreaModel.calibrated()
        double = model.total_area_mm2(ArchConfig(td=16))
        assert model.total_area_mm2() < double < 2 * model.total_area_mm2()
