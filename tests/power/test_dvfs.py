"""DVFS operating-point model."""

import pytest

from repro.errors import ConfigError
from repro.power import DVFSModel


class TestAnchoring:
    def test_nominal_point(self):
        model = DVFSModel()
        point = model.operating_point(0.8)
        assert point.frequency_hz == pytest.approx(1e9)
        assert point.throughput_factor == pytest.approx(1.0)
        assert point.energy_efficiency_tops_w == pytest.approx(13.43)
        assert point.dynamic_power_factor == pytest.approx(1.0)

    def test_fmax_monotone_in_voltage(self):
        model = DVFSModel()
        freqs = [model.max_frequency_hz(v) for v in (0.5, 0.6, 0.7, 0.8, 0.9)]
        assert freqs == sorted(freqs)

    def test_below_threshold_rejected(self):
        model = DVFSModel(v_threshold=0.35)
        with pytest.raises(ConfigError):
            model.max_frequency_hz(0.3)


class TestTradeoffs:
    def test_lower_voltage_more_efficient(self):
        model = DVFSModel()
        assert (model.operating_point(0.6).energy_efficiency_tops_w
                > model.operating_point(0.8).energy_efficiency_tops_w)

    def test_higher_voltage_faster_but_less_efficient(self):
        model = DVFSModel()
        high = model.operating_point(1.0)
        assert high.throughput_factor > 1.0
        assert high.energy_efficiency_tops_w < 13.43

    def test_underclocking_hurts_efficiency_via_leakage(self):
        # same voltage, half the clock: dynamic energy/op constant but
        # leakage energy/op doubles -> slightly worse TOPS/W
        model = DVFSModel(leakage_fraction=0.2)
        full = model.operating_point(0.8)
        half = model.operating_point(0.8, frequency_hz=0.5e9)
        assert half.energy_efficiency_tops_w < full.energy_efficiency_tops_w

    def test_overclocking_beyond_fmax_rejected(self):
        model = DVFSModel()
        with pytest.raises(ConfigError):
            model.operating_point(0.8, frequency_hz=1.5e9)

    def test_sweep_and_best_point(self):
        model = DVFSModel()
        voltages = [0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
        points = model.sweep(voltages)
        assert len(points) == 6
        best = model.best_efficiency_point(voltages)
        assert best.voltage_v == 0.5  # lowest voltage wins on TOPS/W

    def test_empty_sweep_rejected(self):
        with pytest.raises(ConfigError):
            DVFSModel().best_efficiency_point([])


class TestValidation:
    def test_constructor_ranges(self):
        with pytest.raises(ConfigError):
            DVFSModel(v_threshold=0.0)
        with pytest.raises(ConfigError):
            DVFSModel(v_threshold=0.9)
        with pytest.raises(ConfigError):
            DVFSModel(alpha=0.5)
        with pytest.raises(ConfigError):
            DVFSModel(leakage_fraction=1.0)

    def test_nonpositive_frequency_rejected(self):
        with pytest.raises(ConfigError):
            DVFSModel().operating_point(0.8, frequency_hz=0)
