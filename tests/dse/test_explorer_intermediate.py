"""The Fig. 2 sweep and the Fig. 3 intermediate-traffic analysis."""

import pytest

from repro.dse import (
    LoopOrder,
    best_point,
    explore,
    intermediate_access_report,
)
from repro.errors import ConfigError
from repro.nn import MOBILENET_V1_CIFAR10_SPECS, mobilenet_v1_specs


@pytest.fixture(scope="module")
def sweep():
    return explore()


class TestSweepStructure:
    def test_24_points(self, sweep):
        assert len(sweep.points) == 2 * 2 * 6  # orders x Tn x cases

    def test_group_points_sorted_by_case(self, sweep):
        group = sweep.group_points(LoopOrder.LA, tn=2)
        assert [p.case for p in group] == [1, 2, 3, 4, 5, 6]

    def test_by_case_returns_four_groups(self, sweep):
        assert len(sweep.by_case(3)) == 4

    def test_group_label(self, sweep):
        labels = {p.group for p in sweep.points}
        assert labels == {
            "La, Tn=Tm=1", "La, Tn=Tm=2", "Lb, Tn=Tm=1", "Lb, Tn=Tm=2",
        }


class TestPaperConclusions:
    """The qualitative Section II claims, asserted point by point."""

    def test_best_point_is_la_tn2_case6(self, sweep):
        best = best_point(sweep)
        assert best.order is LoopOrder.LA
        assert best.tiling.tn == 2
        assert best.case == 6

    def test_la_always_more_activation_traffic(self, sweep):
        for case in range(1, 7):
            for tn in (1, 2):
                points = {p.order: p for p in sweep.by_case(case)
                          if p.tiling.tn == tn}
                assert (points[LoopOrder.LA].activation_access
                        > points[LoopOrder.LB].activation_access)

    def test_lb_always_more_weight_traffic(self, sweep):
        for case in range(1, 7):
            for tn in (1, 2):
                points = {p.order: p for p in sweep.by_case(case)
                          if p.tiling.tn == tn}
                assert (points[LoopOrder.LB].weight_access
                        > points[LoopOrder.LA].weight_access)

    def test_pe_size_linear_in_tiling(self, sweep):
        # paper: "required PE array size exhibits a linear relationship
        # with the tiling size"
        for case in range(1, 7):
            tn1 = next(p for p in sweep.by_case(case)
                       if p.order is LoopOrder.LA and p.tiling.tn == 1)
            tn2 = next(p for p in sweep.by_case(case)
                       if p.order is LoopOrder.LA and p.tiling.tn == 2)
            assert tn2.pe_total == 4 * tn1.pe_total

    def test_case6_tn2_pe_is_800(self, sweep):
        best = best_point(sweep)
        assert best.pe_total == 800
        assert (best.pe_dwc, best.pe_pwc) == (288, 512)

    def test_pe_size_independent_of_loop_order(self, sweep):
        for case in range(1, 7):
            totals = {p.pe_total for p in sweep.by_case(case)
                      if p.tiling.tn == 2}
            assert len(totals) == 1


class TestSweepCustomGeometry:
    def test_smaller_network_sweeps(self):
        specs = mobilenet_v1_specs(width_multiplier=0.25)
        result = explore(specs)
        assert len(result.points) == 24
        assert best_point(result).total_access > 0


class TestIntermediateReport:
    def test_thirteen_layers(self):
        report = intermediate_access_report()
        assert len(report.layers) == 13

    def test_reduction_bounds(self):
        report = intermediate_access_report()
        # our "unique" counting mode yields 25%..50% (paper: 15.4%..46.9%)
        assert report.min_reduction_percent == pytest.approx(25.0)
        assert report.max_reduction_percent == pytest.approx(50.0)

    def test_total_reduction_near_paper(self):
        report = intermediate_access_report()
        # paper: 34.7%; our counting mode: ~40%
        assert 30.0 < report.total_reduction_percent < 45.0

    def test_stride2_layers_benefit_least(self):
        # the Fig. 3 sawtooth: stride-2 layers (1, 3, 5, 11) have the
        # smallest reductions because their input dominates
        report = intermediate_access_report()
        by_index = {x.index: x.reduction_percent for x in report.layers}
        low = min(by_index.values())
        for idx in (1, 3, 5, 11):
            assert by_index[idx] == pytest.approx(low)

    def test_optimized_never_exceeds_baseline(self):
        for mode in ("unique", "tiled"):
            report = intermediate_access_report(mode=mode)
            for layer in report.layers:
                assert 0 < layer.optimized < layer.baseline

    def test_tiled_mode_counts_more(self):
        unique = intermediate_access_report(mode="unique")
        tiled = intermediate_access_report(mode="tiled")
        assert tiled.total_baseline > unique.total_baseline

    def test_unknown_mode_raises(self):
        with pytest.raises(ConfigError):
            intermediate_access_report(mode="bogus")

    def test_eliminated_equals_intermediate_tensor_traffic(self):
        report = intermediate_access_report(mode="unique")
        for layer, spec in zip(report.layers, MOBILENET_V1_CIFAR10_SPECS):
            n = spec.out_size
            assert layer.eliminated == 2 * n * n * spec.in_channels
