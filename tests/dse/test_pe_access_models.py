"""PE sizing and access-count models vs the paper's Table II equations."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dse import (
    AccessModelConfig,
    LoopOrder,
    TilingConfig,
    dwc_access,
    layer_access,
    pe_array_size,
    pwc_access,
    table1_case,
    table2_dwc_activation_access,
    table2_dwc_weight_access,
    table2_pwc_activation_access,
    table2_pwc_weight_access,
)
from repro.errors import ConfigError
from repro.nn import MOBILENET_V1_CIFAR10_SPECS, DSCLayerSpec


EDEA_TILING = table1_case(6, tn=2)


class TestPEModel:
    def test_paper_design_point(self):
        pe = pe_array_size(EDEA_TILING)
        assert pe.dwc == 288  # Fig. 5a: 8 channels x 3x3 x 2x2
        assert pe.pwc == 512  # Fig. 5b: 8 x 16 x 2x2
        assert pe.total == 800  # Table III PE count

    def test_pwc_to_dwc_ratio_near_paper(self):
        # paper: "PWC to DWC PE ratio of 1.8X"
        assert pe_array_size(EDEA_TILING).pwc_to_dwc_ratio == pytest.approx(
            512 / 288
        )

    def test_linear_in_tile_sizes(self):
        base = pe_array_size(TilingConfig(1, 1, 4, 4))
        doubled = pe_array_size(TilingConfig(2, 1, 4, 4))
        assert doubled.dwc == 2 * base.dwc
        assert doubled.pwc == 2 * base.pwc

    @given(
        tn=st.integers(min_value=1, max_value=4),
        td=st.sampled_from([4, 8, 16]),
        tk=st.sampled_from([4, 8, 16]),
    )
    def test_table2_formulas(self, tn, td, tk):
        tiling = TilingConfig(tn, tn, td, tk)
        pe = pe_array_size(tiling)
        assert pe.dwc == td * 9 * tn * tn
        assert pe.pwc == td * tk * tn * tn


class TestDWCAccess:
    def test_la_weight_reads_once(self):
        spec = MOBILENET_V1_CIFAR10_SPECS[6]
        counts = dwc_access(spec, EDEA_TILING, LoopOrder.LA)
        assert counts.weight_reads == 9 * spec.in_channels

    def test_lb_weight_reads_per_tile(self):
        spec = MOBILENET_V1_CIFAR10_SPECS[6]  # 4x4 out -> 4 tiles of 2x2
        counts = dwc_access(spec, EDEA_TILING, LoopOrder.LB)
        assert counts.weight_reads == 9 * spec.in_channels * 4

    def test_ifmap_reads_equal_between_orders(self):
        spec = MOBILENET_V1_CIFAR10_SPECS[2]
        la = dwc_access(spec, EDEA_TILING, LoopOrder.LA)
        lb = dwc_access(spec, EDEA_TILING, LoopOrder.LB)
        assert la.ifmap_reads == lb.ifmap_reads

    def test_ofmap_writes_every_element_once(self):
        spec = MOBILENET_V1_CIFAR10_SPECS[0]
        counts = dwc_access(spec, EDEA_TILING, LoopOrder.LA)
        assert counts.ofmap_writes == (
            spec.out_size**2 * spec.in_channels
        )

    def test_matches_table2_closed_form(self):
        for spec in MOBILENET_V1_CIFAR10_SPECS:
            counts = dwc_access(spec, EDEA_TILING, LoopOrder.LA)
            assert counts.ifmap_reads == table2_dwc_activation_access(
                spec, EDEA_TILING
            )
            assert counts.weight_reads == table2_dwc_weight_access(spec)

    def test_stride2_uses_5x5_tiles(self):
        spec = MOBILENET_V1_CIFAR10_SPECS[1]  # stride 2
        counts = dwc_access(spec, EDEA_TILING, LoopOrder.LA)
        tiles = (spec.out_size // 2) ** 2
        assert counts.ifmap_reads == 25 * 8 * tiles * (spec.in_channels // 8)


class TestPWCAccess:
    def test_ifmap_rereads_per_kernel_group(self):
        spec = MOBILENET_V1_CIFAR10_SPECS[6]  # K=512 -> 32 kernel groups
        counts = pwc_access(spec, EDEA_TILING, LoopOrder.LA)
        n = spec.out_size
        assert counts.ifmap_reads == n * n * spec.in_channels * 32

    def test_matches_table2_closed_form(self):
        for spec in MOBILENET_V1_CIFAR10_SPECS:
            counts = pwc_access(spec, EDEA_TILING, LoopOrder.LA)
            assert counts.ifmap_reads == table2_pwc_activation_access(
                spec, EDEA_TILING
            )
            assert counts.weight_reads == table2_pwc_weight_access(spec)

    def test_la_has_psum_traffic_lb_none(self):
        spec = MOBILENET_V1_CIFAR10_SPECS[6]
        la = pwc_access(spec, EDEA_TILING, LoopOrder.LA)
        lb = pwc_access(spec, EDEA_TILING, LoopOrder.LB)
        assert la.psum_spills > 0
        assert lb.psum_spills == 0

    def test_psum_disabled_by_config(self):
        spec = MOBILENET_V1_CIFAR10_SPECS[6]
        config = AccessModelConfig(count_psum=False)
        counts = pwc_access(spec, EDEA_TILING, LoopOrder.LA, config)
        assert counts.psum_spills == 0

    def test_psum_factor_scales(self):
        spec = MOBILENET_V1_CIFAR10_SPECS[6]
        one = pwc_access(
            spec, EDEA_TILING, LoopOrder.LA, AccessModelConfig(1.0)
        )
        two = pwc_access(
            spec, EDEA_TILING, LoopOrder.LA, AccessModelConfig(2.0)
        )
        assert two.psum_spills == 2 * one.psum_spills

    def test_single_channel_group_no_psum(self):
        spec = DSCLayerSpec(0, 4, 1, 8, 16)  # D = Td -> one group
        counts = pwc_access(spec, EDEA_TILING, LoopOrder.LA)
        assert counts.psum_spills == 0

    def test_lb_weight_reads_per_tile(self):
        spec = MOBILENET_V1_CIFAR10_SPECS[6]
        lb = pwc_access(spec, EDEA_TILING, LoopOrder.LB)
        la = pwc_access(spec, EDEA_TILING, LoopOrder.LA)
        assert lb.weight_reads == la.weight_reads * 4  # 4 spatial tiles

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            AccessModelConfig(psum_access_factor=-1)


class TestAccessCounts:
    def test_addition(self):
        from repro.dse import AccessCounts

        a = AccessCounts(1, 2, 3, 4)
        b = AccessCounts(10, 20, 30, 40)
        c = a + b
        assert (c.ifmap_reads, c.weight_reads, c.ofmap_writes,
                c.psum_spills) == (11, 22, 33, 44)

    def test_activation_total(self):
        from repro.dse import AccessCounts

        counts = AccessCounts(ifmap_reads=10, weight_reads=5,
                              ofmap_writes=3, psum_spills=2)
        assert counts.activation == 15
        assert counts.total == 20


class TestLayerAccess:
    def test_combines_both_convolutions(self):
        spec = MOBILENET_V1_CIFAR10_SPECS[4]
        combined = layer_access(spec, EDEA_TILING, LoopOrder.LA)
        dwc = dwc_access(spec, EDEA_TILING, LoopOrder.LA)
        pwc = pwc_access(spec, EDEA_TILING, LoopOrder.LA)
        assert combined.total == dwc.total + pwc.total

    @settings(max_examples=30, deadline=None)
    @given(
        case=st.integers(min_value=1, max_value=6),
        tn=st.sampled_from([1, 2]),
        layer=st.integers(min_value=0, max_value=12),
    )
    def test_larger_tk_never_increases_pwc_ifmap_traffic(self, case, tn, layer):
        spec = MOBILENET_V1_CIFAR10_SPECS[layer]
        tiling = table1_case(case, tn=tn)
        bigger = TilingConfig(tiling.tn, tiling.tm, tiling.td, tiling.tk * 2)
        a = pwc_access(spec, tiling, LoopOrder.LA)
        b = pwc_access(spec, bigger, LoopOrder.LA)
        assert b.ifmap_reads <= a.ifmap_reads
