"""Loop orders and tiling configurations (paper Section II, Table I)."""

import pytest

from repro.dse import TABLE1_CASES, LoopLevel, LoopOrder, TilingConfig, table1_case
from repro.errors import ConfigError


class TestLoopOrder:
    def test_la_is_spatial_inside_channel(self):
        assert LoopOrder.LA.spatial_inside_channel

    def test_lb_is_channel_inside_spatial(self):
        assert not LoopOrder.LB.spatial_inside_channel

    def test_la_level_sequence(self):
        assert LoopOrder.LA.levels() == (
            LoopLevel.WINDOW,
            LoopLevel.CHANNEL_TILE,
            LoopLevel.SPATIAL,
            LoopLevel.CHANNEL,
            LoopLevel.KERNEL,
        )

    def test_lb_swaps_loop3_loop4(self):
        la, lb = LoopOrder.LA.levels(), LoopOrder.LB.levels()
        assert la[2], la[3] == (lb[3], lb[2])
        assert la[0] == lb[0] and la[1] == lb[1] and la[4] == lb[4]

    def test_kernel_loop_is_outermost_for_both(self):
        for order in LoopOrder:
            assert order.levels()[-1] is LoopLevel.KERNEL


class TestTilingConfig:
    def test_input_tile_stride1(self):
        # Fig. 5a: 4x4 input for a 2x2 output at stride 1
        assert TilingConfig(2, 2, 8, 16).input_tile(1) == 4

    def test_input_tile_stride2(self):
        # Fig. 5a: 5x5 input for a 2x2 output at stride 2
        assert TilingConfig(2, 2, 8, 16).input_tile(2) == 5

    def test_input_tile_tn1(self):
        assert TilingConfig(1, 1, 4, 4).input_tile(1) == 3
        assert TilingConfig(1, 1, 4, 4).input_tile(2) == 3

    def test_invalid_stride(self):
        with pytest.raises(ConfigError):
            TilingConfig(2, 2, 8, 16).input_tile(3)

    def test_outputs_per_tile(self):
        assert TilingConfig(2, 2, 8, 16).outputs_per_tile == 4

    def test_validation(self):
        with pytest.raises(ConfigError):
            TilingConfig(0, 2, 8, 16)
        with pytest.raises(ConfigError):
            TilingConfig(2, 2, 8, 0)

    def test_describe(self):
        assert TilingConfig(2, 2, 8, 16).describe() == "Tn=Tm=2, Td=8, Tk=16"
        assert "Tn=1" in TilingConfig(1, 2, 8, 16).describe()


class TestTable1:
    def test_six_cases(self):
        assert sorted(TABLE1_CASES) == [1, 2, 3, 4, 5, 6]

    def test_values_match_paper(self):
        assert TABLE1_CASES[1] == (4, 4)
        assert TABLE1_CASES[2] == (4, 8)
        assert TABLE1_CASES[3] == (4, 16)
        assert TABLE1_CASES[4] == (8, 4)
        assert TABLE1_CASES[5] == (8, 8)
        assert TABLE1_CASES[6] == (8, 16)

    def test_case6_is_the_implemented_design(self):
        tiling = table1_case(6, tn=2)
        assert (tiling.td, tiling.tk, tiling.tn, tiling.tm) == (8, 16, 2, 2)

    def test_unknown_case_raises(self):
        with pytest.raises(ConfigError):
            table1_case(7)

    def test_tm_defaults_to_tn(self):
        assert table1_case(1, tn=2).tm == 2
        assert table1_case(1, tn=2, tm=1).tm == 1
