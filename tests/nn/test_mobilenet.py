"""MobileNetV1 geometry — the single source of truth for every experiment."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn import (
    MOBILENET_V1_CIFAR10_SPECS,
    DSCLayerSpec,
    build_mobilenet_v1,
    mobilenet_v1_specs,
)


class TestCanonicalSpecs:
    def test_thirteen_layers(self):
        assert len(MOBILENET_V1_CIFAR10_SPECS) == 13

    def test_stride2_layers_match_paper(self):
        # paper: "layers 1, 3, 5 and 11 exhibit a reduced number of MAC
        # operations due to the stride of 2"
        strided = [s.index for s in MOBILENET_V1_CIFAR10_SPECS if s.stride == 2]
        assert strided == [1, 3, 5, 11]

    def test_late_layers_reach_2x2(self):
        # paper: "later layers such as layers 11 and 12 with an ifmap size of 2"
        assert MOBILENET_V1_CIFAR10_SPECS[11].out_size == 2
        assert MOBILENET_V1_CIFAR10_SPECS[12].in_size == 2

    def test_channel_progression(self):
        ins = [s.in_channels for s in MOBILENET_V1_CIFAR10_SPECS]
        outs = [s.out_channels for s in MOBILENET_V1_CIFAR10_SPECS]
        assert ins == [32, 64, 128, 128, 256, 256, 512, 512, 512, 512, 512,
                       512, 1024]
        assert outs == [64, 128, 128, 256, 256, 512, 512, 512, 512, 512, 512,
                        1024, 1024]

    def test_spatial_chain_consistent(self):
        for prev, cur in zip(MOBILENET_V1_CIFAR10_SPECS,
                             MOBILENET_V1_CIFAR10_SPECS[1:]):
            assert cur.in_size == prev.out_size
            assert cur.in_channels == prev.out_channels

    def test_mac_counts(self):
        spec0 = MOBILENET_V1_CIFAR10_SPECS[0]
        assert spec0.dwc_macs == 32 * 32 * 32 * 9
        assert spec0.pwc_macs == 32 * 32 * 32 * 64
        spec12 = MOBILENET_V1_CIFAR10_SPECS[12]
        assert spec12.total_macs == 2 * 2 * 1024 * 9 + 2 * 2 * 1024 * 1024

    def test_layer2_has_most_macs(self):
        # visible as the peak of the paper's Fig. 10 MAC curve
        macs = [s.total_macs for s in MOBILENET_V1_CIFAR10_SPECS]
        assert max(macs) == macs[2]

    def test_ops_are_twice_macs(self):
        for spec in MOBILENET_V1_CIFAR10_SPECS:
            assert spec.total_ops == 2 * spec.total_macs


class TestSpecValidation:
    def test_bad_stride_rejected(self):
        with pytest.raises(ConfigError):
            DSCLayerSpec(0, 32, 3, 32, 64)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigError):
            DSCLayerSpec(0, 0, 1, 32, 64)

    def test_out_size_stride2_odd_input(self):
        spec = DSCLayerSpec(0, 5, 2, 8, 16)
        assert spec.out_size == 3  # ceil(5/2)


class TestWidthMultiplier:
    def test_width_quarter_channels(self):
        specs = mobilenet_v1_specs(width_multiplier=0.25)
        assert specs[0].in_channels == 8
        assert specs[-1].out_channels == 256

    def test_channels_stay_multiples_of_8(self):
        for wm in (0.25, 0.5, 0.75, 1.0):
            for spec in mobilenet_v1_specs(width_multiplier=wm):
                assert spec.in_channels % 8 == 0
                assert spec.out_channels % 8 == 0

    def test_invalid_inputs(self):
        with pytest.raises(ConfigError):
            mobilenet_v1_specs(input_size=2)
        with pytest.raises(ConfigError):
            mobilenet_v1_specs(width_multiplier=0)


class TestBuildModel:
    def test_layer_count(self):
        model = build_mobilenet_v1(width_multiplier=0.25)
        # stem (3) + 13 blocks x 6 + pool + linear
        assert len(model) == 3 + 13 * 6 + 2

    def test_forward_shape(self):
        model = build_mobilenet_v1(width_multiplier=0.25)
        out = model.forward(np.zeros((2, 3, 32, 32)))
        assert out.shape == (2, 10)

    def test_deterministic_by_seed(self):
        a = build_mobilenet_v1(width_multiplier=0.25, seed=5)
        b = build_mobilenet_v1(width_multiplier=0.25, seed=5)
        for pa, pb in zip(a.parameters(), b.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_different_seeds_differ(self):
        a = build_mobilenet_v1(width_multiplier=0.25, seed=5)
        b = build_mobilenet_v1(width_multiplier=0.25, seed=6)
        assert any(
            not np.array_equal(pa.data, pb.data)
            for pa, pb in zip(a.parameters(), b.parameters())
        )

    def test_full_width_parameter_count_plausible(self):
        # MobileNetV1 alpha=1.0 has ~4.2M params (ImageNet head); our
        # CIFAR10 head is 10-way so slightly fewer.
        model = build_mobilenet_v1(width_multiplier=1.0)
        assert 3.0e6 < model.num_parameters() < 4.5e6
