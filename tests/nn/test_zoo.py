"""Geometry zoo: other DSC networks served by the accelerator."""

import pytest

from repro.arch import EDEA_CONFIG
from repro.errors import ConfigError
from repro.nn import (
    custom_dsc_specs,
    mobilenet_v1_imagenet_specs,
    mobilenet_v2_dsc_specs,
)
from repro.sim import layer_latency


class TestMobileNetV1ImageNet:
    def test_thirteen_layers_starting_at_112(self):
        specs = mobilenet_v1_imagenet_specs()
        assert len(specs) == 13
        assert specs[0].in_size == 112

    def test_ends_at_7x7x1024(self):
        specs = mobilenet_v1_imagenet_specs()
        assert specs[-1].out_size == 7
        assert specs[-1].out_channels == 1024

    def test_same_channel_plan_as_cifar_variant(self):
        from repro.nn import MOBILENET_V1_CIFAR10_SPECS

        imagenet = mobilenet_v1_imagenet_specs()
        for a, b in zip(imagenet, MOBILENET_V1_CIFAR10_SPECS):
            assert a.in_channels == b.in_channels
            assert a.out_channels == b.out_channels
            assert a.stride == b.stride

    def test_accelerator_timing_model_accepts_it(self):
        for spec in mobilenet_v1_imagenet_specs():
            assert layer_latency(spec).total_cycles > 0

    def test_channels_tile_exactly(self):
        for spec in mobilenet_v1_imagenet_specs():
            assert spec.in_channels % EDEA_CONFIG.td == 0
            assert spec.out_channels % EDEA_CONFIG.tk == 0


class TestMobileNetV2:
    def test_seventeen_dsc_layers(self):
        assert len(mobilenet_v2_dsc_specs()) == 17

    def test_channels_tile_exactly(self):
        for spec in mobilenet_v2_dsc_specs():
            assert spec.in_channels % EDEA_CONFIG.td == 0
            assert spec.out_channels % EDEA_CONFIG.tk == 0

    def test_spatial_chain_consistent(self):
        specs = mobilenet_v2_dsc_specs()
        for prev, cur in zip(specs, specs[1:]):
            assert cur.in_size == prev.out_size

    def test_expansion_factor_visible(self):
        specs = mobilenet_v2_dsc_specs()
        # later blocks run depthwise on ~6x expanded channels
        assert specs[-1].in_channels == 960  # 6 x 160
        assert specs[-1].out_channels == 320

    def test_timing_model_accepts_it(self):
        total = sum(
            layer_latency(spec).total_cycles
            for spec in mobilenet_v2_dsc_specs()
        )
        assert total > 0

    def test_input_size_validated(self):
        with pytest.raises(ConfigError):
            mobilenet_v2_dsc_specs(input_size=2)


class TestCustomSpecs:
    def test_chaining_plan(self):
        specs = custom_dsc_specs(16, [(1, 8, 16), (2, 16, 32), (1, 32, 32)])
        assert [s.out_size for s in specs] == [16, 8, 8]

    def test_non_chaining_plan_rejected(self):
        with pytest.raises(ConfigError):
            custom_dsc_specs(16, [(1, 8, 16), (1, 24, 32)])

    def test_empty_plan_rejected(self):
        with pytest.raises(ConfigError):
            custom_dsc_specs(16, [])

    def test_runs_through_dse(self):
        from repro.dse import best_point, explore

        specs = custom_dsc_specs(16, [(1, 16, 32), (2, 32, 64)])
        result = explore(specs)
        assert best_point(result).total_access > 0
