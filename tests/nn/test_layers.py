"""Layer forward/backward contracts, including numeric gradient checks."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import (
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    GlobalAvgPool,
    Linear,
    PointwiseConv2d,
    ReLU,
)
from repro.nn.layers import Parameter


def numeric_grad(layer, x, dout, param, idx, eps=1e-6):
    original = param.data[idx]
    param.data[idx] = original + eps
    hi = np.sum(layer.forward(x) * dout)
    param.data[idx] = original - eps
    lo = np.sum(layer.forward(x) * dout)
    param.data[idx] = original
    return (hi - lo) / (2 * eps)


class TestParameter:
    def test_grad_starts_zero(self):
        p = Parameter(np.ones((2, 2)))
        assert np.all(p.grad == 0)

    def test_zero_grad(self):
        p = Parameter(np.ones(3))
        p.grad += 5.0
        p.zero_grad()
        assert np.all(p.grad == 0)

    def test_size(self):
        assert Parameter(np.ones((2, 3))).size == 6


class TestConv2d:
    def test_forward_shape(self, rng):
        layer = Conv2d(3, 8, 3, stride=1, padding=1, rng=rng)
        out = layer.forward(rng.normal(size=(2, 3, 8, 8)))
        assert out.shape == (2, 8, 8, 8)

    def test_weight_gradient_matches_numeric(self, rng):
        layer = Conv2d(2, 3, 3, stride=1, padding=1, rng=rng)
        x = rng.normal(size=(1, 2, 5, 5))
        dout = rng.normal(size=(1, 3, 5, 5))
        layer.forward(x)
        layer.backward(dout)
        for idx in [(0, 0, 1, 1), (2, 1, 0, 2)]:
            num = numeric_grad(layer, x, dout, layer.weight, idx)
            assert layer.weight.grad[idx] == pytest.approx(num, rel=1e-4)

    def test_backward_before_forward_raises(self, rng):
        layer = Conv2d(2, 3, 3, rng=rng)
        with pytest.raises(ShapeError):
            layer.backward(np.zeros((1, 3, 2, 2)))

    def test_bias_parameter_optional(self, rng):
        without = Conv2d(2, 3, 3, bias=False, rng=rng)
        with_bias = Conv2d(2, 3, 3, bias=True, rng=rng)
        assert len(list(without.parameters())) == 1
        assert len(list(with_bias.parameters())) == 2


class TestDepthwiseConv2d:
    def test_forward_shape_stride2(self, rng):
        layer = DepthwiseConv2d(4, stride=2, rng=rng)
        out = layer.forward(rng.normal(size=(1, 4, 8, 8)))
        assert out.shape == (1, 4, 4, 4)

    def test_weight_gradient_matches_numeric(self, rng):
        layer = DepthwiseConv2d(3, stride=1, rng=rng)
        x = rng.normal(size=(1, 3, 5, 5))
        dout = rng.normal(size=(1, 3, 5, 5))
        layer.forward(x)
        layer.backward(dout)
        for idx in [(0, 1, 1), (2, 2, 0)]:
            num = numeric_grad(layer, x, dout, layer.weight, idx)
            assert layer.weight.grad[idx] == pytest.approx(num, rel=1e-4)

    def test_gradients_accumulate(self, rng):
        layer = DepthwiseConv2d(2, rng=rng)
        x = rng.normal(size=(1, 2, 4, 4))
        dout = rng.normal(size=(1, 2, 4, 4))
        layer.forward(x)
        layer.backward(dout)
        first = layer.weight.grad.copy()
        layer.forward(x)
        layer.backward(dout)
        np.testing.assert_allclose(layer.weight.grad, 2 * first)


class TestPointwiseConv2d:
    def test_forward_shape(self, rng):
        layer = PointwiseConv2d(4, 6, rng=rng)
        out = layer.forward(rng.normal(size=(2, 4, 5, 5)))
        assert out.shape == (2, 6, 5, 5)

    def test_weight_gradient_matches_numeric(self, rng):
        layer = PointwiseConv2d(3, 4, rng=rng)
        x = rng.normal(size=(1, 3, 4, 4))
        dout = rng.normal(size=(1, 4, 4, 4))
        layer.forward(x)
        layer.backward(dout)
        for idx in [(0, 0), (3, 2)]:
            num = numeric_grad(layer, x, dout, layer.weight, idx)
            assert layer.weight.grad[idx] == pytest.approx(num, rel=1e-4)


class TestBatchNorm2d:
    def test_training_normalizes_batch(self, rng):
        layer = BatchNorm2d(4)
        x = rng.normal(loc=3.0, scale=2.0, size=(8, 4, 5, 5))
        out = layer.forward(x)
        assert abs(out.mean()) < 1e-8
        assert out.std() == pytest.approx(1.0, abs=1e-2)

    def test_running_stats_updated(self, rng):
        layer = BatchNorm2d(2, momentum=0.5)
        x = rng.normal(loc=4.0, size=(16, 2, 4, 4))
        layer.forward(x)
        assert np.all(layer.running_mean > 1.0)

    def test_eval_uses_running_stats(self, rng):
        layer = BatchNorm2d(2)
        x = rng.normal(size=(4, 2, 3, 3))
        layer.forward(x)  # update running stats
        layer.eval()
        y1 = layer.forward(x[:1])
        y2 = layer.forward(x[:1])
        np.testing.assert_array_equal(y1, y2)

    def test_shape_mismatch_raises(self):
        layer = BatchNorm2d(4)
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((1, 3, 2, 2)))

    def test_gamma_beta_gradients_match_numeric(self, rng):
        layer = BatchNorm2d(3)
        x = rng.normal(size=(4, 3, 4, 4))
        dout = rng.normal(size=(4, 3, 4, 4))
        layer.forward(x)
        layer.backward(dout)
        for param in (layer.gamma, layer.beta):
            num = numeric_grad(layer, x, dout, param, (1,))
            assert param.grad[1] == pytest.approx(num, rel=1e-4)

    def test_input_gradient_matches_numeric(self, rng):
        layer = BatchNorm2d(2)
        x = rng.normal(size=(3, 2, 3, 3))
        dout = rng.normal(size=(3, 2, 3, 3))
        layer.forward(x)
        dx = layer.backward(dout)
        eps = 1e-6
        idx = (1, 0, 2, 1)
        xp = x.copy(); xp[idx] += eps
        xm = x.copy(); xm[idx] -= eps
        num = (np.sum(layer.forward(xp) * dout)
               - np.sum(layer.forward(xm) * dout)) / (2 * eps)
        assert dx[idx] == pytest.approx(num, rel=1e-3, abs=1e-6)


class TestReLULayer:
    def test_roundtrip(self, rng):
        layer = ReLU()
        x = rng.normal(size=(2, 3, 4, 4))
        out = layer.forward(x)
        assert np.all(out >= 0)
        dx = layer.backward(np.ones_like(x))
        np.testing.assert_array_equal(dx, (x > 0).astype(float))


class TestGlobalAvgPool:
    def test_forward_backward(self, rng):
        layer = GlobalAvgPool()
        x = rng.normal(size=(2, 3, 4, 4))
        out = layer.forward(x)
        assert out.shape == (2, 3)
        dx = layer.backward(np.ones((2, 3)))
        assert dx.shape == x.shape
        np.testing.assert_allclose(dx, 1.0 / 16)


class TestLinear:
    def test_forward(self, rng):
        layer = Linear(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))
        out = layer.forward(x)
        np.testing.assert_allclose(
            out, x @ layer.weight.data.T + layer.bias.data
        )

    def test_shape_check(self, rng):
        layer = Linear(4, 3, rng=rng)
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((2, 5)))

    def test_gradients_match_numeric(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        dout = rng.normal(size=(4, 2))
        layer.forward(x)
        dx = layer.backward(dout)
        num = numeric_grad(layer, x, dout, layer.weight, (1, 2))
        assert layer.weight.grad[1, 2] == pytest.approx(num, rel=1e-5)
        np.testing.assert_allclose(dx, dout @ layer.weight.data)
