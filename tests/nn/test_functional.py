"""Convolution primitives vs SciPy references and finite differences."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import signal

from repro.errors import ShapeError
from repro.nn import functional as F


def scipy_conv2d(x, w, stride, padding):
    """Reference standard convolution via scipy.signal.correlate."""
    n, c, h, wd = x.shape
    f = w.shape[0]
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (h + 2 * padding - w.shape[2]) // stride + 1
    out_w = (wd + 2 * padding - w.shape[3]) // stride + 1
    out = np.zeros((n, f, out_h, out_w))
    for i in range(n):
        for j in range(f):
            acc = np.zeros((xp.shape[2] - w.shape[2] + 1,
                            xp.shape[3] - w.shape[3] + 1))
            for ch in range(c):
                acc += signal.correlate2d(xp[i, ch], w[j, ch], mode="valid")
            out[i, j] = acc[::stride, ::stride]
    return out


class TestConvOutputSize:
    def test_stride1_pad1_preserves(self):
        assert F.conv_output_size(32, 3, 1, 1) == 32

    def test_stride2_halves(self):
        assert F.conv_output_size(32, 3, 2, 1) == 16

    def test_tiny_map(self):
        assert F.conv_output_size(2, 3, 1, 1) == 2

    def test_empty_output_raises(self):
        with pytest.raises(ShapeError):
            F.conv_output_size(2, 5, 1, 0)


class TestIm2col:
    def test_shape(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        cols = F.im2col(x, 3, 1, 1)
        assert cols.shape == (2, 3, 3, 3, 8, 8)

    def test_values_center_window(self, rng):
        x = rng.normal(size=(1, 1, 5, 5))
        cols = F.im2col(x, 3, 1, 1)
        # output position (2,2) window centered at x[1:4,1:4]
        np.testing.assert_array_equal(cols[0, 0, :, :, 2, 2], x[0, 0, 1:4, 1:4])

    def test_rejects_3d(self):
        with pytest.raises(ShapeError):
            F.im2col(np.zeros((3, 8, 8)), 3, 1, 1)

    def test_col2im_adjoint_property(self, rng):
        # <im2col(x), y> == <x, col2im(y)> : they are adjoint linear maps.
        x = rng.normal(size=(1, 2, 6, 6))
        cols = F.im2col(x, 3, 2, 1)
        y = rng.normal(size=cols.shape)
        lhs = float(np.sum(cols * y))
        rhs = float(np.sum(x * F.col2im(y, x.shape, 3, 2, 1)))
        assert lhs == pytest.approx(rhs)

    def test_col2im_shape_check(self, rng):
        with pytest.raises(ShapeError):
            F.col2im(np.zeros((1, 1, 3, 3, 2, 2)), (1, 1, 8, 8), 3, 1, 1)


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 1), (2, 1), (1, 0)])
    def test_matches_scipy(self, rng, stride, padding):
        x = rng.normal(size=(2, 3, 9, 9))
        w = rng.normal(size=(4, 3, 3, 3))
        ours = F.conv2d(x, w, None, stride, padding)
        ref = scipy_conv2d(x, w, stride, padding)
        np.testing.assert_allclose(ours, ref, atol=1e-10)

    def test_bias_added(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        w = rng.normal(size=(3, 2, 3, 3))
        b = np.array([1.0, -2.0, 0.5])
        out = F.conv2d(x, w, b, 1, 1)
        base = F.conv2d(x, w, None, 1, 1)
        np.testing.assert_allclose(out - base, np.broadcast_to(
            b.reshape(1, 3, 1, 1), out.shape))

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ShapeError):
            F.conv2d(np.zeros((1, 2, 4, 4)), np.zeros((3, 5, 3, 3)))

    def test_non_square_kernel_raises(self):
        with pytest.raises(ShapeError):
            F.conv2d(np.zeros((1, 2, 4, 4)), np.zeros((3, 2, 3, 2)))

    def test_backward_finite_difference(self, rng):
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        dout = rng.normal(size=(1, 3, 5, 5))
        dx, dw, db = F.conv2d_backward(dout, x, w, 1, 1)
        eps = 1e-6
        # check a few positions of dx and dw numerically
        for idx in [(0, 0, 2, 2), (0, 1, 4, 0)]:
            xp = x.copy(); xp[idx] += eps
            xm = x.copy(); xm[idx] -= eps
            num = np.sum((F.conv2d(xp, w, None, 1, 1)
                          - F.conv2d(xm, w, None, 1, 1)) * dout) / (2 * eps)
            assert dx[idx] == pytest.approx(num, rel=1e-4)
        for idx in [(0, 0, 0, 0), (2, 1, 2, 2)]:
            wp = w.copy(); wp[idx] += eps
            wm = w.copy(); wm[idx] -= eps
            num = np.sum((F.conv2d(x, wp, None, 1, 1)
                          - F.conv2d(x, wm, None, 1, 1)) * dout) / (2 * eps)
            assert dw[idx] == pytest.approx(num, rel=1e-4)
        np.testing.assert_allclose(db, dout.sum(axis=(0, 2, 3)))


class TestDepthwiseConv2d:
    @pytest.mark.parametrize("stride", [1, 2])
    def test_matches_per_channel_scipy(self, rng, stride):
        x = rng.normal(size=(2, 4, 8, 8))
        w = rng.normal(size=(4, 3, 3))
        ours = F.depthwise_conv2d(x, w, None, stride, 1)
        # depthwise == standard conv with block-diagonal weights
        w_full = np.zeros((4, 4, 3, 3))
        for ch in range(4):
            w_full[ch, ch] = w[ch]
        ref = scipy_conv2d(x, w_full, stride, 1)
        np.testing.assert_allclose(ours, ref, atol=1e-10)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ShapeError):
            F.depthwise_conv2d(np.zeros((1, 3, 4, 4)), np.zeros((4, 3, 3)))

    def test_backward_finite_difference(self, rng):
        x = rng.normal(size=(1, 3, 6, 6))
        w = rng.normal(size=(3, 3, 3))
        dout = rng.normal(size=(1, 3, 3, 3))
        dx, dw, _ = F.depthwise_conv2d_backward(dout, x, w, 2, 1)
        eps = 1e-6
        for idx in [(0, 1, 3, 3), (0, 2, 0, 0)]:
            xp = x.copy(); xp[idx] += eps
            xm = x.copy(); xm[idx] -= eps
            num = np.sum((F.depthwise_conv2d(xp, w, None, 2, 1)
                          - F.depthwise_conv2d(xm, w, None, 2, 1)) * dout
                         ) / (2 * eps)
            assert dx[idx] == pytest.approx(num, rel=1e-4, abs=1e-8)
        for idx in [(0, 1, 1), (2, 0, 2)]:
            wp = w.copy(); wp[idx] += eps
            wm = w.copy(); wm[idx] -= eps
            num = np.sum((F.depthwise_conv2d(x, wp, None, 2, 1)
                          - F.depthwise_conv2d(x, wm, None, 2, 1)) * dout
                         ) / (2 * eps)
            assert dw[idx] == pytest.approx(num, rel=1e-4)


class TestPointwiseConv2d:
    def test_matches_einsum_reference(self, rng):
        x = rng.normal(size=(2, 5, 4, 4))
        w = rng.normal(size=(7, 5))
        ours = F.pointwise_conv2d(x, w)
        ref = np.einsum("fc,nchw->nfhw", w, x)
        np.testing.assert_allclose(ours, ref)

    def test_equals_1x1_standard_conv(self, rng):
        x = rng.normal(size=(1, 4, 5, 5))
        w = rng.normal(size=(6, 4))
        ours = F.pointwise_conv2d(x, w)
        ref = F.conv2d(x, w.reshape(6, 4, 1, 1), None, 1, 0)
        np.testing.assert_allclose(ours, ref)

    def test_backward_is_transpose(self, rng):
        x = rng.normal(size=(2, 4, 3, 3))
        w = rng.normal(size=(6, 4))
        dout = rng.normal(size=(2, 6, 3, 3))
        dx, dw, _ = F.pointwise_conv2d_backward(dout, x, w)
        np.testing.assert_allclose(dx, np.einsum("fc,nfhw->nchw", w, dout))
        np.testing.assert_allclose(dw, np.einsum("nfhw,nchw->fc", dout, x))

    def test_channel_mismatch_raises(self):
        with pytest.raises(ShapeError):
            F.pointwise_conv2d(np.zeros((1, 3, 4, 4)), np.zeros((2, 5)))


class TestPooling:
    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        out = F.global_avg_pool(x)
        np.testing.assert_allclose(out, x.mean(axis=(2, 3)))

    def test_global_avg_pool_backward(self, rng):
        dout = rng.normal(size=(2, 3))
        dx = F.global_avg_pool_backward(dout, (2, 3, 4, 4))
        np.testing.assert_allclose(dx[0, 0], dout[0, 0] / 16)


class TestReLU:
    def test_forward(self):
        x = np.array([-1.0, 0.0, 2.0])
        np.testing.assert_array_equal(F.relu(x), [0.0, 0.0, 2.0])

    def test_backward_masks_negatives(self):
        x = np.array([-1.0, 0.0, 2.0])
        dout = np.ones(3)
        np.testing.assert_array_equal(F.relu_backward(dout, x), [0, 0, 1])


class TestHypothesisShapes:
    @settings(max_examples=25, deadline=None)
    @given(
        h=st.integers(min_value=3, max_value=12),
        c=st.integers(min_value=1, max_value=4),
        stride=st.sampled_from([1, 2]),
    )
    def test_dwc_output_geometry(self, h, c, stride):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, c, h, h))
        w = rng.normal(size=(c, 3, 3))
        out = F.depthwise_conv2d(x, w, None, stride, 1)
        expected = (h + 2 - 3) // stride + 1
        assert out.shape == (1, c, expected, expected)

    @settings(max_examples=25, deadline=None)
    @given(
        c=st.integers(min_value=1, max_value=6),
        f=st.integers(min_value=1, max_value=6),
    )
    def test_pwc_linearity(self, c, f):
        rng = np.random.default_rng(1)
        x1 = rng.normal(size=(1, c, 3, 3))
        x2 = rng.normal(size=(1, c, 3, 3))
        w = rng.normal(size=(f, c))
        lhs = F.pointwise_conv2d(x1 + x2, w)
        rhs = F.pointwise_conv2d(x1, w) + F.pointwise_conv2d(x2, w)
        np.testing.assert_allclose(lhs, rhs, atol=1e-10)
