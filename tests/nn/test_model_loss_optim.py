"""Sequential container, losses, optimizer, trainer, and initializers."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn import (
    SGD,
    Linear,
    ReLU,
    Sequential,
    Trainer,
    accuracy,
    cross_entropy,
    cross_entropy_backward,
    softmax,
)
from repro.nn import init
from repro.errors import ShapeError


class TestSequential:
    def test_forward_chains_layers(self, rng):
        model = Sequential([Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng)])
        out = model.forward(rng.normal(size=(3, 4)))
        assert out.shape == (3, 2)

    def test_add_returns_self(self, rng):
        model = Sequential()
        assert model.add(Linear(2, 2, rng=rng)) is model

    def test_parameters_collected(self, rng):
        model = Sequential([Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng)])
        assert len(list(model.parameters())) == 4  # 2 weights + 2 biases

    def test_num_parameters(self, rng):
        model = Sequential([Linear(4, 8, rng=rng)])
        assert model.num_parameters() == 4 * 8 + 8

    def test_train_eval_propagates(self, rng):
        model = Sequential([Linear(2, 2, rng=rng), ReLU()])
        model.eval()
        assert all(not layer.training for layer in model)
        model.train()
        assert all(layer.training for layer in model)

    def test_record_activations(self, rng):
        model = Sequential([Linear(4, 8, rng=rng), ReLU()])
        model.record_activations = True
        x = rng.normal(size=(2, 4))
        model.forward(x)
        assert len(model.activations) == 3  # input + 2 layers

    def test_indexing_and_len(self, rng):
        l1 = Linear(2, 2, rng=rng)
        model = Sequential([l1, ReLU()])
        assert len(model) == 2
        assert model[0] is l1

    def test_zero_grad(self, rng):
        model = Sequential([Linear(2, 2, rng=rng)])
        model.forward(rng.normal(size=(1, 2)))
        model.backward(np.ones((1, 2)))
        model.zero_grad()
        assert all(np.all(p.grad == 0) for p in model.parameters())


class TestSoftmaxCrossEntropy:
    def test_softmax_rows_sum_to_one(self, rng):
        probs = softmax(rng.normal(size=(5, 10)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_softmax_shift_invariant(self, rng):
        logits = rng.normal(size=(3, 4))
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0))

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        labels = np.array([0, 1])
        assert cross_entropy(logits, labels) == pytest.approx(0.0, abs=1e-6)

    def test_cross_entropy_uniform(self):
        logits = np.zeros((4, 10))
        labels = np.array([0, 1, 2, 3])
        assert cross_entropy(logits, labels) == pytest.approx(np.log(10))

    def test_cross_entropy_shape_checks(self):
        with pytest.raises(ShapeError):
            cross_entropy(np.zeros((2, 3, 4)), np.array([0, 1]))
        with pytest.raises(ShapeError):
            cross_entropy(np.zeros((2, 3)), np.array([0]))

    def test_gradient_matches_numeric(self, rng):
        logits = rng.normal(size=(3, 5))
        labels = np.array([1, 0, 4])
        grad = cross_entropy_backward(logits, labels)
        eps = 1e-6
        for idx in [(0, 1), (2, 3)]:
            lp = logits.copy(); lp[idx] += eps
            lm = logits.copy(); lm[idx] -= eps
            num = (cross_entropy(lp, labels) - cross_entropy(lm, labels)) / (
                2 * eps
            )
            assert grad[idx] == pytest.approx(num, rel=1e-4, abs=1e-8)

    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        labels = np.array([0, 1, 1])
        assert accuracy(logits, labels) == pytest.approx(2 / 3)


class TestSGD:
    def test_plain_step(self, rng):
        layer = Linear(2, 2, rng=rng)
        opt = SGD(list(layer.parameters()), lr=0.1, momentum=0.0)
        layer.weight.grad[...] = 1.0
        before = layer.weight.data.copy()
        opt.step()
        np.testing.assert_allclose(layer.weight.data, before - 0.1)

    def test_momentum_accumulates(self, rng):
        layer = Linear(1, 1, rng=rng)
        opt = SGD(list(layer.parameters()), lr=1.0, momentum=0.5)
        for expected_velocity in (1.0, 1.5, 1.75):
            before = layer.weight.data.copy()
            layer.weight.grad[...] = 1.0
            opt.step()
            np.testing.assert_allclose(
                before - layer.weight.data, expected_velocity
            )
            layer.weight.zero_grad()

    def test_weight_decay_shrinks_weights(self, rng):
        layer = Linear(1, 1, rng=rng)
        layer.weight.data[...] = 1.0
        opt = SGD(list(layer.parameters()), lr=0.1, momentum=0.0,
                  weight_decay=0.5)
        opt.step()  # grad is zero, only decay acts
        assert layer.weight.data[0, 0] == pytest.approx(0.95)

    def test_validation(self, rng):
        layer = Linear(1, 1, rng=rng)
        params = list(layer.parameters())
        with pytest.raises(ConfigError):
            SGD(params, lr=-1)
        with pytest.raises(ConfigError):
            SGD(params, momentum=1.5)
        with pytest.raises(ConfigError):
            SGD(params, weight_decay=-0.1)
        with pytest.raises(ConfigError):
            SGD([])


class TestTrainer:
    def test_loss_decreases_on_separable_data(self, rng):
        # two gaussian blobs -> a linear model must learn them
        x = np.concatenate(
            [rng.normal(-2, 0.5, size=(40, 3)), rng.normal(2, 0.5, size=(40, 3))]
        )
        y = np.array([0] * 40 + [1] * 40)
        model = Sequential([Linear(3, 2, rng=rng)])
        trainer = Trainer(model, SGD(list(model.parameters()), lr=0.1),
                          batch_size=8)
        result = trainer.fit(x, y, epochs=5)
        assert result.losses[-1] < result.losses[0]
        assert result.final_accuracy > 0.9

    def test_evaluate_does_not_update(self, rng):
        model = Sequential([Linear(3, 2, rng=rng)])
        trainer = Trainer(model, SGD(list(model.parameters()), lr=0.1))
        w = model[0].weight.data.copy()
        trainer.evaluate(rng.normal(size=(4, 3)), np.array([0, 1, 0, 1]))
        np.testing.assert_array_equal(w, model[0].weight.data)

    def test_size_mismatch_raises(self, rng):
        model = Sequential([Linear(3, 2, rng=rng)])
        trainer = Trainer(model, SGD(list(model.parameters()), lr=0.1))
        with pytest.raises(ConfigError):
            trainer.train_epoch(rng.normal(size=(4, 3)), np.array([0, 1]))

    def test_empty_result_defaults(self):
        from repro.nn import TrainResult

        result = TrainResult()
        assert result.final_loss == float("inf")
        assert result.final_accuracy == 0.0


class TestInit:
    def test_he_normal_std(self):
        rng = np.random.default_rng(0)
        w = init.he_normal((1000, 100), fan_in=100, rng=rng)
        assert w.std() == pytest.approx(np.sqrt(2 / 100), rel=0.05)

    def test_xavier_uniform_bounds(self):
        rng = np.random.default_rng(0)
        w = init.xavier_uniform((100, 100), 100, 100, rng=rng)
        limit = np.sqrt(6 / 200)
        assert np.all(np.abs(w) <= limit)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigError):
            init.he_normal((2, 2), fan_in=0, rng=rng)
        with pytest.raises(ConfigError):
            init.xavier_uniform((2, 2), 0, 2, rng=rng)

    def test_zeros_ones(self):
        assert np.all(init.zeros((3,)) == 0)
        assert np.all(init.ones((3,)) == 1)
