"""Predictive governor: forecaster math and the acceptance physics.

The headline fixed-seed assertion: on diurnal day/night traffic the
predictive governor matches (here: beats) the reactive utilization
governor's SLO attainment with a lower ramp-window p99 and no more
energy — scaling on the forecast pays the warm-up *before* the morning
ramp needs the capacity, and powers down promptly past the peak.
"""

import dataclasses

import numpy as np
import pytest

from repro.control import (
    GOVERNORS,
    ControlScenario,
    HoltForecaster,
    MultiFleetScenario,
    PredictiveGovernor,
    simulate_controlled_detailed,
    simulate_multi_fleet,
)
from repro.errors import ConfigError

#: The pinned comparison scenario: three day/night cycles at 4k QPS
#: against an 8-instance fleet scaling from 1, both governors sized
#: for the same utilization band.
DIURNAL = ControlScenario(
    requests=12_000,
    arrival="diurnal",
    qps=4_000.0,
    instances=8,
    autoscale="utilization",
    min_instances=1,
    max_instances=8,
    diurnal_period_s=1.0,
    diurnal_amplitude=0.8,
    tick_ms=10.0,
    util_low=0.3,
    util_high=0.7,
    seed=0,
)


def _ramp_p99(requests, period_s: float) -> float:
    """p99 latency of completions arriving on the morning ramps — the
    rising quarter ``[P/8, P/2]`` of every cycle, where a lagging
    governor is still paying warm-ups."""
    span = requests[-1].arrival
    windows = []
    start = 0.0
    while start < span:
        windows.append((start + period_s / 8, start + period_s / 2))
        start += period_s
    latencies = [
        request.finish - request.arrival
        for request in requests
        if not request.shed
        and any(lo <= request.arrival <= hi for lo, hi in windows)
    ]
    return float(np.percentile(latencies, 99))


class TestHoltForecaster:
    def test_constant_series_converges_to_level(self):
        forecaster = HoltForecaster(alpha=0.5, beta=0.2)
        for _ in range(50):
            forecaster.observe(120.0)
        assert forecaster.forecast(0) == pytest.approx(120.0)
        assert forecaster.forecast(10) == pytest.approx(120.0, rel=1e-6)

    def test_linear_ramp_is_extrapolated(self):
        forecaster = HoltForecaster(alpha=0.5, beta=0.2)
        for step in range(60):
            forecaster.observe(10.0 * step)
        ahead = forecaster.forecast(5)
        now = forecaster.forecast(0)
        # Slope ~10/step: the 5-step lead sees ~50 more than the level.
        assert ahead - now == pytest.approx(50.0, rel=0.1)

    def test_forecast_clamps_at_zero(self):
        forecaster = HoltForecaster(alpha=1.0, beta=1.0)
        forecaster.observe(100.0)
        forecaster.observe(0.0)
        assert forecaster.forecast(50) == 0.0

    def test_before_first_observation(self):
        assert HoltForecaster().forecast(3) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [dict(alpha=0.0), dict(alpha=1.5), dict(beta=-0.1),
         dict(beta=1.1)],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            HoltForecaster(**kwargs)


class TestPredictiveGovernor:
    def test_registered(self):
        assert GOVERNORS["predictive"] is PredictiveGovernor

    def test_validation(self):
        with pytest.raises(ConfigError):
            PredictiveGovernor(
                0.01, 1, 4, 0.0, mean_service_s=0.0
            )
        with pytest.raises(ConfigError):
            PredictiveGovernor(
                0.01, 1, 4, 0.0, mean_service_s=1e-3, target_util=0.0
            )

    def test_acceptance_beats_reactive_on_diurnal_traffic(self):
        """The pinned bar: >= attainment, < ramp-window p99,
        <= energy, fixed seed."""
        reactive, reactive_requests = simulate_controlled_detailed(
            DIURNAL
        )
        predictive, predictive_requests = simulate_controlled_detailed(
            dataclasses.replace(DIURNAL, autoscale="predictive")
        )
        assert predictive.slo_attainment >= reactive.slo_attainment
        assert predictive.energy_joules <= reactive.energy_joules
        period = DIURNAL.diurnal_period_s
        assert _ramp_p99(predictive_requests, period) < _ramp_p99(
            reactive_requests, period
        )
        # Both actually scaled (the comparison is between live
        # governors, not a parked fleet).
        assert reactive.autoscale_events > 0
        assert predictive.autoscale_events > 0

    def test_acceptance_holds_on_correlated_multi_fleet_traffic(self):
        """The same bar on *correlated* diurnal traffic: two fleets
        sharing one latent day/night factor, each under the governor
        being compared (ramp windows fold into the aggregate p99)."""

        def fleet(governor):
            return ControlScenario(
                requests=6_000,
                qps=3_000.0,
                instances=8,
                autoscale=governor,
                min_instances=1,
                max_instances=8,
                tick_ms=10.0,
                util_low=0.3,
                util_high=0.7,
            )

        def run(governor):
            return simulate_multi_fleet(
                MultiFleetScenario(
                    fleets=(fleet(governor), fleet(governor)),
                    modulator="diurnal",
                    period_s=1.0,
                    amplitude=0.8,
                    seed=0,
                )
            )

        reactive = run("utilization")
        predictive = run("predictive")
        assert predictive.attainment >= reactive.attainment
        assert predictive.energy_joules <= reactive.energy_joules
        assert predictive.latency_p99_s < reactive.latency_p99_s

    def test_scales_down_in_the_trough(self):
        """Past the peak the forecast falls, so the governor retires
        instances instead of waiting for utilization to sag."""
        report, _ = simulate_controlled_detailed(
            dataclasses.replace(DIURNAL, autoscale="predictive")
        )
        assert report.mean_active_instances < 0.8 * DIURNAL.instances

    def test_forecast_knobs_are_extension_fields(self):
        """forecast_alpha/beta join the scenario without invalidating
        pre-existing content keys at their defaults."""
        from repro.parallel.cache import canonical

        fields = dict(canonical(ControlScenario())[1])
        assert "forecast_alpha" not in fields
        assert "forecast_beta" not in fields
        tuned = ControlScenario(forecast_alpha=0.9)
        assert "forecast_alpha" in dict(canonical(tuned)[1])
