"""SLO classes, class parsing, and admission/shedding policies."""

import pytest

from repro.control import (
    DEFAULT_SLO_CLASSES,
    SHEDDING_POLICIES,
    ControlScenario,
    SLOClass,
    make_shedder,
    parse_slo_classes,
    simulate_controlled,
)
from repro.errors import ConfigError
from repro.serve import Request, build_mix
from repro.serve.fleet import Instance

MIX = build_mix("v1-224")
PROFILE = MIX.profiles[0]


def _request(index, priority=0, deadline=1.0, arrival=0.0):
    return Request(
        index=index,
        model=PROFILE.name,
        profile=PROFILE,
        arrival=arrival,
        priority=priority,
        deadline=deadline,
        slo="c",
    )


class TestSLOClass:
    def test_defaults_are_valid_and_tiered(self):
        priorities = [c.priority for c in DEFAULT_SLO_CLASSES]
        assert priorities == sorted(priorities)
        deadlines = [c.deadline_ms for c in DEFAULT_SLO_CLASSES]
        assert deadlines == sorted(deadlines)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(name="", deadline_ms=5.0),
            dict(name="x", deadline_ms=0.0),
            dict(name="x", deadline_ms=5.0, target=0.0),
            dict(name="x", deadline_ms=5.0, target=1.5),
            dict(name="x", deadline_ms=5.0, share=0.0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            SLOClass(**kwargs)

    def test_parse_full_and_partial_specs(self):
        classes = parse_slo_classes("rt:5:0.99:0:0.4,bulk:80")
        assert classes[0] == SLOClass("rt", 5.0, 0.99, 0, 0.4)
        assert classes[1].name == "bulk"
        assert classes[1].deadline_ms == 80.0
        assert classes[1].target == 0.99

    @pytest.mark.parametrize(
        "text", ["", "a", "a:b", "a:5,a:9", "a:5:x"]
    )
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(ConfigError):
            parse_slo_classes(text)


class TestModelBoundSpecs:
    def test_parse_key_value_fields_with_model_binding(self):
        classes = parse_slo_classes(
            "llm:deadline=5ms:model=mobilenet-v1-224:share=0.4,"
            "default:deadline=50:prio=1"
        )
        assert classes[0] == SLOClass(
            "llm", 5.0, share=0.4, model="mobilenet-v1-224"
        )
        assert classes[1] == SLOClass("default", 50.0, priority=1)
        assert classes[1].model is None

    def test_positional_fields_may_precede_key_value(self):
        (cls,) = parse_slo_classes("rt:5:0.95:model=edge-tiny")
        assert cls == SLOClass(
            "rt", 5.0, target=0.95, model="edge-tiny"
        )

    @pytest.mark.parametrize(
        "text",
        [
            "a:deadline=5:deadline=9",  # duplicate field
            "a:model=m",  # no deadline
            "a:unknown=1:deadline=5",  # unknown key
            "a:deadline=5:2",  # positional after key=value
            "a:deadline=xms",  # non-numeric
        ],
    )
    def test_parse_rejects_malformed_key_value(self, text):
        with pytest.raises(ConfigError):
            parse_slo_classes(text)

    def test_unbound_class_key_is_stable(self):
        """The model binding is an extension field: unbound classes
        (every pre-existing spec) keep their canonical form, so warm
        caches keyed before multi-tenancy stay valid."""
        from repro.parallel.cache import canonical

        fields = dict(canonical(SLOClass("x", 5.0))[1])
        assert "model" not in fields
        fields = dict(canonical(SLOClass("x", 5.0, model="m"))[1])
        assert fields["model"] == "m"

    def test_model_binding_validation(self):
        with pytest.raises(ConfigError):
            SLOClass("x", 5.0, model="")


class TestShedders:
    def test_registry_round_trip(self):
        for name in SHEDDING_POLICIES:
            assert make_shedder(name, queue_threshold=4).name == name
        with pytest.raises(ConfigError):
            make_shedder("nope")

    def test_none_always_admits(self):
        instance = Instance(index=0)
        shedder = make_shedder("none")
        admitted, victim = shedder.admit(_request(0), instance, 0.0)
        assert admitted and victim is None

    def test_deadline_sheds_infeasible(self):
        instance = Instance(index=0)
        shedder = make_shedder("deadline")
        feasible = _request(0, deadline=10 * PROFILE.per_image_seconds)
        admitted, _ = shedder.admit(feasible, instance, 0.0)
        assert admitted
        # Backlog pushes the estimate past the deadline.
        for i in range(20):
            instance.enqueue(_request(i + 1))
        admitted, _ = shedder.admit(feasible, instance, 0.0)
        assert not admitted

    def test_queue_depth_bounds_admission(self):
        instance = Instance(index=0)
        shedder = make_shedder("queue-depth", queue_threshold=3)
        for i in range(3):
            admitted, _ = shedder.admit(_request(i), instance, 0.0)
            assert admitted
            instance.enqueue(_request(i))
        admitted, _ = shedder.admit(_request(99), instance, 0.0)
        assert not admitted

    def test_priority_preempts_lower_class(self):
        instance = Instance(index=0)
        shedder = make_shedder("priority", queue_threshold=2)
        low_a = _request(0, priority=2)
        low_b = _request(1, priority=2)
        instance.enqueue(low_a, priority_aware=True)
        instance.enqueue(low_b, priority_aware=True)
        urgent = _request(2, priority=0)
        admitted, victim = shedder.admit(urgent, instance, 0.0)
        assert admitted
        assert victim is low_b  # newest lowest-priority pays
        assert victim.shed is False  # simulator marks it
        assert instance.queue_depth() == 1

    def test_priority_sheds_equal_class_arrival(self):
        instance = Instance(index=0)
        shedder = make_shedder("priority", queue_threshold=1)
        instance.enqueue(_request(0, priority=1), priority_aware=True)
        admitted, victim = shedder.admit(
            _request(1, priority=1), instance, 0.0
        )
        assert not admitted and victim is None


def _conservation_scenario(shedding, arrival, **kwargs):
    defaults = dict(
        requests=400,
        instances=2,
        qps=6_000.0,  # overloaded: every shedder has work to do
        shedding=shedding,
        arrival=arrival,
        queue_threshold=8,
        seed=11,
    )
    if arrival == "trace":
        defaults["trace"] = tuple(i * 1e-4 for i in range(400))
    defaults.update(kwargs)
    return ControlScenario(**defaults)


class TestConservation:
    """admitted + shed == offered, per class, for every policy/arrival."""

    @pytest.mark.parametrize("shedding", sorted(SHEDDING_POLICIES))
    @pytest.mark.parametrize("arrival", ["poisson", "bursty", "trace"])
    def test_per_class_conservation(self, shedding, arrival):
        report = simulate_controlled(
            _conservation_scenario(shedding, arrival)
        )
        assert report.offered_requests == 400
        assert sum(cs.offered for cs in report.class_stats) == 400
        for cs in report.class_stats:
            assert cs.shed + cs.completed == cs.offered
            assert 0 <= cs.met <= cs.completed
        assert (
            sum(cs.shed for cs in report.class_stats)
            == report.shed_requests
        )
        assert (
            sum(cs.completed for cs in report.class_stats)
            == report.requests
        )
        assert sum(report.served_per_instance) == report.requests

    def test_no_shedding_completes_everything(self):
        report = simulate_controlled(
            _conservation_scenario("none", "poisson")
        )
        assert report.shed_requests == 0
        assert report.requests == report.offered_requests
