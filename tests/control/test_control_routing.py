"""Deadline- and energy-aware routing, and diurnal-driven autoscaling.

These are the first clients of the unified engine's hook protocol from
ROADMAP's open items: the scheduler *sees* per-request deadlines
(admission-aware scheduling), weighs joules against queue delay on
DVFS-heterogeneous fleets (energy-aware routing), and an autoscaler is
driven through day/night load swings (diurnal traffic).
"""

import dataclasses

import pytest

from repro.control import (
    ControlScenario,
    InstanceSpec,
    SLOClass,
    simulate_controlled,
)

#: A DVFS-heterogeneous fleet: two nominal instances and two slow
#: low-voltage ones, under a single tight-deadline class sized so the
#: slow instances can only meet it when nearly idle.
HETERO = ControlScenario(
    mix="v1-224",
    qps=1_500.0,
    requests=4_000,
    fleet=(
        InstanceSpec(voltage_v=0.8),
        InstanceSpec(voltage_v=0.8),
        InstanceSpec(voltage_v=0.6),
        InstanceSpec(voltage_v=0.6),
    ),
    slo_classes=(SLOClass("tight", deadline_ms=2.5, target=0.9),),
    max_batch=1,
    max_wait_ms=0.0,
    seed=7,
)


class TestDeadlineAwareRouting:
    def test_beats_least_loaded_on_attainment(self):
        """The acceptance bar: seeing deadlines at placement time must
        convert misses that least-loaded routing takes (shortest queue
        on a too-slow instance) into hits on a feasible one."""
        ll = simulate_controlled(
            dataclasses.replace(HETERO, policy="least-loaded")
        )
        da = simulate_controlled(
            dataclasses.replace(HETERO, policy="deadline-aware")
        )
        assert da.slo_attainment > ll.slo_attainment
        assert da.latency_p99_s <= ll.latency_p99_s
        # Same offered traffic on both runs, nothing shed.
        assert da.offered_requests == ll.offered_requests == 4_000
        assert da.shed_requests == ll.shed_requests == 0

    def test_composes_with_deadline_shedding(self):
        report = simulate_controlled(
            dataclasses.replace(
                HETERO,
                policy="deadline-aware",
                shedding="deadline",
                qps=3_000.0,
            )
        )
        (cs,) = report.class_stats
        assert cs.completed > 0
        # Admitted traffic nearly always meets the deadline it was
        # placed against (first-order estimate error only).
        assert cs.met / cs.completed > 0.95


class TestEnergyAwareRouting:
    def test_saves_energy_at_comparable_attainment(self):
        """The acceptance bar: on a DVFS-heterogeneous fleet the
        energy-aware router serves the same traffic for measurably
        fewer joules per request, without collapsing the SLO."""
        base = dataclasses.replace(
            HETERO,
            slo_classes=(
                SLOClass("svc", deadline_ms=4.0, target=0.9),
            ),
            qps=1_200.0,
        )
        ll = simulate_controlled(
            dataclasses.replace(base, policy="least-loaded")
        )
        ea = simulate_controlled(
            dataclasses.replace(base, policy="energy-aware")
        )
        assert ea.joules_per_request < 0.95 * ll.joules_per_request
        assert ea.slo_attainment >= 0.99 * ll.slo_attainment

    def test_homogeneous_fleet_matches_least_loaded(self):
        """With one operating point everywhere there is no energy
        spread to exploit: the two policies route identically."""
        base = dataclasses.replace(
            HETERO,
            fleet=tuple(InstanceSpec(voltage_v=0.8) for _ in range(4)),
        )
        ll = simulate_controlled(
            dataclasses.replace(base, policy="least-loaded")
        )
        ea = simulate_controlled(
            dataclasses.replace(base, policy="energy-aware")
        )
        assert ea.served_per_instance == ll.served_per_instance
        assert ea.latency_p99_s == ll.latency_p99_s


class TestDiurnalAutoscaling:
    BASE = ControlScenario(
        arrival="diurnal",
        diurnal_period_s=0.8,
        diurnal_amplitude=0.9,
        qps=5_000.0,
        requests=12_000,
        instances=6,
        slo_classes=(SLOClass("svc", deadline_ms=25.0, target=0.9),),
        autoscale="utilization",
        tick_ms=5.0,
        min_instances=1,
        seed=4,
    )

    def test_governor_rides_the_day_night_swings(self):
        """The traffic crosses several day/night cycles, so the
        governor must both grow and shrink the fleet repeatedly, and
        the fleet must average well below its static maximum."""
        report = simulate_controlled(self.BASE)
        cycles = report.busy_window_s / self.BASE.diurnal_period_s
        assert cycles > 2  # the run really spans multiple days
        assert report.autoscale_events >= 2 * cycles
        assert report.mean_active_instances < 0.9 * report.instances

    def test_autoscaler_saves_energy_vs_static_fleet(self):
        scaled = simulate_controlled(self.BASE)
        static = simulate_controlled(
            dataclasses.replace(self.BASE, autoscale="none")
        )
        assert scaled.energy_joules < static.energy_joules
        assert scaled.slo_attainment == pytest.approx(
            static.slo_attainment, rel=0.02
        )

    def test_diurnal_traffic_is_deterministic(self):
        a = simulate_controlled(
            dataclasses.replace(self.BASE, requests=2_000)
        )
        b = simulate_controlled(
            dataclasses.replace(self.BASE, requests=2_000)
        )
        assert a == b
