"""Governor/frontier sweeps, Pareto extraction, caching, rendering."""

import dataclasses

import pytest

from repro.control import (
    ControlScenario,
    SLOClass,
    control_sweep,
    governor_sweep,
    pareto_frontier,
    simulate_controlled,
    static_frontier_sweep,
)
from repro.errors import ConfigError, EvaluationError
from repro.eval import render_control_report, render_control_sweep
from repro.eval.control import report_to_dict
from repro.parallel.cache import ResultCache

BASE = ControlScenario(
    requests=300,
    qps=1_500.0,
    instances=2,
    slo_classes=(SLOClass("only", deadline_ms=100.0, target=0.9),),
    seed=2,
)


class TestSweeps:
    def test_static_frontier_grid_order_and_caching(self, tmp_path):
        cache = ResultCache(tmp_path)
        reports = static_frontier_sweep(
            BASE, voltages=[0.6, 0.8], fleet_sizes=[1, 2], cache=cache
        )
        assert len(reports) == 4
        # Row-major: (0.6,1), (0.6,2), (0.8,1), (0.8,2).
        assert [r.instances for r in reports] == [1, 2, 1, 2]
        assert cache.misses == 4 and cache.hits == 0
        again = static_frontier_sweep(
            BASE, voltages=[0.6, 0.8], fleet_sizes=[1, 2], cache=cache
        )
        assert cache.hits == 4
        assert again == reports

    def test_more_voltage_means_more_energy(self):
        lo, hi = static_frontier_sweep(
            BASE, voltages=[0.6, 0.8], fleet_sizes=[2]
        )
        assert lo.energy_joules < hi.energy_joules
        # f_max(0.6 V) < f_max(0.8 V): the slow fleet is tighter on SLOs.
        assert lo.latency_p99_s > hi.latency_p99_s

    def test_governor_sweep_labels_by_order(self):
        reports = governor_sweep(BASE, ["utilization", "dvfs"])
        assert len(reports) == 2
        assert all(r.energy_joules is not None for r in reports)

    def test_empty_grids_rejected(self):
        with pytest.raises(ConfigError):
            control_sweep([])
        with pytest.raises(ConfigError):
            static_frontier_sweep(BASE, [], [1])
        with pytest.raises(ConfigError):
            governor_sweep(BASE, [])


class TestPareto:
    def _fake(self, energy, attainment):
        report = simulate_controlled(
            dataclasses.replace(BASE, requests=20)
        )
        return dataclasses.replace(
            report,
            energy_joules=energy,
            class_stats=tuple(
                dataclasses.replace(
                    cs, met=int(attainment * cs.offered)
                )
                for cs in report.class_stats
            ),
        )

    def test_dominated_points_excluded(self):
        cheap_good = self._fake(1.0, 1.0)
        dear_good = self._fake(2.0, 1.0)  # dominated: more energy
        reports = [dear_good, cheap_good]
        assert pareto_frontier(reports) == [1]

    def test_frontier_trades_energy_for_attainment(self):
        a = self._fake(1.0, 0.5)
        b = self._fake(2.0, 0.9)
        c = self._fake(3.0, 0.7)  # dominated by b
        front = pareto_frontier([a, b, c])
        assert front == [0, 1]

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            pareto_frontier([])


class TestRendering:
    def test_control_report_renders_classes_and_energy(self):
        report = simulate_controlled(BASE)
        text = render_control_report(report)
        assert "Per-class SLO attainment" in text
        assert "energy (mJ)" in text
        assert "only" in text

    def test_sweep_render_marks_frontier(self):
        reports = static_frontier_sweep(
            BASE, voltages=[0.6, 0.8], fleet_sizes=[1]
        )
        frontier = pareto_frontier(reports)
        text = render_control_sweep(
            reports, ["lo", "hi"], frontier
        )
        assert "Pareto" in text and "lo" in text
        assert "*" in text

    def test_sweep_render_validates_inputs(self):
        reports = [simulate_controlled(BASE)]
        with pytest.raises(EvaluationError):
            render_control_sweep([])
        with pytest.raises(EvaluationError):
            render_control_sweep(reports, ["a", "b"])

    def test_report_to_dict_is_json_clean(self):
        import json

        report = simulate_controlled(BASE)
        payload = report_to_dict(report)
        text = json.dumps(payload)
        assert "slo_attainment" in payload
        assert payload["class_stats"][0]["name"] == "only"
        assert json.loads(text)["energy_joules"] == pytest.approx(
            report.energy_joules
        )
