"""Autoscaling governors: energy savings, bounds, warm-up, DVFS ladder."""

import dataclasses

import pytest

from repro.control import (
    ControlScenario,
    SLOClass,
    UtilizationBandGovernor,
    make_governor,
    simulate_controlled,
)
from repro.errors import ConfigError
from repro.serve.fleet import Fleet

#: One deadline-tolerant class: both fleets attain 1.0, so the energy
#: comparison happens at *equal* SLO attainment.
LAX = (SLOClass("lax", deadline_ms=250.0, target=0.95),)

BURSTY = ControlScenario(
    arrival="bursty",
    qps=500.0,
    requests=4_000,
    instances=4,
    slo_classes=LAX,
    seed=21,
)


class TestAutoscaleEnergy:
    @pytest.mark.parametrize("governor", ["utilization", "queue-delay"])
    def test_autoscaler_beats_static_fleet_at_equal_attainment(
        self, governor
    ):
        """The acceptance bar: on bursty traffic a sizing governor uses
        measurably less energy than the static max-size fleet while
        attaining the same SLOs (fixed seed, deterministic)."""
        static = simulate_controlled(BURSTY)
        auto = simulate_controlled(
            dataclasses.replace(
                BURSTY,
                autoscale=governor,
                min_instances=1,
                target_delay_ms=20.0,
            )
        )
        assert static.slo_attainment == 1.0
        assert auto.slo_attainment >= static.slo_attainment
        assert auto.energy_joules < 0.8 * static.energy_joules
        assert auto.mean_active_instances < static.mean_active_instances

    def test_scale_events_are_reported(self):
        auto = simulate_controlled(
            dataclasses.replace(
                BURSTY, autoscale="utilization", min_instances=1
            )
        )
        assert auto.autoscale_events > 0

    def test_fleet_size_respects_bounds(self):
        """min_instances=max_instances pins the fleet: the governor can
        never act, so the run matches a static fleet of that size."""
        pinned = simulate_controlled(
            dataclasses.replace(
                BURSTY,
                autoscale="utilization",
                min_instances=2,
                max_instances=2,
            )
        )
        assert pinned.autoscale_events == 0
        # Two instances powered the whole run, two never powered.
        assert pinned.mean_active_instances == pytest.approx(2.0, abs=0.01)

    def test_warmup_cost_is_charged(self):
        """Scale-ups reload weights: the autoscaled run books model
        switches (cold batches) beyond a static warm fleet's."""
        auto = simulate_controlled(
            dataclasses.replace(
                BURSTY,
                mix="v1-224",
                autoscale="utilization",
                min_instances=1,
            )
        )
        static = simulate_controlled(
            dataclasses.replace(BURSTY, mix="v1-224")
        )
        assert auto.autoscale_events > 0
        assert auto.setups > static.setups


class TestDVFSGovernor:
    def test_dvfs_governor_saves_energy_on_slack(self):
        """Light steady traffic: the ladder steps down and the run burns
        less energy than the full-speed baseline at intact SLOs."""
        base = dataclasses.replace(
            BURSTY, arrival="poisson", qps=400.0, requests=3_000
        )
        static = simulate_controlled(base)
        dvfs = simulate_controlled(
            dataclasses.replace(base, autoscale="dvfs")
        )
        assert dvfs.autoscale_events > 0
        assert dvfs.slo_attainment >= static.slo_attainment
        assert dvfs.energy_joules < static.energy_joules

    def test_ladder_needs_two_points(self):
        with pytest.raises(ConfigError):
            simulate_controlled(
                dataclasses.replace(
                    BURSTY, autoscale="dvfs", dvfs_ladder=(0.8,)
                )
            )

    def test_dvfs_governor_rejects_heterogeneous_fleet(self):
        """The governor drives one shared ladder; silently re-pointing
        a user-specified per-instance fleet would simulate a different
        fleet than requested, so the combination is an error."""
        from repro.control import InstanceSpec

        with pytest.raises(ConfigError):
            ControlScenario(
                autoscale="dvfs",
                fleet=(InstanceSpec(0.8), InstanceSpec(0.6)),
            )


class TestEventLoopInvariant:
    def test_power_up_mid_batch_does_not_strand_the_queue(self):
        """Regression: power_up extends busy_until (warm-up) without
        launching a batch, which used to swallow the instance's pending
        completion event — queued requests never launched and the tick
        loop spun forever.  This exact scenario hung before the fix."""
        scenario = ControlScenario(
            mix="v1-224",
            arrival="bursty",
            qps=2_000.0,
            requests=1_500,
            instances=4,
            max_wait_ms=4.0,
            seed=0,
            autoscale="utilization",
            tick_ms=1.0,
            min_instances=1,
            util_low=0.5,
            util_high=0.7,
        )
        report = simulate_controlled(scenario)
        assert report.requests == 1_500
        assert report.autoscale_events > 0


class TestGovernorUnits:
    def test_make_governor_rejects_unknown(self):
        with pytest.raises(ConfigError):
            make_governor(
                "nope", tick_s=0.01, min_instances=1,
                max_instances=2, warmup_s=0.0,
            )

    def test_band_validation(self):
        with pytest.raises(ConfigError):
            UtilizationBandGovernor(
                tick_s=0.01, min_instances=1, max_instances=2,
                warmup_s=0.0, low=0.9, high=0.5,
            )
        with pytest.raises(ConfigError):
            UtilizationBandGovernor(
                tick_s=0.01, min_instances=3, max_instances=2,
                warmup_s=0.0,
            )

    def test_scale_down_prefers_empty_instance_and_obeys_min(self):
        governor = UtilizationBandGovernor(
            tick_s=0.01, min_instances=1, max_instances=3,
            warmup_s=0.0, low=0.5, high=0.9,
        )
        fleet = Fleet(3)
        fleet[0].busy_until = 1.0  # mid-batch
        governor.reset(fleet)
        # Utilization 0 < low: retires one idle instance per tick.
        assert governor.tick(fleet, 0.0) == 1
        assert sorted(fleet.active_indices()) != [0, 1, 2]
        assert 0 in fleet.active_indices()  # busy one kept
        assert governor.tick(fleet, 0.01) == 1
        assert fleet.active_indices() == [0]
        # Floor reached: no further action.
        assert governor.tick(fleet, 0.02) == 0

    def test_scale_up_pays_warmup_busy_time(self):
        governor = UtilizationBandGovernor(
            tick_s=0.01, min_instances=1, max_instances=2,
            warmup_s=0.5, low=0.1, high=0.2,
        )
        fleet = Fleet(2)
        fleet[1].active = False
        fleet[1].powered_since = None
        fleet[0].busy_seconds = 0.0
        governor.reset(fleet)
        fleet[0].busy_seconds = 0.01  # a full tick of work
        assert governor.tick(fleet, 0.01) == 1
        assert fleet[1].active
        assert fleet[1].busy_until == pytest.approx(0.51)
        assert fleet[1].busy_seconds == pytest.approx(0.5)
        assert fleet[1].powered_since == 0.01
