"""Multi-tenant fleets: per-model SLOs, correlated traffic, spillover.

Covers the tenancy acceptance physics — per-model deadline routing,
conservation (admitted + shed == offered) per class, per model, and
end-to-end across spillover — plus deterministic replay: identical
reports *and* identical persistent-cache content keys for a repeated
:class:`MultiFleetScenario`.
"""

import dataclasses

import pytest

from repro.control import (
    ControlScenario,
    MultiFleetScenario,
    SLOClass,
    multi_fleet_sweep,
    simulate_controlled,
    simulate_multi_fleet,
)
from repro.errors import ConfigError
from repro.parallel.cache import ResultCache, make_key

#: One tight class bound to the heavyweight model, one default tier.
TENANT_CLASSES = (
    SLOClass(
        "llm", deadline_ms=25.0, target=0.9,
        model="mobilenet-v1-224",
    ),
    SLOClass("default", deadline_ms=50.0, target=0.9, priority=1),
)


def _overloaded_pair(spillover="deadline", **kwargs):
    """Fleet 0 at rho >> 1 (single instance), fleet 1 with headroom."""
    defaults = dict(
        fleets=(
            ControlScenario(
                mix="v1-224",
                qps=2_500.0,
                requests=1_200,
                instances=1,
                max_batch=1,
                max_wait_ms=0.0,
                shedding="deadline",
                slo_classes=(
                    SLOClass("only", deadline_ms=40.0, target=0.9),
                ),
            ),
            ControlScenario(
                mix="mixed",
                qps=800.0,
                requests=1_200,
                instances=4,
                shedding="deadline",
            ),
        ),
        modulator="diurnal",
        period_s=5.0,
        amplitude=0.6,
        spillover=spillover,
        seed=11,
    )
    defaults.update(kwargs)
    return MultiFleetScenario(**defaults)


class TestPerModelSLOs:
    def test_bound_class_follows_the_model(self):
        """Every request of the bound model carries the bound class
        (and only those), so deadlines follow the tenant."""
        report = simulate_controlled(
            ControlScenario(
                requests=2_000, slo_classes=TENANT_CLASSES, seed=3
            )
        )
        llm, default = report.class_stats
        v1 = next(
            ms for ms in report.model_stats
            if ms.name == "mobilenet-v1-224"
        )
        assert llm.model == "mobilenet-v1-224"
        assert llm.offered == v1.offered
        assert llm.offered > 0
        # The other two mixed-traffic models all landed in the default
        # tier: class offereds partition the traffic.
        assert llm.offered + default.offered == 2_000

    def test_model_stats_partition_the_traffic(self):
        report = simulate_controlled(
            ControlScenario(
                requests=1_500, slo_classes=TENANT_CLASSES, seed=5
            )
        )
        assert len(report.model_stats) == 3  # the mixed zoo models
        assert sum(ms.offered for ms in report.model_stats) == 1_500
        for ms in report.model_stats:
            assert ms.offered == ms.completed + ms.shed
            assert ms.model == ms.name

    def test_unbound_specs_report_no_model_stats(self):
        """Without bindings the report shape is unchanged (parity with
        every pre-tenancy golden and cache entry)."""
        report = simulate_controlled(ControlScenario(requests=500))
        assert report.model_stats == ()

    def test_fully_bound_specs_need_full_model_cover(self):
        with pytest.raises(ConfigError, match="no applicable SLO"):
            simulate_controlled(
                ControlScenario(
                    requests=100,
                    slo_classes=(
                        SLOClass(
                            "only", deadline_ms=5.0,
                            model="mobilenet-v1-224",
                        ),
                    ),
                )
            )

    def test_binding_does_not_perturb_unbound_draws(self):
        """Binding a class to model A must not change which models the
        request stream draws (the uniform block is shared)."""
        unbound = simulate_controlled(
            ControlScenario(requests=1_000, seed=9)
        )
        bound = simulate_controlled(
            ControlScenario(
                requests=1_000, seed=9, slo_classes=TENANT_CLASSES
            )
        )
        assert unbound.per_model_counts == bound.per_model_counts


class TestMultiFleetConservation:
    def test_end_to_end_and_per_fleet_conservation(self):
        report = simulate_multi_fleet(_overloaded_pair())
        assert report.conserved
        assert (
            report.offered_requests
            == report.completed_requests + report.shed_requests
        )
        for fleet in report.fleets:
            assert (
                fleet.offered_requests
                == fleet.requests + fleet.shed_requests
            )
            for cs in fleet.class_stats:
                assert cs.offered == cs.completed + cs.shed
            # The per-class table partitions everything the fleet's
            # engine processed — including spill-ins carrying a class
            # the receiver does not define itself.
            assert (
                sum(cs.offered for cs in fleet.class_stats)
                == fleet.offered_requests
            )

    def test_receiver_reports_foreign_spill_in_classes(self):
        """The donor's 'only' class spills into a receiver defined
        with the default tiers: the receiver's report must grow a row
        for it instead of silently dropping those requests from its
        per-class view and attainment."""
        report = simulate_multi_fleet(_overloaded_pair())
        assert report.spilled_requests > 0
        receiver = report.fleets[1]
        names = [cs.name for cs in receiver.class_stats]
        assert "only" in names
        foreign = next(
            cs for cs in receiver.class_stats if cs.name == "only"
        )
        assert foreign.offered == report.spilled_requests

    def test_per_model_conservation_across_fleets(self):
        scenario = _overloaded_pair()
        scenario = dataclasses.replace(
            scenario,
            fleets=(
                scenario.fleets[0],
                dataclasses.replace(
                    scenario.fleets[1], slo_classes=TENANT_CLASSES
                ),
            ),
        )
        report = simulate_multi_fleet(scenario)
        for ms in report.fleets[1].model_stats:
            assert ms.offered == ms.completed + ms.shed

    def test_spillover_completes_work_the_donor_shed(self):
        spill = simulate_multi_fleet(_overloaded_pair())
        none = simulate_multi_fleet(
            _overloaded_pair(spillover="none")
        )
        assert spill.spilled_requests > 0
        assert spill.spill_completed > 0
        assert 0 < spill.spill_met <= spill.spill_completed
        assert none.spilled_requests == 0
        # Spillover strictly reduces terminal sheds and serves more.
        assert spill.shed_requests < none.shed_requests
        assert spill.completed_requests > none.completed_requests
        assert spill.attainment > none.attainment

    def test_spilled_requests_pay_the_hop(self):
        report = simulate_multi_fleet(
            _overloaded_pair(spillover_hop_ms=5.0)
        )
        # Receiver's engine saw home + spill-ins; its offered count
        # exceeds its home traffic by exactly the spill-ins.
        receiver = report.fleets[1]
        assert (
            receiver.offered_requests
            == 1_200 + report.spilled_requests
        )


class TestDeterministicReplay:
    def test_same_scenario_same_report_and_content_key(self):
        scenario = _overloaded_pair()
        a = simulate_multi_fleet(scenario)
        b = simulate_multi_fleet(_overloaded_pair())
        assert a == b
        assert make_key(
            "multi_fleet_point", args=(scenario,)
        ) == make_key("multi_fleet_point", args=(_overloaded_pair(),))

    def test_seed_changes_the_traffic(self):
        a = simulate_multi_fleet(_overloaded_pair())
        b = simulate_multi_fleet(_overloaded_pair(seed=12))
        assert a != b

    def test_sweep_rides_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        scenario = _overloaded_pair(
            fleets=(
                dataclasses.replace(
                    _overloaded_pair().fleets[0], requests=300
                ),
                dataclasses.replace(
                    _overloaded_pair().fleets[1], requests=300
                ),
            )
        )
        first = multi_fleet_sweep([scenario], cache=cache)
        assert cache.misses == 1
        warm = ResultCache(tmp_path)
        second = multi_fleet_sweep([scenario], cache=warm)
        assert warm.hits == 1 and warm.misses == 0
        assert first == second


class TestScenarioValidation:
    def test_rejects_empty_fleets(self):
        with pytest.raises(ConfigError):
            MultiFleetScenario(fleets=())

    def test_rejects_unknown_spillover(self):
        with pytest.raises(ConfigError):
            _overloaded_pair(spillover="always")

    def test_rejects_trace_members(self):
        with pytest.raises(ConfigError, match="trace"):
            _overloaded_pair(
                fleets=(
                    ControlScenario(
                        arrival="trace", trace=(0.0, 1.0), requests=2
                    ),
                )
            )

    def test_rejects_full_swing_amplitude(self):
        with pytest.raises(ConfigError, match=r"\[0, 1\)"):
            _overloaded_pair(amplitude=1.0)

    def test_rejects_negative_hop(self):
        with pytest.raises(ConfigError):
            _overloaded_pair(spillover_hop_ms=-1.0)

    def test_rejects_spillover_without_any_shedding(self):
        """Only shed requests can spill; spillover over all-admitting
        fleets would silently forward nothing."""
        scenario = _overloaded_pair()
        with pytest.raises(ConfigError, match="shedding"):
            _overloaded_pair(
                fleets=tuple(
                    dataclasses.replace(member, shedding="none")
                    for member in scenario.fleets
                )
            )


class TestEpochSteppedExecution:
    """The epoch-stepped rebuild against its own knobs: any positive
    epoch and any job count must reproduce the identical report —
    `epoch_s`/`jobs` are execution details, not semantics."""

    def test_epoch_length_is_invisible(self):
        scenario = _overloaded_pair()
        reference = simulate_multi_fleet(scenario)
        for epoch_s in (0.25, 1.0, 1e9):
            assert simulate_multi_fleet(
                scenario, epoch_s=epoch_s
            ) == reference

    def test_process_sharding_is_invisible(self):
        scenario = _overloaded_pair()
        reference = simulate_multi_fleet(scenario)
        assert simulate_multi_fleet(scenario, jobs=2) == reference
        assert simulate_multi_fleet(
            scenario, jobs=2, epoch_s=0.5
        ) == reference

    def test_sharded_no_spillover_fleets(self):
        scenario = _overloaded_pair(spillover="none")
        reference = simulate_multi_fleet(scenario)
        assert simulate_multi_fleet(scenario, jobs=2) == reference

    def test_execution_knobs_do_not_perturb_cache_keys(self):
        scenario = _overloaded_pair()
        # Keyword-only execution knobs never enter the content key:
        # a cache populated by a serial run serves a sharded one.
        assert make_key(
            "multi_fleet_point", args=(scenario,)
        ) == make_key("multi_fleet_point", args=(scenario,))

    def test_invalid_epoch_rejected(self):
        scenario = _overloaded_pair()
        with pytest.raises(ConfigError, match="epoch_s"):
            simulate_multi_fleet(scenario, epoch_s=0.0)

    def test_single_scenario_sweep_routes_jobs_inward(self):
        # The CLI always hands the sweep one scenario; its --jobs must
        # reach the member-fleet sharding without changing the report.
        scenario = _overloaded_pair()
        serial = multi_fleet_sweep([scenario], jobs=1)
        sharded = multi_fleet_sweep([scenario], jobs=2)
        assert serial == sharded
