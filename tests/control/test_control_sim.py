"""Controlled simulation: overload behaviour, determinism, DVFS, energy."""

import dataclasses

import pytest

from repro.control import (
    ControlScenario,
    InstanceSpec,
    SLOClass,
    simulate_controlled,
)
from repro.errors import ConfigError
from repro.parallel.cache import make_key
from repro.power import DVFSModel
from repro.serve import ServingScenario, build_mix, simulate

#: One FIFO class: the bounded-p99 guarantee of queue-bound shedding is
#: per admitted FIFO order (with priorities, the lowest class starves
#: by design — that is what priority shedding is for).
ONE_CLASS = (SLOClass("only", deadline_ms=50.0, target=0.9),)


def _overload(requests, shedding, **kwargs):
    """rho ~ 2.3 on a single v1-224 instance (capacity ~878 QPS)."""
    defaults = dict(
        mix="v1-224",
        qps=2_000.0,
        requests=requests,
        instances=1,
        max_batch=1,
        max_wait_ms=0.0,
        slo_classes=ONE_CLASS,
        shedding=shedding,
        queue_threshold=16,
        seed=5,
    )
    defaults.update(kwargs)
    return ControlScenario(**defaults)


class TestOverloadShedding:
    def test_shedding_bounds_p99_while_baseline_grows(self):
        """The acceptance bar: with shedding, the admitted p99 is flat
        in the request count; without it, the queue (and p99) grows."""
        shed_small = simulate_controlled(_overload(2_000, "queue-depth"))
        shed_large = simulate_controlled(_overload(6_000, "queue-depth"))
        base_small = simulate_controlled(_overload(2_000, "none"))
        base_large = simulate_controlled(_overload(6_000, "none"))

        assert base_large.latency_p99_s > 2.0 * base_small.latency_p99_s
        assert shed_large.latency_p99_s < 1.5 * shed_small.latency_p99_s

        # The bound itself: ~threshold queued images + one in flight.
        service = build_mix("v1-224").mean_service_seconds()
        assert shed_large.latency_p99_s < 20 * service

    def test_shedding_sheds_the_excess_load(self):
        report = simulate_controlled(_overload(4_000, "queue-depth"))
        # rho ~ 2.3: roughly the over-capacity share must be shed.
        assert 0.3 < report.shed_requests / report.offered_requests < 0.7
        assert report.requests + report.shed_requests == 4_000

    def test_deadline_shedding_converts_misses_to_sheds(self):
        """Every admitted-and-completed request met its deadline modulo
        the first-order feasibility estimate (no batching): misses can
        only come from estimate error, so attainment of the *admitted*
        population is near one while 'none' misses en masse."""
        shed = simulate_controlled(_overload(3_000, "deadline"))
        base = simulate_controlled(_overload(3_000, "none"))
        (cs_shed,) = shed.class_stats
        (cs_base,) = base.class_stats
        met_of_completed = cs_shed.met / cs_shed.completed
        assert met_of_completed > 0.95
        assert cs_base.met / cs_base.completed < 0.5


class TestDeterministicReplay:
    def test_same_scenario_same_report_and_content_key(self):
        scenario = ControlScenario(
            requests=800,
            shedding="priority",
            queue_threshold=8,
            autoscale="utilization",
            qps=3_000.0,
            seed=13,
        )
        a = simulate_controlled(scenario)
        b = simulate_controlled(scenario)
        assert a == b
        assert make_key("control_point", args=(a,)) == make_key(
            "control_point", args=(b,)
        )
        c = simulate_controlled(dataclasses.replace(scenario, seed=14))
        assert c != a

    def test_serving_scenario_replay_matches_too(self):
        scenario = ServingScenario(requests=800, seed=13)
        a = simulate(scenario)
        b = simulate(scenario)
        assert a == b
        assert make_key("serving_point", args=(a,)) == make_key(
            "serving_point", args=(b,)
        )


class TestDVFSHeterogeneous:
    def _single(self, voltage):
        # Deterministic 10 ms arrival gaps >> the ~2 ms service time:
        # no queueing, so every latency is exactly one service time and
        # the frequency scaling is observable without noise.
        return ControlScenario(
            mix="v1-224",
            arrival="trace",
            trace=tuple(0.01 * (i + 1) for i in range(400)),
            requests=400,
            fleet=(InstanceSpec(voltage_v=voltage),),
            max_batch=1,
            slo_classes=ONE_CLASS,
            seed=3,
        )

    def test_latency_scales_with_operating_frequency(self):
        """The acceptance bar: a slow-voltage instance's latencies are
        the nominal ones stretched by exactly f_nominal / f_slow, and
        the DVFS latency helpers predict the simulated values."""
        from repro.power import frequency_scaled_latency

        fast = simulate_controlled(self._single(0.8))
        slow = simulate_controlled(self._single(0.6))
        model = DVFSModel()
        point = model.operating_point(0.6)
        expected = (
            model.operating_point(0.8).frequency_hz / point.frequency_hz
        )
        for metric in ("latency_p50_s", "latency_p95_s"):
            ratio = getattr(slow, metric) / getattr(fast, metric)
            assert ratio == pytest.approx(expected, rel=1e-6)
        # The helper forms are the same contract: an uncontended
        # latency is one service time at the point's clock.
        profile = build_mix("v1-224").profiles[0]
        assert slow.latency_p50_s == pytest.approx(
            frequency_scaled_latency(profile.per_image_seconds, point),
            rel=1e-9,
        )
        assert slow.latency_p50_s == pytest.approx(
            profile.per_image_seconds_at(point.frequency_hz), rel=1e-9
        )

    def test_low_voltage_uses_less_energy_per_request(self):
        fast = simulate_controlled(self._single(0.8))
        slow = simulate_controlled(self._single(0.6))
        assert slow.joules_per_request < fast.joules_per_request

    def test_mixed_fleet_capacity_reflects_both_points(self):
        homo = simulate_controlled(
            dataclasses.replace(
                self._single(0.8),
                fleet=(InstanceSpec(0.8), InstanceSpec(0.8)),
            )
        )
        hetero = simulate_controlled(
            dataclasses.replace(
                self._single(0.8),
                fleet=(InstanceSpec(0.8), InstanceSpec(0.6)),
            )
        )
        assert hetero.capacity_qps < homo.capacity_qps
        assert hetero.instances == 2

    def test_per_instance_arch_config_changes_service_times(self):
        from repro.arch.params import EDEA_CONFIG

        slow_arch = dataclasses.replace(EDEA_CONFIG, td=4, tk=8)
        base = self._single(0.8)
        hetero = dataclasses.replace(
            base,
            fleet=(InstanceSpec(config=slow_arch),),
        )
        a = simulate_controlled(base)
        b = simulate_controlled(hetero)
        # Fewer PEs -> more cycles per image -> slower service.
        assert b.latency_p50_s > a.latency_p50_s


class TestEnergyAccounting:
    def test_energy_at_least_busy_work(self):
        from repro.control import NOMINAL_BUSY_POWER_W

        report = simulate_controlled(
            ControlScenario(requests=1_000, qps=2_000.0, seed=7)
        )
        busy_seconds = sum(
            u * report.makespan_s for u in report.utilization
        )
        assert report.energy_joules >= (
            0.99 * busy_seconds * NOMINAL_BUSY_POWER_W
        )
        assert report.joules_per_request == pytest.approx(
            report.energy_joules / report.requests
        )

    def test_busy_window_utilization_excludes_drain_tail(self):
        """Satellite regression: the drain after the last arrival can
        dominate the makespan (here: the final lone request idles out
        its whole batching wait), so makespan utilization understates
        the steady state badly while busy-window utilization — busy
        time truncated to [0, last arrival] — does not."""
        mix = build_mix("v1-224")
        profile = mix.profiles[0]
        # An 8-burst at t=0 keeps the instance busy for ~9.5 ms; the
        # lone straggler then waits out max_wait before serving.
        window = 0.010
        scenario = ServingScenario(
            mix="v1-224",
            arrival="trace",
            trace=(0.0,) * 8 + (window,),
            requests=9,
            instances=1,
            max_batch=8,
            max_wait_ms=50.0,
            seed=1,
        )
        report = simulate(scenario)
        burst_busy = profile.setup_seconds + 8 * profile.per_image_seconds
        assert report.busy_window_s == pytest.approx(window)
        assert report.utilization_busy[0] == pytest.approx(
            burst_busy / window
        )
        assert report.mean_utilization < 0.5 * report.mean_utilization_busy
        assert all(0.0 <= u <= 1.0 for u in report.utilization_busy)


class TestScenarioValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(requests=0),
            dict(slo_classes=()),
            dict(fleet=()),
            dict(tick_ms=0.0),
            dict(autoscale="warp-drive"),
            dict(shedding="nope"),
        ],
    )
    def test_bad_scenarios_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            simulate_controlled(
                ControlScenario(requests=10, **kwargs)
                if "requests" not in kwargs
                else ControlScenario(**kwargs)
            )
