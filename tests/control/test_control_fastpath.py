"""A/B harness: the controlled fast path against the general loop.

Forces identical workloads down both execution paths — the
``"rr-ctl"`` fused-admission kernel and the general heap loop with
dispatch disabled — and asserts bit-for-bit equivalence: the
per-request schedule (start/finish/shed as float64/bool arrays), the
aggregate report, and the result-cache key all must be equal, and
conservation must hold per class.  The speedup claim rides on this
equivalence (see ``benchmarks/test_bench_engine.py``); this file pins
the physics.
"""

from unittest import mock

import numpy as np
import pytest

from repro.control import (
    ControlScenario,
    InstanceSpec,
    simulate_controlled,
)
from repro.control.simulator import simulate_controlled_detailed
from repro.parallel.cache import make_key
from repro.serve.engine import Engine


def _force_general():
    return mock.patch.object(
        Engine, "_fast_mode", lambda self, arena: None
    )


def _detailed(scenario):
    report, requests = simulate_controlled_detailed(scenario)
    arena = requests[0].arena if len(requests) else None
    return report, arena


SCENARIOS = {
    "no-shedding": ControlScenario(
        requests=2_000, qps=2_500.0, instances=3,
        policy="round-robin", shedding="none", seed=11,
    ),
    "deadline-overload": ControlScenario(
        requests=2_000, qps=6_000.0, instances=3,
        policy="round-robin", shedding="deadline", seed=11,
    ),
    "queue-depth": ControlScenario(
        requests=2_000, qps=6_000.0, instances=3,
        policy="round-robin", shedding="queue-depth",
        queue_threshold=8, seed=11,
    ),
    "hetero-dvfs-fleet": ControlScenario(
        requests=2_000, qps=4_000.0, policy="round-robin",
        shedding="deadline", seed=11,
        fleet=tuple(
            InstanceSpec(voltage_v=v) for v in (0.8, 0.7, 0.6)
        ),
    ),
}


class TestFastPathEquivalence:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_fast_equals_general(self, name):
        scenario = SCENARIOS[name]
        fast_report, fast_arena = _detailed(scenario)
        with _force_general():
            gen_report, gen_arena = _detailed(scenario)

        assert fast_report.engine_dispatch == "rr-ctl"
        assert gen_report.engine_dispatch == "general"

        # Schedule equality as float64/bool arrays: starts, finishes,
        # and the shed mask — bit-for-bit, not approximately.
        assert np.array_equal(fast_arena.start, gen_arena.start)
        assert np.array_equal(fast_arena.finish, gen_arena.finish)
        assert np.array_equal(fast_arena.shed, gen_arena.shed)

        # Report equality (engine counters excluded by compare=False)
        # and cache-key equality: a sweep warmed on one path must hit
        # on the other.
        assert fast_report == gen_report
        assert make_key("control_point", args=(fast_report,)) == (
            make_key("control_point", args=(gen_report,))
        )

        # The kernel never materializes stale wakes, so its event
        # count lower-bounds the general loop's.
        assert 0 < fast_report.engine_events <= gen_report.engine_events

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_per_class_conservation(self, name):
        report = simulate_controlled(SCENARIOS[name])
        assert report.engine_dispatch == "rr-ctl"
        assert report.offered_requests == (
            report.requests + report.shed_requests
        )
        for cs in report.class_stats:
            assert cs.offered == cs.completed + cs.shed, cs

    def test_replay_is_cache_stable(self):
        """Two fast-path replays of one scenario share a cache key."""
        scenario = SCENARIOS["deadline-overload"]
        a = simulate_controlled(scenario)
        b = simulate_controlled(scenario)
        assert a == b
        assert make_key("control_point", args=(a,)) == make_key(
            "control_point", args=(b,)
        )
