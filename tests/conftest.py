"""Shared fixtures for the test suite.

The expensive artifact — a trained, quantized, accelerator-verified
workload — is built once per session at reduced width (0.25) so the whole
suite stays fast while still exercising every code path end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import make_cifar10_like
from repro.eval.workloads import prepare_workload
from repro.nn import SGD, Trainer, build_mobilenet_v1, mobilenet_v1_specs
from repro.quant import quantize_mobilenet


@pytest.fixture(scope="session")
def rng():
    """Deterministic random generator for ad-hoc test data."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_specs():
    """Width-0.25 MobileNetV1 layer geometry (channels 8..256)."""
    return mobilenet_v1_specs(width_multiplier=0.25)


@pytest.fixture(scope="session")
def small_dataset():
    """Small synthetic dataset reused across tests."""
    return make_cifar10_like(num_samples=48, seed=11)


@pytest.fixture(scope="session")
def small_float_model(small_dataset):
    """Briefly trained width-0.25 float model."""
    model = build_mobilenet_v1(width_multiplier=0.25, seed=3)
    trainer = Trainer(
        model, SGD(list(model.parameters()), lr=0.02), batch_size=16, seed=4
    )
    trainer.fit(small_dataset.images, small_dataset.labels, epochs=1)
    return model


@pytest.fixture(scope="session")
def small_qmodel(small_float_model, small_specs, small_dataset):
    """Quantized version of the small model."""
    return quantize_mobilenet(
        small_float_model, small_specs, small_dataset.images[:16]
    )


@pytest.fixture(scope="session")
def small_workload():
    """Full train/quantize/simulate workload at width 0.25 (verified)."""
    return prepare_workload(
        width_multiplier=0.25,
        num_samples=32,
        train_epochs=1,
        batch_size=16,
        seed=21,
    )
