"""Cross-module property-based tests (hypothesis).

These generate random layer geometries, weights and quantization
constants, and assert the library's central invariants:

* the accelerator is bit-exact against the int8 reference for *any*
  valid geometry, not just MobileNet's;
* its cycle count always equals the closed-form Eqs. 1-2 model;
* the schedule stream, the timing model and the simulator agree on
  operation counts;
* throughput never exceeds the engine's physical peak.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.arch import ArchConfig, DSCAccelerator
from repro.fixedpoint import Q8_16
from repro.nn import DSCLayerSpec
from repro.quant import NonConvParams, QuantParams
from repro.quant.qmodel import QuantizedDSCLayer
from repro.sim import layer_latency, schedule_summary


def random_quantized_layer(spec: DSCLayerSpec, seed: int) -> QuantizedDSCLayer:
    """A random but valid int8 DSC layer for the given geometry."""
    rng = np.random.default_rng(seed)
    d, k = spec.in_channels, spec.out_channels

    def nonconv(channels):
        return NonConvParams(
            k_raw=np.asarray(
                Q8_16.to_fixed(rng.uniform(0.001, 0.05, size=channels))
            ),
            b_raw=np.asarray(
                Q8_16.to_fixed(rng.uniform(-2.0, 2.0, size=channels))
            ),
            relu=True,
        )

    params = QuantParams(scale=0.05, signed=False)
    return QuantizedDSCLayer(
        spec=spec,
        dwc_weight=rng.integers(-128, 128, size=(d, 3, 3)).astype(np.int8),
        pwc_weight=rng.integers(-128, 128, size=(k, d)).astype(np.int8),
        dwc_nonconv=nonconv(d),
        pwc_nonconv=nonconv(k),
        input_params=params,
        mid_params=params,
        output_params=params,
    )


geometry = st.builds(
    DSCLayerSpec,
    index=st.just(0),
    in_size=st.sampled_from([2, 4, 6, 8, 10]),
    stride=st.sampled_from([1, 2]),
    in_channels=st.sampled_from([8, 16, 24]),
    out_channels=st.sampled_from([16, 32, 48]),
)


class TestAcceleratorBitExactness:
    @settings(max_examples=20, deadline=None)
    @given(spec=geometry, seed=st.integers(0, 2**16))
    def test_any_geometry_matches_reference(self, spec, seed):
        layer = random_quantized_layer(spec, seed)
        rng = np.random.default_rng(seed + 1)
        x_q = rng.integers(
            0, 128, size=(spec.in_channels, spec.in_size, spec.in_size)
        ).astype(np.int8)
        accel = DSCAccelerator()
        out, _ = accel.run_layer(layer, x_q)
        _, ref = layer.forward(x_q[np.newaxis])
        np.testing.assert_array_equal(out, ref[0])

    @settings(max_examples=10, deadline=None)
    @given(spec=geometry, seed=st.integers(0, 2**16))
    def test_signed_inputs_also_exact(self, spec, seed):
        # the DWC input may be signed in other deployments
        layer = random_quantized_layer(spec, seed)
        rng = np.random.default_rng(seed + 2)
        x_q = rng.integers(
            -128, 128, size=(spec.in_channels, spec.in_size, spec.in_size)
        ).astype(np.int8)
        accel = DSCAccelerator()
        out, _ = accel.run_layer(layer, x_q)
        _, ref = layer.forward(x_q[np.newaxis])
        np.testing.assert_array_equal(out, ref[0])


class TestTimingInvariants:
    @settings(max_examples=30, deadline=None)
    @given(spec=geometry, seed=st.integers(0, 2**16))
    def test_simulated_cycles_equal_closed_form(self, spec, seed):
        layer = random_quantized_layer(spec, seed)
        x_q = np.zeros(
            (spec.in_channels, spec.in_size, spec.in_size), dtype=np.int8
        )
        accel = DSCAccelerator()
        _, stats = accel.run_layer(layer, x_q)
        assert stats.cycles == layer_latency(spec).total_cycles

    @settings(max_examples=30, deadline=None)
    @given(spec=geometry)
    def test_schedule_agrees_with_timing_model(self, spec):
        summary = schedule_summary(spec)
        breakdown = layer_latency(spec)
        assert summary["pwc_pass"] == breakdown.streaming_cycles
        assert summary["load_ifmap_tile"] == (
            breakdown.spatial_tiles * breakdown.channel_groups
        )

    @settings(max_examples=30, deadline=None)
    @given(spec=geometry)
    def test_throughput_never_exceeds_peak(self, spec):
        cycles = layer_latency(spec).total_cycles
        config = ArchConfig()
        ops_per_cycle = spec.total_ops / cycles
        assert ops_per_cycle <= 2 * config.total_macs_per_cycle

    @settings(max_examples=20, deadline=None)
    @given(
        spec=geometry,
        tile=st.sampled_from([2, 4, 8, 16]),
    )
    def test_more_buffer_never_slower(self, spec, tile):
        small = layer_latency(spec, ArchConfig(max_output_tile=tile))
        large = layer_latency(spec, ArchConfig(max_output_tile=2 * tile))
        assert large.total_cycles <= small.total_cycles


class TestSpecInvariants:
    @settings(max_examples=50, deadline=None)
    @given(spec=geometry)
    def test_mac_decomposition(self, spec):
        assert spec.total_macs == spec.dwc_macs + spec.pwc_macs
        assert spec.dwc_macs == spec.out_size**2 * spec.in_channels * 9
        assert spec.pwc_macs == (
            spec.out_size**2 * spec.in_channels * spec.out_channels
        )

    @settings(max_examples=50, deadline=None)
    @given(spec=geometry)
    def test_stride2_quarters_outputs(self, spec):
        if spec.stride == 2:
            assert spec.out_size == (spec.in_size + 1) // 2


class TestNonConvInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        channels=st.sampled_from([1, 4, 8]),
    )
    def test_output_always_in_int8_range(self, seed, channels):
        rng = np.random.default_rng(seed)
        params = NonConvParams(
            k_raw=np.asarray(
                Q8_16.to_fixed(rng.uniform(-10, 10, size=channels))
            ),
            b_raw=np.asarray(
                Q8_16.to_fixed(rng.uniform(-100, 100, size=channels))
            ),
            relu=bool(rng.integers(0, 2)),
        )
        acc = rng.integers(-(1 << 24), 1 << 24, size=(channels, 3, 3))
        out = params.apply(acc)
        assert out.dtype == np.int8
        if params.relu:
            assert out.min() >= 0

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_monotone_in_accumulator(self, seed):
        """With positive k, the Non-Conv output is non-decreasing in the
        accumulator value — saturation and rounding never invert order."""
        rng = np.random.default_rng(seed)
        params = NonConvParams(
            k_raw=np.asarray([Q8_16.to_fixed(rng.uniform(0.001, 1.0))]),
            b_raw=np.asarray([Q8_16.to_fixed(rng.uniform(-5, 5))]),
            relu=True,
        )
        acc = np.sort(rng.integers(-(1 << 20), 1 << 20, size=64))
        out = params.apply(acc.reshape(1, -1)).ravel()
        assert np.all(np.diff(out.astype(np.int64)) >= 0)
