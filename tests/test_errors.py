"""Exception hierarchy contract."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in (
        "ConfigError",
        "ShapeError",
        "QuantizationError",
        "FixedPointError",
        "SimulationError",
        "BufferError_",
        "EvaluationError",
    ):
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)


def test_repro_error_is_an_exception():
    assert issubclass(errors.ReproError, Exception)


def test_catching_base_catches_subclass():
    with pytest.raises(errors.ReproError):
        raise errors.ConfigError("bad config")


def test_errors_carry_messages():
    err = errors.ShapeError("shape mismatch: a vs b")
    assert "shape mismatch" in str(err)
