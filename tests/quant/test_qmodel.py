"""Quantized MobileNet reference model."""

import numpy as np
import pytest

from repro.errors import QuantizationError, ShapeError
from repro.nn import Sequential
from repro.quant import quantize_mobilenet


class TestStructure:
    def test_thirteen_quantized_layers(self, small_qmodel):
        assert len(small_qmodel.layers) == 13

    def test_weights_are_int8(self, small_qmodel):
        for layer in small_qmodel.layers:
            assert layer.dwc_weight.dtype == np.int8
            assert layer.pwc_weight.dtype == np.int8

    def test_weight_shapes_match_specs(self, small_qmodel, small_specs):
        for layer, spec in zip(small_qmodel.layers, small_specs):
            assert layer.dwc_weight.shape == (spec.in_channels, 3, 3)
            assert layer.pwc_weight.shape == (
                spec.out_channels, spec.in_channels
            )

    def test_nonconv_channel_counts(self, small_qmodel, small_specs):
        for layer, spec in zip(small_qmodel.layers, small_specs):
            assert layer.dwc_nonconv.channels == spec.in_channels
            assert layer.pwc_nonconv.channels == spec.out_channels

    def test_scales_chain(self, small_qmodel):
        # layer l+1's input params must be layer l's output params
        for prev, cur in zip(small_qmodel.layers, small_qmodel.layers[1:]):
            assert cur.input_params.scale == prev.output_params.scale

    def test_wrong_model_structure_rejected(self, small_specs, small_dataset):
        with pytest.raises(ShapeError):
            quantize_mobilenet(
                Sequential([]), small_specs, small_dataset.images[:4]
            )

    def test_unknown_strategy_rejected(self, small_float_model, small_specs,
                                       small_dataset):
        with pytest.raises(QuantizationError):
            quantize_mobilenet(
                small_float_model, small_specs, small_dataset.images[:4],
                strategy="median",
            )


class TestLayerForward:
    def test_int8_in_int8_out(self, small_qmodel, small_dataset):
        x_q = small_qmodel.layer_input(small_dataset.images[:2], 0)
        mid, out = small_qmodel.layers[0].forward(x_q)
        assert mid.dtype == np.int8 and out.dtype == np.int8

    def test_rejects_non_int8(self, small_qmodel):
        with pytest.raises(QuantizationError):
            small_qmodel.layers[0].forward(np.zeros((1, 8, 32, 32)))

    def test_relu_means_nonnegative_activations(self, small_qmodel,
                                                small_dataset):
        x_q = small_qmodel.layer_input(small_dataset.images[:2], 0)
        mid, out = small_qmodel.layers[0].forward(x_q)
        assert mid.min() >= 0
        assert out.min() >= 0

    def test_spatial_downsampling_at_stride2(self, small_qmodel,
                                             small_dataset, small_specs):
        x_q = small_qmodel.layer_input(small_dataset.images[:1], 1)
        _, out = small_qmodel.layers[1].forward(x_q)
        assert small_specs[1].stride == 2
        assert out.shape[-1] == x_q.shape[-1] // 2

    def test_layer_input_bounds(self, small_qmodel, small_dataset):
        with pytest.raises(ShapeError):
            small_qmodel.layer_input(small_dataset.images[:1], 13)


class TestNetworkForward:
    def test_logits_shape(self, small_qmodel, small_dataset):
        logits = small_qmodel.forward(small_dataset.images[:4])
        assert logits.shape == (4, 10)

    def test_deterministic(self, small_qmodel, small_dataset):
        a = small_qmodel.forward(small_dataset.images[:2])
        b = small_qmodel.forward(small_dataset.images[:2])
        np.testing.assert_array_equal(a, b)

    def test_quantized_tracks_float_predictions(self, small_float_model,
                                                small_qmodel, small_dataset):
        """int8 inference should agree with float on most samples."""
        images = small_dataset.images[:24]
        small_float_model.eval()
        float_pred = small_float_model.forward(images).argmax(axis=1)
        quant_pred = small_qmodel.forward(images).argmax(axis=1)
        agreement = float(np.mean(float_pred == quant_pred))
        assert agreement >= 0.5  # quantization noise, but same model

    def test_activations_returned(self, small_qmodel, small_dataset):
        _, acts = small_qmodel.forward(
            small_dataset.images[:1], return_activations=True
        )
        assert len(acts) == 13
        for mid, out in acts:
            assert mid.dtype == np.int8 and out.dtype == np.int8


class TestZeroFractions:
    def test_keys_and_ranges(self, small_qmodel, small_dataset):
        stats = small_qmodel.zero_fractions(small_dataset.images[:2])
        assert len(stats) == 13
        for entry in stats:
            for key in ("dwc_input", "pwc_input", "pwc_output"):
                assert 0.0 <= entry[key] <= 1.0

    def test_relu_produces_substantial_sparsity(self, small_qmodel,
                                                small_dataset):
        stats = small_qmodel.zero_fractions(small_dataset.images[:2])
        mean_sparsity = np.mean([e["pwc_input"] for e in stats])
        assert mean_sparsity > 0.2  # ReLU + quantization zero out plenty
