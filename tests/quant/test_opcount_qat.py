"""Non-Conv op-count model and the LSQ QAT flow."""

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.nn import (
    MOBILENET_V1_CIFAR10_SPECS,
    SGD,
    Sequential,
    Trainer,
    build_mobilenet_v1,
    mobilenet_v1_specs,
)
from repro.quant import (
    NonConvOpCounts,
    convert_qat_mobilenet,
    network_nonconv_op_counts,
    nonconv_op_counts,
    prepare_qat_mobilenet,
)
from repro.quant.qat import QATDepthwiseConv2d


class TestOpCounts:
    def test_layer_counts(self):
        spec = MOBILENET_V1_CIFAR10_SPECS[0]  # 32x32, D=32, K=64
        counts = nonconv_op_counts(spec)
        assert counts.elements == 32 * 32 * (32 + 64)
        assert counts.unfolded_ops == counts.elements * 8
        assert counts.folded_ops == counts.elements * 4

    def test_folding_halves_ops(self):
        counts = network_nonconv_op_counts(MOBILENET_V1_CIFAR10_SPECS)
        assert counts.reduction_percent == pytest.approx(50.0)

    def test_saved_ops_positive(self):
        counts = network_nonconv_op_counts(MOBILENET_V1_CIFAR10_SPECS)
        assert counts.saved_ops == counts.elements * 4

    def test_addition(self):
        a = NonConvOpCounts(10, 80, 40)
        b = NonConvOpCounts(5, 40, 20)
        total = a + b
        assert total.elements == 15
        assert total.unfolded_ops == 120

    def test_zero_division_guard(self):
        assert NonConvOpCounts(0, 0, 0).reduction_percent == 0.0

    def test_empty_network_rejected(self):
        with pytest.raises(ConfigError):
            network_nonconv_op_counts([])


@pytest.fixture(scope="module")
def qat_setup():
    """Small float model + its QAT view, trained one epoch each."""
    from repro.datasets import make_cifar10_like

    specs = mobilenet_v1_specs(width_multiplier=0.25)
    model = build_mobilenet_v1(width_multiplier=0.25, seed=31)
    ds = make_cifar10_like(48, seed=32)
    Trainer(model, SGD(list(model.parameters()), lr=0.02),
            batch_size=16, seed=33).fit(ds.images, ds.labels, epochs=1)
    qat = prepare_qat_mobilenet(model, num_blocks=13)
    Trainer(qat, SGD(list(qat.parameters()), lr=0.01),
            batch_size=16, seed=34).fit(ds.images, ds.labels, epochs=1)
    return specs, model, qat, ds


class TestPrepareQAT:
    def test_layer_count(self, qat_setup):
        _, _, qat, _ = qat_setup
        assert len(qat) == 4 + 8 * 13 + 2

    def test_shares_parameters_with_float_model(self, qat_setup):
        _, model, qat, _ = qat_setup
        dw_float = model[3]
        dw_qat = qat[4]
        assert isinstance(dw_qat, QATDepthwiseConv2d)
        assert dw_qat.conv is dw_float

    def test_forward_shape(self, qat_setup):
        _, _, qat, ds = qat_setup
        out = qat.forward(ds.images[:2])
        assert out.shape == (2, 10)

    def test_quantizer_steps_learned(self, qat_setup):
        _, _, qat, _ = qat_setup
        dw = qat[4]
        assert dw.weight_quant.initialized
        assert dw.weight_quant.step.data[0] > 0

    def test_wrong_structure_rejected(self):
        with pytest.raises(ShapeError):
            prepare_qat_mobilenet(Sequential([]), num_blocks=13)

    def test_weight_fake_quant_on_grid(self, qat_setup):
        _, _, qat, ds = qat_setup
        dw = qat[4]
        dw.forward(np.zeros((1, dw.conv.channels, 8, 8)))
        step = dw.weight_quant.step.data[0]
        ratio = dw._w_fq / step
        np.testing.assert_allclose(ratio, np.round(ratio), atol=1e-6)


class TestConvertQAT:
    def test_conversion_structure(self, qat_setup):
        specs, _, qat, _ = qat_setup
        int8_model = convert_qat_mobilenet(qat, specs)
        assert len(int8_model.layers) == 13
        for layer, spec in zip(int8_model.layers, specs):
            assert layer.dwc_weight.dtype == np.int8
            assert layer.spec == spec

    def test_scales_come_from_learned_steps(self, qat_setup):
        specs, _, qat, _ = qat_setup
        int8_model = convert_qat_mobilenet(qat, specs)
        stem_step = float(qat[3].step.data[0])
        assert int8_model.input_params.scale == pytest.approx(stem_step)

    def test_int8_tracks_qat_fake_quant(self, qat_setup):
        """The converted int8 model must agree with the QAT fake-quant
        model on most predictions (they compute the same quantized
        network, up to Non-Conv Q8.16 rounding)."""
        specs, _, qat, ds = qat_setup
        int8_model = convert_qat_mobilenet(qat, specs)
        qat.eval()
        qat_pred = qat.forward(ds.images[:24]).argmax(1)
        int8_pred = int8_model.forward(ds.images[:24]).argmax(1)
        assert float(np.mean(qat_pred == int8_pred)) >= 0.5

    def test_accelerator_bit_exact_on_converted_model(self, qat_setup):
        from repro.sim import AcceleratorRunner

        specs, _, qat, ds = qat_setup
        int8_model = convert_qat_mobilenet(qat, specs)
        runner = AcceleratorRunner(int8_model, verify=True)
        x_q = int8_model.layer_input(ds.images[:1], 0)[0]
        runner.run_layer(0, x_q)  # verify=True raises on any mismatch

    def test_wrong_structure_rejected(self, qat_setup):
        specs, model, _, _ = qat_setup
        with pytest.raises(ShapeError):
            convert_qat_mobilenet(model, specs)  # float model, not QAT


class TestQATImprovesQuantizedFit:
    def test_qat_matches_float_predictions_better_than_init(self):
        """After QAT the fake-quant model tracks its own float weights'
        behaviour closely — prediction agreement should be high."""
        from repro.datasets import make_cifar10_like

        model = build_mobilenet_v1(width_multiplier=0.25, seed=41)
        ds = make_cifar10_like(32, seed=42)
        Trainer(model, SGD(list(model.parameters()), lr=0.02),
                batch_size=16, seed=43).fit(ds.images, ds.labels, epochs=1)
        qat = prepare_qat_mobilenet(model, num_blocks=13)
        Trainer(qat, SGD(list(qat.parameters()), lr=0.005),
                batch_size=16, seed=44).fit(ds.images, ds.labels, epochs=1)
        model.eval()
        qat.eval()
        float_pred = model.forward(ds.images).argmax(1)
        qat_pred = qat.forward(ds.images).argmax(1)
        assert float(np.mean(float_pred == qat_pred)) >= 0.5
