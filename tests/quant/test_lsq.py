"""LSQ learned-step-size quantizer: init, forward, gradients, QAT."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.nn import SGD
from repro.quant import LSQQuantizer, lsq_initial_step


class TestInitialStep:
    def test_formula(self):
        x = np.array([1.0, -1.0, 2.0, -2.0])
        expected = 2 * 1.5 / np.sqrt(127)
        assert lsq_initial_step(x, 127) == pytest.approx(expected)

    def test_empty_raises(self):
        with pytest.raises(QuantizationError):
            lsq_initial_step(np.array([]), 127)

    def test_zero_data_positive_step(self):
        assert lsq_initial_step(np.zeros(4), 127) > 0


class TestForward:
    def test_initializes_from_first_batch(self, rng):
        q = LSQQuantizer(signed=True)
        assert not q.initialized
        q.forward(rng.normal(size=(4, 4)))
        assert q.initialized

    def test_explicit_step_respected(self):
        q = LSQQuantizer(signed=True, step=0.5)
        out = q.forward(np.array([0.6, -0.6, 0.24]))
        np.testing.assert_allclose(out, [0.5, -0.5, 0.0])

    def test_output_on_step_grid(self, rng):
        q = LSQQuantizer(signed=True, step=0.1)
        out = q.forward(rng.normal(size=100))
        ratio = out / 0.1
        np.testing.assert_allclose(ratio, np.round(ratio), atol=1e-9)

    def test_unsigned_clamps_at_zero(self):
        q = LSQQuantizer(signed=False, step=1.0)
        out = q.forward(np.array([-3.0, 5.0]))
        np.testing.assert_allclose(out, [0.0, 5.0])

    def test_saturation_at_qmax(self):
        q = LSQQuantizer(signed=True, step=1.0)
        out = q.forward(np.array([500.0, -500.0]))
        np.testing.assert_allclose(out, [127.0, -128.0])

    def test_quant_params_export(self):
        q = LSQQuantizer(signed=False, step=0.25)
        params = q.quant_params()
        assert params.scale == 0.25
        assert not params.signed

    def test_quant_params_uninitialized_raises(self):
        with pytest.raises(QuantizationError):
            LSQQuantizer().quant_params()


class TestBackward:
    def test_input_gradient_straight_through_inside(self):
        q = LSQQuantizer(signed=True, step=1.0)
        x = np.array([0.4, 200.0, -200.0])
        q.forward(x)
        dx = q.backward(np.ones(3))
        # gradient passes only where |x/s| within (qmin, qmax)
        np.testing.assert_allclose(dx, [1.0, 0.0, 0.0])

    def test_backward_before_forward_raises(self):
        q = LSQQuantizer(step=1.0)
        with pytest.raises(QuantizationError):
            q.backward(np.ones(2))

    def test_step_gradient_matches_lsq_paper_formula(self):
        """d(out)/ds = -x/s + round(x/s) inside the range; the clip bound
        outside — the LSQ paper's Eq. for the STE gradient."""
        step = 0.5
        x = np.array([0.3, -0.8, 100.0, -100.0])
        dout = np.array([1.0, 1.0, 1.0, 1.0])
        q = LSQQuantizer(signed=True, step=step)
        q.forward(x)
        q.backward(dout)
        ratio = x / step
        expected_elem = np.array(
            [
                np.round(ratio[0]) - ratio[0],
                np.round(ratio[1]) - ratio[1],
                127.0,   # clipped high -> gradient is Qp
                -128.0,  # clipped low -> gradient is Qn
            ]
        )
        grad_scale = 1.0 / np.sqrt(x.size * 127)
        assert q.step.grad[0] == pytest.approx(
            np.sum(dout * expected_elem) * grad_scale
        )

    def test_step_gradient_matches_numeric_in_saturated_region(self):
        """Where the quantizer saturates, out = bound * s is smooth in s,
        so finite differences are valid there (unlike the rounding region,
        where the straight-through estimator intentionally differs)."""
        step = 0.5
        x = np.array([400.0, -400.0, 90.0])  # all far beyond +-128*0.5
        dout = np.array([0.7, -0.3, 1.1])
        q = LSQQuantizer(signed=True, step=step)
        q.forward(x)
        q.backward(dout)
        eps = 1e-6
        qp = LSQQuantizer(signed=True, step=step + eps)
        qm = LSQQuantizer(signed=True, step=step - eps)
        num = np.sum((qp.forward(x) - qm.forward(x)) * dout) / (2 * eps)
        grad_scale = 1.0 / np.sqrt(x.size * 127)
        assert q.step.grad[0] == pytest.approx(num * grad_scale, rel=1e-6)

    def test_step_parameter_listed(self):
        q = LSQQuantizer(step=1.0)
        assert len(list(q.parameters())) == 1


class TestQAT:
    def test_step_learns_to_reduce_error(self):
        # start with a far-too-large step; training should shrink it
        rng = np.random.default_rng(1)
        x = rng.normal(scale=1.0, size=(512,))
        q = LSQQuantizer(signed=True, step=1.0)
        opt = SGD(list(q.parameters()), lr=0.01, momentum=0.0)
        initial_mse = np.mean((q.forward(x) - x) ** 2)
        for _ in range(300):
            opt.zero_grad()
            out = q.forward(x)
            grad = 2 * (out - x)  # sum-of-squares reconstruction loss
            q.backward(grad)
            opt.step()
        final_mse = np.mean((q.forward(x) - x) ** 2)
        assert final_mse < initial_mse / 2
        assert q.step.data[0] < 1.0

    def test_negative_step_recovers(self):
        q = LSQQuantizer(signed=True, step=1.0)
        q.step.data[0] = -0.5  # pathological state after a bad update
        out = q.forward(np.array([1.0]))
        assert np.isfinite(out).all()
        assert q.step.data[0] > 0
