"""Non-Conv folding: the dequant+BN+ReLU+quant chain collapses to k*x+b."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.errors import QuantizationError
from repro.fixedpoint import Q8_16, QFormat
from repro.quant import (
    BNParams,
    NonConvParams,
    QuantParams,
    derive_nonconv_params,
)


def float_chain(acc, s_in, s_w, bn, s_out, relu=True):
    """The unfolded reference: dequant -> BN -> ReLU -> quant.

    ``acc`` has the channel on axis 0; BN parameters broadcast over the
    remaining (spatial) axes.
    """
    spatial_axes = (1,) * (acc.ndim - 1)
    reshape = lambda p: np.asarray(p).reshape((-1,) + spatial_axes)  # noqa: E731
    v = acc * (s_in * s_w)
    inv_std = 1.0 / np.sqrt(np.asarray(bn.var) + bn.eps)
    v = reshape(bn.gamma * inv_std) * (v - reshape(bn.mean)) + reshape(bn.beta)
    if relu:
        v = np.maximum(v, 0.0)
    q = np.round(v / s_out)
    return np.clip(q, -128, 127)


def make_bn(rng, channels):
    return BNParams(
        gamma=rng.uniform(0.5, 1.5, channels),
        beta=rng.uniform(-0.3, 0.3, channels),
        mean=rng.uniform(-1.0, 1.0, channels),
        var=rng.uniform(0.1, 2.0, channels),
    )


class TestBNParams:
    def test_channels(self, rng):
        assert make_bn(rng, 8).channels == 8

    def test_shape_mismatch_raises(self):
        with pytest.raises(QuantizationError):
            BNParams(gamma=np.ones(3), beta=np.ones(2), mean=np.zeros(3),
                     var=np.ones(3))

    def test_negative_var_raises(self):
        with pytest.raises(QuantizationError):
            BNParams(gamma=np.ones(2), beta=np.zeros(2), mean=np.zeros(2),
                     var=np.array([1.0, -1.0]))

    def test_inv_std(self):
        bn = BNParams(gamma=np.ones(1), beta=np.zeros(1), mean=np.zeros(1),
                      var=np.array([3.0]), eps=1.0)
        assert bn.inv_std()[0] == pytest.approx(0.5)


class TestDerivation:
    def test_constants_match_closed_form(self, rng):
        bn = make_bn(rng, 4)
        s_in, s_w, s_out = 0.05, 0.01, 0.04
        params = derive_nonconv_params(
            QuantParams(s_in), QuantParams(s_w), bn, QuantParams(s_out)
        )
        inv_std = bn.inv_std()
        expected_k = s_in * s_w * bn.gamma * inv_std / s_out
        expected_b = (bn.beta - bn.gamma * bn.mean * inv_std) / s_out
        np.testing.assert_allclose(params.k_float(), expected_k,
                                   atol=Q8_16.resolution)
        np.testing.assert_allclose(params.b_float(), expected_b,
                                   atol=Q8_16.resolution)

    def test_saturating_constant_raises(self, rng):
        bn = BNParams(gamma=np.array([1e6]), beta=np.zeros(1),
                      mean=np.zeros(1), var=np.ones(1))
        with pytest.raises(QuantizationError):
            derive_nonconv_params(
                QuantParams(1.0), QuantParams(1.0), bn, QuantParams(0.001)
            )

    def test_q8_16_storage_is_24_bit(self, rng):
        bn = make_bn(rng, 2)
        params = derive_nonconv_params(
            QuantParams(0.1), QuantParams(0.1), bn, QuantParams(0.1)
        )
        assert params.fmt.total_bits == 24
        assert np.all(np.abs(params.k_raw) < (1 << 23))


class TestApply:
    def test_matches_float_chain_within_fixed_point_error(self, rng):
        channels = 8
        bn = make_bn(rng, channels)
        s_in, s_w, s_out = 0.04, 0.02, 0.05
        params = derive_nonconv_params(
            QuantParams(s_in), QuantParams(s_w), bn, QuantParams(s_out)
        )
        acc = rng.integers(-20000, 20000, size=(channels, 4, 4))
        got = params.apply(acc).astype(np.int64)
        ref = float_chain(
            acc.astype(float),
            s_in,
            s_w,
            BNParams(bn.gamma, bn.beta, bn.mean, bn.var),
            s_out,
        )
        ref = np.maximum(ref, 0)
        # Q8.16 rounding of k/b can move results by at most 1 LSB
        assert np.max(np.abs(got - ref)) <= 1

    def test_matches_own_float_reference_exactly_off_ties(self, rng):
        bn = make_bn(rng, 4)
        params = derive_nonconv_params(
            QuantParams(0.03), QuantParams(0.02), bn, QuantParams(0.05)
        )
        acc = rng.integers(-30000, 30000, size=(4, 5, 5))
        got = params.apply(acc).astype(np.float64)
        ref = params.float_reference(acc)
        assert np.max(np.abs(got - ref)) <= 1  # only rounding-tie diffs

    def test_relu_clamps(self):
        params = NonConvParams(
            k_raw=np.array([Q8_16.to_fixed(1.0)]),
            b_raw=np.array([Q8_16.to_fixed(-10.0)]),
            relu=True,
        )
        out = params.apply(np.array([[5]]))
        assert out[0, 0] == 0

    def test_no_relu_keeps_negatives(self):
        params = NonConvParams(
            k_raw=np.array([Q8_16.to_fixed(1.0)]),
            b_raw=np.array([Q8_16.to_fixed(-10.0)]),
            relu=False,
        )
        out = params.apply(np.array([[5]]))
        assert out[0, 0] == -5

    def test_channel_axis_1(self, rng):
        bn = make_bn(rng, 3)
        params = derive_nonconv_params(
            QuantParams(0.1), QuantParams(0.1), bn, QuantParams(0.1)
        )
        acc = rng.integers(-100, 100, size=(2, 3, 4, 4))
        out_axis1 = params.apply(acc, channel_axis=1)
        out_axis0 = np.stack([params.apply(acc[i]) for i in range(2)])
        np.testing.assert_array_equal(out_axis1, out_axis0)

    def test_channel_count_mismatch_raises(self, rng):
        bn = make_bn(rng, 3)
        params = derive_nonconv_params(
            QuantParams(0.1), QuantParams(0.1), bn, QuantParams(0.1)
        )
        with pytest.raises(QuantizationError):
            params.apply(np.zeros((4, 2, 2), dtype=np.int64))

    def test_apply_scalar_agrees_with_vector(self, rng):
        bn = make_bn(rng, 2)
        params = derive_nonconv_params(
            QuantParams(0.05), QuantParams(0.05), bn, QuantParams(0.05)
        )
        acc = rng.integers(-1000, 1000, size=(2, 2, 2))
        vector = params.apply(acc)
        for ch in range(2):
            for i in range(2):
                for j in range(2):
                    assert params.apply_scalar(int(acc[ch, i, j]), ch) == int(
                        vector[ch, i, j]
                    )

    def test_kb_shape_mismatch_raises(self):
        with pytest.raises(QuantizationError):
            NonConvParams(k_raw=np.ones(3), b_raw=np.ones(2))


class TestHypothesisEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        s_in=st.floats(min_value=0.005, max_value=0.2),
        s_out=st.floats(min_value=0.01, max_value=0.2),
    )
    def test_fold_equals_unfolded_chain(self, seed, s_in, s_out):
        rng = np.random.default_rng(seed)
        bn = make_bn(rng, 4)
        s_w = 0.02
        try:
            params = derive_nonconv_params(
                QuantParams(s_in), QuantParams(s_w), bn, QuantParams(s_out)
            )
        except QuantizationError:
            # constants outside Q8.16 — outside the equivalence domain
            assume(False)
        acc = rng.integers(-(1 << 16), 1 << 16, size=(4, 3, 3))
        got = params.apply(acc).astype(np.int64)
        ref = np.maximum(
            float_chain(acc.astype(float), s_in, s_w, bn, s_out), 0
        )
        assert np.max(np.abs(got - ref)) <= 1


class TestCustomFormats:
    def test_wider_fraction_reduces_error(self, rng):
        bn = make_bn(rng, 4)
        args = (QuantParams(0.013), QuantParams(0.017), bn, QuantParams(0.019))
        coarse = derive_nonconv_params(*args, fmt=QFormat(8, 8))
        fine = derive_nonconv_params(*args, fmt=QFormat(8, 24))
        inv_std = bn.inv_std()
        exact_k = 0.013 * 0.017 * bn.gamma * inv_std / 0.019
        err_coarse = np.abs(coarse.k_float() - exact_k).max()
        err_fine = np.abs(fine.k_float() - exact_k).max()
        assert err_fine <= err_coarse


class TestAffineOutput:
    """Asymmetric (nonzero zero-point) output quantization folding."""

    def test_zero_point_lands_in_offset_and_floor(self, rng):
        bn = make_bn(rng, 8)
        symmetric = derive_nonconv_params(
            QuantParams(0.05, signed=False),
            QuantParams(0.01),
            bn,
            QuantParams(0.04, signed=False),
        )
        affine = derive_nonconv_params(
            QuantParams(0.05, signed=False),
            QuantParams(0.01),
            bn,
            QuantParams(0.04, signed=False, zero_point=12),
        )
        assert affine.relu_floor == 12
        np.testing.assert_array_equal(affine.k_raw, symmetric.k_raw)
        # b absorbs the zero-point: shifted by exactly 12 in Q8.16.
        np.testing.assert_array_equal(
            affine.b_raw - symmetric.b_raw,
            np.full(8, Q8_16.to_fixed(12.0)),
        )

    def test_relu_clamps_at_zero_point_code(self, rng):
        bn = make_bn(rng, 4)
        out = QuantParams(0.04, signed=False, zero_point=12)
        nc = derive_nonconv_params(
            QuantParams(0.05, signed=False), QuantParams(0.01), bn, out
        )
        very_negative = np.full((4, 3, 3), -(10**6), dtype=np.int64)
        clamped = nc.apply(very_negative)
        # Real zero is code 12, so that is where the ReLU clamp lands;
        # clamping at code 0 would decode to a negative real value.
        np.testing.assert_array_equal(clamped, np.full((4, 3, 3), 12))

    def test_matches_unfolded_affine_chain_within_rounding(self, rng):
        from repro.quant import quantize

        bn = make_bn(rng, 6)
        s_in, s_w = 0.05, 0.01
        out = QuantParams(0.04, signed=False, zero_point=20)
        nc = derive_nonconv_params(
            QuantParams(s_in, signed=False), QuantParams(s_w), bn, out
        )
        acc = rng.integers(-3000, 3000, size=(6, 5, 5))
        folded = nc.apply(acc).astype(np.int64)

        v = acc * (s_in * s_w)
        inv_std = 1.0 / np.sqrt(bn.var + bn.eps)
        shape = (-1, 1, 1)
        v = (bn.gamma * inv_std).reshape(shape) * (
            v - bn.mean.reshape(shape)
        ) + bn.beta.reshape(shape)
        expected = quantize(np.maximum(v, 0.0), out).astype(np.int64)
        assert np.max(np.abs(folded - expected)) <= 1  # Q8.16 rounding

    def test_decoded_relu_output_is_nonnegative(self, rng):
        from repro.quant import dequantize

        bn = make_bn(rng, 4)
        out = QuantParams(0.04, signed=False, zero_point=30)
        nc = derive_nonconv_params(
            QuantParams(0.05, signed=False), QuantParams(0.01), bn, out
        )
        acc = rng.integers(-5000, 5000, size=(4, 7, 7))
        assert np.all(dequantize(nc.apply(acc), out) >= 0.0)

    def test_affine_conv_input_rejected(self, rng):
        """An affine conv *input* would leave an uncorrected
        z_in * sum(w_q) term in every accumulator — refuse to fold."""
        bn = make_bn(rng, 4)
        with pytest.raises(QuantizationError):
            derive_nonconv_params(
                QuantParams(0.05, signed=False, zero_point=3),
                QuantParams(0.01),
                bn,
                QuantParams(0.04, signed=False),
            )

    def test_affine_weights_rejected(self, rng):
        bn = make_bn(rng, 4)
        with pytest.raises(QuantizationError):
            derive_nonconv_params(
                QuantParams(0.05, signed=False),
                QuantParams(0.01, zero_point=2),
                bn,
                QuantParams(0.04, signed=False),
            )
