"""Quantization scheme and calibration observers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import QuantizationError
from repro.quant import (
    MinMaxObserver,
    PercentileObserver,
    QuantParams,
    dequantize,
    quantization_error,
    quantize,
)


class TestQuantParams:
    def test_signed_range(self):
        p = QuantParams(scale=0.1, signed=True)
        assert (p.qmin, p.qmax) == (-128, 127)

    def test_unsigned_range(self):
        p = QuantParams(scale=0.1, signed=False)
        assert (p.qmin, p.qmax) == (0, 127)

    def test_invalid_scale(self):
        with pytest.raises(QuantizationError):
            QuantParams(scale=0.0)
        with pytest.raises(QuantizationError):
            QuantParams(scale=float("nan"))

    def test_max_representable(self):
        p = QuantParams(scale=0.5)
        assert p.max_representable == 63.5


class TestQuantizeDequantize:
    def test_roundtrip_on_grid(self):
        p = QuantParams(scale=0.25)
        x = np.array([0.0, 0.25, -0.5, 1.75])
        np.testing.assert_array_equal(dequantize(quantize(x, p), p), x)

    def test_clipping(self):
        p = QuantParams(scale=0.1)
        q = quantize(np.array([100.0, -100.0]), p)
        assert q.tolist() == [127, -128]

    def test_unsigned_clips_negatives(self):
        p = QuantParams(scale=0.1, signed=False)
        q = quantize(np.array([-5.0]), p)
        assert q.tolist() == [0]

    def test_dtype_is_int8(self):
        p = QuantParams(scale=1.0)
        assert quantize(np.array([1.0]), p).dtype == np.int8

    @given(st.floats(min_value=0.001, max_value=10.0),
           st.lists(st.floats(min_value=-100, max_value=100), min_size=1,
                    max_size=64))
    def test_error_bounded_by_half_step_inside_range(self, scale, values):
        p = QuantParams(scale=scale)
        x = np.array(values)
        inside = np.abs(x) <= p.max_representable
        rec = dequantize(quantize(x, p), p)
        if inside.any():
            assert np.max(np.abs((rec - x)[inside])) <= scale / 2 + 1e-9

    def test_quantization_error_metric(self):
        p = QuantParams(scale=0.1)
        assert quantization_error(np.array([0.0, 0.1]), p) == pytest.approx(0)
        assert quantization_error(np.array([0.05]), p) > 0


class TestMinMaxObserver:
    def test_scale_from_abs_max(self):
        obs = MinMaxObserver()
        obs.observe(np.array([-3.0, 2.0]))
        params = obs.compute_params()
        assert params.scale == pytest.approx(3.0 / 127)

    def test_accumulates_over_batches(self):
        obs = MinMaxObserver()
        obs.observe(np.array([1.0]))
        obs.observe(np.array([-5.0]))
        assert obs.compute_params().scale == pytest.approx(5.0 / 127)

    def test_empty_observation_raises(self):
        with pytest.raises(QuantizationError):
            MinMaxObserver().observe(np.array([]))

    def test_unobserved_raises(self):
        with pytest.raises(QuantizationError):
            MinMaxObserver().compute_params()

    def test_all_zero_data_gets_valid_scale(self):
        obs = MinMaxObserver()
        obs.observe(np.zeros(10))
        assert obs.compute_params().scale > 0

    def test_signed_flag_propagates(self):
        obs = MinMaxObserver(signed=False)
        obs.observe(np.array([1.0]))
        assert not obs.compute_params().signed


class TestPercentileObserver:
    def test_clips_outliers(self):
        data = np.concatenate([np.ones(999), [1000.0]])
        minmax = MinMaxObserver()
        minmax.observe(data)
        pct = PercentileObserver(percentile=99.0)
        pct.observe(data)
        assert pct.compute_params().scale < minmax.compute_params().scale

    def test_validation(self):
        with pytest.raises(QuantizationError):
            PercentileObserver(percentile=40.0)
        with pytest.raises(QuantizationError):
            PercentileObserver().compute_params()
        with pytest.raises(QuantizationError):
            PercentileObserver().observe(np.array([]))

    def test_100th_percentile_equals_minmax(self):
        data = np.array([-4.0, 1.0, 3.0])
        pct = PercentileObserver(percentile=100.0)
        pct.observe(data)
        assert pct.compute_params().scale == pytest.approx(4.0 / 127)


class TestAffineQuantParams:
    def test_real_zero_maps_to_zero_point_code(self):
        params = QuantParams(0.5, signed=False, zero_point=10)
        assert quantize(np.array([0.0]), params)[0] == 10

    def test_affine_roundtrip_on_grid(self):
        params = QuantParams(0.5, signed=False, zero_point=10)
        values = np.array([-5.0, -0.5, 0.0, 0.5, 3.0, 58.5])
        recovered = dequantize(quantize(values, params), params)
        np.testing.assert_allclose(recovered, values)

    def test_scale_only_dequant_would_shift(self):
        """The affine dequant differs from q*s by exactly z*s."""
        params = QuantParams(0.25, signed=False, zero_point=16)
        q = quantize(np.array([1.0, 2.0]), params)
        scale_only = q.astype(np.float64) * params.scale
        np.testing.assert_allclose(
            scale_only - dequantize(q, params),
            params.zero_point * params.scale,
        )

    def test_zero_point_outside_range_rejected(self):
        with pytest.raises(QuantizationError):
            QuantParams(0.5, signed=False, zero_point=-1)
        with pytest.raises(QuantizationError):
            QuantParams(0.5, zero_point=200)

    def test_non_integer_zero_point_rejected(self):
        with pytest.raises(QuantizationError):
            QuantParams(0.5, zero_point=1.5)

    def test_clipping_respects_shifted_range(self):
        params = QuantParams(1.0, signed=False, zero_point=100)
        q = quantize(np.array([-200.0, 200.0]), params)
        assert q[0] == 0 and q[1] == 127
