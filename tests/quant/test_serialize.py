"""Quantized-model serialization roundtrip."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.quant import load_quantized_model, save_quantized_model
from repro.sim import AcceleratorRunner


@pytest.fixture()
def saved_path(small_qmodel, tmp_path):
    path = str(tmp_path / "model.npz")
    save_quantized_model(small_qmodel, path)
    return path


class TestRoundtrip:
    def test_layer_tensors_identical(self, small_qmodel, saved_path):
        loaded = load_quantized_model(saved_path)
        assert len(loaded.layers) == len(small_qmodel.layers)
        for a, b in zip(small_qmodel.layers, loaded.layers):
            np.testing.assert_array_equal(a.dwc_weight, b.dwc_weight)
            np.testing.assert_array_equal(a.pwc_weight, b.pwc_weight)
            np.testing.assert_array_equal(
                np.asarray(a.dwc_nonconv.k_raw), np.asarray(b.dwc_nonconv.k_raw)
            )
            np.testing.assert_array_equal(
                np.asarray(a.pwc_nonconv.b_raw), np.asarray(b.pwc_nonconv.b_raw)
            )
            assert a.spec == b.spec

    def test_scales_preserved(self, small_qmodel, saved_path):
        loaded = load_quantized_model(saved_path)
        assert loaded.input_params.scale == small_qmodel.input_params.scale
        for a, b in zip(small_qmodel.layers, loaded.layers):
            assert a.output_params.scale == pytest.approx(
                b.output_params.scale
            )

    def test_inference_bit_identical(self, small_qmodel, saved_path,
                                     small_dataset):
        loaded = load_quantized_model(saved_path)
        images = small_dataset.images[:4]
        np.testing.assert_allclose(
            small_qmodel.forward(images), loaded.forward(images)
        )

    def test_int8_activations_identical(self, small_qmodel, saved_path,
                                        small_dataset):
        loaded = load_quantized_model(saved_path)
        image = small_dataset.images[:1]
        a = small_qmodel.layer_input(image, 5)
        b = loaded.layer_input(image, 5)
        np.testing.assert_array_equal(a, b)

    def test_loaded_model_runs_on_accelerator(self, saved_path,
                                              small_dataset):
        loaded = load_quantized_model(saved_path)
        runner = AcceleratorRunner(loaded, verify=True)
        x_q = loaded.layer_input(small_dataset.images[:1], 0)[0]
        runner.run_layer(0, x_q)  # verify=True raises on mismatch


class TestErrors:
    def test_version_mismatch_detected(self, saved_path, tmp_path):
        data = dict(np.load(saved_path))
        data["format_version"] = np.array(999)
        bad = str(tmp_path / "bad.npz")
        np.savez(bad, **data)
        with pytest.raises(QuantizationError):
            load_quantized_model(bad)

    def test_missing_layer_detected(self, saved_path, tmp_path):
        data = dict(np.load(saved_path))
        data["num_layers"] = np.array(int(data["num_layers"]) + 1)
        bad = str(tmp_path / "bad2.npz")
        np.savez(bad, **data)
        with pytest.raises(QuantizationError):
            load_quantized_model(bad)
