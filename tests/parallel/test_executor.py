"""Executor fan-out: serial/parallel equivalence and cache routing."""

import pytest

from repro.dse import explore
from repro.errors import ConfigError
from repro.eval.sweep import evaluate_sweep_point, width_resolution_sweep
from repro.parallel import ParallelExecutor, ResultCache, resolve_jobs

WIDTHS = (0.25, 0.5, 1.0)
RESOLUTIONS = (32, 64, 96)


class TestResolveJobs:
    def test_explicit_count_passes_through(self):
        assert resolve_jobs(3) == 3

    def test_auto_selects_at_least_one(self):
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            resolve_jobs(-2)


class TestMap:
    def test_serial_preserves_order(self):
        executor = ParallelExecutor(jobs=1)
        results = executor.map(
            evaluate_sweep_point, [(w, 32) for w in WIDTHS]
        )
        assert [p.width for p in results] == list(WIDTHS)

    def test_parallel_preserves_order(self):
        executor = ParallelExecutor(jobs=2)
        results = executor.map(
            evaluate_sweep_point, [(w, 32) for w in WIDTHS]
        )
        assert [p.width for p in results] == list(WIDTHS)

    def test_worker_exception_propagates(self):
        executor = ParallelExecutor(jobs=2)
        with pytest.raises(ConfigError):
            # tile dimensions must be positive -> evaluate raises in worker
            executor.map(_raise_config_error, [(1,), (2,)])


def _raise_config_error(value):
    raise ConfigError(f"boom {value}")


def _square(value):
    return value * value


class TestSerialParallelEquivalence:
    def test_sweep_results_bit_for_bit(self):
        serial = width_resolution_sweep(WIDTHS, RESOLUTIONS, jobs=1)
        parallel = width_resolution_sweep(WIDTHS, RESOLUTIONS, jobs=3)
        assert serial == parallel

    def test_dse_results_bit_for_bit(self):
        serial = explore(jobs=1)
        parallel = explore(jobs=2)
        assert serial.points == parallel.points


class TestMapCached:
    def test_duplicate_points_computed_once(self):
        cache = ResultCache()
        executor = ParallelExecutor(jobs=1, cache=cache)
        grid = [(0.5, 32), (0.5, 32), (0.5, 32)]
        results = executor.map_cached(
            "sweep_test", evaluate_sweep_point, grid
        )
        assert results[0] == results[1] == results[2]
        assert cache.misses == 1
        assert cache.hits == 2

    def test_second_batch_served_from_cache(self, tmp_path):
        grid = [(w, 32) for w in WIDTHS]
        first = ParallelExecutor(
            jobs=1, cache=ResultCache(tmp_path)
        ).map_cached("sweep_test", evaluate_sweep_point, grid)
        warm_cache = ResultCache(tmp_path)
        second = ParallelExecutor(jobs=1, cache=warm_cache).map_cached(
            "sweep_test", evaluate_sweep_point, grid
        )
        assert first == second
        assert warm_cache.misses == 0
        assert warm_cache.hits == len(grid)

    def test_without_cache_degrades_to_map(self):
        executor = ParallelExecutor(jobs=1, cache=None)
        results = executor.map_cached(
            "sweep_test", evaluate_sweep_point, [(1.0, 32)]
        )
        assert results[0].width == 1.0


class TestSession:
    """Persistent-pool sessions: one pool across phased map calls."""

    def test_session_batches_match_serial(self):
        executor = ParallelExecutor(jobs=2)
        serial = ParallelExecutor(jobs=1)
        args = [(i,) for i in range(6)]
        with executor.session():
            first = executor.map(_square, args)
            second = executor.map(_square, [(r,) for r in first])
        assert first == serial.map(_square, args)
        assert second == serial.map(_square, [(r,) for r in first])

    def test_session_reuses_one_pool(self):
        executor = ParallelExecutor(jobs=2)
        with executor.session():
            pool = executor._pool
            assert pool is not None
            executor.map(_square, [(1,), (2,)])
            assert executor._pool is pool
        assert executor._pool is None

    def test_serial_session_is_a_no_op(self):
        executor = ParallelExecutor(jobs=1)
        with executor.session():
            assert executor._pool is None
            assert executor.map(_square, [(3,)]) == [9]

    def test_nested_session_reuses_outer_pool(self):
        executor = ParallelExecutor(jobs=2)
        with executor.session():
            outer = executor._pool
            with executor.session():
                assert executor._pool is outer
            assert executor._pool is outer
        assert executor._pool is None
