"""Result-cache keying, tiers, invalidation, and schema extension."""

import dataclasses

import numpy as np
import pytest

from repro.arch.params import EDEA_CONFIG, ArchConfig
from repro.dse import LoopOrder
from repro.errors import ConfigError
from repro.parallel import ResultCache, canonical, make_key
from repro.parallel.cache import extension_field


class TestMakeKey:
    def test_stable_across_calls(self):
        a = make_key("sim", config=EDEA_CONFIG, width=0.25)
        b = make_key("sim", config=ArchConfig(), width=0.25)
        assert a == b

    def test_config_field_change_changes_key(self):
        base = make_key("sim", config=ArchConfig())
        for variant in (
            ArchConfig(td=4),
            ArchConfig(tk=8),
            ArchConfig(max_output_tile=4),
            ArchConfig(clock_hz=0.5e9),
        ):
            assert make_key("sim", config=variant) != base

    def test_kind_separates_namespaces(self):
        assert make_key("sweep", x=1) != make_key("dse", x=1)

    def test_parameter_value_sensitivity(self):
        assert make_key("k", width=0.25) != make_key("k", width=0.5)
        assert make_key("k", seed=1) != make_key("k", seed=2)

    def test_ndarray_keyed_by_content(self):
        x = np.arange(12, dtype=np.int8).reshape(3, 4)
        same = make_key("k", data=x.copy())
        assert make_key("k", data=x) == same
        y = x.copy()
        y[0, 0] += 1
        assert make_key("k", data=y) != same

    def test_enum_and_nested_structures(self):
        a = make_key("k", v=[LoopOrder.LA, {"n": (1, 2)}])
        b = make_key("k", v=[LoopOrder.LB, {"n": (1, 2)}])
        assert a != b

    def test_unkeyable_object_rejected(self):
        with pytest.raises(TypeError):
            canonical(object())


@dataclasses.dataclass(frozen=True)
class _Scenario:
    """Stand-in for a cached request dataclass grown after release."""

    requests: int = 10
    knob: float = extension_field(1.5)


class TestExtensionFields:
    def test_default_value_stays_out_of_the_key(self):
        """An extension field at its default canonicalizes exactly as
        if the field did not exist — pre-extension content keys (and
        every warm cache entry under them) keep resolving."""
        assert canonical(_Scenario()) == [
            "_Scenario", {"requests": 10}
        ]
        assert make_key("point", args=(_Scenario(),)) == make_key(
            "point", args=(_Scenario(knob=1.5),)
        )

    def test_non_default_value_enters_the_key(self):
        assert canonical(_Scenario(knob=2.0)) == [
            "_Scenario", {"requests": 10, "knob": 2.0}
        ]
        assert make_key("point", args=(_Scenario(),)) != make_key(
            "point", args=(_Scenario(knob=2.0),)
        )

    def test_ordinary_fields_unaffected(self):
        assert canonical(_Scenario(requests=3)) == [
            "_Scenario", {"requests": 3}
        ]

    def test_serving_scenarios_use_it_for_diurnal_knobs(self):
        """The PR-4 diurnal fields must not disturb PR-2/3 keys."""
        from repro.control import ControlScenario
        from repro.serve import ServingScenario

        for cls in (ServingScenario, ControlScenario):
            fields = {
                f.name: canonical(getattr(cls(), f.name))
                for f in dataclasses.fields(cls)
                if not f.metadata.get("cache_extension")
            }
            assert canonical(cls()) == [cls.__name__, fields]
            varied = dataclasses.replace(cls(), diurnal_period_s=30.0)
            assert canonical(varied) != canonical(cls())


class TestResultCache:
    def test_memory_hit_and_miss_counters(self):
        cache = ResultCache()
        key = make_key("k", x=1)
        assert cache.lookup(key) is None
        assert (cache.hits, cache.misses) == (0, 1)
        cache.put(key, 42)
        assert cache.lookup(key) == 42
        assert (cache.hits, cache.misses) == (1, 1)

    def test_peek_does_not_touch_counters(self):
        cache = ResultCache()
        key = make_key("k", x=1)
        assert cache.peek(key, default="absent") == "absent"
        cache.put(key, 7)
        assert cache.peek(key) == 7
        assert (cache.hits, cache.misses) == (0, 0)

    def test_disk_persistence_across_instances(self, tmp_path):
        key = make_key("k", x="persist")
        writer = ResultCache(tmp_path)
        writer.put(key, {"value": [1, 2, 3]})
        reader = ResultCache(tmp_path)
        assert reader.lookup(key) == {"value": [1, 2, 3]}
        assert reader.hits == 1

    def test_config_change_misses_on_disk_too(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(make_key("sim", config=ArchConfig()), "default")
        fresh = ResultCache(tmp_path)
        assert not fresh.contains(make_key("sim", config=ArchConfig(td=4)))
        assert fresh.contains(make_key("sim", config=ArchConfig()))

    def test_get_or_compute_computes_once(self):
        cache = ResultCache()
        calls = []
        key = make_key("k", x=1)

        def compute():
            calls.append(1)
            return "result"

        assert cache.get_or_compute(key, compute) == "result"
        assert cache.get_or_compute(key, compute) == "result"
        assert len(calls) == 1

    def test_invalidate_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = make_key("k", x=1)
        second = make_key("k", x=2)
        cache.put(first, "a")
        cache.put(second, "b")
        cache.invalidate(first)
        assert not ResultCache(tmp_path).contains(first)
        assert ResultCache(tmp_path).contains(second)
        cache.clear()
        assert not ResultCache(tmp_path).contains(second)
        assert len(cache) == 0

    def test_unwritable_cache_dir_raises_config_error(self, tmp_path):
        blocker = tmp_path / "notadir"
        blocker.write_text("plain file")
        cache = ResultCache(blocker)
        with pytest.raises(ConfigError):
            cache.put(make_key("k", x=1), "value")

    def test_stored_none_distinguishable_via_contains(self):
        cache = ResultCache()
        key = make_key("k", x=None)
        cache.put(key, None)
        assert cache.contains(key)
        assert cache.lookup(key) is None


class TestTornEntries:
    """Concurrent readers (``--jobs > 1``) and killed sweeps must never
    crash on a partially visible disk entry: writes are atomic (temp file
    + ``os.replace``), unreadable entries are misses, and the next write
    repairs them for every later reader."""

    def _truncate(self, cache, key):
        path = cache._path(key)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        return path

    def test_truncated_entry_is_a_miss(self, tmp_path):
        key = make_key("k", x="torn")
        writer = ResultCache(tmp_path)
        writer.put(key, {"value": list(range(100))})
        self._truncate(writer, key)
        reader = ResultCache(tmp_path)
        assert reader.lookup(key) is None
        assert (reader.hits, reader.misses) == (0, 1)

    def test_truncated_entry_is_repaired(self, tmp_path):
        key = make_key("k", x="repair")
        writer = ResultCache(tmp_path)
        writer.put(key, "good")
        self._truncate(writer, key)
        reader = ResultCache(tmp_path)
        assert (
            reader.get_or_compute(key, lambda: "recomputed") == "recomputed"
        )
        # The torn file was dropped and atomically rewritten: a fresh
        # instance (fresh memory tier) now reads the repaired entry.
        fresh = ResultCache(tmp_path)
        assert fresh.lookup(key) == "recomputed"
        assert fresh.hits == 1

    def test_corrupt_file_dropped_on_read(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = make_key("k", x="drop")
        cache.put(key, 1)
        path = cache._path(key)
        path.write_bytes(b"not a pickle at all")
        assert not ResultCache(tmp_path).contains(key)
        assert not path.exists()

    def test_writes_are_atomic_no_temp_droppings(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(make_key("k", x=1), list(range(1000)))
        assert list(tmp_path.rglob(".tmp-*")) == []
        assert len(list(tmp_path.rglob("*.pkl"))) == 1

    def test_clear_sweeps_stale_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = make_key("k", x=1)
        cache.put(key, "v")
        bucket = cache._path(key).parent
        (bucket / ".tmp-killed.pkl").write_bytes(b"partial")
        cache.clear()
        assert list(bucket.glob(".tmp-*")) == []
        assert list(bucket.glob("*.pkl")) == []
