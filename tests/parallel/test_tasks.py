"""Design-point sweep: pruning, caching, and fast/accurate agreement."""

import pytest

from repro.arch.params import EDEA_CONFIG, ArchConfig
from repro.errors import ConfigError
from repro.eval.sweep import evaluate_sweep_point
from repro.nn import mobilenet_v1_specs
from repro.parallel import (
    ResultCache,
    design_point_sweep,
    is_feasible,
    simulate_design_point,
)

SPECS = mobilenet_v1_specs(width_multiplier=0.25)


class TestFeasibility:
    def test_paper_config_is_feasible(self):
        assert is_feasible(EDEA_CONFIG, SPECS)

    def test_indivisible_tiling_pruned(self):
        assert not is_feasible(ArchConfig(td=3), SPECS)
        assert not is_feasible(ArchConfig(tk=7), SPECS)

    def test_pe_budget_pruned(self):
        assert not is_feasible(EDEA_CONFIG, SPECS, max_total_pes=799)
        assert is_feasible(EDEA_CONFIG, SPECS, max_total_pes=800)

    def test_buffer_budget_pruned(self):
        assert not is_feasible(EDEA_CONFIG, SPECS, max_buffer_entries=100)


class TestDesignPointSweep:
    def test_empty_candidates_rejected(self):
        with pytest.raises(ConfigError):
            design_point_sweep([])

    def test_infeasible_candidates_dropped(self):
        results = design_point_sweep(
            [EDEA_CONFIG, ArchConfig(td=3)], fast=True
        )
        assert len(results) == 1
        assert results[0].config == EDEA_CONFIG

    def test_matches_analytic_sweep_point(self):
        result = simulate_design_point(
            EDEA_CONFIG, width_multiplier=0.25, resolution=32, fast=True
        )
        analytic = evaluate_sweep_point(0.25, 32, EDEA_CONFIG)
        assert result.total_cycles == analytic.total_cycles
        assert result.latency_us == pytest.approx(analytic.latency_us)
        assert result.throughput_gops == pytest.approx(
            analytic.throughput_gops
        )

    def test_summary_fields_sane(self):
        result = simulate_design_point(EDEA_CONFIG, fast=True)
        assert result.total_macs > 0
        assert result.mean_power_w > 0
        assert result.energy_joules > 0
        assert result.ee_tops_w > 0

    def test_cached_rerun_identical(self, tmp_path):
        configs = [EDEA_CONFIG, ArchConfig(td=4, tk=8)]
        first = design_point_sweep(
            configs, fast=True, cache=ResultCache(tmp_path)
        )
        warm = ResultCache(tmp_path)
        second = design_point_sweep(configs, fast=True, cache=warm)
        assert first == second
        assert warm.misses == 0

    def test_fast_and_accurate_latency_agree(self):
        fast = simulate_design_point(ArchConfig(td=4, tk=16), fast=True)
        accurate = simulate_design_point(ArchConfig(td=4, tk=16), fast=False)
        assert fast.total_cycles == accurate.total_cycles
        assert fast.total_macs == accurate.total_macs
