"""Width/resolution scaling sweep."""

import pytest

from repro.errors import ConfigError
from repro.eval.sweep import width_resolution_sweep


class TestSweep:
    def test_grid_size(self):
        points = width_resolution_sweep(
            widths=(0.5, 1.0), resolutions=(32, 64)
        )
        assert len(points) == 4

    def test_macs_scale_with_resolution(self):
        points = {
            (p.width, p.resolution): p
            for p in width_resolution_sweep(
                widths=(1.0,), resolutions=(32, 64)
            )
        }
        # 2x resolution -> ~4x spatial work
        ratio = points[(1.0, 64)].total_macs / points[(1.0, 32)].total_macs
        assert ratio == pytest.approx(4.0, rel=0.05)

    def test_macs_scale_with_width(self):
        points = {
            p.width: p
            for p in width_resolution_sweep(
                widths=(0.5, 1.0), resolutions=(32,)
            )
        }
        # DSC MACs are dominated by the PWC D*K term -> ~quadratic in width
        ratio = points[1.0].total_macs / points[0.5].total_macs
        assert 3.0 < ratio < 4.5

    def test_throughput_improves_with_resolution(self):
        """Larger maps amortize the 9-cycle initiation better."""
        points = width_resolution_sweep(widths=(1.0,), resolutions=(32, 224))
        by_res = {p.resolution: p for p in points}
        assert (by_res[224].init_fraction < by_res[32].init_fraction)

    def test_throughput_bounded_by_peak(self):
        for p in width_resolution_sweep():
            assert 0 < p.throughput_gops <= 1600

    def test_paper_point_recovered(self):
        points = width_resolution_sweep(widths=(1.0,), resolutions=(32,))
        assert points[0].total_cycles == 92_784
        assert points[0].latency_us == pytest.approx(92.784)

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigError):
            width_resolution_sweep(widths=(), resolutions=(32,))
