"""Analytic per-layer performance series and the Table III comparison."""

import pytest

from repro.eval import (
    PAPER_FIG13_THROUGHPUT_GOPS,
    build_comparison,
    edea_speedups,
    layer_performance_series,
)
from repro.nn import mobilenet_v1_specs


class TestLayerPerformanceSeries:
    def test_reproduces_fig13_exactly(self):
        series = layer_performance_series()
        for point in series:
            assert point.throughput_gops == pytest.approx(
                PAPER_FIG13_THROUGHPUT_GOPS[point.index], abs=0.01
            )

    def test_fig10_latency_shape(self):
        """Stride-2 layers (1, 3, 5, 11) have visibly lower latency than
        their stride-1 neighbours — the Fig. 10 sawtooth."""
        series = {p.index: p for p in layer_performance_series()}
        for idx in (1, 3, 5, 11):
            assert series[idx].latency_ns < series[idx + 1].latency_ns

    def test_macs_latency_correlation(self):
        """Paper: 'strong correlation between the number of MAC operations
        and the total latency'."""
        import numpy as np

        series = layer_performance_series()
        macs = np.array([p.macs for p in series], dtype=float)
        lat = np.array([p.latency_ns for p in series])
        r = np.corrcoef(macs, lat)[0, 1]
        assert r > 0.95

    def test_reduced_width_series(self):
        series = layer_performance_series(
            mobilenet_v1_specs(width_multiplier=0.5)
        )
        assert len(series) == 13
        assert all(p.cycles > 0 for p in series)

    def test_ops_property(self):
        point = layer_performance_series()[0]
        assert point.ops == 2 * point.macs


class TestComparison:
    def test_six_rows(self):
        rows = build_comparison()
        assert len(rows) == 6
        assert rows[-1].name.startswith("This work")

    def test_edea_beats_all_on_normalized_ee(self):
        rows = build_comparison()
        this = rows[-1]
        for row in rows[:-1]:
            assert this.paper_normalized_ee > row.paper_normalized_ee

    def test_edea_beats_all_on_normalized_ae(self):
        rows = build_comparison()
        this = rows[-1]
        for row in rows[:-1]:
            assert this.paper_normalized_ae > row.paper_normalized_ae

    def test_raw_ee_speedups_match_paper_quotes(self):
        """Paper: 'surpasses [16], [17], [18], [4] by 14.6X, 9.87X,
        2.72X, 2.65X in energy efficiency' (before scaling)."""
        speedups = edea_speedups(build_comparison())
        assert speedups["Chen et al. [16]"]["raw_ee"] == pytest.approx(
            14.6, abs=0.1
        )
        assert speedups["Hsiao et al. [17]"]["raw_ee"] == pytest.approx(
            9.87, abs=0.03
        )
        assert speedups["Jung et al. [18]"]["raw_ee"] == pytest.approx(
            2.72, abs=0.01
        )
        assert speedups["Chen et al. [4] (DWC engine)"][
            "raw_ee"
        ] == pytest.approx(2.65, abs=0.01)

    def test_normalized_ee_speedups_match_paper_quotes(self):
        """Paper: 'outperforming them by 1.74X, 3.11X, 1.37X, 2.65X in
        energy efficiency' (post-scaling)."""
        speedups = edea_speedups(build_comparison())
        assert speedups["Chen et al. [16]"]["normalized_ee"] == pytest.approx(
            1.74, abs=0.01
        )
        assert speedups["Hsiao et al. [17]"]["normalized_ee"] == pytest.approx(
            3.11, abs=0.01
        )
        # 13.43 / 9.9 = 1.357; the paper itself rounds this to 1.37
        assert speedups["Jung et al. [18]"]["normalized_ee"] == pytest.approx(
            1.37, abs=0.02
        )
        assert speedups["Chen et al. [4] (DWC engine)"][
            "normalized_ee"
        ] == pytest.approx(2.65, abs=0.01)

    def test_normalized_ae_speedup_for_isvlsi(self):
        """Paper: area-efficiency advantage 6.29X over [16]."""
        speedups = edea_speedups(build_comparison())
        assert speedups["Chen et al. [16]"]["normalized_ae"] == pytest.approx(
            6.29, abs=0.01
        )

    def test_measured_values_injectable(self):
        rows = build_comparison(
            this_work_ee_tops_w=12.0,
            this_work_throughput_gops=950.0,
            this_work_area_mm2=0.6,
        )
        this = rows[-1]
        assert this.energy_efficiency_tops_w == 12.0
        assert this.area_efficiency_gops_mm2 == pytest.approx(950.0 / 0.6)

    def test_16bit_row_uses_8bit_equivalent_throughput(self):
        rows = build_comparison()
        hsiao = next(r for r in rows if "Hsiao" in r.name)
        assert hsiao.throughput_gops == pytest.approx(155.2)
        assert hsiao.energy_efficiency_tops_w == pytest.approx(1.36)
