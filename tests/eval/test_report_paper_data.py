"""Report rendering and the paper-data constants."""

import pytest

from repro.errors import EvaluationError
from repro.eval import (
    EDEA_TABLE3_ROW,
    PAPER_FIG12_EE_TOPS_W,
    PAPER_FIG13_THROUGHPUT_GOPS,
    PAPER_HEADLINE,
    SOTA_WORKS,
    render_series,
    render_table,
)


class TestRenderTable:
    def test_contains_title_headers_rows(self):
        text = render_table("T", ["a", "b"], [[1, 2], [3, 4]])
        assert "T" in text and "a" in text
        assert "3" in text and "4" in text

    def test_float_formatting(self):
        text = render_table("T", ["x"], [[3.14159]])
        assert "3.14" in text

    def test_thousands_grouping(self):
        text = render_table("T", ["x"], [[1234567]])
        assert "1,234,567" in text

    def test_row_width_mismatch_raises(self):
        with pytest.raises(EvaluationError):
            render_table("T", ["a", "b"], [[1]])

    def test_empty_headers_raise(self):
        with pytest.raises(EvaluationError):
            render_table("T", [], [])

    def test_empty_rows_ok(self):
        text = render_table("T", ["a"], [])
        assert "a" in text


class TestRenderSeries:
    def test_pairs(self):
        text = render_series("S", "x", "y", [1, 2], [10, 20])
        assert "10" in text and "20" in text

    def test_length_mismatch_raises(self):
        with pytest.raises(EvaluationError):
            render_series("S", "x", "y", [1], [1, 2])


class TestPaperData:
    def test_fig12_has_13_values(self):
        assert len(PAPER_FIG12_EE_TOPS_W) == 13

    def test_fig12_extremes_match_text(self):
        # paper text: peak 13.43 at layer 10; lowest 8.70 at layer 1
        assert max(PAPER_FIG12_EE_TOPS_W) == 13.43
        assert PAPER_FIG12_EE_TOPS_W.index(13.43) == 10
        assert min(PAPER_FIG12_EE_TOPS_W) == 8.70
        assert PAPER_FIG12_EE_TOPS_W.index(8.70) == 1

    def test_fig13_has_13_values_with_three_plateaus(self):
        assert len(PAPER_FIG13_THROUGHPUT_GOPS) == 13
        assert set(PAPER_FIG13_THROUGHPUT_GOPS) == {1024.0, 973.55, 905.64}

    def test_headline_consistency(self):
        # peak EE * layer-1 power chain: TP/EE = P
        ee = PAPER_HEADLINE["peak_ee_tops_w"]
        tp = PAPER_HEADLINE["throughput_at_peak_ee_gops"]
        # Table III power column: 72.5 mW at the peak-efficiency point
        assert tp / ee / 1000 == pytest.approx(0.0725, abs=0.001)

    def test_layer1_power_consistent_with_fig12(self):
        # P(layer1) = TP(layer1) / EE(layer1) = 1024 / 8.70 = 117.7 mW
        p = PAPER_FIG13_THROUGHPUT_GOPS[1] / PAPER_FIG12_EE_TOPS_W[1] / 1000
        assert p == pytest.approx(PAPER_HEADLINE["layer1_power_w"], abs=1e-4)

    def test_layer12_power_consistent_with_fig12(self):
        p = PAPER_FIG13_THROUGHPUT_GOPS[12] / PAPER_FIG12_EE_TOPS_W[12] / 1000
        assert p == pytest.approx(PAPER_HEADLINE["layer12_power_w"], abs=1e-4)

    def test_sota_rows(self):
        assert len(SOTA_WORKS) == 5  # [16], [17], [18], [4] x2 engines
        for work in SOTA_WORKS:
            assert work.tech_nm >= 22
            assert work.energy_efficiency_tops_w > 0

    def test_edea_row_area_efficiency(self):
        row = EDEA_TABLE3_ROW
        assert row["throughput_gops"] / row["area_mm2"] == pytest.approx(
            row["area_efficiency_gops_mm2"], rel=0.001
        )
