"""Serving report/sweep/curve rendering."""

import pytest

from repro.errors import EvaluationError
from repro.eval import (
    render_serving_report,
    render_serving_sweep,
    render_throughput_latency,
)
from repro.serve import ServingScenario, simulate


@pytest.fixture(scope="module")
def report():
    return simulate(ServingScenario(requests=500, instances=2, seed=8))


class TestRenderServingReport:
    def test_contains_headline_metrics(self, report):
        text = render_serving_report(report)
        for fragment in (
            "Serving report",
            "sustained QPS",
            "latency p50 (ms)",
            "latency p99 (ms)",
            "Per-instance utilization",
            "Traffic mix",
        ):
            assert fragment in text

    def test_one_utilization_bar_per_instance(self, report):
        text = render_serving_report(report)
        assert text.count("inst ") == report.instances


class TestRenderSweepAndCurve:
    def test_sweep_rows(self, report):
        other = simulate(
            ServingScenario(
                requests=500, instances=4, policy="affinity", seed=8
            )
        )
        text = render_serving_sweep([report, other])
        assert "Serving sweep (2 scenarios" in text
        assert "least-loaded" in text and "affinity" in text

    def test_curve_sorted_by_offered_qps(self, report):
        lighter = simulate(
            ServingScenario(requests=500, instances=2, qps=500.0, seed=8)
        )
        text = render_throughput_latency([report, lighter])
        assert text.index("500.0") < text.index(
            f"{report.offered_qps:,.1f}"
        )

    def test_empty_inputs_rejected(self):
        with pytest.raises(EvaluationError):
            render_serving_sweep([])
        with pytest.raises(EvaluationError):
            render_throughput_latency([])
