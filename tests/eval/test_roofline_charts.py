"""Roofline analysis and ASCII chart rendering."""

import pytest

from repro.errors import ConfigError, EvaluationError
from repro.eval import (
    bar_chart,
    grouped_bar_chart,
    roofline_analysis,
)
from repro.nn import MOBILENET_V1_CIFAR10_SPECS, mobilenet_v2_dsc_specs


class TestRoofline:
    def test_thirteen_layers(self):
        assert len(roofline_analysis()) == 13

    def test_direct_transfer_raises_intensity(self):
        for layer in roofline_analysis():
            assert layer.arithmetic_intensity > layer.intensity_baseline

    def test_pwc_dominated_layers_have_low_intensity(self):
        """Deep layers move mostly weights (D*K bytes for N*M*D*K MACs),
        so intensity collapses to ~N*M — the data-reuse limitation the
        paper's introduction describes."""
        profile = {x.index: x for x in roofline_analysis()}
        assert profile[12].arithmetic_intensity < 8  # 2x2 maps
        assert profile[0].arithmetic_intensity > 15  # 32x32 maps

    def test_bandwidth_demand_peaks_at_late_layers(self):
        profile = roofline_analysis()
        demand = [x.required_bandwidth_gbs for x in profile]
        assert max(demand) == pytest.approx(demand[11], rel=0.05)

    def test_compute_bound_classification(self):
        profile = roofline_analysis()
        generous = all(x.is_compute_bound(1000.0) for x in profile)
        starved = any(not x.is_compute_bound(1.0) for x in profile)
        assert generous and starved

    def test_invalid_bandwidth_rejected(self):
        layer = roofline_analysis()[0]
        with pytest.raises(ConfigError):
            layer.is_compute_bound(0.0)

    def test_other_networks(self):
        profile = roofline_analysis(mobilenet_v2_dsc_specs())
        assert len(profile) == 17
        assert all(x.external_bytes > 0 for x in profile)

    def test_macs_match_specs(self):
        for layer, spec in zip(roofline_analysis(),
                               MOBILENET_V1_CIFAR10_SPECS):
            assert layer.macs == spec.total_macs


class TestBarChart:
    def test_renders_all_labels(self):
        text = bar_chart("T", ["a", "b"], [1.0, 2.0])
        assert "a |" in text and "b |" in text

    def test_max_value_gets_full_width(self):
        text = bar_chart("T", ["x", "y"], [5.0, 10.0], width=10)
        lines = text.splitlines()
        assert "#" * 10 in lines[3]  # the max bar
        assert "#" * 5 in lines[2]

    def test_zero_values_ok(self):
        text = bar_chart("T", ["x"], [0.0])
        assert "0.00" in text

    def test_unit_suffix(self):
        text = bar_chart("T", ["x"], [3.0], unit=" GOPS")
        assert "3.00 GOPS" in text

    def test_validation(self):
        with pytest.raises(EvaluationError):
            bar_chart("T", ["a"], [1.0, 2.0])
        with pytest.raises(EvaluationError):
            bar_chart("T", [], [])
        with pytest.raises(EvaluationError):
            bar_chart("T", ["a"], [-1.0])
        with pytest.raises(EvaluationError):
            bar_chart("T", ["a"], [1.0], width=0)


class TestGroupedBarChart:
    def test_renders_both_series(self):
        text = grouped_bar_chart(
            "T", ["l0", "l1"],
            {"ours": [1.0, 2.0], "paper": [1.5, 2.5]},
        )
        assert "ours" in text and "paper" in text
        assert text.count("|") == 4

    def test_validation(self):
        with pytest.raises(EvaluationError):
            grouped_bar_chart("T", ["a"], {})
        with pytest.raises(EvaluationError):
            grouped_bar_chart("T", ["a"], {"s": [1.0, 2.0]})
        with pytest.raises(EvaluationError):
            grouped_bar_chart("T", ["a"], {"s": [-1.0]})
