"""The aggregated reproduction report."""

import pytest

from repro.eval import render_report, reproduction_report
from repro.eval.summary import ClaimCheck


class TestAnalyticReport:
    @pytest.fixture(scope="class")
    def checks(self):
        return reproduction_report()

    def test_all_analytic_claims_pass(self, checks):
        failed = [c.claim for c in checks if not c.passed]
        assert not failed, f"failed claims: {failed}"

    def test_covers_the_headline_claims(self, checks):
        claims = " ".join(c.claim for c in checks)
        for token in ("DWC engine", "PWC engine", "throughput", "area",
                      "DSE optimum", "baselines"):
            assert token.lower() in claims.lower()

    def test_exact_checks_are_exact(self, checks):
        exact = [c for c in checks if c.tolerance == "exact"]
        assert len(exact) >= 4
        for check in exact:
            assert check.paper_value == check.measured_value

    def test_render_contains_pass_counts(self, checks):
        text = render_report(checks)
        assert f"{len(checks)}/{len(checks)} claims hold" in text
        assert "FAIL" not in text


class TestMeasuredReport:
    def test_workload_claims_included_and_pass(self, small_workload):
        checks = reproduction_report(small_workload)
        analytic = reproduction_report()
        assert len(checks) == len(analytic) + 3
        measured = checks[len(analytic):]
        assert all("profile mode" in c.claim for c in measured)
        assert all(c.passed for c in measured)


class TestClaimCheck:
    def test_failed_check_renders_fail(self):
        check = ClaimCheck(
            claim="x", paper_value="1", measured_value="2",
            tolerance="exact", passed=False,
        )
        text = render_report([check])
        assert "FAIL" in text
        assert "0/1" in text
