"""Efficiency reports, workload caching, and the experiment registry."""

import pytest

from repro.errors import EvaluationError
from repro.eval import (
    EXPERIMENTS,
    build_efficiency_report,
    clear_workload_cache,
    list_experiments,
    paper_profile_stats,
    prepare_workload,
    run_experiment,
)
from repro.eval.paper_data import PAPER_FIG11_LAYER12_ZEROS


class TestEfficiencyReport:
    def test_measured_mode(self, small_workload):
        report = build_efficiency_report(
            small_workload.layer_stats, clock_hz=1e9, mode="measured"
        )
        assert report.mode == "measured"
        assert len(report.layers) == 13
        for layer in report.layers:
            assert layer.power_w > 0
            assert layer.ee_tops_w > 0

    def test_paper_profile_mode_reaches_endpoints(self, small_workload):
        report = build_efficiency_report(
            small_workload.layer_stats, clock_hz=1e9, mode="paper_profile"
        )
        # profile calibration should hit the paper's endpoint powers
        assert report.max_power_w == pytest.approx(0.1177, rel=0.02)
        assert report.min_power_w == pytest.approx(0.0677, rel=0.10)
        assert report.calibration_note is None

    def test_paper_profile_ee_shape(self, small_workload):
        """With the paper's sparsity profile, deep stride-1 layers are the
        most efficient and layer 1 the least — the Fig. 12 shape."""
        report = build_efficiency_report(
            small_workload.layer_stats, clock_hz=1e9, mode="paper_profile"
        )
        ee = {x.index: x.ee_tops_w for x in report.layers}
        assert report.peak_ee_layer in (10, 12)
        assert min(ee, key=ee.get) in (0, 1, 2)
        assert ee[10] > ee[1]

    def test_paper_profile_peak_in_paper_ballpark(self, small_workload):
        """The width-0.25 fixture has lower PWC utilization (fewer kernel
        groups amortize the initiation worse), so its peak EE sits below
        the full-width value; the full-width benchmark checks the tighter
        bound against the paper's 13.43."""
        report = build_efficiency_report(
            small_workload.layer_stats, clock_hz=1e9, mode="paper_profile"
        )
        assert report.peak_ee_tops_w == pytest.approx(13.43, rel=0.3)

    def test_unknown_mode_raises(self, small_workload):
        with pytest.raises(EvaluationError):
            build_efficiency_report(
                small_workload.layer_stats, clock_hz=1e9, mode="bogus"
            )

    def test_aggregates(self, small_workload):
        report = build_efficiency_report(
            small_workload.layer_stats, clock_hz=1e9
        )
        assert report.lowest_ee_tops_w <= report.mean_ee_tops_w
        assert report.mean_ee_tops_w <= report.peak_ee_tops_w
        assert report.ops_weighted_ee_tops_w > 0


class TestPaperProfileStats:
    def test_anchored_to_published_layer12_zeros(self, small_workload):
        adjusted = paper_profile_stats(small_workload.layer_stats)
        last = adjusted[-1]
        assert last.dwc_zero_fraction == pytest.approx(
            PAPER_FIG11_LAYER12_ZEROS["dwc"], abs=0.01
        )
        assert last.pwc_zero_fraction == pytest.approx(
            PAPER_FIG11_LAYER12_ZEROS["pwc"], abs=0.01
        )

    def test_monotone_in_depth(self, small_workload):
        adjusted = paper_profile_stats(small_workload.layer_stats)
        zeros = [s.dwc_zero_fraction for s in adjusted]
        assert zeros == sorted(zeros)

    def test_preserves_cycles_and_macs(self, small_workload):
        adjusted = paper_profile_stats(small_workload.layer_stats)
        for before, after in zip(small_workload.layer_stats, adjusted):
            assert before.cycles == after.cycles
            assert before.total_macs == after.total_macs

    def test_empty_raises(self):
        with pytest.raises(EvaluationError):
            paper_profile_stats([])


class TestWorkloadCache:
    def test_memoized(self):
        a = prepare_workload(width_multiplier=0.25, num_samples=16,
                             train_epochs=1, batch_size=8, seed=99)
        b = prepare_workload(width_multiplier=0.25, num_samples=16,
                             train_epochs=1, batch_size=8, seed=99)
        assert a is b

    def test_clear(self):
        a = prepare_workload(width_multiplier=0.25, num_samples=16,
                             train_epochs=1, batch_size=8, seed=99)
        clear_workload_cache()
        b = prepare_workload(width_multiplier=0.25, num_samples=16,
                             train_epochs=1, batch_size=8, seed=99)
        assert a is not b

    def test_workload_contents(self, small_workload):
        assert len(small_workload.specs) == 13
        assert len(small_workload.layer_stats) == 13
        assert small_workload.images.ndim == 4


class TestExperimentRegistry:
    def test_all_paper_artifacts_covered(self):
        expected = {
            "table1", "table2", "table3",
            "fig2a", "fig2b", "fig3", "fig7", "fig8", "fig9",
            "fig10", "fig11", "fig12", "fig13",
        }
        assert set(EXPERIMENTS) == expected
        assert list_experiments() == sorted(expected)

    def test_unknown_experiment_raises(self):
        with pytest.raises(EvaluationError):
            run_experiment("fig99")

    @pytest.mark.parametrize(
        "eid",
        ["table1", "table2", "fig2a", "fig2b", "fig3", "fig7", "fig8",
         "fig9", "fig10", "fig13", "table3"],
    )
    def test_analytic_experiments_run(self, eid):
        result = run_experiment(eid)
        assert result.experiment_id == eid
        assert result.text
        assert result.data

    def test_measured_experiments_with_workload(self, small_workload):
        for eid in ("fig11", "fig12"):
            result = run_experiment(eid, workload=small_workload)
            assert result.text
            assert len(result.data) >= 2

    def test_fig12_profile_peak_layer(self, small_workload):
        result = run_experiment("fig12", workload=small_workload)
        assert result.data["profile_peak_layer"] in (10, 12)
