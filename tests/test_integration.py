"""End-to-end integration: the full reproduction pipeline at small width.

These tests tie every subsystem together: dataset → training →
quantization → accelerator simulation → power/efficiency reporting, and
assert cross-model consistency (reference vs accelerator vs analytic
timing vs DSE traffic models).
"""

import numpy as np
import pytest

from repro import (
    AcceleratorRunner,
    DSCAccelerator,
    EDEA_CONFIG,
    layer_latency,
)
from repro.dse import LoopOrder, dwc_access, pwc_access, table1_case
from repro.eval import build_efficiency_report
from repro.power import PowerModel


class TestBitExactness:
    def test_whole_network_matches_reference(self, small_workload):
        """Every DSC layer of the network, accelerator vs reference —
        already verified inside prepare_workload (verify=True), re-checked
        here explicitly for one fresh run."""
        runner = AcceleratorRunner(small_workload.qmodel, verify=False)
        image = small_workload.images[1]  # a different image than cached run
        x_q = small_workload.qmodel.stem_forward(image[np.newaxis])[0]
        for idx, layer in enumerate(small_workload.qmodel.layers):
            out, _ = runner.run_layer(idx, x_q)
            _, ref = layer.forward(x_q[np.newaxis])
            np.testing.assert_array_equal(out, ref[0])
            x_q = out

    def test_classification_agrees_end_to_end(self, small_workload):
        """Running the DSC stack on the accelerator and finishing with the
        float head gives the same logits as the reference model."""
        qm = small_workload.qmodel
        image = small_workload.images[:1]
        runner = AcceleratorRunner(qm, verify=False)
        x_q = qm.stem_forward(image)[0]
        for idx in range(13):
            x_q, _ = runner.run_layer(idx, x_q)
        x = x_q[np.newaxis].astype(np.float64) * qm.layers[-1].output_params.scale
        logits_accel = qm.head_linear.forward(qm.head_pool.forward(x))
        logits_ref = qm.forward(image)
        np.testing.assert_allclose(logits_accel, logits_ref)


class TestCrossModelConsistency:
    def test_simulated_cycles_equal_analytic_for_all_layers(
        self, small_workload
    ):
        for stats, spec in zip(small_workload.layer_stats,
                               small_workload.specs):
            assert stats.cycles == layer_latency(spec).total_cycles

    def test_simulated_weight_traffic_equals_dse_model(self, small_workload):
        """The accelerator's counted weight reads equal the DSE access
        model's La prediction (weights fetched once, Table II)."""
        tiling = table1_case(6, tn=2)
        for stats, spec in zip(small_workload.layer_stats,
                               small_workload.specs):
            predicted = (
                dwc_access(spec, tiling, LoopOrder.LA).weight_reads
                + pwc_access(spec, tiling, LoopOrder.LA).weight_reads
            )
            assert stats.external["weight_reads"] == predicted

    def test_direct_transfer_saving_matches_fig3_model(self, small_workload):
        """Accelerator counter difference == dse.intermediate prediction."""
        from repro.dse import intermediate_access_report

        report = intermediate_access_report(small_workload.specs)
        layer = small_workload.qmodel.layers[6]
        x_q = small_workload.qmodel.layer_input(small_workload.images[:1], 6)[0]
        direct = DSCAccelerator(EDEA_CONFIG, direct_transfer=True)
        direct.run_layer(layer, x_q)
        spilled = DSCAccelerator(EDEA_CONFIG, direct_transfer=False)
        spilled.run_layer(layer, x_q)
        saved = (
            spilled.memory.total_activation_accesses
            - direct.memory.total_activation_accesses
        )
        assert saved == report.layers[6].eliminated

    def test_spatial_pe_utilization_is_full(self, small_workload):
        """The paper's '100% PE utilization' claim: whenever an engine is
        busy, all of its MAC lanes do useful work (busy cycles x lanes ==
        useful MACs)."""
        for stats in small_workload.layer_stats:
            assert stats.dwc_macs == (
                stats.dwc_busy_cycles * EDEA_CONFIG.dwc_macs_per_cycle
            )
            assert stats.pwc_macs == (
                stats.pwc_busy_cycles * EDEA_CONFIG.pwc_macs_per_cycle
            )


class TestPowerPipeline:
    def test_calibrated_model_matches_high_endpoint(self, small_workload):
        model = PowerModel.calibrate(small_workload.layer_stats)
        by_index = {s.layer_index: s for s in small_workload.layer_stats}
        # calibration contract: layer 1 hits the paper's 117.7 mW exactly
        assert model.layer_power(by_index[1]).total_watts == pytest.approx(
            0.1177, rel=1e-6
        )
        powers = [
            model.layer_power(s).total_watts
            for s in small_workload.layer_stats
        ]
        # all layers within a plausible band around the endpoints
        assert all(0.03 < p < 0.16 for p in powers)

    def test_efficiency_report_end_to_end(self, small_workload):
        report = build_efficiency_report(
            small_workload.layer_stats, clock_hz=EDEA_CONFIG.clock_hz
        )
        # energy of the whole network should be microjoule-scale:
        # ~100 mW x ~10 us
        total_energy = sum(x.energy_joules for x in report.layers)
        assert 1e-8 < total_energy < 1e-4


class TestScaledArchitectures:
    @pytest.mark.parametrize("td,tk", [(16, 16), (8, 32), (16, 32)])
    def test_scaled_configs_remain_bit_exact(self, small_workload, td, tk):
        """The paper's scaling claim: enlarging Td/Tk must not change
        functional results, only timing."""
        config = type(EDEA_CONFIG)(td=td, tk=tk)
        accel = DSCAccelerator(config)
        layer = small_workload.qmodel.layers[4]
        x_q = small_workload.qmodel.layer_input(small_workload.images[:1], 4)[0]
        out, stats = accel.run_layer(layer, x_q)
        _, ref = layer.forward(x_q[np.newaxis])
        np.testing.assert_array_equal(out, ref[0])
        base_cycles = layer_latency(layer.spec, EDEA_CONFIG).total_cycles
        assert stats.cycles < base_cycles  # more parallel lanes -> faster
