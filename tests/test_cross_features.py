"""Cross-feature integration: combinations of the extension modules.

Each test exercises a pairing of subsystems that no unit test covers on
its own (QAT + serialization, batch + scaled configs, faults on the
accelerator, zoo + full pipelines, figures registry data contracts).
"""

import numpy as np
import pytest

from repro.arch import ArchConfig, DSCAccelerator
from repro.eval import run_experiment
from repro.quant import load_quantized_model, save_quantized_model
from repro.sim import FaultSpec, inject_weight_fault, run_batch


class TestQATPlusSerialization:
    def test_qat_converted_model_roundtrips(self, tmp_path, small_dataset):
        from repro.nn import SGD, Trainer, build_mobilenet_v1, mobilenet_v1_specs
        from repro.quant import convert_qat_mobilenet, prepare_qat_mobilenet

        specs = mobilenet_v1_specs(width_multiplier=0.25)
        model = build_mobilenet_v1(width_multiplier=0.25, seed=51)
        qat = prepare_qat_mobilenet(model, num_blocks=13)
        Trainer(qat, SGD(list(qat.parameters()), lr=0.01),
                batch_size=16, seed=52).fit(
            small_dataset.images, small_dataset.labels, epochs=1
        )
        int8_model = convert_qat_mobilenet(qat, specs)
        path = str(tmp_path / "qat.npz")
        save_quantized_model(int8_model, path)
        loaded = load_quantized_model(path)
        images = small_dataset.images[:4]
        np.testing.assert_allclose(
            int8_model.forward(images), loaded.forward(images)
        )


class TestBatchWithScaledConfig:
    def test_scaled_accelerator_streams_correctly(self, small_workload):
        # the width-0.25 fixture has 8-channel layers, so scale the ifmap
        # buffer (fewer tile initiations) rather than the channel tiles
        config = ArchConfig(max_output_tile=16)
        result = run_batch(
            small_workload.qmodel,
            small_workload.images[:2],
            config=config,
            verify=True,
        )
        base = run_batch(small_workload.qmodel, small_workload.images[:2])
        # identical logits, fewer cycles
        np.testing.assert_allclose(result.logits, base.logits)
        assert result.total_cycles < base.total_cycles


class TestFaultsOnAccelerator:
    def test_faulty_layer_still_runs_cycle_identical(self, small_workload):
        """Faults change values, never timing: the schedule is static."""
        layer = small_workload.qmodel.layers[2]
        x_q = small_workload.qmodel.layer_input(
            small_workload.images[:1], 2
        )[0]
        accel = DSCAccelerator()
        _, clean_stats = accel.run_layer(layer, x_q)
        faulty = inject_weight_fault(
            layer, FaultSpec("pwc_weight", flat_index=0, bit=7)
        )
        _, fault_stats = DSCAccelerator().run_layer(faulty, x_q)
        assert fault_stats.cycles == clean_stats.cycles
        assert fault_stats.total_macs == clean_stats.total_macs


class TestZooEndToEnd:
    def test_custom_network_runs_on_accelerator(self):
        """A non-MobileNet DSC stack executes bit-exactly end to end."""
        from repro.nn import custom_dsc_specs
        from tests.test_properties import random_quantized_layer

        specs = custom_dsc_specs(8, [(1, 8, 16), (2, 16, 32), (1, 32, 16)])
        rng = np.random.default_rng(0)
        x_q = rng.integers(0, 100, size=(8, 8, 8)).astype(np.int8)
        accel = DSCAccelerator()
        for i, spec in enumerate(specs):
            layer = random_quantized_layer(spec, seed=60 + i)
            out, stats = accel.run_layer(layer, x_q)
            _, ref = layer.forward(x_q[np.newaxis])
            np.testing.assert_array_equal(out, ref[0])
            assert stats.cycles > 0
            x_q = out

    def test_imagenet_geometry_dse_consistent(self):
        from repro.dse import best_point, explore
        from repro.nn import mobilenet_v1_imagenet_specs

        best = best_point(explore(mobilenet_v1_imagenet_specs()))
        # the paper's design point remains optimal at ImageNet scale
        assert best.case == 6 and best.tiling.tn == 2


class TestFiguresDataContracts:
    """The experiment registry's data dicts feed downstream tooling;
    pin their shapes."""

    def test_fig10_data(self):
        data = run_experiment("fig10").data
        assert len(data["latency_ns"]) == 13
        assert len(data["macs"]) == 13

    def test_fig13_data(self):
        data = run_experiment("fig13").data
        assert len(data["throughput_gops"]) == 13

    def test_fig2b_data(self):
        data = run_experiment("fig2b").data
        assert len(data["rows"]) == 24
        assert data["best_case"] == 6

    def test_fig3_data(self):
        data = run_experiment("fig3").data
        assert set(data) == {"min", "max", "total"}

    def test_table3_data(self):
        data = run_experiment("table3").data
        assert len(data["rows"]) == 6
        assert len(data["speedups"]) == 5

    def test_fig8_data_totals(self):
        data = run_experiment("fig8").data
        assert data["total"] == pytest.approx(
            sum(data["areas"].values())
        )

    def test_fig11_fig12_with_small_workload(self, small_workload):
        fig11 = run_experiment("fig11", small_workload).data
        fig12 = run_experiment("fig12", small_workload).data
        assert len(fig11["measured_power_w"]) == 13
        assert len(fig12["profile_ee"]) == 13
        # the efficiency figures derive from the same power model: the
        # per-layer EE must equal TP / P for the measured series
        measured_power = fig11["measured_power_w"]
        measured_ee = fig12["measured_ee"]
        for stats, p, ee in zip(
            small_workload.layer_stats, measured_power, measured_ee
        ):
            tp = stats.throughput_ops_per_second(1e9)
            assert ee == pytest.approx(tp / p / 1e12, rel=1e-9)


class TestWorkloadVariants:
    def test_width_050_workload(self):
        from repro.eval import prepare_workload

        workload = prepare_workload(
            width_multiplier=0.5, num_samples=16, train_epochs=1,
            batch_size=8, seed=77,
        )
        assert workload.specs[0].in_channels == 16
        assert len(workload.layer_stats) == 13
        # verified run: all layers bit-exact by construction
        assert workload.run_stats.total_cycles > 0

    def test_percentile_strategy_pipeline(self, small_float_model,
                                          small_specs, small_dataset):
        from repro.quant import quantize_mobilenet
        from repro.sim import AcceleratorRunner

        qm = quantize_mobilenet(
            small_float_model, small_specs, small_dataset.images[:8],
            strategy="percentile",
        )
        runner = AcceleratorRunner(qm, verify=True)
        x_q = qm.layer_input(small_dataset.images[:1], 0)[0]
        runner.run_layer(0, x_q)
