"""Checkpoint determinism: snapshot mid-run, restore in a fresh
process, and the report — and the cache content key — must come out
byte-identical to the uninterrupted run.

The property grid cuts runs at pseudo-random mid-run times across
arrival shapes x stats modes x hooked/hook-free control planes; each
cut is resumed in a subprocess (a genuinely fresh interpreter, the
SIGKILL-and-resume shape without the signal) and compared field for
field.  The RNG bit-generator states captured after stream
construction must round-trip exactly — substream positions are part
of the contract, not just report equality.
"""

from __future__ import annotations

import json
import os
import pickle
import random
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import __version__
from repro import checkpoint as cp
from repro.checkpoint import (
    CHECKPOINT_SCHEMA,
    load_checkpoint,
    resume_checkpointed,
    run_control_checkpointed,
    run_serve_checkpointed,
    save_checkpoint,
)
from repro.control.simulator import ControlScenario, simulate_controlled
from repro.control.slo import SLOClass
from repro.errors import ReproError
from repro.eval.control import report_to_dict
from repro.parallel.cache import make_key
from repro.serve.arrival import capture_rng_state, restore_rng
from repro.serve.simulator import ServingScenario, simulate

_SRC = str(Path(__file__).resolve().parents[2] / "src")

_RESUME_SCRIPT = """
import json, sys
from repro.checkpoint import resume_checkpointed
from repro.eval.control import report_to_dict
from repro.parallel.cache import make_key

kind, scenario, report = resume_checkpointed(sys.argv[1])
key_kind = "control_point" if kind == "control" else "serving_point"
print(json.dumps({
    "kind": kind,
    "report": report_to_dict(report),
    "key": make_key(key_kind, args=(scenario,)),
}))
"""


def _resume_in_subprocess(path) -> dict:
    """Resume ``path`` in a fresh interpreter and return its outcome."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _RESUME_SCRIPT, str(path)],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def _json(report) -> str:
    return json.dumps(report_to_dict(report), sort_keys=True)


def _cut_and_save(kind, scenario, fraction, path):
    """Run ``scenario`` up to ``fraction`` of its arrival window, then
    save a checkpoint — the mid-run state a crash would leave behind."""
    if kind == "serve":
        execution, engine, _ = cp._begin_serve(scenario)
    else:
        execution, engine, _ = cp._begin_control(scenario)
    t_cut = fraction * float(execution.times[-1])
    engine.run_until(t_cut)
    save_checkpoint(
        path, cp._payload(kind, scenario, execution, t_cut, 2 * t_cut)
    )
    return execution, engine


class TestRunUntil:
    """The step-bounded entry point against the one-shot run."""

    def test_sliced_run_matches_one_shot(self):
        scenario = ServingScenario(
            requests=1500, seed=7, arrival="bursty", burst_factor=6.0
        )
        reference = simulate(scenario)
        assert run_serve_checkpointed(scenario) == reference

    def test_slice_boundaries_are_invisible(self):
        scenario = ServingScenario(requests=1200, seed=3)
        reference = simulate(scenario)
        execution, engine, finalize = cp._begin_serve(scenario)
        t = 0.013  # deliberately misaligned with any event cadence
        while not engine.finished:
            engine.run_until(t)
            t += 0.013
        assert finalize(execution) == reference

    def test_run_until_is_cumulative_and_bounded(self):
        scenario = ServingScenario(requests=1000, seed=5)
        _, engine, _ = cp._begin_serve(scenario)
        first = engine.run_until(0.05)
        assert not engine.finished
        assert engine.state.clock == 0.05
        second = engine.run_until(float("inf"))
        assert engine.finished
        # EngineRun totals are cumulative, not per-slice.
        assert second.events >= first.events

    def test_control_sliced_matches_one_shot(self):
        scenario = ControlScenario(
            mix="mixed", qps=1200, requests=2000, instances=3,
            autoscale="utilization", shedding="deadline", seed=11,
        )
        assert run_control_checkpointed(scenario) == (
            simulate_controlled(scenario)
        )


def _serve_grid():
    cases = []
    for arrival in ("poisson", "bursty", "diurnal"):
        for stats in ("exact", "sketch"):
            cases.append(
                pytest.param(arrival, stats, id=f"{arrival}-{stats}")
            )
    return cases


class TestCheckpointProperty:
    """Cut at pseudo-random mid-run times, resume in a subprocess."""

    @pytest.mark.parametrize("arrival,stats", _serve_grid())
    def test_serve_resume_matches_uninterrupted(
        self, arrival, stats, tmp_path
    ):
        scenario = ServingScenario(
            requests=1500,
            seed=29,
            arrival=arrival,
            burst_factor=5.0,
            diurnal_period_s=2.0,
            diurnal_amplitude=0.7,
            stats=stats,
        )
        # The uninterrupted reference for every stats mode is the
        # checkpoint driver itself (sketch-mode `simulate` may take
        # the chunk-interleaved streaming path, whose RNG schedule
        # differs by design); in exact mode the driver equals
        # `simulate` bit-for-bit, which the first assert pins.
        reference = run_serve_checkpointed(scenario)
        if stats == "exact":
            assert reference == simulate(scenario)
        expected_key = make_key("serving_point", args=(scenario,))
        rnd = random.Random(hash((arrival, stats)) & 0xFFFF)
        for trial in range(2):
            path = tmp_path / f"serve-{trial}.ckpt"
            _cut_and_save(
                "serve", scenario, rnd.uniform(0.05, 0.95), path
            )
            outcome = _resume_in_subprocess(path)
            assert outcome["kind"] == "serve"
            assert outcome["report"] == json.loads(_json(reference))
            assert outcome["key"] == expected_key

    @pytest.mark.parametrize(
        "autoscale,shedding",
        [
            pytest.param("none", "none", id="hook-free"),
            pytest.param("utilization", "deadline", id="sizing"),
            pytest.param("dvfs", "queue-depth", id="dvfs"),
            pytest.param("predictive", "deadline", id="predictive"),
        ],
    )
    def test_control_resume_matches_uninterrupted(
        self, autoscale, shedding, tmp_path
    ):
        scenario = ControlScenario(
            mix="mixed",
            arrival="diurnal",
            qps=1400,
            requests=1500,
            instances=3,
            autoscale=autoscale,
            shedding=shedding,
            queue_threshold=32,
            seed=17,
            slo_classes=(
                SLOClass("rt", deadline_ms=30.0, target=0.9, share=0.5),
                SLOClass(
                    "batch", deadline_ms=80.0, target=0.95,
                    share=0.5, priority=1,
                ),
            ),
        )
        reference = simulate_controlled(scenario)
        assert run_control_checkpointed(scenario) == reference
        expected_key = make_key("control_point", args=(scenario,))
        rnd = random.Random(hash((autoscale, shedding)) & 0xFFFF)
        path = tmp_path / "control.ckpt"
        _cut_and_save(
            "control", scenario, rnd.uniform(0.05, 0.95), path
        )
        outcome = _resume_in_subprocess(path)
        assert outcome["kind"] == "control"
        assert outcome["report"] == json.loads(_json(reference))
        assert outcome["key"] == expected_key


class TestRngRoundTrip:
    """Bit-generator states are part of the snapshot contract."""

    def test_capture_restore_resumes_the_stream(self):
        rng = np.random.default_rng(123)
        rng.random(1000)
        state = capture_rng_state(rng)
        expected = rng.random(8)
        resumed = restore_rng(state)
        assert np.array_equal(resumed.random(8), expected)

    def test_substream_position_survives_the_checkpoint_file(
        self, tmp_path
    ):
        scenario = ServingScenario(requests=800, seed=41)
        execution, engine, _ = cp._begin_serve(scenario)
        engine.run_until(0.02)
        path = tmp_path / "rng.ckpt"
        save_checkpoint(
            path, cp._payload("serve", scenario, execution, 0.02, 0.04)
        )
        payload = load_checkpoint(path)
        # Exact nested-dict equality: the PCG64 position after stream
        # construction, not merely something that produces the same
        # report.
        assert (
            payload["snapshot"]["state"]["rng_states"]["main"]
            == execution.rng_state
        )
        restored = restore_rng(
            payload["snapshot"]["state"]["rng_states"]["main"]
        )
        assert capture_rng_state(restored) == execution.rng_state


class TestCheckpointFormat:
    """Schema/version gating: clear errors, never a pickle traceback."""

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="does not exist"):
            load_checkpoint(tmp_path / "nope.ckpt")

    def test_not_a_pickle(self, tmp_path):
        path = tmp_path / "garbage.ckpt"
        path.write_bytes(b"not a pickle at all")
        with pytest.raises(ReproError, match="not readable"):
            load_checkpoint(path)

    def test_not_a_checkpoint_payload(self, tmp_path):
        path = tmp_path / "other.ckpt"
        with open(path, "wb") as handle:
            pickle.dump(["some", "other", "artifact"], handle)
        with pytest.raises(ReproError, match="not a repro checkpoint"):
            load_checkpoint(path)

    def test_schema_mismatch(self, tmp_path):
        path = tmp_path / "schema.ckpt"
        with open(path, "wb") as handle:
            pickle.dump(
                {"schema": CHECKPOINT_SCHEMA + 1, "version": __version__},
                handle,
            )
        with pytest.raises(ReproError, match="schema"):
            load_checkpoint(path)

    def test_version_mismatch(self, tmp_path):
        path = tmp_path / "version.ckpt"
        with open(path, "wb") as handle:
            pickle.dump(
                {"schema": CHECKPOINT_SCHEMA, "version": "0.0.1"},
                handle,
            )
        with pytest.raises(ReproError, match="0.0.1"):
            load_checkpoint(path)

    def test_payload_carries_schema_and_version(self, tmp_path):
        scenario = ServingScenario(requests=400, seed=2)
        path = tmp_path / "tagged.ckpt"
        run_serve_checkpointed(scenario, path, every_s=0.05)
        payload = load_checkpoint(path)
        assert payload["schema"] == CHECKPOINT_SCHEMA
        assert payload["version"] == __version__
        assert payload["kind"] == "serve"

    def test_unwritable_path(self, tmp_path):
        scenario = ServingScenario(requests=400, seed=2)
        blocker = tmp_path / "blocker"
        blocker.write_text("file, not a directory")
        with pytest.raises(ReproError, match="not writable"):
            run_serve_checkpointed(
                scenario, blocker / "x.ckpt", every_s=0.05
            )

    def test_negative_cadence(self, tmp_path):
        scenario = ServingScenario(requests=400, seed=2)
        with pytest.raises(ReproError, match="positive"):
            run_serve_checkpointed(
                scenario, tmp_path / "x.ckpt", every_s=-1.0
            )


class TestResumeKeepsCheckpointing:
    def test_resume_overwrites_the_checkpoint(self, tmp_path):
        scenario = ControlScenario(
            mix="mixed", qps=1000, requests=1500, instances=3,
            shedding="deadline", seed=13,
        )
        reference = simulate_controlled(scenario)
        path = tmp_path / "run.ckpt"
        _cut_and_save("control", scenario, 0.2, path)
        first = load_checkpoint(path)
        kind, _, report = resume_checkpointed(path)
        assert kind == "control" and report == reference
        # The resumed run kept saving on the original cadence (unless
        # it drained before the next boundary — force one by cutting
        # early with a tiny cadence).
        final = load_checkpoint(path)
        assert final["schema"] == CHECKPOINT_SCHEMA
        assert (
            final["next_checkpoint_s"] >= first["next_checkpoint_s"]
        )
