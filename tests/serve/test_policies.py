"""Scheduling policies against hand-built fleet states."""

import pytest

from repro.errors import ConfigError
from repro.serve import (
    Fleet,
    Request,
    make_policy,
    service_profile,
)

EDGE = service_profile("edge-tiny")
V1 = service_profile("mobilenet-v1-224")


def req(index=0, model="edge-tiny", profile=EDGE, arrival=0.0):
    return Request(
        index=index, model=model, profile=profile, arrival=arrival
    )


class TestRoundRobin:
    def test_cycles_in_order(self):
        fleet = Fleet(3)
        policy = make_policy("round-robin")
        picks = [policy.choose(req(i), fleet, 0.0) for i in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_reset_restarts(self):
        fleet = Fleet(2)
        policy = make_policy("round-robin")
        policy.choose(req(0), fleet, 0.0)
        policy.reset()
        assert policy.choose(req(1), fleet, 0.0) == 0


class TestLeastLoaded:
    def test_prefers_idle_instance(self):
        fleet = Fleet(3)
        fleet[0].busy_until = 1.0
        fleet[2].busy_until = 0.5
        policy = make_policy("least-loaded")
        assert policy.choose(req(), fleet, now=0.0) == 1

    def test_counts_queued_work_in_seconds(self):
        """One queued heavyweight request outweighs two light ones."""
        fleet = Fleet(2)
        fleet[0].enqueue(req(0, "mobilenet-v1-224", V1))
        fleet[1].enqueue(req(1, "edge-tiny", EDGE))
        fleet[1].enqueue(req(2, "edge-tiny", EDGE))
        policy = make_policy("least-loaded")
        assert policy.choose(req(3), fleet, now=0.0) == 1

    def test_ties_break_by_index(self):
        fleet = Fleet(4)
        policy = make_policy("least-loaded")
        assert policy.choose(req(), fleet, now=0.0) == 0


class TestAffinity:
    def test_prefers_warm_instance_within_setup_budget(self):
        fleet = Fleet(2)
        fleet[0].loaded_model = "edge-tiny"
        # Instance 0 slightly busier, but by less than one weight load.
        fleet[0].busy_until = 0.5 * EDGE.setup_seconds
        policy = make_policy("affinity")
        assert policy.choose(req(model="edge-tiny"), fleet, 0.0) == 0

    def test_abandons_warm_instance_when_detour_too_costly(self):
        fleet = Fleet(2)
        fleet[0].loaded_model = "edge-tiny"
        fleet[0].busy_until = 10 * EDGE.setup_seconds
        policy = make_policy("affinity")
        assert policy.choose(req(model="edge-tiny"), fleet, 0.0) == 1

    def test_falls_back_to_least_loaded_when_cold(self):
        fleet = Fleet(3)
        fleet[0].busy_until = 1.0
        policy = make_policy("affinity")
        assert policy.choose(req(model="edge-tiny"), fleet, 0.0) == 1


class TestFactory:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            make_policy("random")

    def test_known_names(self):
        for name in ("round-robin", "least-loaded", "affinity"):
            assert make_policy(name).name == name
