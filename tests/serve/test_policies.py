"""Scheduling policies against hand-built fleet states."""

import pytest

from repro.errors import ConfigError
from repro.serve import (
    Fleet,
    Request,
    make_policy,
    service_profile,
)

EDGE = service_profile("edge-tiny")
V1 = service_profile("mobilenet-v1-224")


def req(index=0, model="edge-tiny", profile=EDGE, arrival=0.0):
    return Request(
        index=index, model=model, profile=profile, arrival=arrival
    )


class TestRoundRobin:
    def test_cycles_in_order(self):
        fleet = Fleet(3)
        policy = make_policy("round-robin")
        picks = [policy.choose(req(i), fleet, 0.0) for i in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_reset_restarts(self):
        fleet = Fleet(2)
        policy = make_policy("round-robin")
        policy.choose(req(0), fleet, 0.0)
        policy.reset()
        assert policy.choose(req(1), fleet, 0.0) == 0


class TestLeastLoaded:
    def test_prefers_idle_instance(self):
        fleet = Fleet(3)
        fleet[0].busy_until = 1.0
        fleet[2].busy_until = 0.5
        policy = make_policy("least-loaded")
        assert policy.choose(req(), fleet, now=0.0) == 1

    def test_counts_queued_work_in_seconds(self):
        """One queued heavyweight request outweighs two light ones."""
        fleet = Fleet(2)
        fleet[0].enqueue(req(0, "mobilenet-v1-224", V1))
        fleet[1].enqueue(req(1, "edge-tiny", EDGE))
        fleet[1].enqueue(req(2, "edge-tiny", EDGE))
        policy = make_policy("least-loaded")
        assert policy.choose(req(3), fleet, now=0.0) == 1

    def test_ties_break_by_index(self):
        fleet = Fleet(4)
        policy = make_policy("least-loaded")
        assert policy.choose(req(), fleet, now=0.0) == 0


class TestAffinity:
    def test_prefers_warm_instance_within_setup_budget(self):
        fleet = Fleet(2)
        fleet[0].loaded_model = "edge-tiny"
        # Instance 0 slightly busier, but by less than one weight load.
        fleet[0].busy_until = 0.5 * EDGE.setup_seconds
        policy = make_policy("affinity")
        assert policy.choose(req(model="edge-tiny"), fleet, 0.0) == 0

    def test_abandons_warm_instance_when_detour_too_costly(self):
        fleet = Fleet(2)
        fleet[0].loaded_model = "edge-tiny"
        fleet[0].busy_until = 10 * EDGE.setup_seconds
        policy = make_policy("affinity")
        assert policy.choose(req(model="edge-tiny"), fleet, 0.0) == 1

    def test_falls_back_to_least_loaded_when_cold(self):
        fleet = Fleet(3)
        fleet[0].busy_until = 1.0
        policy = make_policy("affinity")
        assert policy.choose(req(model="edge-tiny"), fleet, 0.0) == 1


class TestDeadlineAware:
    def _req(self, deadline):
        request = req(model="edge-tiny")
        request.deadline = deadline
        return request

    def test_detours_to_feasible_instance(self):
        """Least-loaded would join the shorter queue on the slow
        instance; deadline-aware sees that completion there misses and
        pays the longer queue on the fast one instead."""
        fleet = Fleet(2)
        fleet[0].busy_until = 5 * EDGE.per_image_seconds  # fast, busier
        fleet[1].latency_scale = 20.0  # slow DVFS point, idle
        deadline = 8 * EDGE.per_image_seconds
        policy = make_policy("deadline-aware")
        ll = make_policy("least-loaded")
        assert ll.choose(self._req(deadline), fleet, 0.0) == 1
        assert policy.choose(self._req(deadline), fleet, 0.0) == 0

    def test_prefers_least_loaded_among_feasible(self):
        fleet = Fleet(3)
        fleet[0].busy_until = 2 * EDGE.per_image_seconds
        policy = make_policy("deadline-aware")
        assert policy.choose(self._req(1.0), fleet, 0.0) == 1

    def test_minimizes_miss_when_nothing_feasible(self):
        fleet = Fleet(2)
        fleet[0].busy_until = 3.0
        fleet[1].busy_until = 2.0
        policy = make_policy("deadline-aware")
        assert policy.choose(self._req(1e-9), fleet, 0.0) == 1

    def test_no_deadline_degrades_to_least_loaded(self):
        fleet = Fleet(3)
        fleet[0].busy_until = 1.0
        policy = make_policy("deadline-aware")
        assert policy.choose(req(), fleet, 0.0) == 1


class TestEnergyAware:
    def test_unmetered_fleet_degrades_to_least_loaded(self):
        fleet = Fleet(3)
        fleet[0].busy_until = 1.0
        fleet[2].busy_until = 0.5
        policy = make_policy("energy-aware")
        assert policy.choose(req(), fleet, 0.0) == 1

    def test_prefers_cheap_instance_when_queues_match(self):
        fleet = Fleet(2)
        fleet[0].busy_power_w = 1.0
        fleet[1].busy_power_w = 0.2
        fleet[1].latency_scale = 2.0  # slower, but far cheaper
        policy = make_policy("energy-aware")
        assert policy.choose(req(), fleet, 0.0) == 1

    def test_abandons_cheap_instance_once_backlog_costs_more(self):
        fleet = Fleet(2)
        fleet[0].busy_power_w = 1.0
        fleet[1].busy_power_w = 0.2
        fleet[1].latency_scale = 2.0
        # Joules saved on inst 1: 1.0*s - 0.2*2s = 0.6*s; priced at the
        # fleet's 1.0 W, any backlog beyond 0.6*s tips the choice back.
        fleet[1].busy_until = 10 * EDGE.per_image_seconds
        policy = make_policy("energy-aware")
        assert policy.choose(req(), fleet, 0.0) == 0


class TestFactory:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            make_policy("random")

    def test_known_names(self):
        for name in (
            "round-robin",
            "least-loaded",
            "affinity",
            "deadline-aware",
            "energy-aware",
        ):
            assert make_policy(name).name == name
