"""Serving sweeps through the parallel executor and result cache."""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.parallel import ResultCache
from repro.serve import (
    ServingScenario,
    policy_fleet_sweep,
    serving_sweep,
    simulate,
    throughput_latency_curve,
)

BASE = ServingScenario(requests=800, seed=1)


class TestServingSweep:
    def test_results_in_submission_order(self):
        scenarios = [
            dataclasses.replace(BASE, instances=n) for n in (1, 2, 4)
        ]
        reports = serving_sweep(scenarios)
        assert [r.instances for r in reports] == [1, 2, 4]
        assert reports[0] == simulate(scenarios[0])

    def test_parallel_matches_serial(self):
        scenarios = [
            dataclasses.replace(BASE, instances=n) for n in (1, 2, 3, 4)
        ]
        assert serving_sweep(scenarios, jobs=2) == serving_sweep(scenarios)

    def test_empty_sweep_rejected(self):
        with pytest.raises(ConfigError):
            serving_sweep([])

    def test_warm_cache_serves_everything(self, tmp_path):
        scenarios = [
            dataclasses.replace(BASE, policy=p)
            for p in ("round-robin", "least-loaded")
        ]
        cold = serving_sweep(scenarios, cache=ResultCache(tmp_path))
        warm_cache = ResultCache(tmp_path)
        warm = serving_sweep(scenarios, cache=warm_cache)
        assert warm == cold
        assert warm_cache.hits == len(scenarios)
        assert warm_cache.misses == 0

    def test_scenario_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        serving_sweep([BASE], cache=cache)
        fresh = ResultCache(tmp_path)
        serving_sweep(
            [dataclasses.replace(BASE, seed=2)], cache=fresh
        )
        assert fresh.misses == 1


class TestPolicyFleetSweep:
    def test_grid_row_major(self):
        reports = policy_fleet_sweep(
            BASE, ["round-robin", "affinity"], [1, 2]
        )
        assert [(r.policy, r.instances) for r in reports] == [
            ("round-robin", 1),
            ("round-robin", 2),
            ("affinity", 1),
            ("affinity", 2),
        ]

    def test_rejects_empty_axes(self):
        with pytest.raises(ConfigError):
            policy_fleet_sweep(BASE, [], [1])
        with pytest.raises(ConfigError):
            policy_fleet_sweep(BASE, ["affinity"], [])


class TestThroughputLatencyCurve:
    def test_latency_grows_along_the_curve(self):
        reports = throughput_latency_curve(
            dataclasses.replace(BASE, instances=2, requests=4_000),
            [1_000.0, 2_000.0, 3_500.0],
        )
        assert [round(r.offered_qps) for r in reports] == [
            1_000,
            2_000,
            3_500,
        ]
        p99s = [r.latency_p99_s for r in reports]
        assert all(a <= b for a, b in zip(p99s, p99s[1:]))

    def test_rejects_empty_curve(self):
        with pytest.raises(ConfigError):
            throughput_latency_curve(BASE, [])
