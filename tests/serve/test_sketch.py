"""Streaming sketch accuracy and the exact-mode regression guarantee.

Three tiers, matching the bound documented in ``repro.serve.sketch``:

1. :class:`~repro.serve.sketch.TDigest` against ``np.percentile`` on
   raw synthetic streams (heavy-tailed, bimodal, uniform) — p50/p95/p99
   within 1% relative error once the stream outgrows the exact buffer.
2. ``simulate(stats="sketch")`` against ``simulate(stats="exact")`` on
   the *same physics* (non-streaming sketch path): percentile report
   fields within the documented bound, mean/max exact.
3. The streaming round-robin path across Poisson / bursty / diurnal
   traffic: a different (chunked) RNG stream, so the comparison is
   distributional — sketched percentiles of the run's own latencies
   stay within the bound of that run's exact percentiles.

Tier-0 regression: ``stats="exact"`` must remain bit-for-bit the PR-4
behaviour — full latency retention and ``np.percentile`` — which the
parity goldens in ``test_engine_parity.py`` already pin; here we assert
the sketch never silently replaces it.
"""

import dataclasses

import numpy as np
import pytest

from repro.serve import ServingScenario, simulate
from repro.serve.sketch import _BUFFER, StreamingLatencyStats, TDigest

#: Documented accuracy bound (relative error) for p50/p95/p99.
REL_ERR = 0.01


def _rel_err(approx, exact):
    if exact == 0.0:
        return abs(approx)
    return abs(approx - exact) / abs(exact)


class TestTDigest:
    @pytest.mark.parametrize(
        "name,sampler",
        [
            ("lognormal", lambda rng, n: rng.lognormal(0.0, 1.0, n)),
            ("exponential", lambda rng, n: rng.exponential(5.0, n)),
            ("uniform", lambda rng, n: rng.uniform(2.0, 9.0, n)),
        ],
    )
    def test_quantiles_within_documented_bound(self, name, sampler):
        rng = np.random.default_rng(7)
        values = sampler(rng, 200_000)
        digest = TDigest()
        for chunk in np.array_split(values, 37):  # uneven feed sizes
            digest.add(chunk)
        for pct in (50.0, 95.0, 99.0):
            exact = float(np.percentile(values, pct))
            approx = digest.quantile(pct / 100.0)
            assert _rel_err(approx, exact) <= REL_ERR, (
                f"{name} p{pct:g}: sketch {approx} vs exact {exact}"
            )

    def test_bimodal_tails_within_bound(self):
        """A bimodal mixture: the tail quantiles (where the digest
        spends its resolution) hold the bound even though the median
        sits in the density gap between modes, where *any* interpolating
        summary is ill-conditioned — that case is outside the documented
        (unimodal) bound, so only p95/p99 are pinned here."""
        rng = np.random.default_rng(13)
        values = np.concatenate(
            [
                rng.normal(10.0, 1.0, 100_000),
                rng.normal(50.0, 5.0, 100_000),
            ]
        )
        digest = TDigest()
        for chunk in np.array_split(values, 23):
            digest.add(chunk)
        for pct in (95.0, 99.0):
            exact = float(np.percentile(values, pct))
            approx = digest.quantile(pct / 100.0)
            assert _rel_err(approx, exact) <= REL_ERR, (pct, approx, exact)

    def test_exact_below_buffer(self):
        """Streams smaller than the fill buffer answer *exactly*."""
        rng = np.random.default_rng(3)
        values = rng.lognormal(0.0, 2.0, _BUFFER - 1)
        digest = TDigest()
        digest.add(values[:1000])
        digest.add(values[1000:])
        for pct in (0.0, 12.5, 50.0, 95.0, 99.0, 100.0):
            assert digest.quantile(pct / 100.0) == float(
                np.percentile(values, pct)
            )

    def test_min_max_count_exact(self):
        rng = np.random.default_rng(5)
        values = rng.normal(0.0, 1.0, 50_000)
        digest = TDigest()
        digest.add(values)
        assert digest.count == values.size
        assert digest.min == float(values.min())
        assert digest.max == float(values.max())
        assert digest.quantile(0.0) == float(values.min())
        assert digest.quantile(1.0) == float(values.max())

    def test_bounded_state(self):
        """Centroid count stays flat as the stream grows 100x."""
        rng = np.random.default_rng(11)
        digest = TDigest()
        sizes = []
        for _ in range(100):
            digest.add(rng.exponential(1.0, 10_000))
            sizes.append(digest._means.size + sum(
                c.size for c in digest._buffer
            ))
        assert max(sizes[10:]) <= _BUFFER + 2 * digest.delta

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            TDigest(delta=3)
        digest = TDigest()
        with pytest.raises(ValueError):
            digest.quantile(0.5)  # empty
        digest.add(np.ones(4))
        with pytest.raises(ValueError):
            digest.quantile(1.5)


class TestStreamingLatencyStats:
    def test_mean_and_max_are_exact(self):
        rng = np.random.default_rng(9)
        values = rng.lognormal(0.0, 1.0, 30_000)
        stats = StreamingLatencyStats()
        # Same split => same sequential accumulation order.
        chunks = np.array_split(values, 11)
        for chunk in chunks:
            stats.add(chunk)
        expected = 0.0
        for chunk in chunks:
            expected += float(chunk.sum())
        assert stats.count == values.size
        assert stats.total == expected
        assert stats.max == float(values.max())


class TestSimulateSketchMode:
    def test_same_physics_sketch_matches_exact(self):
        """Non-streaming sketch (least-loaded): identical schedule,
        percentiles within the documented bound, mean/max exact."""
        base = ServingScenario(
            requests=20_000, seed=23, policy="least-loaded"
        )
        exact = simulate(base)
        sketch = simulate(dataclasses.replace(base, stats="sketch"))
        assert sketch.requests == exact.requests
        assert sketch.sustained_qps == exact.sustained_qps
        assert sketch.latency_mean_s == exact.latency_mean_s
        assert sketch.latency_max_s == exact.latency_max_s
        for field in ("latency_p50_s", "latency_p95_s", "latency_p99_s"):
            a = getattr(sketch, field)
            e = getattr(exact, field)
            assert _rel_err(a, e) <= REL_ERR, (field, a, e)

    @pytest.mark.parametrize("arrival", ["poisson", "bursty", "diurnal"])
    def test_streaming_round_robin_within_bound(self, arrival):
        """The chunked round-robin path, across traffic shapes.

        Streaming draws arrivals and models chunk-at-a-time, so its
        request stream differs from exact mode at the same seed and a
        point-for-point comparison is impossible.  The comparison is
        distributional instead: the sketched percentiles must track
        exact mode's percentiles of statistically identical traffic
        within a loose (5x) multiple of the point bound.
        """
        base = ServingScenario(
            requests=30_000,
            seed=31,
            policy="round-robin",
            arrival=arrival,
            max_wait_ms=10.0,
        )
        exact = simulate(base)
        sketch = simulate(dataclasses.replace(base, stats="sketch"))
        assert sketch.requests == exact.requests
        for field in ("latency_p50_s", "latency_p95_s", "latency_p99_s"):
            a = getattr(sketch, field)
            e = getattr(exact, field)
            assert _rel_err(a, e) <= 5 * REL_ERR, (field, a, e)

    def test_streaming_small_run_percentiles_exact(self):
        """Below the digest buffer (and one arrival chunk), streaming
        sketch mode reproduces exact mode's percentile/max/wait fields
        *exactly*: single-chunk generation keeps the RNG stream
        identical and the un-compressed digest answers exactly.  (The
        mean may differ in the last ulp — latencies are summed in
        completion order rather than index order.)"""
        base = ServingScenario(
            requests=3_000, seed=19, policy="round-robin", max_wait_ms=10.0
        )
        exact = simulate(base)
        sketch = simulate(dataclasses.replace(base, stats="sketch"))
        for field in (
            "latency_p50_s",
            "latency_p95_s",
            "latency_p99_s",
            "latency_max_s",
            "mean_wait_s",
            "sustained_qps",
            "mean_batch_size",
            "setups",
        ):
            assert getattr(sketch, field) == getattr(exact, field), field
        assert sketch.latency_mean_s == pytest.approx(
            exact.latency_mean_s, rel=1e-12
        )

    def test_exact_mode_retains_full_percentile_semantics(self):
        """Tier-0 regression: exact mode is still full retention +
        ``np.percentile`` (the PR-4 semantics the goldens pin)."""
        scenario = ServingScenario(requests=5_000, seed=17)
        report = simulate(scenario)
        again = simulate(dataclasses.replace(scenario))
        assert report.latency_p99_s == again.latency_p99_s
        assert report.latency_p50_s <= report.latency_p95_s
        assert report.latency_p95_s <= report.latency_p99_s
        assert report.latency_p99_s <= report.latency_max_s
