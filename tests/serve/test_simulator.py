"""Discrete-event serving simulation: queueing theory and conservation."""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.serve import ServingScenario, build_mix, simulate


def _mm1_scenario(rho: float, **kwargs) -> ServingScenario:
    """Single instance, single model, no batching: an M/D/1 queue."""
    service = build_mix("v1-224").mean_service_seconds()
    defaults = dict(
        mix="v1-224",
        qps=rho / service,
        requests=20_000,
        instances=1,
        max_batch=1,
        max_wait_ms=0.0,
        seed=3,
    )
    defaults.update(kwargs)
    return ServingScenario(**defaults)


class TestQueueingSanity:
    @pytest.mark.parametrize("rho", [0.3, 0.5])
    def test_mean_latency_matches_md1(self, rho):
        """At low utilization the simulator must reproduce the M/D/1
        (Pollaczek-Khinchine) mean latency S + rho*S/(2*(1-rho))."""
        service = build_mix("v1-224").mean_service_seconds()
        report = simulate(_mm1_scenario(rho))
        expected = service * (1 + rho / (2 * (1 - rho)))
        assert report.latency_mean_s == pytest.approx(expected, rel=0.05)

    def test_p99_monotone_in_offered_load(self):
        p99s = [
            simulate(_mm1_scenario(rho)).latency_p99_s
            for rho in (0.3, 0.5, 0.7, 0.85)
        ]
        assert all(a <= b for a, b in zip(p99s, p99s[1:]))

    def test_latency_floor_is_service_time(self):
        service = build_mix("v1-224").mean_service_seconds()
        report = simulate(_mm1_scenario(0.3, requests=2_000))
        assert report.latency_p50_s >= service - 1e-12


class TestConservation:
    def test_every_request_served_exactly_once(self):
        report = simulate(ServingScenario(requests=3_000, seed=5))
        assert report.requests == 3_000
        assert sum(report.served_per_instance) == 3_000
        assert sum(c for _, c in report.per_model_counts) == 3_000

    def test_utilization_bounded(self):
        report = simulate(ServingScenario(requests=3_000, seed=5))
        assert all(0.0 <= u <= 1.0 for u in report.utilization)

    def test_sustained_qps_close_to_offered_when_stable(self):
        report = simulate(ServingScenario(requests=5_000, seed=5))
        assert report.sustained_qps <= report.offered_qps * 1.02
        assert report.sustained_qps >= report.offered_qps * 0.9

    def test_deterministic_per_seed(self):
        a = simulate(ServingScenario(requests=1_000, seed=9))
        b = simulate(ServingScenario(requests=1_000, seed=9))
        assert a == b
        c = simulate(ServingScenario(requests=1_000, seed=10))
        assert c != a


class TestBatching:
    def test_max_batch_respected_on_a_burst(self):
        """16 simultaneous arrivals on one instance: the first launches
        alone (work-conserving), the backlog drains in max-batch runs."""
        scenario = ServingScenario(
            mix="v1-224",
            arrival="trace",
            trace=tuple([0.0] * 16),
            requests=16,
            instances=1,
            max_batch=8,
            max_wait_ms=0.0,
            qps=1.0,
        )
        report = simulate(scenario)
        assert report.requests == 16
        # 1 + 8 + 7 requests over three launches.
        assert report.mean_batch_size == pytest.approx(16 / 3)

    def test_max_wait_holds_the_head_request(self):
        """With a 5 ms fill window, two closely spaced arrivals launch
        together when the head's wait expires."""
        scenario = ServingScenario(
            mix="v1-224",
            arrival="trace",
            trace=(0.0, 0.001),
            requests=2,
            instances=1,
            max_batch=8,
            max_wait_ms=5.0,
            qps=1.0,
        )
        report = simulate(scenario)
        assert report.mean_batch_size == pytest.approx(2.0)
        # Head waited the full window, the second 1 ms less.
        assert report.mean_wait_s == pytest.approx(0.0045, rel=1e-6)

    def test_zero_wait_dispatches_immediately(self):
        scenario = ServingScenario(
            mix="edge",
            arrival="trace",
            trace=(0.0, 0.005),
            requests=2,
            instances=1,
            max_batch=8,
            max_wait_ms=0.0,
            qps=1.0,
        )
        report = simulate(scenario)
        assert report.mean_wait_s == pytest.approx(0.0, abs=1e-12)
        assert report.mean_batch_size == pytest.approx(1.0)


class TestPoliciesEndToEnd:
    def test_round_robin_spreads_evenly(self):
        report = simulate(
            ServingScenario(
                requests=4_000, instances=4, policy="round-robin", seed=2
            )
        )
        assert report.served_per_instance == (1_000,) * 4

    def test_least_loaded_beats_round_robin_on_mixed_traffic(self):
        base = ServingScenario(requests=6_000, instances=4, seed=4)
        rr = simulate(dataclasses.replace(base, policy="round-robin"))
        ll = simulate(dataclasses.replace(base, policy="least-loaded"))
        assert ll.latency_p99_s < rr.latency_p99_s

    def test_affinity_reduces_model_switches(self):
        base = ServingScenario(requests=6_000, instances=4, seed=4)
        ll = simulate(dataclasses.replace(base, policy="least-loaded"))
        aff = simulate(dataclasses.replace(base, policy="affinity"))
        assert aff.setups < ll.setups


class TestScenarioValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigError):
            ServingScenario(requests=0)
        with pytest.raises(ConfigError):
            ServingScenario(instances=0)
        with pytest.raises(ConfigError):
            ServingScenario(max_batch=0)
        with pytest.raises(ConfigError):
            ServingScenario(max_wait_ms=-1.0)
        with pytest.raises(ConfigError):
            ServingScenario(qps=0.0)

    def test_unknown_mix_and_policy_raise_at_simulate(self):
        with pytest.raises(ConfigError):
            simulate(ServingScenario(mix="nope", requests=10))
        with pytest.raises(ConfigError):
            simulate(ServingScenario(policy="nope", requests=10))

    def test_trace_clamps_requests(self):
        report = simulate(
            ServingScenario(
                arrival="trace",
                trace=(0.0, 0.01, 0.02),
                requests=100,
                instances=1,
            )
        )
        assert report.requests == 3

    def test_bursty_has_fatter_tail_than_poisson(self):
        # ~0.7 of the two-instance capacity (stable for both shapes).
        base = ServingScenario(
            mix="v1-224", qps=1_000.0, requests=8_000, instances=2, seed=6
        )
        poisson = simulate(base)
        bursty = simulate(
            dataclasses.replace(
                base, arrival="bursty", burst_factor=6.0
            )
        )
        assert bursty.latency_p99_s > poisson.latency_p99_s


class TestIncrementalBacklog:
    def test_queued_seconds_tracks_queue_contents(self):
        from repro.serve import Fleet, Request, service_profile

        edge = service_profile("edge-tiny")
        v1 = service_profile("mobilenet-v1-224")
        fleet = Fleet(1)
        inst = fleet[0]
        inst.enqueue(Request(0, "edge-tiny", edge, 0.0))
        inst.enqueue(Request(1, "edge-tiny", edge, 0.0))
        inst.enqueue(Request(2, "mobilenet-v1-224", v1, 0.0))
        expected = 2 * edge.per_image_seconds + v1.per_image_seconds
        assert inst.pending_seconds(0.0) == pytest.approx(expected)
        inst.launch(inst.next_batch(max_batch=8), now=0.0)  # both edge
        assert inst.queued_seconds == pytest.approx(
            v1.per_image_seconds
        )
        inst.launch(inst.next_batch(max_batch=8), now=inst.busy_until)
        assert inst.queued_seconds == 0.0

    def test_overloaded_simulation_stays_fast(self):
        """Scheduling must remain O(instances) per arrival even when
        queues grow without bound past saturation."""
        import time

        scenario = ServingScenario(
            requests=8_000, qps=20_000.0, instances=4, seed=1
        )
        start = time.perf_counter()
        report = simulate(scenario)
        elapsed = time.perf_counter() - start
        assert report.requests == 8_000
        assert elapsed < 5.0  # quadratic backlog scans took >10 s
