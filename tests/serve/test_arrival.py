"""Arrival processes: statistics, determinism, validation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.serve import (
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    TraceArrivals,
    make_arrivals,
)


class TestPoisson:
    def test_mean_rate(self):
        rng = np.random.default_rng(7)
        times = PoissonArrivals(100.0).times(20_000, rng)
        mean_inter = float(np.mean(np.diff(times)))
        assert mean_inter == pytest.approx(0.01, rel=0.05)

    def test_sorted_and_positive(self):
        times = PoissonArrivals(50.0).times(500, np.random.default_rng(1))
        assert np.all(times > 0)
        assert np.all(np.diff(times) >= 0)

    def test_deterministic_per_seed(self):
        a = PoissonArrivals(10.0).times(100, np.random.default_rng(5))
        b = PoissonArrivals(10.0).times(100, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigError):
            PoissonArrivals(0.0)

    def test_rejects_zero_requests(self):
        with pytest.raises(ConfigError):
            PoissonArrivals(1.0).times(0, np.random.default_rng(0))


class TestBursty:
    def test_preserves_mean_rate(self):
        rng = np.random.default_rng(11)
        proc = BurstyArrivals(1000.0, burst_factor=4.0, burst_share=0.2)
        times = proc.times(50_000, rng)
        realized = len(times) / times[-1]
        assert realized == pytest.approx(1000.0, rel=0.1)

    def test_burstier_than_poisson(self):
        """The MMPP inter-arrival CV must exceed the Poisson CV of 1."""
        rng = np.random.default_rng(13)
        proc = BurstyArrivals(1000.0, burst_factor=8.0, burst_share=0.1)
        inter = np.diff(proc.times(50_000, rng))
        cv = float(np.std(inter) / np.mean(inter))
        assert cv > 1.15

    def test_parameter_validation(self):
        with pytest.raises(ConfigError):
            BurstyArrivals(100.0, burst_factor=0.5)
        with pytest.raises(ConfigError):
            BurstyArrivals(100.0, burst_share=1.5)
        with pytest.raises(ConfigError):
            BurstyArrivals(100.0, mean_dwell_s=0.0)


class TestDiurnal:
    def test_preserves_mean_rate(self):
        rng = np.random.default_rng(3)
        proc = DiurnalArrivals(1_000.0, period_s=4.0, amplitude=0.9)
        times = proc.times(20_000, rng)
        realized = len(times) / times[-1]
        assert realized == pytest.approx(1_000.0, rel=0.1)

    def test_day_half_carries_the_load(self):
        """The phase histogram must match the modulation: the cycle
        starts at the trough, so the day half (phase 0.25-0.75) carries
        the bulk of the traffic at amplitude 0.9."""
        rng = np.random.default_rng(3)
        proc = DiurnalArrivals(1_000.0, period_s=4.0, amplitude=0.9)
        times = proc.times(20_000, rng)
        phase = (times % proc.period_s) / proc.period_s
        day = int(np.sum((phase > 0.25) & (phase < 0.75)))
        night = len(times) - day
        assert day > 2.5 * night

    def test_rate_at_trough_and_peak(self):
        proc = DiurnalArrivals(100.0, period_s=10.0, amplitude=0.5)
        assert proc.rate_at(0.0) == pytest.approx(50.0)
        assert proc.rate_at(5.0) == pytest.approx(150.0)
        assert proc.rate_at(10.0) == pytest.approx(50.0)

    def test_zero_amplitude_is_poisson_rate(self):
        rng = np.random.default_rng(9)
        times = DiurnalArrivals(500.0, amplitude=0.0).times(20_000, rng)
        inter = np.diff(times)
        cv = float(np.std(inter) / np.mean(inter))
        assert cv == pytest.approx(1.0, abs=0.05)

    def test_deterministic_per_seed(self):
        proc = DiurnalArrivals(100.0, period_s=2.0)
        a = proc.times(500, np.random.default_rng(5))
        b = proc.times(500, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_parameter_validation(self):
        with pytest.raises(ConfigError):
            DiurnalArrivals(0.0)
        with pytest.raises(ConfigError):
            DiurnalArrivals(100.0, period_s=0.0)
        with pytest.raises(ConfigError):
            DiurnalArrivals(100.0, amplitude=1.5)
        with pytest.raises(ConfigError):
            DiurnalArrivals(100.0).times(0, np.random.default_rng(0))


class TestDiurnalFullSwing:
    """Regression: amplitude == 1.0 drives the trough rate to exactly
    0, where the thinning acceptance ``u * peak <= 0`` could still
    fire on the measure-zero draw ``u == 0.0`` — an arrival at an
    instant of zero intensity.  The dataclass now rejects exactly 1.0
    (the CLI mirrors it under the flag's own name) and 0.999 stays a
    valid, non-stalling near-quiet night."""

    def test_amplitude_one_rejected(self):
        with pytest.raises(ConfigError, match=r"\[0, 1\)"):
            DiurnalArrivals(100.0, amplitude=1.0)

    def test_amplitude_one_rejected_via_factory(self):
        with pytest.raises(ConfigError, match=r"\[0, 1\)"):
            make_arrivals("diurnal", 100.0, diurnal_amplitude=1.0)

    def test_near_one_amplitude_generates_without_stall(self):
        proc = DiurnalArrivals(
            500.0, period_s=5.0, amplitude=0.999
        )
        times = proc.times(20_000, np.random.default_rng(3))
        assert np.all(np.diff(times) >= 0)
        # The thinned process still offers its configured mean rate.
        realized = len(times) / times[-1]
        assert realized == pytest.approx(500.0, rel=0.15)

    def test_near_one_amplitude_empties_the_trough(self):
        proc = DiurnalArrivals(
            1000.0, period_s=10.0, amplitude=0.999
        )
        times = proc.times(20_000, np.random.default_rng(4))
        phase = np.mod(times, 10.0)
        # Deep night [0, P/16) + (15P/16, P): ~0.3% of a full cycle's
        # arrivals land there at amplitude 0.999.
        night = np.sum((phase < 0.625) | (phase > 9.375))
        assert night / len(times) < 0.01


class TestThinNHPP:
    def test_zero_rate_stretches_produce_no_arrivals(self):
        from repro.serve.arrival import thin_nhpp

        # Rate is 0 on [1, 2): no arrival may land there, and the
        # candidate clock must walk through without stalling.
        def rate(t):
            return 0.0 if 1.0 <= t % 2.0 < 2.0 else 200.0

        times = thin_nhpp(2_000, 200.0, rate, np.random.default_rng(8))
        phase = np.mod(times, 2.0)
        assert not np.any((phase >= 1.0) & (phase < 2.0))

    def test_validation(self):
        from repro.serve.arrival import thin_nhpp

        with pytest.raises(ConfigError):
            thin_nhpp(0, 1.0, lambda t: 1.0, np.random.default_rng(0))
        with pytest.raises(ConfigError):
            thin_nhpp(1, 0.0, lambda t: 1.0, np.random.default_rng(0))


class TestSharedModulator:
    def _binned_correlation(self, kind: str) -> float:
        from repro.serve.arrival import SharedModulator

        mod = SharedModulator(
            kind=kind, period_s=10.0, amplitude=0.9, burst_factor=6.0,
            mean_dwell_s=0.2,
        )
        path = mod.build_path(np.random.default_rng([3, 0]))
        a = mod.fleet_times(6_000, 800.0, path, np.random.default_rng([3, 1]))
        b = mod.fleet_times(6_000, 400.0, path, np.random.default_rng([3, 2]))
        span = min(a[-1], b[-1])
        bins = np.linspace(0.0, span, 50)
        ca, _ = np.histogram(a, bins)
        cb, _ = np.histogram(b, bins)
        return float(np.corrcoef(ca, cb)[0, 1])

    @pytest.mark.parametrize("kind", ["diurnal", "burst"])
    def test_fleets_share_the_latent_swing(self, kind):
        assert self._binned_correlation(kind) > 0.8

    def test_independent_seeds_decorrelate(self):
        from repro.serve.arrival import SharedModulator

        mod = SharedModulator(kind="burst", burst_factor=6.0,
                              mean_dwell_s=0.2)
        # Two *different* latent paths: same marginal process, no
        # shared state — the correlation collapses.
        a = mod.fleet_times(
            6_000, 800.0,
            mod.build_path(np.random.default_rng([3, 0])),
            np.random.default_rng([3, 1]),
        )
        b = mod.fleet_times(
            6_000, 800.0,
            mod.build_path(np.random.default_rng([4, 0])),
            np.random.default_rng([3, 2]),
        )
        span = min(a[-1], b[-1])
        bins = np.linspace(0.0, span, 50)
        ca, _ = np.histogram(a, bins)
        cb, _ = np.histogram(b, bins)
        assert abs(float(np.corrcoef(ca, cb)[0, 1])) < 0.5

    def test_burst_path_is_query_order_invariant(self):
        from repro.serve.arrival import SharedModulator

        mod = SharedModulator(kind="burst", mean_dwell_s=0.05)
        path_a = mod.build_path(np.random.default_rng([9, 0]))
        path_b = mod.build_path(np.random.default_rng([9, 0]))
        ts = [0.01, 5.0, 0.3, 2.0, 4.99, 0.7]
        # Query far ahead first on one copy, in order on the other:
        # the lazily extended trajectory must be identical.
        ahead = [path_a(t) for t in ts]
        in_order = [path_b(t) for t in sorted(ts)]
        assert ahead == [
            in_order[sorted(ts).index(t)] for t in ts
        ]

    def test_mean_factor_is_one(self):
        from repro.serve.arrival import SharedModulator

        mod = SharedModulator(kind="burst", burst_factor=4.0,
                              burst_share=0.2, mean_dwell_s=0.05)
        path = mod.build_path(np.random.default_rng([1, 0]))
        grid = np.linspace(0.0, 50.0, 20_000)
        assert np.mean([path(t) for t in grid]) == pytest.approx(
            1.0, rel=0.15
        )

    def test_rejects_unknown_kind_and_full_swing(self):
        from repro.serve.arrival import SharedModulator

        with pytest.raises(ConfigError):
            SharedModulator(kind="sawtooth")
        with pytest.raises(ConfigError, match=r"\[0, 1\)"):
            SharedModulator(kind="diurnal", amplitude=1.0)


class TestTrace:
    def test_replays_prefix(self):
        proc = TraceArrivals((0.0, 0.5, 1.0, 2.5))
        np.testing.assert_array_equal(
            proc.times(3, np.random.default_rng(0)), [0.0, 0.5, 1.0]
        )

    def test_mean_rate(self):
        assert TraceArrivals((0.0, 1.0, 2.0)).mean_rate_qps == 1.5

    def test_rejects_unsorted_or_negative(self):
        with pytest.raises(ConfigError):
            TraceArrivals((1.0, 0.5))
        with pytest.raises(ConfigError):
            TraceArrivals((-1.0, 0.5))
        with pytest.raises(ConfigError):
            TraceArrivals(())

    def test_rejects_overrun(self):
        with pytest.raises(ConfigError):
            TraceArrivals((0.0, 1.0)).times(3, np.random.default_rng(0))


class TestFactory:
    def test_known_kinds(self):
        assert isinstance(make_arrivals("poisson", 10.0), PoissonArrivals)
        assert isinstance(make_arrivals("bursty", 10.0), BurstyArrivals)
        assert isinstance(
            make_arrivals("trace", 10.0, trace=(0.0, 1.0)), TraceArrivals
        )
        diurnal = make_arrivals(
            "diurnal", 10.0, diurnal_period_s=5.0, diurnal_amplitude=0.4
        )
        assert isinstance(diurnal, DiurnalArrivals)
        assert diurnal.period_s == 5.0
        assert diurnal.amplitude == 0.4

    def test_unknown_kind_and_missing_trace(self):
        with pytest.raises(ConfigError):
            make_arrivals("uniform", 10.0)
        with pytest.raises(ConfigError):
            make_arrivals("trace", 10.0)


class TestChunkedGeneration:
    """Chunked arrival generation is bit-identical to one-shot."""

    def test_poisson_iter_times_matches_times(self):
        arr = PoissonArrivals(120.0)
        for n, chunk in ((10_000, 1024), (5_000, 5_000), (777, 256)):
            one_shot = arr.times(n, np.random.default_rng(42))
            chunks = list(
                arr.iter_times(n, np.random.default_rng(42), chunk=chunk)
            )
            assert all(c.size <= chunk for c in chunks)
            assert np.array_equal(np.concatenate(chunks), one_shot)

    def test_iter_arrival_times_fallback_materializes(self):
        """Processes without a native ``iter_times`` (here: bursty)
        fall back to one-shot generation sliced into chunks."""
        from repro.serve.arrival import iter_arrival_times

        arr = BurstyArrivals(80.0, burst_factor=3.0)
        one_shot = arr.times(4_000, np.random.default_rng(7))
        chunks = list(
            iter_arrival_times(
                arr, 4_000, np.random.default_rng(7), chunk=512
            )
        )
        assert np.array_equal(np.concatenate(chunks), one_shot)

    def test_iter_arrival_times_prefers_native(self):
        from repro.serve.arrival import iter_arrival_times

        arr = PoissonArrivals(50.0)
        native = np.concatenate(
            list(arr.iter_times(2_000, np.random.default_rng(3), chunk=256))
        )
        generic = np.concatenate(
            list(
                iter_arrival_times(
                    arr, 2_000, np.random.default_rng(3), chunk=256
                )
            )
        )
        assert np.array_equal(generic, native)
