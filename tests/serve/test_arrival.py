"""Arrival processes: statistics, determinism, validation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.serve import (
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    TraceArrivals,
    make_arrivals,
)


class TestPoisson:
    def test_mean_rate(self):
        rng = np.random.default_rng(7)
        times = PoissonArrivals(100.0).times(20_000, rng)
        mean_inter = float(np.mean(np.diff(times)))
        assert mean_inter == pytest.approx(0.01, rel=0.05)

    def test_sorted_and_positive(self):
        times = PoissonArrivals(50.0).times(500, np.random.default_rng(1))
        assert np.all(times > 0)
        assert np.all(np.diff(times) >= 0)

    def test_deterministic_per_seed(self):
        a = PoissonArrivals(10.0).times(100, np.random.default_rng(5))
        b = PoissonArrivals(10.0).times(100, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigError):
            PoissonArrivals(0.0)

    def test_rejects_zero_requests(self):
        with pytest.raises(ConfigError):
            PoissonArrivals(1.0).times(0, np.random.default_rng(0))


class TestBursty:
    def test_preserves_mean_rate(self):
        rng = np.random.default_rng(11)
        proc = BurstyArrivals(1000.0, burst_factor=4.0, burst_share=0.2)
        times = proc.times(50_000, rng)
        realized = len(times) / times[-1]
        assert realized == pytest.approx(1000.0, rel=0.1)

    def test_burstier_than_poisson(self):
        """The MMPP inter-arrival CV must exceed the Poisson CV of 1."""
        rng = np.random.default_rng(13)
        proc = BurstyArrivals(1000.0, burst_factor=8.0, burst_share=0.1)
        inter = np.diff(proc.times(50_000, rng))
        cv = float(np.std(inter) / np.mean(inter))
        assert cv > 1.15

    def test_parameter_validation(self):
        with pytest.raises(ConfigError):
            BurstyArrivals(100.0, burst_factor=0.5)
        with pytest.raises(ConfigError):
            BurstyArrivals(100.0, burst_share=1.5)
        with pytest.raises(ConfigError):
            BurstyArrivals(100.0, mean_dwell_s=0.0)


class TestDiurnal:
    def test_preserves_mean_rate(self):
        rng = np.random.default_rng(3)
        proc = DiurnalArrivals(1_000.0, period_s=4.0, amplitude=0.9)
        times = proc.times(20_000, rng)
        realized = len(times) / times[-1]
        assert realized == pytest.approx(1_000.0, rel=0.1)

    def test_day_half_carries_the_load(self):
        """The phase histogram must match the modulation: the cycle
        starts at the trough, so the day half (phase 0.25-0.75) carries
        the bulk of the traffic at amplitude 0.9."""
        rng = np.random.default_rng(3)
        proc = DiurnalArrivals(1_000.0, period_s=4.0, amplitude=0.9)
        times = proc.times(20_000, rng)
        phase = (times % proc.period_s) / proc.period_s
        day = int(np.sum((phase > 0.25) & (phase < 0.75)))
        night = len(times) - day
        assert day > 2.5 * night

    def test_rate_at_trough_and_peak(self):
        proc = DiurnalArrivals(100.0, period_s=10.0, amplitude=0.5)
        assert proc.rate_at(0.0) == pytest.approx(50.0)
        assert proc.rate_at(5.0) == pytest.approx(150.0)
        assert proc.rate_at(10.0) == pytest.approx(50.0)

    def test_zero_amplitude_is_poisson_rate(self):
        rng = np.random.default_rng(9)
        times = DiurnalArrivals(500.0, amplitude=0.0).times(20_000, rng)
        inter = np.diff(times)
        cv = float(np.std(inter) / np.mean(inter))
        assert cv == pytest.approx(1.0, abs=0.05)

    def test_deterministic_per_seed(self):
        proc = DiurnalArrivals(100.0, period_s=2.0)
        a = proc.times(500, np.random.default_rng(5))
        b = proc.times(500, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_parameter_validation(self):
        with pytest.raises(ConfigError):
            DiurnalArrivals(0.0)
        with pytest.raises(ConfigError):
            DiurnalArrivals(100.0, period_s=0.0)
        with pytest.raises(ConfigError):
            DiurnalArrivals(100.0, amplitude=1.5)
        with pytest.raises(ConfigError):
            DiurnalArrivals(100.0).times(0, np.random.default_rng(0))


class TestTrace:
    def test_replays_prefix(self):
        proc = TraceArrivals((0.0, 0.5, 1.0, 2.5))
        np.testing.assert_array_equal(
            proc.times(3, np.random.default_rng(0)), [0.0, 0.5, 1.0]
        )

    def test_mean_rate(self):
        assert TraceArrivals((0.0, 1.0, 2.0)).mean_rate_qps == 1.5

    def test_rejects_unsorted_or_negative(self):
        with pytest.raises(ConfigError):
            TraceArrivals((1.0, 0.5))
        with pytest.raises(ConfigError):
            TraceArrivals((-1.0, 0.5))
        with pytest.raises(ConfigError):
            TraceArrivals(())

    def test_rejects_overrun(self):
        with pytest.raises(ConfigError):
            TraceArrivals((0.0, 1.0)).times(3, np.random.default_rng(0))


class TestFactory:
    def test_known_kinds(self):
        assert isinstance(make_arrivals("poisson", 10.0), PoissonArrivals)
        assert isinstance(make_arrivals("bursty", 10.0), BurstyArrivals)
        assert isinstance(
            make_arrivals("trace", 10.0, trace=(0.0, 1.0)), TraceArrivals
        )
        diurnal = make_arrivals(
            "diurnal", 10.0, diurnal_period_s=5.0, diurnal_amplitude=0.4
        )
        assert isinstance(diurnal, DiurnalArrivals)
        assert diurnal.period_s == 5.0
        assert diurnal.amplitude == 0.4

    def test_unknown_kind_and_missing_trace(self):
        with pytest.raises(ConfigError):
            make_arrivals("uniform", 10.0)
        with pytest.raises(ConfigError):
            make_arrivals("trace", 10.0)
