"""Dispatch decision matrix for the engine's columnar fast paths.

Each case starts from a configuration eligible for one of the kernels
(``"rr"``, ``"ll"``, or the controlled ``"rr-ctl"``) and flips exactly
one precondition: ``_fast_mode`` must land on the expected path and
record the *first failing precondition* (surfaced to ``--json`` as
``EngineRun.fallback``).  Unsupported control configurations —
governors, priority-preemptive shedding, DVFS ladders, telemetry —
must take the general loop and still produce reports identical to a
forced-general run.
"""

from unittest import mock

import numpy as np
import pytest

from repro.control import ControlScenario, simulate_controlled
from repro.control.simulator import ControlHooks
from repro.control.slo import (
    DeadlineShedding,
    NoShedding,
    PriorityShedding,
    QueueDepthShedding,
)
from repro.serve import Engine, EngineHooks, Fleet, make_policy
from repro.serve.arrival import PoissonArrivals
from repro.serve.engine import build_requests
from repro.serve.profile import build_mix


def _arena(n=256, qps=400.0, tied=False):
    mix = build_mix("mixed")
    if tied:
        # Nondecreasing with exact duplicates: every timestamp shared
        # by two arrivals, the shape zero-wait batching can't vectorize.
        times = np.repeat(0.01 * np.arange(1, n), 2)[:n]
    else:
        times = PoissonArrivals(qps).times(n, np.random.default_rng(5))
    return build_requests(mix, times, np.random.default_rng(9))


def _engine(policy="round-robin", hooks=None, instances=3, **kwargs):
    p = make_policy(policy)
    p.reset()
    defaults = dict(max_batch=8, max_wait_s=0.01)
    defaults.update(kwargs)
    return Engine(Fleet(instances), p, hooks=hooks, **defaults)


def _ctl_engine(shedder=None, governor=None, **kwargs):
    hooks = ControlHooks(
        shedder if shedder is not None else DeadlineShedding(),
        governor=governor,
    )
    kwargs.setdefault("priority_queues", True)
    return _engine(hooks=hooks, **kwargs)


class TestServePlaneMatrix:
    """The hook-free serve-plane kernels and their disqualifiers."""

    def test_baseline_round_robin(self):
        assert _engine()._fast_mode(_arena()) == "rr"

    def test_baseline_least_loaded(self):
        assert _engine(policy="least-loaded")._fast_mode(_arena()) == "ll"

    @pytest.mark.parametrize(
        "kwargs, reason_fragment",
        [
            ({"tick_s": 0.5}, "tick"),
            ({"priority_queues": True}, "priority queues"),
            ({"max_wait_s": 1e-10}, "sub-nanosecond"),
        ],
    )
    def test_config_flip_disqualifies(self, kwargs, reason_fragment):
        engine = _engine(**kwargs)
        assert engine._fast_mode(_arena()) is None
        assert reason_fragment in engine._fast_reason

    def test_overridden_hook_disqualifies(self):
        class Admit(EngineHooks):
            def on_arrival(self, request, instance, now, engine):
                return True

        engine = _engine(hooks=Admit())
        assert engine._fast_mode(_arena()) is None
        assert "on_arrival" in engine._fast_reason

    def test_dirty_instance_disqualifies(self):
        engine = _engine()
        engine.fleet[0].busy_until = 1.0
        assert engine._fast_mode(_arena()) is None
        assert "pre-run state" in engine._fast_reason

    def test_latency_scale_disqualifies_serve_plane(self):
        engine = _engine()
        engine.fleet[1].latency_scale = 1.2
        assert engine._fast_mode(_arena()) is None
        assert "latency scale" in engine._fast_reason

    def test_zero_wait_coincident_arrivals(self):
        """max_wait=0 vectorizes only for strictly increasing times."""
        engine = _engine(max_wait_s=0.0)
        assert engine._fast_mode(_arena()) == "rr"
        engine = _engine(max_wait_s=0.0)
        assert engine._fast_mode(_arena(tied=True)) is None
        assert "coincident" in engine._fast_reason


class TestControlPlaneMatrix:
    """The ``"rr-ctl"`` kernel: what opts in, what falls back."""

    @pytest.mark.parametrize(
        "shedder",
        [NoShedding(), DeadlineShedding(), QueueDepthShedding(16)],
        ids=["none", "deadline", "queue-depth"],
    )
    def test_vectorizable_shedding_opts_in(self, shedder):
        assert _ctl_engine(shedder)._fast_mode(_arena()) == "rr-ctl"

    def test_dvfs_instance_state_stays_eligible(self):
        """Latency scales and busy power fold into the kernel — only
        per-instance *profiles* force the general loop."""
        engine = _ctl_engine()
        engine.fleet[0].latency_scale = 1.3
        engine.fleet[0].busy_power_w = 2.0
        assert engine._fast_mode(_arena()) == "rr-ctl"
        engine = _ctl_engine()
        engine.fleet[0].profiles = {}
        assert engine._fast_mode(_arena()) is None
        assert "profiles" in engine._fast_reason

    def test_governor_disqualifies(self):
        from repro.control.autoscale import make_governor

        governor = make_governor("utilization", 0.01, 1, 3, 0.0)
        engine = _ctl_engine(governor=governor)
        assert engine.hooks.fast_admission() is None
        assert engine._fast_mode(_arena()) is None
        assert "on_arrival" in engine._fast_reason

    def test_priority_shedding_keeps_generic_path(self):
        """PriorityShedding subclasses QueueDepthShedding but preempts
        queued victims: it must not inherit the vectorized kernel."""
        engine = _ctl_engine(PriorityShedding(16))
        assert engine.hooks.fast_admission() is None
        assert engine._fast_mode(_arena()) is None

    def test_non_round_robin_routing_disqualifies(self):
        engine = _ctl_engine(policy="least-loaded")
        assert engine._fast_mode(_arena()) is None
        assert "round-robin" in engine._fast_reason

    def test_tick_disqualifies(self):
        engine = _ctl_engine(tick_s=0.01)
        assert engine._fast_mode(_arena()) is None
        assert "tick" in engine._fast_reason


class TestUnsupportedConfigsMatchGeneral:
    """Configs outside the kernel's envelope take the general loop and
    must report identically to a run with dispatch disabled."""

    @pytest.mark.parametrize(
        "overrides",
        [
            {"autoscale": "utilization", "min_instances": 1},
            {"shedding": "priority"},
            {"autoscale": "dvfs", "min_instances": 1},
        ],
        ids=["governor", "priority-shedding", "dvfs-ladder"],
    )
    def test_general_loop_bit_for_bit(self, overrides):
        scenario = ControlScenario(
            requests=1_500,
            qps=2_500.0,
            instances=2,
            policy="round-robin",
            seed=7,
            shedding=overrides.pop("shedding", "deadline"),
            **overrides,
        )
        report = simulate_controlled(scenario)
        assert report.engine_dispatch == "general"
        assert report.engine_fallback
        with mock.patch.object(
            Engine, "_fast_mode", lambda self, arena: None
        ):
            forced = simulate_controlled(scenario)
        assert forced.engine_dispatch == "general"
        assert report == forced

    def test_telemetry_routes_general_bit_for_bit(self):
        from repro.obs import Observability

        scenario = ControlScenario(
            requests=1_500,
            qps=2_500.0,
            instances=2,
            policy="round-robin",
            shedding="deadline",
            seed=7,
        )
        reference = simulate_controlled(scenario)
        assert reference.engine_dispatch == "rr-ctl"
        traced = simulate_controlled(
            scenario, obs=Observability(trace=True)
        )
        assert traced.engine_dispatch == "general"
        assert traced.engine_fallback
        assert traced == reference
