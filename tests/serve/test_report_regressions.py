"""Regressions for the overload-corner report bugs.

Two bugs rode the same blind spot — reports were only ever built from
runs where everything completed:

* an all-shed overload run (aggressive shedding, rho >> 1) left
  ``summarize_requests`` claiming a completed ``[0.0]`` latency, so
  reports carried fabricated zeros built from a phantom request (and a
  ``-inf`` makespan on the serve plane) instead of an explicit
  zero-admitted report;
* ``serve.simulator`` computed ``mean_batch_size`` from the *offered*
  count — shed requests never enter a batch, so any shedding hook made
  the stat overstate batch size (with ``max_batch=1`` it reported
  physically impossible batches > 1).
"""

import warnings

import numpy as np
import pytest

from repro.control import ControlScenario, SLOClass, simulate_controlled
from repro.eval.control import report_to_dict
from repro.serve import ServingScenario, simulate
from repro.serve.engine import EngineHooks, summarize_requests
from repro.serve.fleet import Request


def _drained(n=4, shed_all=True):
    """A hand-built request stream: every request offered, all shed."""
    requests = []
    for i in range(n):
        request = Request(
            index=i, model="m", profile=None, arrival=0.1 * i,
            slo="only",
        )
        request.shed = shed_all
        requests.append(request)
    return requests


class TestAllShedSummary:
    def test_summary_is_honestly_empty(self):
        """Pre-fix: a ``[0.0]`` placeholder masqueraded as one
        completed request (``latencies.size != completed``)."""
        summary = summarize_requests(_drained(), track_classes=True)
        assert summary.completed == 0
        assert summary.latencies.size == 0
        assert summary.waits.size == 0
        assert summary.class_buckets["only"][0] == 4

    def test_all_shed_control_report_is_explicit_zero(self):
        """rho >> 1 with an infeasible deadline sheds everything; the
        report must say so without NaN or RuntimeWarning."""
        scenario = ControlScenario(
            mix="v1-224",
            qps=5_000.0,
            requests=300,
            instances=1,
            max_batch=1,
            max_wait_ms=0.0,
            slo_classes=(
                SLOClass("only", deadline_ms=1e-6, target=0.9),
            ),
            shedding="deadline",
            seed=5,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            report = simulate_controlled(scenario)
        assert report.requests == 0
        assert report.shed_requests == report.offered_requests == 300
        assert report.latency_mean_s == 0.0
        assert report.latency_p99_s == 0.0
        assert report.latency_max_s == 0.0
        assert report.sustained_qps == 0.0
        assert report.mean_batch_size == 0.0
        assert report.joules_per_request is None
        (cs,) = report.class_stats
        assert (cs.offered, cs.shed, cs.met) == (300, 300, 0)
        assert cs.attainment == 0.0
        payload = report_to_dict(report)
        for key, value in payload.items():
            if isinstance(value, float):
                assert np.isfinite(value), (key, value)

    def test_all_shed_serve_report_is_explicit_zero(self):
        """The serve plane with a shed-everything hook: pre-fix the
        makespan was ``-inf`` (no completion ever updated it)."""

        class ShedAll(EngineHooks):
            def on_arrival(self, request, instance, now, engine):
                return False

        report = simulate(
            ServingScenario(requests=50, instances=1, seed=2),
            hooks=ShedAll(),
        )
        assert report.requests == 0
        assert report.shed_requests == report.offered_requests == 50
        assert np.isfinite(report.makespan_s)
        assert report.makespan_s == 0.0
        assert report.latency_p99_s == 0.0
        assert report.utilization == (0.0,)


class TestPreExtensionCacheEntries:
    """Warm caches hold reports pickled before the per-model fields
    existed; unpickling must backfill the defaults instead of
    producing an instance that crashes the first ``asdict``."""

    def test_report_backfills_model_stats(self):
        from repro.serve.simulator import ServingReport

        report = simulate(ServingScenario(requests=50, instances=1))
        state = dict(report.__dict__)
        del state["model_stats"]  # as a pre-tenancy pickle stores it
        legacy = ServingReport.__new__(ServingReport)
        legacy.__setstate__(state)  # what pickle.load invokes
        assert legacy.model_stats == ()
        assert report_to_dict(legacy) == report_to_dict(report)

    def test_class_stats_backfill_model(self):
        report = simulate_controlled(ControlScenario(requests=100))
        cs = report.class_stats[0]
        state = dict(cs.__dict__)
        del state["model"]
        legacy = SLOClass.__new__(type(cs))
        legacy.__setstate__(state)
        assert legacy.model is None
        assert legacy == cs


class TestTelemetryOnDegenerateRuns:
    """The PR-5 honest-zero contract extended to the telemetry
    surfaces: metrics tables and timelines on all-shed / zero-admitted
    runs carry finite zeros, never inf/nan or a div-by-zero crash."""

    _ALL_SHED = ControlScenario(
        mix="v1-224",
        qps=5_000.0,
        requests=300,
        instances=1,
        max_batch=1,
        max_wait_ms=0.0,
        slo_classes=(
            SLOClass("only", deadline_ms=1e-6, target=0.9),
        ),
        shedding="deadline",
        seed=5,
    )

    def test_all_shed_metrics_are_finite(self):
        from repro.eval.obs import render_metrics_timeline
        from repro.obs import Observability

        obs = Observability(trace=True, metrics_every_s=0.005)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            report = simulate_controlled(self._ALL_SHED, obs=obs)
        assert report.requests == 0
        assert obs.counts() == {
            "offered": 300, "completed": 0, "shed": 300
        }
        metrics = obs.metrics_payload()
        assert metrics["timelines"], "no timeline was sampled"
        for timeline in metrics["timelines"]:
            for sample in timeline["samples"]:
                for key, value in sample.items():
                    values = (
                        value if isinstance(value, list) else [value]
                    )
                    for entry in values:
                        if isinstance(entry, float):
                            assert np.isfinite(entry), (key, entry)
        text = render_metrics_timeline(metrics)
        assert "inf" not in text and "nan" not in text

    def test_empty_timeline_renders(self):
        from repro.eval.obs import render_metrics_timeline

        payload = {
            "window_s": 1.0,
            "timelines": [
                {
                    "pid": 0,
                    "window_s": 1.0,
                    "samples": [],
                    "dropped_samples": 0,
                }
            ],
        }
        assert "no samples" in render_metrics_timeline(payload)

    def test_report_backfills_engine_counters(self):
        """Engine counters mirror the model_stats treatment: a report
        pickled before they existed unpickles to the defaults and
        produces the identical JSON payload."""
        from repro.serve.simulator import ServingReport

        report = simulate(ServingScenario(requests=50, instances=1))
        state = dict(report.__dict__)
        for key in (
            "engine_events", "engine_peak_heap", "engine_dispatch"
        ):
            del state[key]
        legacy = ServingReport.__new__(ServingReport)
        legacy.__setstate__(state)
        assert legacy.engine_dispatch == ""
        assert legacy.engine_events == 0
        assert report_to_dict(legacy) == report_to_dict(report)

    def test_engine_counters_stay_out_of_report_payload(self):
        """report_to_dict drops the counters unconditionally — they
        are execution telemetry, and leaking them would break the
        unregenerated parity goldens."""
        from repro.eval.obs import engine_counters_dict

        report = simulate(ServingScenario(requests=50, instances=1))
        payload = report_to_dict(report)
        assert "engine_events" not in payload
        assert "engine_peak_heap" not in payload
        assert "engine_dispatch" not in payload
        counters = engine_counters_dict(report)
        assert counters == {
            "events": report.engine_events,
            "peak_heap": report.engine_peak_heap,
            "dispatch": "ll",
        }

    def test_engine_counters_do_not_affect_equality(self):
        """compare=False: two physically identical runs stay == even
        if one took the fast path and one the general loop."""
        import dataclasses as dc

        scenario = ServingScenario(requests=100, instances=2, seed=4)
        report = simulate(scenario)
        relabeled = dc.replace(report, engine_dispatch="general")
        assert relabeled == report


class _ShedOddIndices(EngineHooks):
    """Deterministic 50% shedding: odd submission indices never admit."""

    def on_arrival(self, request, instance, now, engine):
        return request.index % 2 == 0


class TestMeanBatchSizeUnderShedding:
    def test_batch_size_counts_served_not_offered(self):
        """With ``max_batch=1`` every launched batch holds exactly one
        request, so the true mean batch size is exactly 1.0; the
        pre-fix offered-count formula reported ~2.0 under 50% shed —
        a physically impossible batch."""
        scenario = ServingScenario(
            requests=400,
            instances=2,
            max_batch=1,
            qps=1_000.0,
            seed=3,
        )
        report = simulate(scenario, hooks=_ShedOddIndices())
        assert report.shed_requests == 200
        assert report.requests == 200
        assert report.mean_batch_size == pytest.approx(1.0)
        assert report.mean_batch_size <= scenario.max_batch

    def test_sustained_qps_counts_served_not_offered(self):
        report = simulate(
            ServingScenario(
                requests=400, instances=2, qps=1_000.0, seed=3
            ),
            hooks=_ShedOddIndices(),
        )
        assert report.sustained_qps == pytest.approx(
            report.requests / report.makespan_s
        )

    def test_default_hooks_unchanged(self):
        """Without shedding the completed count equals the offered one,
        so the fixed formula reproduces every pre-fix report."""
        scenario = ServingScenario(requests=300, instances=2, seed=1)
        a = simulate(scenario)
        b = simulate(scenario, hooks=None)
        assert a == b
        assert a.requests == a.offered_requests == 300
        assert a.shed_requests == 0
