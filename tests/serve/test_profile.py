"""Service profiles and scenario mixes."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.serve import SCENARIO_MIXES, build_mix, service_profile
from repro.sim import AcceleratorRunner
from repro.sim.pipeline import layer_latency


class TestServiceProfile:
    def test_cycles_are_fastpath_layer_latencies(self):
        profile = service_profile("mobilenet-v1-224")
        from repro.nn.zoo import mobilenet_v1_imagenet_specs

        expected = [
            layer_latency(s).total_cycles
            for s in mobilenet_v1_imagenet_specs()
        ]
        assert list(profile.layer_cycles) == expected
        assert profile.total_cycles == sum(expected)

    def test_matches_fast_runner_on_workload(self, small_workload):
        """Profile cycles from pure specs equal what the fast runner
        measures executing the actual quantized network."""
        profile = service_profile(
            "small",
            specs=[layer.spec for layer in small_workload.qmodel.layers],
        )
        runner = AcceleratorRunner(
            small_workload.qmodel, verify=False, fast=True
        )
        run = runner.run_network(small_workload.images[0])
        assert profile.total_cycles == run.total_cycles

    def test_batch_seconds(self):
        profile = service_profile("edge-tiny")
        warm = profile.batch_seconds(4, cold=False)
        cold = profile.batch_seconds(4, cold=True)
        assert warm == pytest.approx(4 * profile.per_image_seconds)
        assert cold == pytest.approx(warm + profile.setup_seconds)
        with pytest.raises(ConfigError):
            profile.batch_seconds(0, cold=False)

    def test_setup_time_scales_with_bandwidth(self):
        slow = service_profile("edge-tiny", weight_bandwidth=1e9)
        fast = service_profile("edge-tiny", weight_bandwidth=4e9)
        assert slow.setup_seconds == pytest.approx(4 * fast.setup_seconds)
        with pytest.raises(ConfigError):
            service_profile("edge-tiny", weight_bandwidth=0.0)

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigError):
            service_profile("resnet-50")


class TestScenarioMix:
    def test_every_named_mix_builds(self):
        for name in SCENARIO_MIXES:
            mix = build_mix(name)
            assert mix.profiles
            assert mix.mean_service_seconds() > 0

    def test_unknown_mix_rejected(self):
        with pytest.raises(ConfigError):
            build_mix("nope")

    def test_mixed_traffic_is_heterogeneous(self):
        mix = build_mix("mixed")
        times = [p.per_image_seconds for p in mix.profiles]
        assert max(times) / min(times) > 5

    def test_sampling_follows_weights(self):
        mix = build_mix("mixed")
        rng = np.random.default_rng(3)
        draws = [mix.sample(rng) for _ in range(20_000)]
        total = sum(mix.weights)
        for name, weight in zip(mix.model_names, mix.weights):
            frac = draws.count(name) / len(draws)
            assert frac == pytest.approx(weight / total, abs=0.02)

    def test_profile_lookup(self):
        mix = build_mix("v1-224")
        assert mix.profile("mobilenet-v1-224").name == "mobilenet-v1-224"
        with pytest.raises(ConfigError):
            mix.profile("edge-tiny")
