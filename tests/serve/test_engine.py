"""The shared discrete-event kernel: hook protocol and launch paths."""

import pytest

from repro.errors import ConfigError
from repro.serve import (
    Engine,
    EngineHooks,
    Fleet,
    Request,
    make_policy,
    service_profile,
)

EDGE = service_profile("edge-tiny")
V1 = service_profile("mobilenet-v1-224")


def _requests(count, gap=0.01, model="edge-tiny", profile=None):
    profile = profile if profile is not None else EDGE
    return [
        Request(
            index=i, model=model, profile=profile, arrival=gap * (i + 1)
        )
        for i in range(count)
    ]


def _engine(fleet, hooks=None, tick_s=None, **kwargs):
    policy = make_policy(kwargs.pop("policy", "least-loaded"))
    policy.reset()
    defaults = dict(max_batch=8, max_wait_s=0.0)
    defaults.update(kwargs)
    return Engine(fleet, policy, hooks=hooks, tick_s=tick_s, **defaults)


class TestKernel:
    def test_drains_every_request(self):
        requests = _requests(64)
        run = _engine(Fleet(2)).run(requests)
        assert all(r.finish >= 0 for r in requests)
        # One arrival event per request plus >= 1 completion per batch.
        assert run.events > len(requests)
        assert run.tick_actions == 0

    def test_launch_head_matches_launch_next_batch(self):
        """The engine's batch fast path is the public two-step API."""
        fast, slow = Fleet(1)[0], Fleet(1)[0]
        for instance in (fast, slow):
            for request in _requests(5, gap=0.0) + _requests(
                3, gap=0.0, model="mobilenet-v1-224", profile=V1
            ):
                instance.enqueue(request)
        assert fast.launch_head(4, now=0.0) == slow.launch(
            slow.next_batch(4), now=0.0
        )
        assert fast.queued_seconds == slow.queued_seconds
        assert [r.model for r in fast.queue] == [
            r.model for r in slow.queue
        ]

    def test_validation(self):
        fleet = Fleet(1)
        policy = make_policy("round-robin")
        with pytest.raises(ConfigError):
            Engine(fleet, policy, max_batch=0, max_wait_s=0.0)
        with pytest.raises(ConfigError):
            Engine(fleet, policy, max_batch=1, max_wait_s=-1.0)
        with pytest.raises(ConfigError):
            Engine(fleet, policy, max_batch=1, max_wait_s=0.0, tick_s=0.0)


class TestBuildRequests:
    def test_matches_scalar_sampling_draw_for_draw(self):
        """The vectorized sampler must stay bit-identical to the
        scalar ScenarioMix.sample / per-request class-draw loop the
        legacy simulators used (same RNG stream, same boundaries)."""
        import numpy as np

        from repro.control.slo import DEFAULT_SLO_CLASSES
        from repro.serve.engine import build_requests
        from repro.serve.profile import build_mix

        mix = build_mix("mixed")
        times = np.linspace(0.001, 1.0, 500)

        vectorized = build_requests(
            mix, times, np.random.default_rng(17)
        )
        rng = np.random.default_rng(17)
        scalar = [mix.sample(rng) for _ in range(len(times))]
        assert [r.model for r in vectorized] == scalar

        classes = DEFAULT_SLO_CLASSES
        vectorized = build_requests(
            mix, times, np.random.default_rng(17), slo_classes=classes
        )
        rng = np.random.default_rng(17)
        total = sum(c.share for c in classes)
        scalar_pairs = []
        for _ in range(len(times)):
            model = mix.sample(rng)
            u = rng.random() * total
            acc = 0.0
            for cls in classes:
                acc += cls.share
                if u < acc:
                    break
            scalar_pairs.append((model, cls.name))
        assert [(r.model, r.slo) for r in vectorized] == scalar_pairs


class TestHooks:
    def test_on_arrival_sheds(self):
        class EveryOther(EngineHooks):
            def on_arrival(self, request, instance, now, engine):
                return request.index % 2 == 0

        requests = _requests(40)
        _engine(Fleet(1), hooks=EveryOther()).run(requests)
        shed = [r for r in requests if r.shed]
        assert len(shed) == 20
        assert all(r.index % 2 == 1 for r in shed)
        assert all(r.finish < 0 for r in shed)
        assert all(
            r.finish >= 0 for r in requests if not r.shed
        )

    def test_on_tick_fires_until_drain(self):
        ticks = []

        class Ticker(EngineHooks):
            def on_tick(self, now, engine):
                ticks.append(now)
                return 1

        requests = _requests(10, gap=0.005)
        run = _engine(Fleet(1), hooks=Ticker(), tick_s=0.004).run(requests)
        assert run.tick_actions == len(ticks)
        assert len(ticks) >= 10
        # Ticks stop once the offered traffic has drained.
        assert ticks[-1] <= requests[-1].finish + 2 * 0.004
        gaps = [b - a for a, b in zip(ticks, ticks[1:])]
        assert all(gap == pytest.approx(0.004) for gap in gaps)

    def test_on_complete_sees_each_reexamination(self):
        seen = []

        class Watcher(EngineHooks):
            def on_complete(self, instance, now, engine):
                seen.append((instance.index, now))

        requests = _requests(12)
        _engine(Fleet(2), hooks=Watcher(), policy="round-robin").run(
            requests
        )
        assert len(seen) >= 2  # at least one completion per instance
        assert {index for index, _ in seen} == {0, 1}

    def test_routing_skips_inactive_instances_under_ticks(self):
        """With a tick scheduled, the policy sees only the active
        slice, so a powered-down instance receives no traffic."""
        fleet = Fleet(3)
        fleet[1].active = False
        requests = _requests(30)
        _engine(
            fleet, hooks=EngineHooks(), tick_s=1.0, policy="round-robin"
        ).run(requests)
        assert fleet[1].served == 0
        assert fleet[0].served + fleet[2].served == 30

    def test_hook_deactivation_respected_without_ticks(self):
        """Routing must honour an instance a *hook* (not a governor)
        powers down mid-run, even when no tick is scheduled."""

        class RetireAfterTen(EngineHooks):
            def on_arrival(self, request, instance, now, engine):
                if request.index == 10:
                    engine.fleet[0].active = False
                return True

        fleet = Fleet(2)
        requests = _requests(40)
        _engine(fleet, hooks=RetireAfterTen(), policy="round-robin").run(
            requests
        )
        served_late = [
            r for r in requests if r.index > 10 and r.finish >= 0
        ]
        assert len(served_late) == 29
        assert fleet[1].served >= 29  # instance 0 got none of them

    def test_tick_rearms_wake_after_busy_horizon_grows(self):
        """A tick that extends busy_until (e.g. a warm-up) must not
        swallow the pending completion: the engine re-arms a wake."""

        class Extender(EngineHooks):
            def __init__(self):
                self.extended = False

            def on_tick(self, now, engine):
                instance = engine.fleet[0]
                if not self.extended and instance.busy_until > now:
                    instance.busy_until += 0.05
                    self.extended = True
                    return 1
                return 0

        requests = _requests(6, gap=0.0002)
        run = _engine(Fleet(1), hooks=Extender(), tick_s=0.0005).run(
            requests
        )
        assert run.tick_actions == 1
        assert all(r.finish >= 0 for r in requests)


class TestFastPathParity:
    """A/B: the columnar fast paths equal the general loop exactly.

    ``priority_queues=True`` with all-default-priority requests is a
    behavioural no-op (FIFO within one priority level) but disqualifies
    every fast path, so the same workload runs through the general
    heap loop — finishes, starts, events, and instance counters must
    be bit-identical.
    """

    @pytest.mark.parametrize("policy", ["round-robin", "least-loaded"])
    def test_fast_equals_general(self, policy):
        import numpy as np

        from repro.serve.arrival import PoissonArrivals
        from repro.serve.engine import build_requests
        from repro.serve.profile import build_mix

        mix = build_mix("mixed")
        times = PoissonArrivals(400.0).times(
            4_000, np.random.default_rng(5)
        )

        def run(force_general):
            rng = np.random.default_rng(9)
            arena = build_requests(mix, times, rng)
            engine = _engine(
                Fleet(3),
                policy=policy,
                max_wait_s=0.01,
                priority_queues=force_general,
            )
            assert (
                engine._fast_mode(arena) is None
            ) == force_general
            run_info = engine.run(arena)
            return arena, run_info, engine.fleet

        fast_arena, fast_run, fast_fleet = run(False)
        gen_arena, gen_run, gen_fleet = run(True)
        assert np.array_equal(fast_arena.finish, gen_arena.finish)
        assert np.array_equal(fast_arena.start, gen_arena.start)
        # Event counts are NOT compared: the general heap loop counts
        # stale wake pops (provably no-ops) that the fast paths never
        # materialize, so its count is an upper bound.
        assert 0 < fast_run.events <= gen_run.events
        for fi, gi in zip(fast_fleet, gen_fleet):
            assert fi.busy_until == gi.busy_until
            assert fi.busy_seconds == gi.busy_seconds
            assert fi.served == gi.served
            assert fi.batches == gi.batches
            assert fi.setups == gi.setups
            assert fi.loaded_model == gi.loaded_model
