"""Synthetic CIFAR10-like dataset: determinism, structure, learnability."""

import numpy as np
import pytest

from repro.datasets import SyntheticImageDataset, make_cifar10_like
from repro.errors import ConfigError
from repro.nn import SGD, Linear, ReLU, Sequential, Trainer


class TestShapes:
    def test_cifar_geometry(self):
        ds = make_cifar10_like(num_samples=12, seed=0)
        assert ds.images.shape == (12, 3, 32, 32)
        assert ds.labels.shape == (12,)
        assert ds.labels.min() >= 0 and ds.labels.max() < 10

    def test_len(self):
        assert len(make_cifar10_like(7)) == 7

    def test_custom_size(self):
        ds = SyntheticImageDataset(num_samples=4, size=16, num_classes=4)
        assert ds.images.shape == (4, 3, 16, 16)


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = make_cifar10_like(8, seed=3)
        b = make_cifar10_like(8, seed=3)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seed_different_data(self):
        a = make_cifar10_like(8, seed=3)
        b = make_cifar10_like(8, seed=4)
        assert not np.array_equal(a.images, b.images)


class TestStructure:
    def test_images_are_bounded(self):
        ds = make_cifar10_like(32, seed=0)
        assert np.abs(ds.images).max() < 4.0

    def test_within_class_more_similar_than_between(self):
        ds = SyntheticImageDataset(num_samples=200, noise_std=0.1, seed=5)
        means = {}
        for cls in range(10):
            mask = ds.labels == cls
            if mask.sum() >= 2:
                means[cls] = ds.images[mask].mean(axis=0)
        classes = sorted(means)
        # mean same-class residual should be smaller than distance
        # between different class prototypes for at least most pairs
        within = []
        for cls in classes:
            mask = ds.labels == cls
            within.append(
                np.mean([np.linalg.norm(img - means[cls])
                         for img in ds.images[mask]])
            )
        between = [
            np.linalg.norm(means[a] - means[b])
            for i, a in enumerate(classes)
            for b in classes[i + 1:]
        ]
        assert np.median(between) > 0.1  # classes genuinely differ

    def test_split(self):
        ds = make_cifar10_like(20, seed=1)
        (tx, ty), (vx, vy) = ds.split(0.75)
        assert tx.shape[0] == 15 and vx.shape[0] == 5
        assert ty.shape[0] == 15 and vy.shape[0] == 5

    def test_split_validation(self):
        ds = make_cifar10_like(8)
        with pytest.raises(ConfigError):
            ds.split(1.5)


class TestValidation:
    def test_bad_params(self):
        with pytest.raises(ConfigError):
            SyntheticImageDataset(num_samples=0)
        with pytest.raises(ConfigError):
            SyntheticImageDataset(num_samples=4, size=2)
        with pytest.raises(ConfigError):
            SyntheticImageDataset(num_samples=4, num_classes=1)
        with pytest.raises(ConfigError):
            SyntheticImageDataset(num_samples=4, noise_std=-1)


class TestLearnability:
    def test_linear_probe_beats_chance(self):
        # the task must be learnable for training to be meaningful
        ds = SyntheticImageDataset(num_samples=300, noise_std=0.15, seed=9)
        x = ds.images.reshape(len(ds), -1)
        rng = np.random.default_rng(0)
        model = Sequential([Linear(x.shape[1], 64, rng=rng), ReLU(),
                            Linear(64, 10, rng=rng)])
        trainer = Trainer(model, SGD(list(model.parameters()), lr=0.01),
                          batch_size=32)
        result = trainer.fit(x, ds.labels, epochs=8)
        assert result.final_accuracy > 0.3  # chance is 0.1
