"""ArchConfig, on-chip buffers, external memory."""

import numpy as np
import pytest

from repro.arch import ArchConfig, Buffer, BufferSet, EDEA_CONFIG, ExternalMemory
from repro.errors import BufferError_, ConfigError, SimulationError


class TestArchConfig:
    def test_paper_engine_sizes(self):
        assert EDEA_CONFIG.dwc_macs_per_cycle == 288
        assert EDEA_CONFIG.pwc_macs_per_cycle == 512
        assert EDEA_CONFIG.total_macs_per_cycle == 800

    def test_clock_is_1ghz(self):
        assert EDEA_CONFIG.clock_hz == 1e9
        assert EDEA_CONFIG.cycle_time_s == 1e-9

    def test_init_cycles_is_9(self):
        assert EDEA_CONFIG.init_cycles == 9

    def test_input_tile_extents(self):
        # 8x8 output tile: 10x10 input at stride 1, 17x17 at stride 2
        assert EDEA_CONFIG.dwc_input_tile_stride1 == 10
        assert EDEA_CONFIG.dwc_input_tile_stride2 == 17

    def test_ifmap_buffer_covers_worst_case(self):
        assert EDEA_CONFIG.dwc_ifmap_buffer_entries == 17 * 17 * 8

    def test_intermediate_buffer_is_one_pwc_tile(self):
        # Fig. 5: DWC ofmap 2x2x8 == PWC ifmap
        assert EDEA_CONFIG.intermediate_buffer_entries == 2 * 2 * 8

    def test_peak_ops(self):
        assert EDEA_CONFIG.peak_ops_per_second == pytest.approx(1.6e12)

    def test_spatial_tiles(self):
        assert EDEA_CONFIG.spatial_tiles(32) == 16
        assert EDEA_CONFIG.spatial_tiles(16) == 4
        assert EDEA_CONFIG.spatial_tiles(8) == 1
        assert EDEA_CONFIG.spatial_tiles(2) == 1

    def test_scaled_config(self):
        cfg = ArchConfig(td=16, tk=32)
        assert cfg.dwc_macs_per_cycle == 576
        assert cfg.pwc_macs_per_cycle == 2048

    def test_validation(self):
        with pytest.raises(ConfigError):
            ArchConfig(td=0)
        with pytest.raises(ConfigError):
            ArchConfig(clock_hz=0)
        with pytest.raises(ConfigError):
            ArchConfig(init_cycles=-1)
        with pytest.raises(ConfigError):
            ArchConfig(max_output_tile=1)  # smaller than Tn
        with pytest.raises(ConfigError):
            ArchConfig(max_output_tile=7)  # not a multiple of Tn

    def test_frozen(self):
        with pytest.raises(AttributeError):
            EDEA_CONFIG.td = 4


class TestBuffer:
    def test_fill_and_read(self):
        buf = Buffer("x", 100)
        buf.fill(60)
        buf.read(60)
        assert buf.reads == 60 and buf.writes == 60
        assert buf.total_accesses == 120

    def test_fill_replaces(self):
        buf = Buffer("x", 100)
        buf.fill(60)
        buf.fill(50)
        assert buf.resident == 50

    def test_overflow_on_fill(self):
        buf = Buffer("x", 10)
        with pytest.raises(BufferError_):
            buf.fill(11)

    def test_underflow_on_read(self):
        buf = Buffer("x", 10)
        buf.fill(5)
        with pytest.raises(BufferError_):
            buf.read(6)

    def test_streaming_write_overflow(self):
        buf = Buffer("x", 10)
        buf.write(6)
        with pytest.raises(BufferError_):
            buf.write(5)

    def test_drain(self):
        buf = Buffer("x", 10)
        buf.fill(8)
        buf.drain()
        assert buf.resident == 0
        buf.write(10)  # full capacity available again

    def test_negative_amounts_rejected(self):
        buf = Buffer("x", 10)
        with pytest.raises(BufferError_):
            buf.fill(-1)
        with pytest.raises(BufferError_):
            buf.read(-1)
        with pytest.raises(BufferError_):
            buf.write(-1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(BufferError_):
            Buffer("x", 0)

    def test_reset_counters_keeps_contents(self):
        buf = Buffer("x", 10)
        buf.fill(4)
        buf.reset_counters()
        assert buf.writes == 0 and buf.resident == 4


class TestBufferSet:
    def make(self):
        return BufferSet(100, 72, 16, 32, 128)

    def test_five_buffers_as_in_fig4(self):
        names = [b.name for b in self.make().all()]
        assert names == [
            "dwc_ifmap", "dwc_weight", "offline", "intermediate", "pwc_weight"
        ]

    def test_access_summary(self):
        buffers = self.make()
        buffers.dwc_ifmap.fill(10)
        summary = buffers.access_summary()
        assert summary["dwc_ifmap"] == 10
        assert summary["pwc_weight"] == 0

    def test_reset(self):
        buffers = self.make()
        buffers.offline.fill(4)
        buffers.reset_counters()
        assert all(v == 0 for v in buffers.access_summary().values())


class TestExternalMemory:
    def test_store_load(self):
        mem = ExternalMemory()
        arr = np.arange(4)
        mem.store("t", arr)
        assert mem.load("t") is arr

    def test_missing_tensor_raises(self):
        with pytest.raises(SimulationError):
            ExternalMemory().load("nope")

    def test_counters(self):
        mem = ExternalMemory()
        mem.read_activations(10)
        mem.write_activations(5)
        mem.read_weights(7)
        mem.read_offline(2)
        assert mem.total_activation_accesses == 15
        assert mem.total_accesses == 24

    def test_negative_counts_rejected(self):
        mem = ExternalMemory()
        with pytest.raises(SimulationError):
            mem.read_activations(-1)

    def test_reset_counters(self):
        mem = ExternalMemory()
        mem.read_weights(3)
        mem.reset_counters()
        assert mem.total_accesses == 0
