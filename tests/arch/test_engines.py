"""PE primitives and the DWC/PWC engine functional models."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.arch import (
    DWCEngine,
    EDEA_CONFIG,
    MACUnit,
    NonConvUnitBank,
    PWCEngine,
    adder_tree_sum,
    mac_multiply,
)
from repro.arch.params import ArchConfig
from repro.errors import ShapeError
from repro.fixedpoint import Q8_16
from repro.nn import functional as F
from repro.quant import NonConvParams


def int8(rng, shape):
    return rng.integers(-128, 128, size=shape).astype(np.int8)


class TestPEPrimitives:
    def test_mac_multiply(self):
        assert mac_multiply(3, -4) == -12
        assert mac_multiply(-128, -128) == 16384

    def test_mac_multiply_range_check(self):
        with pytest.raises(ShapeError):
            mac_multiply(200, 1)

    def test_adder_tree_matches_sum(self, rng):
        values = rng.integers(-1000, 1000, size=9).tolist()
        assert adder_tree_sum(values) == sum(values)

    def test_adder_tree_single_input(self):
        assert adder_tree_sum([7]) == 7

    def test_adder_tree_empty_raises(self):
        with pytest.raises(ShapeError):
            adder_tree_sum([])

    def test_mac_unit_accumulates(self):
        unit = MACUnit()
        unit.mac(2, 3)
        unit.mac(-1, 4)
        assert unit.accumulator == 2
        unit.clear()
        assert unit.accumulator == 0

    @given(st.lists(
        st.tuples(st.integers(-128, 127), st.integers(-128, 127)),
        min_size=1, max_size=64,
    ))
    def test_mac_unit_equals_dot_product(self, pairs):
        unit = MACUnit()
        for a, w in pairs:
            unit.mac(a, w)
        assert unit.accumulator == sum(a * w for a, w in pairs)


class TestDWCEngine:
    def test_matches_reference_depthwise_conv_stride1(self, rng):
        engine = DWCEngine(EDEA_CONFIG)
        x = int8(rng, (8, 4, 4))
        w = int8(rng, (8, 3, 3))
        result = engine.compute_tile(x, w, stride=1)
        ref = F.depthwise_conv2d(
            x[np.newaxis].astype(np.int64), w.astype(np.int64), None, 1, 0
        )[0]
        np.testing.assert_array_equal(result.acc, ref)

    def test_matches_reference_stride2(self, rng):
        engine = DWCEngine(EDEA_CONFIG)
        x = int8(rng, (8, 5, 5))
        w = int8(rng, (8, 3, 3))
        result = engine.compute_tile(x, w, stride=2)
        ref = F.depthwise_conv2d(
            x[np.newaxis].astype(np.int64), w.astype(np.int64), None, 2, 0
        )[0]
        np.testing.assert_array_equal(result.acc, ref)

    def test_matches_scalar_mac_units(self, rng):
        """The vectorized engine equals an explicit PE-by-PE evaluation."""
        engine = DWCEngine(EDEA_CONFIG)
        x = int8(rng, (8, 4, 4))
        w = int8(rng, (8, 3, 3))
        result = engine.compute_tile(x, w, stride=1)
        for ch in range(8):
            for oy in range(2):
                for ox in range(2):
                    unit = MACUnit()
                    for ky in range(3):
                        for kx in range(3):
                            unit.mac(int(x[ch, oy + ky, ox + kx]),
                                     int(w[ch, ky, kx]))
                    assert unit.accumulator == result.acc[ch, oy, ox]

    def test_mac_count_is_288(self, rng):
        engine = DWCEngine(EDEA_CONFIG)
        result = engine.compute_tile(
            int8(rng, (8, 4, 4)), int8(rng, (8, 3, 3)), stride=1
        )
        assert result.macs == 288

    def test_counters_accumulate(self, rng):
        engine = DWCEngine(EDEA_CONFIG)
        for _ in range(3):
            engine.compute_tile(int8(rng, (8, 4, 4)), int8(rng, (8, 3, 3)), 1)
        assert engine.invocations == 3
        assert engine.total_macs == 3 * 288

    def test_zero_fraction_reported(self):
        engine = DWCEngine(EDEA_CONFIG)
        x = np.zeros((8, 4, 4), dtype=np.int8)
        w = np.ones((8, 3, 3), dtype=np.int8)
        result = engine.compute_tile(x, w, 1)
        assert result.nonzero_input_fraction == 0.0

    def test_wrong_tile_shape_raises(self, rng):
        engine = DWCEngine(EDEA_CONFIG)
        with pytest.raises(ShapeError):
            engine.compute_tile(int8(rng, (8, 4, 4)), int8(rng, (8, 3, 3)), 2)
        with pytest.raises(ShapeError):
            engine.compute_tile(int8(rng, (4, 4, 4)), int8(rng, (8, 3, 3)), 1)

    def test_scaled_engine(self, rng):
        cfg = ArchConfig(td=16)
        engine = DWCEngine(cfg)
        result = engine.compute_tile(
            int8(rng, (16, 4, 4)), int8(rng, (16, 3, 3)), 1
        )
        assert result.macs == 576


class TestPWCEngine:
    def test_matches_reference_pointwise_conv(self, rng):
        engine = PWCEngine(EDEA_CONFIG)
        x = int8(rng, (8, 2, 2))
        w = int8(rng, (16, 8))
        result = engine.compute_group(x, w)
        ref = F.pointwise_conv2d(
            x[np.newaxis].astype(np.int64), w.astype(np.int64), None
        )[0]
        np.testing.assert_array_equal(result.psum, ref)

    def test_mac_count_is_512(self, rng):
        engine = PWCEngine(EDEA_CONFIG)
        result = engine.compute_group(int8(rng, (8, 2, 2)), int8(rng, (16, 8)))
        assert result.macs == 512

    def test_accumulation_across_groups(self, rng):
        """Summing per-group psums equals the full-depth pointwise conv."""
        engine = PWCEngine(EDEA_CONFIG)
        d = 32
        x = int8(rng, (d, 2, 2))
        w = int8(rng, (16, d))
        acc = np.zeros((16, 2, 2), dtype=np.int64)
        for g in range(d // 8):
            acc += engine.compute_group(
                x[8 * g : 8 * g + 8], w[:, 8 * g : 8 * g + 8]
            ).psum
        ref = F.pointwise_conv2d(
            x[np.newaxis].astype(np.int64), w.astype(np.int64), None
        )[0]
        np.testing.assert_array_equal(acc, ref)

    def test_shape_checks(self, rng):
        engine = PWCEngine(EDEA_CONFIG)
        with pytest.raises(ShapeError):
            engine.compute_group(int8(rng, (8, 2, 3)), int8(rng, (16, 8)))
        with pytest.raises(ShapeError):
            engine.compute_group(int8(rng, (8, 2, 2)), int8(rng, (8, 8)))

    def test_worst_case_no_overflow(self):
        """Extreme int8 operands accumulated over MobileNet's deepest
        reduction stay far inside the int64 psum range."""
        engine = PWCEngine(EDEA_CONFIG)
        x = np.full((8, 2, 2), -128, dtype=np.int8)
        w = np.full((16, 8), -128, dtype=np.int8)
        total = np.zeros((16, 2, 2), dtype=np.int64)
        for _ in range(1024 // 8):  # D = 1024 worst case
            total += engine.compute_group(x, w).psum
        assert total.max() == 128 * 128 * 1024  # = 2^24, fits int32 too


class TestNonConvUnitBank:
    def make_params(self, channels):
        return NonConvParams(
            k_raw=np.full(channels, Q8_16.to_fixed(0.01)),
            b_raw=np.full(channels, Q8_16.to_fixed(1.0)),
            relu=True,
        )

    def test_process_slices_channels(self, rng):
        bank = NonConvUnitBank(EDEA_CONFIG)
        params = self.make_params(32)
        acc = rng.integers(-1000, 1000, size=(8, 2, 2))
        out = bank.process(acc, params, channel_offset=8)
        expected = NonConvParams(
            k_raw=np.asarray(params.k_raw)[8:16],
            b_raw=np.asarray(params.b_raw)[8:16],
            relu=True,
        ).apply(acc)
        np.testing.assert_array_equal(out, expected)

    def test_ops_counted(self, rng):
        bank = NonConvUnitBank(EDEA_CONFIG)
        acc = rng.integers(-10, 10, size=(8, 2, 2))
        bank.process(acc, self.make_params(8), 0)
        assert bank.total_ops == 2 * acc.size
        assert bank.invocations == 1

    def test_too_many_channels_rejected(self, rng):
        bank = NonConvUnitBank(EDEA_CONFIG)
        acc = rng.integers(-10, 10, size=(32, 2, 2))
        with pytest.raises(ShapeError):
            bank.process(acc, self.make_params(32), 0)

    def test_offset_out_of_range_rejected(self, rng):
        bank = NonConvUnitBank(EDEA_CONFIG)
        acc = rng.integers(-10, 10, size=(8, 2, 2))
        with pytest.raises(ShapeError):
            bank.process(acc, self.make_params(8), 4)
