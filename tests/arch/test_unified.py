"""Unified / serial baselines vs the dual-engine design."""

import pytest

from repro.arch import (
    ArchConfig,
    BaselineLatency,
    SerialDualEngineModel,
    UnifiedEngineModel,
    dual_vs_baselines,
)
from repro.errors import ConfigError
from repro.nn import MOBILENET_V1_CIFAR10_SPECS
from repro.sim import layer_latency


class TestBaselineLatency:
    def test_total(self):
        lat = BaselineLatency(dwc_cycles=10, pwc_cycles=20, overhead_cycles=5)
        assert lat.total_cycles == 35


class TestUnifiedEngine:
    def test_validation(self):
        with pytest.raises(ConfigError):
            UnifiedEngineModel(pe_count=0)
        with pytest.raises(ConfigError):
            UnifiedEngineModel(dwc_usable_fraction=0.0)
        with pytest.raises(ConfigError):
            UnifiedEngineModel(pwc_usable_fraction=1.5)

    @pytest.mark.parametrize("index", [0, 5, 12])
    def test_slower_than_dual_engine(self, index):
        """The paper's core claim at iso resources."""
        spec = MOBILENET_V1_CIFAR10_SPECS[index]
        unified = UnifiedEngineModel().layer_latency(spec)
        dual = layer_latency(spec).total_cycles
        assert unified.total_cycles > dual

    def test_phase_decomposition(self):
        spec = MOBILENET_V1_CIFAR10_SPECS[6]
        lat = UnifiedEngineModel().layer_latency(spec)
        assert lat.dwc_cycles == -(-spec.dwc_macs // 288)
        assert lat.pwc_cycles == -(-spec.pwc_macs // 512)
        assert lat.overhead_cycles > 0

    def test_average_utilization_below_dual(self):
        """Unified arrays cannot keep all lanes busy — the utilization
        gap the paper motivates the dual design with."""
        spec = MOBILENET_V1_CIFAR10_SPECS[6]
        unified_util = UnifiedEngineModel().average_utilization(spec)
        dual_cycles = layer_latency(spec).total_cycles
        dual_util = spec.total_macs / (dual_cycles * 800)
        assert unified_util < dual_util
        assert 0 < unified_util < 1

    def test_full_usability_recovers_ideal(self):
        model = UnifiedEngineModel(
            dwc_usable_fraction=1.0, pwc_usable_fraction=1.0
        )
        spec = MOBILENET_V1_CIFAR10_SPECS[4]
        lat = model.layer_latency(spec)
        assert lat.dwc_cycles == -(-spec.dwc_macs // 800)


class TestSerialDualEngine:
    @pytest.mark.parametrize("index", [0, 6, 12])
    def test_slower_than_overlapped_dual(self, index):
        """Parallel operation of the two engines is what the paper adds
        over [6]; serializing them must cost cycles."""
        spec = MOBILENET_V1_CIFAR10_SPECS[index]
        serial = SerialDualEngineModel().layer_latency(spec)
        dual = layer_latency(spec).total_cycles
        assert serial.total_cycles > dual

    def test_pwc_cycles_match_dual_streaming(self):
        """The PWC phase alone takes exactly the dual design's streaming
        cycles — the overlap hides the DWC passes, nothing else."""
        spec = MOBILENET_V1_CIFAR10_SPECS[6]
        serial = SerialDualEngineModel().layer_latency(spec)
        dual = layer_latency(spec)
        assert serial.pwc_cycles == dual.streaming_cycles
        assert serial.total_cycles - dual.total_cycles == serial.dwc_cycles


class TestNetworkComparison:
    def test_ordering_dual_serial_unified(self):
        totals = dual_vs_baselines(MOBILENET_V1_CIFAR10_SPECS)
        assert totals["dual"] < totals["serial_dual"] < totals["unified"]

    def test_dual_total_matches_timing_model(self):
        totals = dual_vs_baselines(MOBILENET_V1_CIFAR10_SPECS)
        expected = sum(
            layer_latency(s).total_cycles for s in MOBILENET_V1_CIFAR10_SPECS
        )
        assert totals["dual"] == expected

    def test_empty_specs_rejected(self):
        with pytest.raises(ConfigError):
            dual_vs_baselines([])

    def test_scaled_config_respected(self):
        cfg = ArchConfig(td=16, tk=32)
        totals = dual_vs_baselines(MOBILENET_V1_CIFAR10_SPECS, cfg)
        base = dual_vs_baselines(MOBILENET_V1_CIFAR10_SPECS)
        assert totals["dual"] < base["dual"]
