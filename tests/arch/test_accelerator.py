"""Top-level accelerator: bit-exactness, cycle accounting, traffic."""

import numpy as np
import pytest

from repro.arch import DSCAccelerator, EDEA_CONFIG
from repro.arch.params import ArchConfig
from repro.errors import ShapeError, SimulationError
from repro.sim import layer_latency


@pytest.fixture(scope="module")
def accel():
    return DSCAccelerator(EDEA_CONFIG)


def layer_input(workload, index):
    image = workload.images[:1]
    return workload.qmodel.layer_input(image, index)[0]


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("layer_index", [0, 1, 5, 12])
    def test_bit_exact_vs_reference(self, small_workload, layer_index):
        accel = DSCAccelerator(EDEA_CONFIG)
        layer = small_workload.qmodel.layers[layer_index]
        x_q = layer_input(small_workload, layer_index)
        out, _ = accel.run_layer(layer, x_q)
        _, ref = layer.forward(x_q[np.newaxis])
        np.testing.assert_array_equal(out, ref[0])

    def test_output_dtype_and_shape(self, small_workload, accel):
        layer = small_workload.qmodel.layers[0]
        x_q = layer_input(small_workload, 0)
        out, _ = accel.run_layer(layer, x_q)
        spec = layer.spec
        assert out.dtype == np.int8
        assert out.shape == (spec.out_channels, spec.out_size, spec.out_size)

    def test_baseline_mode_same_functional_result(self, small_workload):
        direct = DSCAccelerator(EDEA_CONFIG, direct_transfer=True)
        spilled = DSCAccelerator(EDEA_CONFIG, direct_transfer=False)
        layer = small_workload.qmodel.layers[2]
        x_q = layer_input(small_workload, 2)
        out_a, _ = direct.run_layer(layer, x_q)
        out_b, _ = spilled.run_layer(layer, x_q)
        np.testing.assert_array_equal(out_a, out_b)


class TestInputValidation:
    def test_wrong_dtype(self, small_workload, accel):
        layer = small_workload.qmodel.layers[0]
        spec = layer.spec
        bad = np.zeros((spec.in_channels, spec.in_size, spec.in_size))
        with pytest.raises(ShapeError):
            accel.run_layer(layer, bad)

    def test_wrong_shape(self, small_workload, accel):
        layer = small_workload.qmodel.layers[0]
        with pytest.raises(ShapeError):
            accel.run_layer(layer, np.zeros((1, 2, 3), dtype=np.int8))

    def test_indivisible_channels_rejected(self, small_workload):
        # Td=3 cannot tile 8-channel layers
        accel = DSCAccelerator(ArchConfig(td=3, max_output_tile=8))
        layer = small_workload.qmodel.layers[0]
        x_q = layer_input(small_workload, 0)
        with pytest.raises(SimulationError):
            accel.run_layer(layer, x_q)


class TestCycleAccounting:
    def test_cycles_match_eq1_eq2(self, small_workload):
        accel = DSCAccelerator(EDEA_CONFIG)
        for index in (0, 1, 6, 12):
            layer = small_workload.qmodel.layers[index]
            x_q = layer_input(small_workload, index)
            _, stats = accel.run_layer(layer, x_q)
            assert stats.cycles == layer_latency(
                layer.spec, EDEA_CONFIG
            ).total_cycles

    def test_macs_match_spec(self, small_workload, accel):
        layer = small_workload.qmodel.layers[3]
        x_q = layer_input(small_workload, 3)
        _, stats = accel.run_layer(layer, x_q)
        assert stats.dwc_macs == layer.spec.dwc_macs
        assert stats.pwc_macs == layer.spec.pwc_macs

    def test_pwc_busier_than_dwc(self, small_workload, accel):
        # paper: "DWC PE arrays encounter more idle time due to fewer MAC
        # operations in DWC compared to PWC"
        layer = small_workload.qmodel.layers[6]
        x_q = layer_input(small_workload, 6)
        _, stats = accel.run_layer(layer, x_q)
        assert stats.pwc_busy_cycles > stats.dwc_busy_cycles
        assert stats.dwc_utilization < stats.pwc_utilization

    def test_dwc_busy_ratio_is_one_over_kernel_groups(self, small_workload,
                                                      accel):
        layer = small_workload.qmodel.layers[6]
        x_q = layer_input(small_workload, 6)
        _, stats = accel.run_layer(layer, x_q)
        assert stats.pwc_busy_cycles == (
            stats.dwc_busy_cycles * stats.kernel_groups
        )

    def test_init_cycles_per_tile_and_group(self, small_workload, accel):
        layer = small_workload.qmodel.layers[0]
        x_q = layer_input(small_workload, 0)
        _, stats = accel.run_layer(layer, x_q)
        assert stats.init_cycle_total == (
            EDEA_CONFIG.init_cycles * stats.spatial_tiles
            * stats.channel_groups
        )

    def test_throughput_positive_and_bounded(self, small_workload, accel):
        layer = small_workload.qmodel.layers[4]
        x_q = layer_input(small_workload, 4)
        _, stats = accel.run_layer(layer, x_q)
        tp = stats.throughput_ops_per_second(EDEA_CONFIG.clock_hz)
        assert 0 < tp <= EDEA_CONFIG.peak_ops_per_second


class TestTrafficAccounting:
    def test_direct_transfer_saves_external_traffic(self, small_workload):
        """The architectural claim behind Fig. 3, measured on the model."""
        layer = small_workload.qmodel.layers[4]
        x_q = layer_input(small_workload, 4)

        direct = DSCAccelerator(EDEA_CONFIG, direct_transfer=True)
        direct.run_layer(layer, x_q)
        spilled = DSCAccelerator(EDEA_CONFIG, direct_transfer=False)
        spilled.run_layer(layer, x_q)

        saved = (
            spilled.memory.total_activation_accesses
            - direct.memory.total_activation_accesses
        )
        n, d = layer.spec.out_size, layer.spec.in_channels
        assert saved == 2 * n * n * d  # one write + one read per element

    def test_weight_reads_match_table2(self, small_workload):
        accel = DSCAccelerator(EDEA_CONFIG)
        layer = small_workload.qmodel.layers[6]
        x_q = layer_input(small_workload, 6)
        _, stats = accel.run_layer(layer, x_q)
        spec = layer.spec
        expected = 9 * spec.in_channels + spec.in_channels * spec.out_channels
        assert stats.external["weight_reads"] == expected

    def test_output_writes_once(self, small_workload):
        accel = DSCAccelerator(EDEA_CONFIG)
        layer = small_workload.qmodel.layers[2]
        x_q = layer_input(small_workload, 2)
        _, stats = accel.run_layer(layer, x_q)
        spec = layer.spec
        assert stats.external["activation_writes"] == (
            spec.out_size**2 * spec.out_channels
        )

    def test_buffer_accesses_recorded(self, small_workload):
        accel = DSCAccelerator(EDEA_CONFIG)
        layer = small_workload.qmodel.layers[0]
        x_q = layer_input(small_workload, 0)
        _, stats = accel.run_layer(layer, x_q)
        for name in ("dwc_ifmap", "dwc_weight", "offline", "intermediate",
                     "pwc_weight"):
            assert stats.buffer_accesses[name] > 0

    def test_baseline_skips_intermediate_buffer(self, small_workload):
        accel = DSCAccelerator(EDEA_CONFIG, direct_transfer=False)
        layer = small_workload.qmodel.layers[0]
        x_q = layer_input(small_workload, 0)
        _, stats = accel.run_layer(layer, x_q)
        assert stats.buffer_accesses["intermediate"] == 0


class TestZeroStatistics:
    def test_fractions_in_range(self, small_workload, accel):
        layer = small_workload.qmodel.layers[5]
        x_q = layer_input(small_workload, 5)
        _, stats = accel.run_layer(layer, x_q)
        assert 0.0 <= stats.dwc_zero_fraction <= 1.0
        assert 0.0 <= stats.pwc_zero_fraction <= 1.0

    def test_all_zero_input_reports_full_sparsity(self, small_workload):
        accel = DSCAccelerator(EDEA_CONFIG)
        layer = small_workload.qmodel.layers[0]
        spec = layer.spec
        x_q = np.zeros((spec.in_channels, spec.in_size, spec.in_size),
                       dtype=np.int8)
        _, stats = accel.run_layer(layer, x_q)
        assert stats.dwc_zero_fraction == pytest.approx(1.0)
