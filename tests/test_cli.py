"""Command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestList:
    def test_lists_all_experiments(self):
        code, text = run_cli("list")
        assert code == 0
        for eid in ("fig13", "table3", "fig2a"):
            assert eid in text


class TestInfo:
    def test_prints_headline(self):
        code, text = run_cli("info")
        assert code == 0
        assert "13.43" in text
        assert "peak_ee_tops_w" in text


class TestRun:
    def test_run_analytic_experiment(self):
        code, text = run_cli("run", "fig13")
        assert code == 0
        assert "973.55" in text

    def test_run_multiple(self):
        code, text = run_cli("run", "table1", "fig10")
        assert code == 0
        assert "Td" in text and "Latency" in text

    def test_unknown_experiment_fails_cleanly(self):
        code, _ = run_cli("run", "fig99")
        assert code == 1

    def test_measured_experiment_with_small_width(self):
        # exercises the workload path at demo size (memoized if cached)
        code, text = run_cli("run", "fig12", "--width", "0.25")
        assert code == 0
        assert "energy efficiency" in text.lower()


class TestReport:
    def test_analytic_report_passes(self):
        code, text = run_cli("report")
        assert code == 0
        assert "claims hold" in text
        assert "FAIL" not in text

    def test_report_lists_exact_reproductions(self):
        _, text = run_cli("report")
        assert "288" in text and "512" in text and "800" in text


class TestSweepCommand:
    def test_sweep_prints_grid(self):
        code, text = run_cli(
            "sweep", "--widths", "0.5,1.0", "--resolutions", "32,64"
        )
        assert code == 0
        assert "4 points" in text
        assert "92,784" in text  # the paper point (width 1.0, res 32)

    def test_sweep_parallel_matches_serial(self):
        code_serial, serial = run_cli(
            "sweep", "--widths", "0.25,0.5", "--resolutions", "32"
        )
        code_parallel, parallel = run_cli(
            "sweep", "--widths", "0.25,0.5", "--resolutions", "32",
            "--jobs", "2",
        )
        assert code_serial == code_parallel == 0
        # identical numbers; only the jobs note in the title differs
        assert serial.splitlines()[2:] == parallel.splitlines()[2:]

    def test_sweep_bad_grid_fails_cleanly(self):
        code, _ = run_cli("sweep", "--widths", "fast,1.0")
        assert code == 1

    def test_sweep_uses_cache_dir(self, tmp_path):
        cache_dir = str(tmp_path / "sweep-cache")
        code, text = run_cli("sweep", "--cache-dir", cache_dir)
        assert code == 0
        cached = list((tmp_path / "sweep-cache").rglob("*.pkl"))
        assert len(cached) == 16  # one entry per grid point
        code2, text2 = run_cli("sweep", "--cache-dir", cache_dir)
        assert code2 == 0
        assert text2 == text


class TestPerformanceFlags:
    def test_run_parallel_analytic_experiments(self):
        code_serial, serial = run_cli("run", "table1", "fig10", "fig13")
        code_parallel, parallel = run_cli(
            "run", "table1", "fig10", "fig13", "--jobs", "2"
        )
        assert code_serial == code_parallel == 0
        assert serial == parallel

    def test_run_measured_fast_mode(self):
        code, text = run_cli(
            "run", "fig12", "--width", "0.25", "--fast"
        )
        assert code == 0
        assert "energy efficiency" in text.lower()

    def test_measured_workload_cached_on_disk(self, tmp_path):
        cache_dir = str(tmp_path / "wl-cache")
        code, text = run_cli(
            "run", "fig11", "--width", "0.25", "--fast",
            "--cache-dir", cache_dir,
        )
        assert code == 0
        assert list((tmp_path / "wl-cache").rglob("*.pkl"))


class TestParser:
    def test_no_command_shows_help(self):
        code, text = run_cli()
        assert code == 2
        assert "usage" in text.lower()

    def test_version_flag(self):
        parser = build_parser()
        with pytest.raises(SystemExit) as excinfo:
            parser.parse_args(["--version"])
        assert excinfo.value.code == 0


class TestServeCommand:
    def test_serve_prints_report(self):
        code, text = run_cli(
            "serve", "--requests", "300", "--instances", "2",
            "--policy", "least-loaded",
        )
        assert code == 0
        assert "Serving report" in text
        assert "latency p99 (ms)" in text
        assert "Per-instance utilization" in text
        assert "inst 1" in text

    def test_serve_policy_sweep_through_cache(self, tmp_path):
        args = (
            "serve", "--requests", "200",
            "--sweep-policies", "round-robin,least-loaded",
            "--sweep-instances", "1,2",
            "--cache-dir", str(tmp_path),
        )
        code, text = run_cli(*args)
        assert code == 0
        assert "Serving sweep (4 scenarios" in text
        # Warm rerun is served from the cache and prints identically.
        code2, text2 = run_cli(*args)
        assert code2 == 0
        assert text2 == text
        assert list(tmp_path.rglob("*.pkl"))

    def test_serve_curve(self):
        code, text = run_cli(
            "serve", "--requests", "400", "--instances", "2",
            "--curve-qps", "500,1500",
        )
        assert code == 0
        assert "Throughput-latency curve" in text
        assert "p99 latency vs offered QPS" in text

    def test_serve_trace_arrival(self, tmp_path):
        trace = tmp_path / "trace.txt"
        trace.write_text("".join(f"{i * 0.002}\n" for i in range(50)))
        code, text = run_cli(
            "serve", "--arrival", "trace",
            "--trace-file", str(trace), "--instances", "1",
        )
        assert code == 0
        assert "requests |       50" in text.replace("  ", "  ")

    def test_serve_trace_without_file_fails_cleanly(self):
        code, _ = run_cli("serve", "--arrival", "trace")
        assert code == 1

    def test_serve_bad_trace_file_fails_cleanly(self, tmp_path):
        bad = tmp_path / "bad.txt"
        bad.write_text("not-a-number\n")
        code, _ = run_cli(
            "serve", "--arrival", "trace", "--trace-file", str(bad)
        )
        assert code == 1

    def test_serve_bursty(self):
        code, text = run_cli(
            "serve", "--arrival", "bursty", "--requests", "300",
            "--burst-factor", "6",
        )
        assert code == 0
        assert "arrival=bursty" in text

    def test_serve_diurnal(self):
        code, text = run_cli(
            "serve", "--arrival", "diurnal", "--requests", "300",
            "--diurnal-period", "2.0", "--diurnal-amplitude", "0.5",
        )
        assert code == 0
        assert "arrival=diurnal" in text

    def test_serve_deadline_aware_policy(self):
        code, text = run_cli(
            "serve", "--requests", "200", "--instances", "2",
            "--policy", "deadline-aware",
        )
        assert code == 0
        assert "policy=deadline-aware" in text

    def test_serve_curve_conflicts_with_sweep(self):
        code, _ = run_cli(
            "serve", "--curve-qps", "100,200",
            "--sweep-policies", "affinity",
        )
        assert code == 1

    def test_serve_trace_offered_rate_covers_played_prefix_only(
        self, tmp_path
    ):
        """A dense 10-request prefix of a long sparse trace must report
        the prefix's rate, not the whole trace's mean."""
        trace = tmp_path / "trace.txt"
        dense = [f"{i * 0.001}\n" for i in range(10)]
        sparse = [f"{1000.0 + i}\n" for i in range(90)]
        trace.write_text("".join(dense + sparse))
        code, text = run_cli(
            "serve", "--arrival", "trace", "--trace-file", str(trace),
            "--requests", "10", "--instances", "1",
        )
        assert code == 0
        # 10 requests over 9 ms ~ 1111 QPS; whole trace would be ~0.1.
        assert "offered QPS | 1,111.10" in text


class TestControlCommand:
    def test_control_prints_report(self):
        code, text = run_cli(
            "control", "--requests", "300", "--instances", "2",
            "--shedding", "queue-depth", "--queue-threshold", "16",
        )
        assert code == 0
        assert "Control report" in text
        assert "Per-class SLO attainment" in text
        assert "energy (mJ)" in text
        assert "interactive" in text  # default class tiers

    def test_control_custom_classes_and_json(self, tmp_path):
        import json

        out = tmp_path / "report.json"
        code, text = run_cli(
            "control", "--requests", "200",
            "--slo-classes", "rt:5:0.99:0:0.5,bulk:80:0.9:2:0.5",
            "--json", str(out),
        )
        assert code == 0
        assert "rt" in text and "bulk" in text
        payload = json.loads(out.read_text())
        assert len(payload["reports"]) == 1
        report = payload["reports"][0]
        assert {cs["name"] for cs in report["class_stats"]} == {
            "rt", "bulk"
        }
        assert report["energy_joules"] > 0

    def test_control_autoscale_and_fleet_spec(self):
        code, text = run_cli(
            "control", "--requests", "300", "--fleet", "0.8x2,0.6x2",
            "--autoscale", "utilization", "--min-instances", "1",
        )
        assert code == 0
        assert "instances=4" in text
        assert "autoscale events" in text

    def test_control_energy_aware_routing_on_hetero_fleet(self):
        code, text = run_cli(
            "control", "--requests", "300", "--fleet", "0.8x2,0.6x2",
            "--policy", "energy-aware",
        )
        assert code == 0
        assert "policy=energy-aware" in text
        assert "energy (mJ)" in text

    def test_control_diurnal_autoscale(self):
        code, text = run_cli(
            "control", "--requests", "400", "--arrival", "diurnal",
            "--diurnal-period", "0.5", "--autoscale", "utilization",
            "--min-instances", "1",
        )
        assert code == 0
        assert "arrival=diurnal" in text
        assert "autoscale events" in text

    def test_control_static_frontier_sweep_marks_pareto(self, tmp_path):
        args = (
            "control", "--requests", "200", "--qps", "1500",
            "--sweep-voltages", "0.6,0.8", "--sweep-fleet-sizes", "1,2",
            "--cache-dir", str(tmp_path),
        )
        code, text = run_cli(*args)
        assert code == 0
        assert "Control sweep (4 scenarios" in text
        assert "Pareto" in text and "*" in text
        assert "0.60V x1" in text
        code2, text2 = run_cli(*args)  # warm rerun: cache-served
        assert code2 == 0 and text2 == text

    def test_control_governor_sweep(self):
        code, text = run_cli(
            "control", "--requests", "200", "--qps", "1000",
            "--sweep-governors", "utilization,dvfs",
        )
        assert code == 0
        assert "utilization" in text and "dvfs" in text

    def test_control_sweep_modes_conflict(self):
        code, _ = run_cli(
            "control", "--sweep-governors", "dvfs",
            "--sweep-voltages", "0.8",
        )
        assert code == 1

    def test_control_bad_fleet_spec_fails_cleanly(self):
        code, _ = run_cli("control", "--fleet", "fastx2")
        assert code == 1


class TestServeControlRouting:
    def test_serve_with_slo_flags_routes_to_control_plane(self):
        code, text = run_cli(
            "serve", "--requests", "200", "--shedding", "deadline",
        )
        assert code == 0
        assert "Control report" in text
        assert "SLO attainment" in text

    def test_serve_slo_flags_conflict_with_sweeps(self):
        code, _ = run_cli(
            "serve", "--shedding", "deadline",
            "--sweep-policies", "affinity",
        )
        assert code == 1

    def test_serve_json_output(self, tmp_path):
        import json

        out = tmp_path / "serve.json"
        code, _ = run_cli(
            "serve", "--requests", "200", "--instances", "2",
            "--json", str(out),
        )
        assert code == 0
        payload = json.loads(out.read_text())
        (report,) = payload["reports"]
        assert report["requests"] == 200
        assert report["energy_joules"] is None  # plain data plane
        assert len(report["utilization_busy"]) == 2

    def test_serve_curve_json_lists_every_point(self, tmp_path):
        import json

        out = tmp_path / "curve.json"
        code, _ = run_cli(
            "serve", "--requests", "200", "--instances", "2",
            "--curve-qps", "500,1500", "--json", str(out),
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert len(payload["reports"]) == 2

    def test_serve_json_unwritable_path_fails_cleanly(self, tmp_path):
        code, _ = run_cli(
            "serve", "--requests", "50",
            "--json", str(tmp_path / "no" / "such" / "dir.json"),
        )
        assert code == 1


class TestAtomicJsonWrites:
    """--json writes are atomic: tempfile in the target directory,
    then os.replace — a failed serialization can never truncate a
    previous good report."""

    def test_write_replaces_not_truncates(self, tmp_path):
        import json

        from repro.cli import _write_json_payload

        target = tmp_path / "report.json"
        _write_json_payload(str(target), {"run": 1})
        assert json.loads(target.read_text()) == {"run": 1}
        _write_json_payload(str(target), {"run": 2})
        assert json.loads(target.read_text()) == {"run": 2}
        # No stray temp files once the write lands.
        assert list(tmp_path.iterdir()) == [target]

    def test_failed_write_keeps_previous_payload(self, tmp_path):
        import json

        from repro.cli import _write_json_payload

        target = tmp_path / "report.json"
        _write_json_payload(str(target), {"good": True})
        with pytest.raises(TypeError):
            # json.dump fails mid-stream; the half-written temp file
            # must be discarded, never os.replace'd over the target.
            _write_json_payload(str(target), {"bad": object()})
        assert json.loads(target.read_text()) == {"good": True}
        assert list(tmp_path.iterdir()) == [target]

    def test_unwritable_directory_raises_repro_error(self, tmp_path):
        from repro.cli import _write_json_payload
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            _write_json_payload(
                str(tmp_path / "no" / "dir.json"), {"x": 1}
            )


class TestTelemetryCli:
    def test_serve_trace_and_metrics(self, tmp_path):
        import json

        trace = tmp_path / "run.trace.json"
        report = tmp_path / "report.json"
        code, text = run_cli(
            "serve", "--requests", "300", "--instances", "2",
            "--trace", str(trace), "--metrics-every", "0.02",
            "--json", str(report),
        )
        assert code == 0
        assert "Engine execution" in text
        assert "Metrics timeline" in text
        payload = json.loads(trace.read_text())
        assert payload["traceEvents"]
        counters = payload["otherData"]
        assert counters["offered"] == 300
        assert (
            counters["completed"] + counters["shed"]
            == counters["offered"]
        )
        report_payload = json.loads(report.read_text())
        (engine,) = report_payload["engine"]
        assert engine["dispatch"] == "general"  # tracing -> general loop
        assert report_payload["metrics"]["timelines"]
        # The report dicts themselves stay telemetry-free.
        assert "engine_events" not in report_payload["reports"][0]

    def test_control_multi_fleet_trace(self, tmp_path):
        import json

        trace = tmp_path / "mf.trace.json"
        code, text = run_cli(
            "control", "--multi-fleet-qps", "2000,800",
            "--requests", "300", "--spillover", "deadline",
            "--shedding", "deadline", "--trace", str(trace),
        )
        assert code == 0
        assert "Multi-fleet report" in text
        payload = json.loads(trace.read_text())
        pids = {
            e["pid"]
            for e in payload["traceEvents"]
            if e["ph"] != "M"
        }
        assert pids == {0, 1}

    def test_trace_summary_subcommand(self, tmp_path):
        trace = tmp_path / "run.trace.json"
        code, _ = run_cli(
            "control", "--requests", "200", "--shedding", "deadline",
            "--trace", str(trace),
        )
        assert code == 0
        code, text = run_cli("trace", "summary", str(trace))
        assert code == 0
        assert "Trace summary" in text
        assert "offered=200" in text

    def test_trace_summary_missing_file_fails_cleanly(self, tmp_path):
        code, _ = run_cli(
            "trace", "summary", str(tmp_path / "nope.json")
        )
        assert code == 1

    def test_telemetry_conflicts_with_sweeps(self, tmp_path):
        code, _ = run_cli(
            "serve", "--sweep-policies", "round-robin",
            "--trace", str(tmp_path / "t.json"),
        )
        assert code == 1
        code, _ = run_cli(
            "control", "--sweep-governors", "utilization,dvfs",
            "--metrics-every", "0.5",
        )
        assert code == 1

    def test_bad_metrics_interval_fails_cleanly(self):
        code, _ = run_cli(
            "serve", "--requests", "50", "--metrics-every", "0"
        )
        assert code == 1

    def test_untraced_output_is_unchanged_by_flags_absence(
        self, tmp_path
    ):
        """No telemetry flags -> byte-identical CLI output to a run
        with telemetry wired but inactive (the default path)."""
        a = run_cli("serve", "--requests", "200", "--instances", "2")
        b = run_cli("serve", "--requests", "200", "--instances", "2")
        assert a == b


class TestCheckpointCli:
    _SCENARIO = (
        "--mix", "mixed", "--qps", "1500", "--requests", "2000",
        "--instances", "3", "--shedding", "deadline",
        "--autoscale", "utilization", "--seed", "9",
    )

    def test_checkpoint_requires_cadence(self, tmp_path):
        code, _ = run_cli(
            "control", *self._SCENARIO,
            "--checkpoint", str(tmp_path / "x.ckpt"),
        )
        assert code == 1

    def test_cadence_requires_checkpoint(self):
        code, _ = run_cli(
            "control", *self._SCENARIO, "--checkpoint-every", "1.0"
        )
        assert code == 1

    def test_checkpoint_conflicts_with_sweeps(self, tmp_path):
        code, _ = run_cli(
            "control", *self._SCENARIO,
            "--sweep-governors", "utilization,dvfs",
            "--checkpoint", str(tmp_path / "x.ckpt"),
            "--checkpoint-every", "1.0",
        )
        assert code == 1
        code, _ = run_cli(
            "serve", "--curve-qps", "100,200",
            "--resume", str(tmp_path / "x.ckpt"),
        )
        assert code == 1

    def test_resume_missing_checkpoint_fails_cleanly(self, tmp_path):
        code, _ = run_cli(
            "control", "--resume", str(tmp_path / "nope.ckpt")
        )
        assert code == 1

    def test_checkpointed_run_report_matches_plain(self, tmp_path):
        ref = tmp_path / "ref.json"
        chk = tmp_path / "chk.json"
        code, _ = run_cli(
            "control", *self._SCENARIO, "--json", str(ref)
        )
        assert code == 0
        code, _ = run_cli(
            "control", *self._SCENARIO, "--json", str(chk),
            "--checkpoint", str(tmp_path / "run.ckpt"),
            "--checkpoint-every", "0.2",
        )
        assert code == 0
        assert ref.read_bytes() == chk.read_bytes()

    def test_resume_report_is_byte_identical(self, tmp_path):
        ref = tmp_path / "ref.json"
        code, _ = run_cli(
            "control", *self._SCENARIO, "--json", str(ref)
        )
        assert code == 0
        ckpt = tmp_path / "run.ckpt"
        code, _ = run_cli(
            "control", *self._SCENARIO,
            "--checkpoint", str(ckpt), "--checkpoint-every", "0.2",
        )
        assert code == 0
        resumed = tmp_path / "resumed.json"
        code, text = run_cli(
            "control", "--resume", str(ckpt), "--json", str(resumed)
        )
        assert code == 0
        assert ref.read_bytes() == resumed.read_bytes()

    def test_serve_resume_renders_by_checkpoint_kind(self, tmp_path):
        """`repro serve --resume` on a control checkpoint renders the
        control-plane report: the checkpoint owns the scenario."""
        ckpt = tmp_path / "run.ckpt"
        code, _ = run_cli(
            "control", *self._SCENARIO,
            "--checkpoint", str(ckpt), "--checkpoint-every", "0.2",
        )
        assert code == 0
        code, text = run_cli("serve", "--resume", str(ckpt))
        assert code == 0
        assert "attainment" in text.lower()

    def test_sigkill_and_resume_is_byte_identical(self, tmp_path):
        """The crash-consistency contract end to end: SIGKILL the
        checkpointing process mid-run, resume in a fresh one, and the
        JSON report must equal the uninterrupted run byte for byte."""
        import os
        import signal
        import subprocess
        import sys
        import time
        from pathlib import Path

        scenario = (
            "--mix", "mixed", "--qps", "1500",
            "--requests", "200000", "--instances", "3",
            "--shedding", "deadline", "--autoscale", "utilization",
            "--seed", "9",
        )
        ref = tmp_path / "ref.json"
        code, _ = run_cli("control", *scenario, "--json", str(ref))
        assert code == 0

        ckpt = tmp_path / "run.ckpt"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = (
            src + os.pathsep + env.get("PYTHONPATH", "")
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-c",
                "import sys; from repro.cli import main; "
                "sys.exit(main(sys.argv[1:]))",
                "control", *scenario,
                "--checkpoint", str(ckpt),
                "--checkpoint-every", "2.0",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60.0
            while not ckpt.exists():
                if proc.poll() is not None or (
                    time.monotonic() > deadline
                ):
                    break
                time.sleep(0.02)
            # Mid-run when we won the race; from the final checkpoint
            # otherwise — the resume contract holds either way.
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert ckpt.exists(), "no checkpoint was written before the kill"

        resumed = tmp_path / "resumed.json"
        code, _ = run_cli(
            "control", "--resume", str(ckpt), "--json", str(resumed)
        )
        assert code == 0
        assert ref.read_bytes() == resumed.read_bytes()
