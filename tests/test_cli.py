"""Command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestList:
    def test_lists_all_experiments(self):
        code, text = run_cli("list")
        assert code == 0
        for eid in ("fig13", "table3", "fig2a"):
            assert eid in text


class TestInfo:
    def test_prints_headline(self):
        code, text = run_cli("info")
        assert code == 0
        assert "13.43" in text
        assert "peak_ee_tops_w" in text


class TestRun:
    def test_run_analytic_experiment(self):
        code, text = run_cli("run", "fig13")
        assert code == 0
        assert "973.55" in text

    def test_run_multiple(self):
        code, text = run_cli("run", "table1", "fig10")
        assert code == 0
        assert "Td" in text and "Latency" in text

    def test_unknown_experiment_fails_cleanly(self):
        code, _ = run_cli("run", "fig99")
        assert code == 1

    def test_measured_experiment_with_small_width(self):
        # exercises the workload path at demo size (memoized if cached)
        code, text = run_cli("run", "fig12", "--width", "0.25")
        assert code == 0
        assert "energy efficiency" in text.lower()


class TestReport:
    def test_analytic_report_passes(self):
        code, text = run_cli("report")
        assert code == 0
        assert "claims hold" in text
        assert "FAIL" not in text

    def test_report_lists_exact_reproductions(self):
        _, text = run_cli("report")
        assert "288" in text and "512" in text and "800" in text


class TestSweepCommand:
    def test_sweep_prints_grid(self):
        code, text = run_cli(
            "sweep", "--widths", "0.5,1.0", "--resolutions", "32,64"
        )
        assert code == 0
        assert "4 points" in text
        assert "92,784" in text  # the paper point (width 1.0, res 32)

    def test_sweep_parallel_matches_serial(self):
        code_serial, serial = run_cli(
            "sweep", "--widths", "0.25,0.5", "--resolutions", "32"
        )
        code_parallel, parallel = run_cli(
            "sweep", "--widths", "0.25,0.5", "--resolutions", "32",
            "--jobs", "2",
        )
        assert code_serial == code_parallel == 0
        # identical numbers; only the jobs note in the title differs
        assert serial.splitlines()[2:] == parallel.splitlines()[2:]

    def test_sweep_bad_grid_fails_cleanly(self):
        code, _ = run_cli("sweep", "--widths", "fast,1.0")
        assert code == 1

    def test_sweep_uses_cache_dir(self, tmp_path):
        cache_dir = str(tmp_path / "sweep-cache")
        code, text = run_cli("sweep", "--cache-dir", cache_dir)
        assert code == 0
        cached = list((tmp_path / "sweep-cache").rglob("*.pkl"))
        assert len(cached) == 16  # one entry per grid point
        code2, text2 = run_cli("sweep", "--cache-dir", cache_dir)
        assert code2 == 0
        assert text2 == text


class TestPerformanceFlags:
    def test_run_parallel_analytic_experiments(self):
        code_serial, serial = run_cli("run", "table1", "fig10", "fig13")
        code_parallel, parallel = run_cli(
            "run", "table1", "fig10", "fig13", "--jobs", "2"
        )
        assert code_serial == code_parallel == 0
        assert serial == parallel

    def test_run_measured_fast_mode(self):
        code, text = run_cli(
            "run", "fig12", "--width", "0.25", "--fast"
        )
        assert code == 0
        assert "energy efficiency" in text.lower()

    def test_measured_workload_cached_on_disk(self, tmp_path):
        cache_dir = str(tmp_path / "wl-cache")
        code, text = run_cli(
            "run", "fig11", "--width", "0.25", "--fast",
            "--cache-dir", cache_dir,
        )
        assert code == 0
        assert list((tmp_path / "wl-cache").rglob("*.pkl"))


class TestParser:
    def test_no_command_shows_help(self):
        code, text = run_cli()
        assert code == 2
        assert "usage" in text.lower()

    def test_version_flag(self):
        parser = build_parser()
        with pytest.raises(SystemExit) as excinfo:
            parser.parse_args(["--version"])
        assert excinfo.value.code == 0
