"""Command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestList:
    def test_lists_all_experiments(self):
        code, text = run_cli("list")
        assert code == 0
        for eid in ("fig13", "table3", "fig2a"):
            assert eid in text


class TestInfo:
    def test_prints_headline(self):
        code, text = run_cli("info")
        assert code == 0
        assert "13.43" in text
        assert "peak_ee_tops_w" in text


class TestRun:
    def test_run_analytic_experiment(self):
        code, text = run_cli("run", "fig13")
        assert code == 0
        assert "973.55" in text

    def test_run_multiple(self):
        code, text = run_cli("run", "table1", "fig10")
        assert code == 0
        assert "Td" in text and "Latency" in text

    def test_unknown_experiment_fails_cleanly(self):
        code, _ = run_cli("run", "fig99")
        assert code == 1

    def test_measured_experiment_with_small_width(self):
        # exercises the workload path at demo size (memoized if cached)
        code, text = run_cli("run", "fig12", "--width", "0.25")
        assert code == 0
        assert "energy efficiency" in text.lower()


class TestReport:
    def test_analytic_report_passes(self):
        code, text = run_cli("report")
        assert code == 0
        assert "claims hold" in text
        assert "FAIL" not in text

    def test_report_lists_exact_reproductions(self):
        _, text = run_cli("report")
        assert "288" in text and "512" in text and "800" in text


class TestParser:
    def test_no_command_shows_help(self):
        code, text = run_cli()
        assert code == 2
        assert "usage" in text.lower()

    def test_version_flag(self):
        parser = build_parser()
        with pytest.raises(SystemExit) as excinfo:
            parser.parse_args(["--version"])
        assert excinfo.value.code == 0
