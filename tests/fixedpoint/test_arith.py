"""Saturating arithmetic and the Non-Conv datapath primitives."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import FixedPointError
from repro.fixedpoint import (
    Q8_16,
    clip_to_width,
    fixed_mul_add,
    requantize_to_int8,
    rounding_right_shift,
    saturating_add,
    saturating_mul,
)


class TestClipToWidth:
    def test_in_range_untouched(self):
        assert clip_to_width(np.array([5, -5]), 8).tolist() == [5, -5]

    def test_saturates_high(self):
        assert clip_to_width(np.array([300]), 8).tolist() == [127]

    def test_saturates_low(self):
        assert clip_to_width(np.array([-300]), 8).tolist() == [-128]

    def test_rejects_width_one(self):
        with pytest.raises(FixedPointError):
            clip_to_width(np.array([0]), 1)

    def test_rejects_width_64(self):
        with pytest.raises(FixedPointError):
            clip_to_width(np.array([0]), 64)


class TestSaturatingOps:
    def test_add_no_saturation(self):
        assert saturating_add(np.array([3]), np.array([4]), 8).tolist() == [7]

    def test_add_saturates(self):
        out = saturating_add(np.array([120]), np.array([120]), 8)
        assert out.tolist() == [127]

    def test_mul_no_saturation(self):
        assert saturating_mul(np.array([5]), np.array([6]), 16).tolist() == [30]

    def test_mul_saturates(self):
        out = saturating_mul(np.array([127]), np.array([127]), 8)
        assert out.tolist() == [127]

    def test_mul_int8_operands_fit_int16(self):
        # worst case -128 * -128 = 16384 fits in 16 bits signed
        out = saturating_mul(np.array([-128]), np.array([-128]), 16)
        assert out.tolist() == [16384]


class TestRoundingRightShift:
    def test_shift_zero_is_identity(self):
        arr = np.array([7, -7])
        assert rounding_right_shift(arr, 0).tolist() == [7, -7]

    def test_rounds_to_nearest(self):
        # 3/2 = 1.5 -> 2 ; 1/2 = 0.5 -> 1 (ties away from zero)
        assert rounding_right_shift(np.array([3]), 1).tolist() == [2]
        assert rounding_right_shift(np.array([1]), 1).tolist() == [1]

    def test_negative_ties(self):
        # -1/2 = -0.5 -> -1 (away from zero), -3/2 -> -2
        assert rounding_right_shift(np.array([-1]), 1).tolist() == [-1]
        assert rounding_right_shift(np.array([-3]), 1).tolist() == [-2]

    def test_plain_values(self):
        assert rounding_right_shift(np.array([8]), 2).tolist() == [2]
        assert rounding_right_shift(np.array([-8]), 2).tolist() == [-2]

    def test_rejects_negative_shift(self):
        with pytest.raises(FixedPointError):
            rounding_right_shift(np.array([1]), -1)

    @given(st.integers(min_value=-(1 << 40), max_value=1 << 40),
           st.integers(min_value=0, max_value=20))
    def test_matches_float_rounding(self, value, shift):
        out = int(rounding_right_shift(np.array([value]), shift)[0])
        exact = value / (2**shift)
        # ties away from zero
        expected = int(np.floor(exact + 0.5)) if exact >= 0 else int(
            np.ceil(exact - 0.5)
        )
        assert out == expected


class TestFixedMulAdd:
    def test_matches_float_computation(self):
        k = Q8_16.to_fixed(0.125)
        b = Q8_16.to_fixed(2.0)
        acc = np.array([100, -40, 0])
        wide = fixed_mul_add(acc, k, b, Q8_16)
        real = wide / Q8_16.scale
        np.testing.assert_allclose(real, 0.125 * acc + 2.0)

    def test_zero_k_gives_b(self):
        b = Q8_16.to_fixed(-1.5)
        wide = fixed_mul_add(np.array([12345]), 0, b, Q8_16)
        assert wide[0] == b


class TestRequantizeToInt8:
    def test_basic_rounding(self):
        wide = np.array([Q8_16.to_fixed(3.4), Q8_16.to_fixed(3.6)])
        out = requantize_to_int8(wide, 16, apply_relu=False)
        assert out.tolist() == [3, 4]
        assert out.dtype == np.int8

    def test_relu_clamps_negative(self):
        wide = np.array([Q8_16.to_fixed(-5.0)])
        out = requantize_to_int8(wide, 16, apply_relu=True)
        assert out.tolist() == [0]

    def test_no_relu_keeps_negative(self):
        wide = np.array([Q8_16.to_fixed(-5.0)])
        out = requantize_to_int8(wide, 16, apply_relu=False)
        assert out.tolist() == [-5]

    def test_saturates_to_127(self):
        wide = np.array([Q8_16.to_fixed(127.9)])
        out = requantize_to_int8(wide, 16, apply_relu=False)
        assert out.tolist() == [127]

    def test_saturates_to_minus_128(self):
        wide = np.array([-300 * Q8_16.scale])
        out = requantize_to_int8(wide, 16, apply_relu=False)
        assert out.tolist() == [-128]

    def test_custom_clip_range_validated(self):
        with pytest.raises(FixedPointError):
            requantize_to_int8(np.array([0]), 16, apply_relu=False, lo=-200)

    @given(st.lists(st.floats(min_value=-200, max_value=200), min_size=1,
                    max_size=32))
    def test_matches_float_reference(self, values):
        wide = np.array([Q8_16.to_fixed(v) for v in values], dtype=np.int64)
        out = requantize_to_int8(wide, 16, apply_relu=True)
        grid = np.array([Q8_16.quantize(v) for v in values])
        # round-half-away-from-zero, as the hardware rounder does
        rounded = np.where(
            grid >= 0, np.floor(grid + 0.5), np.ceil(grid - 0.5)
        )
        ref = np.clip(np.maximum(rounded, 0), -128, 127)
        np.testing.assert_array_equal(out, ref.astype(np.int8))
