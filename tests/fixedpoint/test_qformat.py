"""QFormat: ranges, conversion, rounding, saturation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import FixedPointError
from repro.fixedpoint import INT8, Q8_16, QFormat


class TestConstruction:
    def test_q8_16_totals_24_bits(self):
        assert Q8_16.total_bits == 24

    def test_q8_16_scale(self):
        assert Q8_16.scale == 65536

    def test_int8_format(self):
        assert INT8.total_bits == 8
        assert INT8.raw_min == -128
        assert INT8.raw_max == 127

    def test_rejects_zero_integer_bits(self):
        with pytest.raises(FixedPointError):
            QFormat(integer_bits=0, fraction_bits=4)

    def test_rejects_negative_fraction_bits(self):
        with pytest.raises(FixedPointError):
            QFormat(integer_bits=4, fraction_bits=-1)

    def test_rejects_too_wide_format(self):
        with pytest.raises(FixedPointError):
            QFormat(integer_bits=40, fraction_bits=40)

    def test_str(self):
        assert str(Q8_16) == "Q8.16"


class TestRanges:
    def test_q8_16_range(self):
        assert Q8_16.max_value == pytest.approx(127.99998474121094)
        assert Q8_16.min_value == -128.0

    def test_resolution(self):
        assert Q8_16.resolution == pytest.approx(1.0 / 65536)

    def test_raw_limits(self):
        assert Q8_16.raw_min == -(1 << 23)
        assert Q8_16.raw_max == (1 << 23) - 1


class TestConversion:
    def test_one_point_five(self):
        assert Q8_16.to_fixed(1.5) == 98304

    def test_roundtrip_exact_values(self):
        for value in (0.0, 1.0, -1.0, 0.5, -127.5, 100.25):
            assert Q8_16.to_float(Q8_16.to_fixed(value)) == value

    def test_scalar_returns_int(self):
        assert isinstance(Q8_16.to_fixed(0.25), int)

    def test_array_conversion(self):
        raw = Q8_16.to_fixed(np.array([0.5, -0.5]))
        assert raw.tolist() == [32768, -32768]

    def test_saturation_clamps_high(self):
        assert Q8_16.to_fixed(1000.0) == Q8_16.raw_max

    def test_saturation_clamps_low(self):
        assert Q8_16.to_fixed(-1000.0) == Q8_16.raw_min

    def test_no_saturate_raises(self):
        with pytest.raises(FixedPointError):
            Q8_16.to_fixed(1000.0, saturate=False)

    def test_quantize_rounds_to_grid(self):
        value = 0.1
        quantized = Q8_16.quantize(value)
        assert quantized != value  # 0.1 is not on the grid
        assert abs(quantized - value) <= Q8_16.resolution / 2

    def test_representable(self):
        assert Q8_16.representable(0.5)
        assert not Q8_16.representable(1e-9)


class TestHypothesis:
    @given(st.floats(min_value=-127.9, max_value=127.9))
    def test_roundtrip_error_bounded_by_half_lsb(self, value):
        back = Q8_16.quantize(value)
        assert abs(back - value) <= Q8_16.resolution / 2 + 1e-12

    @given(st.integers(min_value=-(1 << 23), max_value=(1 << 23) - 1))
    def test_raw_roundtrip_is_identity(self, raw):
        assert Q8_16.to_fixed(Q8_16.to_float(raw)) == raw

    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=0, max_value=16),
    )
    def test_arbitrary_formats_roundtrip_zero_and_one(self, ibits, fbits):
        fmt = QFormat(ibits, fbits)
        assert fmt.to_float(fmt.to_fixed(0.0)) == 0.0
        if fmt.max_value >= 1.0:
            assert fmt.to_float(fmt.to_fixed(1.0)) == 1.0
