"""Timing model vs the paper's Eqs. 1-2 and published per-layer numbers."""

import pytest

from repro.arch import ArchConfig
from repro.errors import ConfigError
from repro.nn import MOBILENET_V1_CIFAR10_SPECS
from repro.sim import eq1_tile_latency_cycles, layer_latency

#: Cycle counts implied by the paper's timing model (Eqs. 1-2 with the
#: 8x8-output ifmap-buffer tiling); these reproduce the paper's Fig. 13
#: throughputs exactly.
EXPECTED_CYCLES = {
    0: 4672, 1: 4384, 2: 8768, 3: 4240, 4: 8480, 5: 4384,
    6: 8768, 7: 8768, 8: 8768, 9: 8768, 10: 8768, 11: 4672, 12: 9344,
}

#: Paper Fig. 13 throughputs in GOPS.
EXPECTED_GOPS = {
    **{i: 1024.0 for i in range(5)},
    **{i: 973.55 for i in range(5, 11)},
    **{i: 905.64 for i in (11, 12)},
}


class TestEq1:
    def test_paper_form(self):
        # Eq. 1 for a whole 4x4x512 -> 4x4x512 layer (layer 6): one tile
        assert eq1_tile_latency_cycles(4, 4, 512) == 9 + 4 * 32

    def test_minimal_tile(self):
        assert eq1_tile_latency_cycles(2, 2, 16) == 10

    def test_ceiling_division(self):
        assert eq1_tile_latency_cycles(3, 3, 17) == 9 + 4 * 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            eq1_tile_latency_cycles(0, 2, 16)


class TestLayerLatency:
    @pytest.mark.parametrize("index", sorted(EXPECTED_CYCLES))
    def test_cycles_reproduce_paper_timing(self, index):
        spec = MOBILENET_V1_CIFAR10_SPECS[index]
        assert layer_latency(spec).total_cycles == EXPECTED_CYCLES[index]

    @pytest.mark.parametrize("index", sorted(EXPECTED_GOPS))
    def test_throughput_reproduces_fig13(self, index):
        spec = MOBILENET_V1_CIFAR10_SPECS[index]
        cycles = layer_latency(spec).total_cycles
        gops = spec.total_ops / cycles  # 1 GHz -> ops/cycle = GOPS
        assert gops == pytest.approx(EXPECTED_GOPS[index], abs=0.01)

    def test_mean_throughput_matches_paper_average(self):
        gops = [
            spec.total_ops / layer_latency(spec).total_cycles
            for spec in MOBILENET_V1_CIFAR10_SPECS
        ]
        mean = sum(gops) / len(gops)
        # paper: 981.42 GOPS average (their aggregation differs slightly;
        # the arithmetic mean of their own Fig. 13 values is 982.5)
        assert mean == pytest.approx(982.5, abs=1.0)

    def test_breakdown_sums(self):
        spec = MOBILENET_V1_CIFAR10_SPECS[0]
        breakdown = layer_latency(spec)
        assert breakdown.total_cycles == (
            breakdown.init_cycles + breakdown.streaming_cycles
        )

    def test_spatial_tiling_for_large_maps(self):
        assert layer_latency(MOBILENET_V1_CIFAR10_SPECS[0]).spatial_tiles == 16
        assert layer_latency(MOBILENET_V1_CIFAR10_SPECS[6]).spatial_tiles == 1

    def test_init_fraction_grows_for_small_maps(self):
        # the paper's explanation for the lower layer-11/12 throughput:
        # untiled mid layers amortize the 9 cycles well; 2x2 layers don't
        mid = layer_latency(MOBILENET_V1_CIFAR10_SPECS[4])
        late = layer_latency(MOBILENET_V1_CIFAR10_SPECS[12])
        assert late.init_fraction > mid.init_fraction

    def test_latency_seconds(self):
        spec = MOBILENET_V1_CIFAR10_SPECS[6]
        breakdown = layer_latency(spec)
        assert breakdown.latency_seconds(1e9) == pytest.approx(8768e-9)

    def test_channel_groups(self):
        assert layer_latency(MOBILENET_V1_CIFAR10_SPECS[12]).channel_groups == 128

    def test_faster_clock_shrinks_wall_time_not_cycles(self):
        spec = MOBILENET_V1_CIFAR10_SPECS[4]
        slow = ArchConfig(clock_hz=0.5e9)
        assert layer_latency(spec, slow).total_cycles == (
            layer_latency(spec).total_cycles
        )

    def test_larger_tk_reduces_cycles(self):
        spec = MOBILENET_V1_CIFAR10_SPECS[6]
        base = layer_latency(spec, ArchConfig()).total_cycles
        wide = layer_latency(spec, ArchConfig(tk=32)).total_cycles
        assert wide < base

    def test_non_divisible_map_uses_ceiling(self):
        from repro.nn import DSCLayerSpec

        spec = DSCLayerSpec(0, 6, 1, 8, 16)  # 6x6 output with Tn=2
        breakdown = layer_latency(spec)
        assert breakdown.streaming_cycles == 9 * 1 * 1  # 9 positions, 1 kgroup
