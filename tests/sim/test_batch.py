"""Batch streaming execution."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sim import BatchResult, run_batch


@pytest.fixture(scope="module")
def batch_result(small_workload):
    return run_batch(small_workload.qmodel, small_workload.images[:3])


class TestRunBatch:
    def test_one_stats_per_image(self, batch_result):
        assert batch_result.images == 3
        assert batch_result.logits.shape == (3, 10)

    def test_cycles_identical_across_images(self, batch_result):
        """Latency is data-independent: the schedule is fixed by the
        geometry, so every image costs exactly the same cycles."""
        cycles = {stats.total_cycles for stats in batch_result.per_image}
        assert len(cycles) == 1

    def test_total_cycles_sum(self, batch_result):
        assert batch_result.total_cycles == sum(
            s.total_cycles for s in batch_result.per_image
        )

    def test_fps_consistent_with_latency(self, batch_result):
        fps = batch_result.frames_per_second
        per_image_s = batch_result.total_latency_seconds / 3
        assert fps == pytest.approx(1.0 / per_image_s)

    def test_throughput_in_physical_range(self, batch_result):
        assert 0 < batch_result.throughput_gops <= 1600

    def test_logits_match_reference_model(self, small_workload,
                                          batch_result):
        ref = small_workload.qmodel.forward(small_workload.images[:3])
        np.testing.assert_allclose(batch_result.logits, ref)

    def test_predictions(self, batch_result):
        preds = batch_result.predictions()
        assert preds.shape == (3,)
        assert np.all((preds >= 0) & (preds < 10))

    def test_rejects_single_image_without_batch_dim(self, small_workload):
        with pytest.raises(ShapeError):
            run_batch(small_workload.qmodel, small_workload.images[0])

    def test_verify_mode(self, small_workload):
        result = run_batch(
            small_workload.qmodel, small_workload.images[:1], verify=True
        )
        assert result.images == 1

    def test_empty_result_defaults(self):
        result = BatchResult(logits=np.zeros((0, 10)))
        assert result.frames_per_second == 0.0
        assert result.throughput_gops == 0.0


class TestAffineDequant:
    def test_logits_use_full_affine_dequant(self, small_workload):
        """Regression: the final feature map must be dequantized with the
        full affine transform ``(q - zero_point) * scale`` — scale-only
        shifts every logit when the output quantization is asymmetric."""
        import dataclasses

        from repro.quant.qmodel import QuantizedMobileNet
        from repro.quant.scheme import QuantParams, dequantize

        qm = small_workload.qmodel
        last = qm.layers[-1]
        shifted_params = QuantParams(
            last.output_params.scale,
            signed=last.output_params.signed,
            zero_point=5,
        )
        shifted = QuantizedMobileNet(
            stem=qm.stem,
            input_params=qm.input_params,
            layers=[
                *qm.layers[:-1],
                dataclasses.replace(last, output_params=shifted_params),
            ],
            head_pool=qm.head_pool,
            head_linear=qm.head_linear,
        )
        images = small_workload.images[:2]
        result = run_batch(shifted, images)

        # Expected logits: the int8 codes are unchanged (the Non-Conv
        # constants produce them), only their decoding shifts by -z*s.
        x_q = shifted.stem_forward(images)
        for layer in shifted.layers:
            _, x_q = layer.forward(x_q)
        expected = shifted.head_linear.forward(
            shifted.head_pool.forward(dequantize(x_q, shifted_params))
        )
        assert not np.allclose(
            expected,
            shifted.head_linear.forward(
                shifted.head_pool.forward(
                    x_q.astype(np.float64) * shifted_params.scale
                )
            ),
        ), "test setup must distinguish affine from scale-only dequant"
        np.testing.assert_allclose(result.logits, expected)
        # And the batch path agrees with the reference model's forward.
        np.testing.assert_allclose(
            result.logits, shifted.forward(images)
        )
