"""Analytic fast-latency mode vs the event-driven accelerator."""

import dataclasses

import numpy as np
import pytest

from repro.arch.params import ArchConfig
from repro.errors import SimulationError
from repro.sim import AcceleratorRunner, analytic_layer_stats


class TestFastStatsEquivalence:
    def test_stats_bit_for_bit_on_mobilenet(self, small_workload):
        """On grid-aligned geometry every LayerRunStats field matches."""
        accurate = AcceleratorRunner(small_workload.qmodel, verify=False)
        fast = AcceleratorRunner(
            small_workload.qmodel, verify=False, fast=True
        )
        image = small_workload.images[0]
        event = accurate.run_network(image)
        analytic = fast.run_network(image)
        for a, f in zip(event.layers, analytic.layers):
            assert dataclasses.asdict(a) == dataclasses.asdict(f)

    def test_stats_match_without_direct_transfer(self, small_workload):
        accurate = AcceleratorRunner(
            small_workload.qmodel, verify=False, direct_transfer=False
        )
        fast = AcceleratorRunner(
            small_workload.qmodel,
            verify=False,
            direct_transfer=False,
            fast=True,
        )
        image = small_workload.images[0]
        event = accurate.run_network(image).layers[0]
        analytic = fast.run_network(image).layers[0]
        assert event.external == analytic.external
        assert event.buffer_accesses == analytic.buffer_accesses

    def test_outputs_bit_exact(self, small_workload):
        """Fast-mode outputs are the int8 reference itself."""
        accurate = AcceleratorRunner(small_workload.qmodel, verify=True)
        fast = AcceleratorRunner(
            small_workload.qmodel, verify=False, fast=True
        )
        x_q = small_workload.qmodel.layer_input(
            small_workload.images[:1], 0
        )[0]
        out_accurate, _ = accurate.run_layer(0, x_q)
        out_fast, _ = fast.run_layer(0, x_q)
        assert np.array_equal(out_accurate, out_fast)

    def test_nondefault_config_cycles_match(self, small_workload):
        config = ArchConfig(td=4, tk=8, max_output_tile=4)
        accurate = AcceleratorRunner(
            small_workload.qmodel, config=config, verify=False
        )
        fast = AcceleratorRunner(
            small_workload.qmodel, config=config, verify=False, fast=True
        )
        image = small_workload.images[0]
        assert (
            accurate.run_network(image).total_cycles
            == fast.run_network(image).total_cycles
        )

    def test_indivisible_channels_rejected(self, small_workload):
        layer = small_workload.qmodel.layers[0]
        x_q = small_workload.qmodel.layer_input(
            small_workload.images[:1], 0
        )[0]
        mid = np.zeros(
            (layer.spec.in_channels, layer.spec.out_size, layer.spec.out_size),
            dtype=np.int8,
        )
        with pytest.raises(SimulationError):
            analytic_layer_stats(layer, x_q, mid, config=ArchConfig(td=3))


class TestVerifyDiagnostics:
    def test_mismatch_names_layer_and_element(
        self, small_workload, monkeypatch
    ):
        """Regression: SimulationError must localize the first mismatch."""
        from repro.arch.accelerator import DSCAccelerator

        runner = AcceleratorRunner(small_workload.qmodel, verify=True)
        x_q = small_workload.qmodel.layer_input(
            small_workload.images[:1], 2
        )[0]
        original = DSCAccelerator.run_layer

        def corrupted(self, layer, x):
            out, stats = original(self, layer, x)
            out = out.copy()
            out[3, 1, 0] += 1  # flip exactly one element
            return out, stats

        monkeypatch.setattr(DSCAccelerator, "run_layer", corrupted)
        with pytest.raises(SimulationError) as excinfo:
            runner.run_layer(2, x_q)
        message = str(excinfo.value)
        assert "layer 2" in message
        assert "1 element;" in message
        assert "channel 3" in message
        assert "row 1" in message
        assert "col 0" in message
        assert "accelerator produced" in message
        assert "reference expects" in message
