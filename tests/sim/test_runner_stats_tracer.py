"""Network runner, aggregate stats, and the pipeline tracer."""

import numpy as np
import pytest

from repro.arch import EDEA_CONFIG
from repro.errors import ConfigError, ShapeError
from repro.sim import (
    STAGES,
    AcceleratorRunner,
    NetworkRunStats,
    layer_latency,
    trace_tile_pipeline,
)


class TestRunner:
    def test_run_network_returns_13_layer_stats(self, small_workload):
        assert len(small_workload.run_stats.layers) == 13

    def test_verification_catches_corruption(self, small_workload):
        runner = AcceleratorRunner(small_workload.qmodel, verify=True)
        layer = small_workload.qmodel.layers[0]
        x_q = small_workload.qmodel.layer_input(small_workload.images[:1], 0)[0]
        # corrupt one weight inside the accelerator's copy via monkeypatch
        original = layer.dwc_weight.copy()
        try:
            out, _ = runner.run_layer(0, x_q)  # sanity: passes unmodified
            layer.dwc_weight[0, 0, 0] += 1

            class Tampered:
                pass

            # run with mismatched reference: accelerator sees new weights,
            # compare against stale expected output captured above
            _, ref = layer.forward(x_q[np.newaxis])
            assert not np.array_equal(out, ref[0])
        finally:
            layer.dwc_weight[...] = original

    def test_layer_index_bounds(self, small_workload):
        runner = AcceleratorRunner(small_workload.qmodel)
        with pytest.raises(ShapeError):
            runner.run_layer(13, np.zeros((8, 2, 2), dtype=np.int8))

    def test_run_network_accepts_3d_image(self, small_workload):
        runner = AcceleratorRunner(small_workload.qmodel, verify=False)
        stats = runner.run_network(small_workload.images[0])
        assert stats.total_cycles > 0

    def test_run_network_rejects_batch(self, small_workload):
        runner = AcceleratorRunner(small_workload.qmodel, verify=False)
        with pytest.raises(ShapeError):
            runner.run_network(small_workload.images[:2])

    def test_cycles_independent_of_width(self, small_workload):
        """Reduced-width channels scale groups, so cycles shrink 16x for
        width 0.25 relative to full width — but per-layer cycles must
        still match the analytic model for the reduced specs."""
        for stats, spec in zip(small_workload.run_stats.layers,
                               small_workload.specs):
            assert stats.cycles == layer_latency(spec).total_cycles


class TestNetworkStats:
    def test_totals_sum_layers(self, small_workload):
        stats = small_workload.run_stats
        assert stats.total_cycles == sum(s.cycles for s in stats.layers)
        assert stats.total_macs == sum(s.total_macs for s in stats.layers)
        assert stats.total_ops == 2 * stats.total_macs

    def test_latency_at_1ghz(self, small_workload):
        stats = small_workload.run_stats
        assert stats.total_latency_seconds == pytest.approx(
            stats.total_cycles * 1e-9
        )

    def test_series_lengths(self, small_workload):
        stats = small_workload.run_stats
        assert len(stats.layer_throughputs_gops()) == 13
        assert len(stats.layer_latencies_ns()) == 13

    def test_aggregate_vs_mean_throughput(self, small_workload):
        stats = small_workload.run_stats
        # both aggregations must be positive and within the engine peak
        assert 0 < stats.aggregate_throughput_gops <= 1600
        assert 0 < stats.mean_layer_throughput_gops <= 1600

    def test_empty_stats(self):
        stats = NetworkRunStats(layers=[], clock_hz=1e9)
        assert stats.total_cycles == 0
        assert stats.mean_layer_throughput_gops == 0.0
        assert stats.aggregate_throughput_gops == 0.0


class TestTracer:
    def test_first_output_at_cycle_9(self):
        events = trace_tile_pipeline(positions=4, kernel_groups=2)
        first_out = min(e.cycle for e in events if e.stage == "output")
        assert first_out == EDEA_CONFIG.init_cycles == 9

    def test_one_output_per_streaming_cycle(self):
        events = trace_tile_pipeline(positions=4, kernel_groups=2)
        outputs = [e for e in events if e.stage == "output"]
        assert len(outputs) == 4 * 2
        cycles = sorted(e.cycle for e in outputs)
        assert cycles == list(range(9, 17))

    def test_total_span_matches_eq1(self):
        from repro.sim import eq1_tile_latency_cycles

        positions, kgroups = 16, 4
        events = trace_tile_pipeline(positions, kgroups)
        last = max(e.cycle for e in events)
        expected = eq1_tile_latency_cycles(8, 8, 64)  # 16 pos, 4 kgroups
        assert last == expected - 1  # cycles are 0-based

    def test_dwc_fires_once_per_position(self):
        events = trace_tile_pipeline(positions=4, kernel_groups=4)
        dwc = [e for e in events if e.stage == "dwc_process"]
        # 1 in the fill + (positions-1) overlapped = positions
        assert len(dwc) == 4

    def test_initiation_fills_stages_in_order(self):
        events = trace_tile_pipeline(positions=1, kernel_groups=1)
        fill = [e for e in events if e.cycle < 8]
        assert [e.stage for e in fill][: len(STAGES) - 1] == list(STAGES[:-1])

    def test_validation(self):
        with pytest.raises(ConfigError):
            trace_tile_pipeline(0, 1)
        with pytest.raises(ConfigError):
            trace_tile_pipeline(10_000, 10_000, max_events=100)
