"""Fault injection into the quantized datapath."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sim import FaultSpec, inject_weight_fault, measure_impact


@pytest.fixture()
def layer_and_input(small_workload):
    layer = small_workload.qmodel.layers[0]
    x_q = small_workload.qmodel.layer_input(small_workload.images[:1], 0)[0]
    return layer, x_q


class TestFaultSpec:
    def test_valid_targets(self):
        for target in FaultSpec.VALID_TARGETS:
            FaultSpec(target=target, flat_index=0, bit=0)

    def test_unknown_target_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec(target="psum", flat_index=0, bit=0)

    def test_weight_bit_range(self):
        FaultSpec(target="dwc_weight", flat_index=0, bit=7)
        with pytest.raises(ConfigError):
            FaultSpec(target="dwc_weight", flat_index=0, bit=8)

    def test_constant_bit_range(self):
        FaultSpec(target="dwc_k", flat_index=0, bit=23)
        with pytest.raises(ConfigError):
            FaultSpec(target="dwc_k", flat_index=0, bit=24)

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec(target="dwc_weight", flat_index=-1, bit=0)


class TestInjection:
    def test_flips_exactly_one_weight(self, layer_and_input):
        layer, _ = layer_and_input
        fault = FaultSpec(target="dwc_weight", flat_index=5, bit=3)
        faulty = inject_weight_fault(layer, fault)
        diff = faulty.dwc_weight.astype(np.int16) - layer.dwc_weight.astype(
            np.int16
        )
        assert np.count_nonzero(diff) == 1
        assert abs(int(diff.reshape(-1)[5])) == 8  # 2^3

    def test_original_layer_untouched(self, layer_and_input):
        layer, _ = layer_and_input
        before = layer.dwc_weight.copy()
        inject_weight_fault(
            layer, FaultSpec(target="dwc_weight", flat_index=0, bit=7)
        )
        np.testing.assert_array_equal(layer.dwc_weight, before)

    def test_flip_is_involution(self, layer_and_input):
        layer, _ = layer_and_input
        fault = FaultSpec(target="pwc_weight", flat_index=17, bit=6)
        twice = inject_weight_fault(inject_weight_fault(layer, fault), fault)
        np.testing.assert_array_equal(twice.pwc_weight, layer.pwc_weight)

    def test_sign_bit_flip(self, layer_and_input):
        layer, _ = layer_and_input
        fault = FaultSpec(target="dwc_weight", flat_index=0, bit=7)
        faulty = inject_weight_fault(layer, fault)
        a = int(layer.dwc_weight.reshape(-1)[0])
        b = int(faulty.dwc_weight.reshape(-1)[0])
        assert (a & 0xFF) ^ (b & 0xFF) == 0x80

    def test_nonconv_constant_flip(self, layer_and_input):
        layer, _ = layer_and_input
        fault = FaultSpec(target="dwc_k", flat_index=2, bit=10)
        faulty = inject_weight_fault(layer, fault)
        diff = np.asarray(faulty.dwc_nonconv.k_raw) - np.asarray(
            layer.dwc_nonconv.k_raw
        )
        assert np.count_nonzero(diff) == 1

    def test_out_of_range_index_rejected(self, layer_and_input):
        layer, _ = layer_and_input
        fault = FaultSpec(target="dwc_weight", flat_index=10**9, bit=0)
        with pytest.raises(ConfigError):
            inject_weight_fault(layer, fault)


class TestImpact:
    def test_high_bit_hurts_more_than_low_bit(self, layer_and_input):
        layer, x_q = layer_and_input
        low = measure_impact(
            layer, FaultSpec("dwc_weight", flat_index=0, bit=0), x_q
        )
        high = measure_impact(
            layer, FaultSpec("dwc_weight", flat_index=0, bit=6), x_q
        )
        assert high.mean_abs_error >= low.mean_abs_error

    def test_dwc_fault_confined_to_one_channel_spatially(self,
                                                         layer_and_input):
        """A depthwise weight only feeds one channel of the intermediate;
        the PWC then spreads it across output channels, but the spatial
        footprint stays bounded by the conv window."""
        layer, x_q = layer_and_input
        impact = measure_impact(
            layer, FaultSpec("dwc_weight", flat_index=0, bit=6), x_q
        )
        assert impact.changed_fraction < 1.0

    def test_metrics_consistent(self, layer_and_input):
        layer, x_q = layer_and_input
        impact = measure_impact(
            layer, FaultSpec("pwc_weight", flat_index=3, bit=5), x_q
        )
        assert 0 <= impact.changed_elements <= impact.total_elements
        assert impact.mean_abs_error <= impact.max_abs_error
        if impact.changed_elements == 0:
            assert impact.silent

    def test_verification_catches_injected_fault(self, small_workload):
        """The runner's bit-exact check must flag a corrupted accelerator
        run — faults cannot pass silently."""
        from repro.arch import DSCAccelerator

        layer = small_workload.qmodel.layers[0]
        x_q = small_workload.qmodel.layer_input(
            small_workload.images[:1], 0
        )[0]
        fault = FaultSpec("dwc_weight", flat_index=1, bit=6)
        faulty_layer = inject_weight_fault(layer, fault)
        impact = measure_impact(layer, fault, x_q)
        if impact.silent:
            pytest.skip("fault masked by requantization for this input")
        accel = DSCAccelerator()
        out, _ = accel.run_layer(faulty_layer, x_q)
        _, ref = layer.forward(x_q[np.newaxis])
        assert not np.array_equal(out, ref[0])
