"""Fastpath vs event-driven parity across every zoo geometry.

The analytic fast-latency model claims bit-for-bit ``LayerRunStats``
parity with the event-driven accelerator on *any* DSC geometry —
including stride-2 and non-divisible (7x7-style) maps whose edge windows
the engines zero-fill.  These tests sweep the unique spatial geometries
of every :mod:`repro.nn.zoo` factory (MobileNetV1-224, the MobileNetV2
DSC view, and a custom odd-sized stack) through both models with
synthetic quantized layers (channel counts clamped to one Td/Tk group so
the event model stays fast; zero statistics are spatial, not
channel-count, effects).
"""

import dataclasses

import numpy as np
import pytest

from repro.arch.accelerator import DSCAccelerator
from repro.fixedpoint import Q8_16
from repro.nn.mobilenet import DSCLayerSpec
from repro.nn.zoo import (
    custom_dsc_specs,
    mobilenet_v1_imagenet_specs,
    mobilenet_v2_dsc_specs,
)
from repro.quant.fold import NonConvParams
from repro.quant.qmodel import QuantizedDSCLayer
from repro.quant.scheme import QuantParams
from repro.sim import analytic_layer_stats


def _geometries(specs):
    return sorted({(s.in_size, s.stride) for s in specs})


#: A deliberately odd-sized custom stack: 30 -> 30 -> 15 -> 8 -> 8.
CUSTOM_PLAN = [(1, 8, 16), (2, 16, 16), (2, 16, 16), (1, 16, 16)]

ZOO_GEOMETRIES = sorted(
    set(_geometries(mobilenet_v1_imagenet_specs()))
    | set(_geometries(mobilenet_v2_dsc_specs()))
    | set(_geometries(custom_dsc_specs(30, CUSTOM_PLAN)))
)


def make_synthetic_layer(spec: DSCLayerSpec, rng) -> QuantizedDSCLayer:
    """A quantized DSC layer with random weights and Non-Conv constants.

    No training or calibration: the parity claim is about integer
    arithmetic and scheduling, so any in-range constants exercise it.
    The ReLU in both Non-Conv stages guarantees a healthy zero mix in
    the intermediate tensor (the statistic under test).
    """
    d, k = spec.in_channels, spec.out_channels
    params = QuantParams(0.05, signed=False)
    return QuantizedDSCLayer(
        spec=spec,
        dwc_weight=rng.integers(-4, 5, size=(d, 3, 3)).astype(np.int8),
        pwc_weight=rng.integers(-4, 5, size=(k, d)).astype(np.int8),
        dwc_nonconv=NonConvParams(
            k_raw=np.asarray(
                Q8_16.to_fixed(rng.uniform(0.002, 0.02, d)), dtype=np.int64
            ),
            b_raw=np.asarray(
                Q8_16.to_fixed(rng.uniform(-1.5, 1.5, d)), dtype=np.int64
            ),
            relu=True,
        ),
        pwc_nonconv=NonConvParams(
            k_raw=np.asarray(
                Q8_16.to_fixed(rng.uniform(0.002, 0.02, k)), dtype=np.int64
            ),
            b_raw=np.asarray(
                Q8_16.to_fixed(rng.uniform(-1.5, 1.5, k)), dtype=np.int64
            ),
            relu=True,
        ),
        input_params=params,
        mid_params=params,
        output_params=params,
    )


def make_input(spec: DSCLayerSpec, rng) -> np.ndarray:
    """Post-ReLU int8 input with ~25% zeros (drives the zero gating)."""
    shape = (spec.in_channels, spec.in_size, spec.in_size)
    values = rng.integers(1, 60, size=shape)
    return (values * (rng.random(shape) > 0.25)).astype(np.int8)


def _run_both(spec: DSCLayerSpec):
    rng = np.random.default_rng(1000 * spec.in_size + spec.stride)
    layer = make_synthetic_layer(spec, rng)
    x_q = make_input(spec, rng)
    out_event, stats_event = DSCAccelerator().run_layer(layer, x_q)
    mid_ref, out_ref = layer.forward(x_q[np.newaxis])
    assert np.array_equal(out_event, out_ref[0])
    stats_fast = analytic_layer_stats(layer, x_q, mid_ref[0])
    return stats_event, stats_fast


@pytest.mark.parametrize("in_size,stride", ZOO_GEOMETRIES)
def test_zoo_geometry_stats_bit_for_bit(in_size, stride):
    """Every LayerRunStats field matches the event model exactly."""
    spec = DSCLayerSpec(0, in_size, stride, 8, 16)
    stats_event, stats_fast = _run_both(spec)
    assert dataclasses.asdict(stats_event) == dataclasses.asdict(stats_fast)


def test_stride2_pad_edge_zero_parity_regression():
    """Regression: on a stride-2 14->7 layer the engines never read the
    bottom/right padding row, and the 7x7 map's edge windows are
    zero-filled per tile.  A whole-tensor zero fraction over the padded
    input inflated ``dwc_input_zeros`` relative to the event model."""
    spec = DSCLayerSpec(0, 14, 2, 8, 16)
    stats_event, stats_fast = _run_both(spec)
    assert stats_fast.dwc_input_zeros == stats_event.dwc_input_zeros
    assert stats_fast.pwc_input_zeros == stats_event.pwc_input_zeros
    assert stats_fast.dwc_input_elements == stats_event.dwc_input_elements
    assert stats_fast.pwc_input_elements == stats_event.pwc_input_elements


def test_odd_map_zero_parity_regression():
    """Regression: non-divisible 7x7 stride-1 maps (MobileNetV1-224's
    last stage) also fell back to the inflated whole-tensor fraction."""
    spec = DSCLayerSpec(0, 7, 1, 8, 16)
    stats_event, stats_fast = _run_both(spec)
    assert stats_fast.dwc_input_zeros == stats_event.dwc_input_zeros
    assert stats_fast.pwc_input_zeros == stats_event.pwc_input_zeros
