"""The explicit tile schedule (controller operation stream)."""

import pytest

from repro.arch import ArchConfig, EDEA_CONFIG
from repro.errors import ConfigError
from repro.nn import MOBILENET_V1_CIFAR10_SPECS, DSCLayerSpec
from repro.sim import (
    OpKind,
    generate_layer_schedule,
    layer_latency,
    schedule_summary,
)


class TestScheduleCounts:
    @pytest.mark.parametrize("index", [0, 1, 6, 12])
    def test_pwc_passes_equal_streaming_cycles(self, index):
        spec = MOBILENET_V1_CIFAR10_SPECS[index]
        summary = schedule_summary(spec)
        breakdown = layer_latency(spec)
        assert summary["pwc_pass"] == breakdown.streaming_cycles

    @pytest.mark.parametrize("index", [0, 5, 12])
    def test_ifmap_loads_equal_tiles_times_groups(self, index):
        spec = MOBILENET_V1_CIFAR10_SPECS[index]
        summary = schedule_summary(spec)
        breakdown = layer_latency(spec)
        assert summary["load_ifmap_tile"] == (
            breakdown.spatial_tiles * breakdown.channel_groups
        )

    def test_weight_loads_once_per_channel_group(self):
        spec = MOBILENET_V1_CIFAR10_SPECS[6]
        summary = schedule_summary(spec)
        groups = spec.in_channels // EDEA_CONFIG.td
        assert summary["load_dwc_weights"] == groups
        assert summary["load_pwc_weights"] == groups
        assert summary["load_offline"] == groups

    def test_dwc_and_nonconv_pass_counts_match(self):
        spec = MOBILENET_V1_CIFAR10_SPECS[3]
        summary = schedule_summary(spec)
        assert summary["dwc_pass"] == summary["nonconv_pass"]

    def test_dwc_passes_equal_positions_times_groups(self):
        spec = MOBILENET_V1_CIFAR10_SPECS[6]
        summary = schedule_summary(spec)
        positions = (spec.out_size // 2) ** 2
        groups = spec.in_channels // EDEA_CONFIG.td
        assert summary["dwc_pass"] == positions * groups

    def test_output_stores_once_per_kernel_group(self):
        spec = MOBILENET_V1_CIFAR10_SPECS[12]
        summary = schedule_summary(spec)
        assert summary["store_output"] == spec.out_channels // EDEA_CONFIG.tk


class TestScheduleOrdering:
    def test_loads_precede_first_pass_in_each_group(self):
        spec = DSCLayerSpec(0, 4, 1, 16, 16)
        ops = list(generate_layer_schedule(spec))
        seen_group_loads = set()
        for op in ops:
            if op.kind is OpKind.DWC_PASS:
                assert op.channel_group in seen_group_loads
            if op.kind is OpKind.LOAD_DWC_WEIGHTS:
                seen_group_loads.add(op.channel_group)

    def test_nonconv_follows_dwc_for_same_position(self):
        spec = DSCLayerSpec(0, 4, 1, 8, 16)
        ops = list(generate_layer_schedule(spec))
        for i, op in enumerate(ops):
            if op.kind is OpKind.NONCONV_PASS:
                prev = ops[i - 1]
                assert prev.kind is OpKind.DWC_PASS
                assert prev.position == op.position

    def test_pwc_iterates_kernel_groups_after_nonconv(self):
        spec = DSCLayerSpec(0, 2, 1, 8, 32)
        ops = list(generate_layer_schedule(spec))
        kinds = [op.kind for op in ops]
        first_nc = kinds.index(OpKind.NONCONV_PASS)
        assert kinds[first_nc + 1] is OpKind.PWC_PASS
        assert kinds[first_nc + 2] is OpKind.PWC_PASS  # K/Tk = 2 groups

    def test_channel_group_is_outermost(self):
        spec = DSCLayerSpec(0, 16, 1, 16, 16)
        ops = [op for op in generate_layer_schedule(spec)
               if op.channel_group >= 0]
        groups = [op.channel_group for op in ops]
        assert groups == sorted(groups)  # never goes back


class TestScheduleValidation:
    def test_indivisible_channels_rejected(self):
        spec = DSCLayerSpec(0, 4, 1, 12, 16)
        with pytest.raises(ConfigError):
            list(generate_layer_schedule(spec))

    def test_indivisible_kernels_rejected(self):
        spec = DSCLayerSpec(0, 4, 1, 8, 24)
        with pytest.raises(ConfigError):
            list(generate_layer_schedule(spec))

    def test_scaled_config(self):
        spec = DSCLayerSpec(0, 4, 1, 32, 32)
        summary = schedule_summary(spec, ArchConfig(td=16, tk=32))
        assert summary["load_dwc_weights"] == 2  # 32/16 groups
        assert summary["store_output"] == 1
