"""TraceRecorder: event shapes, determinism, persistence, summaries."""

import json

import pytest

from repro.errors import ReproError
from repro.obs import TraceRecorder, render_trace_summary, summarize_trace


def _recorded(recorder):
    return recorder.to_payload()["traceEvents"]


class TestEventShapes:
    def test_complete_span(self):
        recorder = TraceRecorder()
        recorder.complete(
            "m", cat="request", ts_s=0.25, dur_s=0.5, pid=1, tid=2,
            args={"batch": 3},
        )
        (event,) = _recorded(recorder)
        assert event == {
            "name": "m",
            "cat": "request",
            "ph": "X",
            "ts": 250_000.0,
            "dur": 500_000.0,
            "pid": 1,
            "tid": 2,
            "args": {"batch": 3},
        }

    def test_thread_scoped_instant(self):
        recorder = TraceRecorder()
        recorder.instant("shed", cat="admission", ts_s=1.0, pid=0, tid=3)
        (event,) = _recorded(recorder)
        assert event["ph"] == "i"
        assert (event["tid"], event["s"]) == (3, "t")

    def test_process_scoped_instant(self):
        recorder = TraceRecorder()
        recorder.instant("spill", cat="spillover", ts_s=1.0, pid=4)
        (event,) = _recorded(recorder)
        assert (event["tid"], event["s"]) == (0, "p")

    def test_batch_ids_are_monotone(self):
        recorder = TraceRecorder()
        assert [recorder.next_batch_id() for _ in range(3)] == [1, 2, 3]

    def test_timestamps_map_to_microseconds(self):
        recorder = TraceRecorder()
        recorder.instant("x", cat="c", ts_s=1.2345678901, pid=0)
        (event,) = _recorded(recorder)
        assert event["ts"] == 1_234_567.89


class TestPayloadOrdering:
    def test_events_sorted_by_timestamp_insertion_tiebreak(self):
        recorder = TraceRecorder()
        recorder.instant("late", cat="c", ts_s=2.0, pid=0)
        recorder.instant("early", cat="c", ts_s=1.0, pid=0)
        recorder.instant("tie-a", cat="c", ts_s=1.5, pid=0)
        recorder.instant("tie-b", cat="c", ts_s=1.5, pid=0)
        names = [e["name"] for e in _recorded(recorder)]
        assert names == ["early", "tie-a", "tie-b", "late"]

    def test_metadata_precedes_events(self):
        recorder = TraceRecorder()
        recorder.instant("x", cat="c", ts_s=0.0, pid=0)
        recorder.set_process_name(0, "fleet 0")
        recorder.set_thread_name(0, 1, "instance 1")
        events = _recorded(recorder)
        assert [e["ph"] for e in events] == ["M", "M", "i"]
        assert events[0]["args"] == {"name": "fleet 0"}

    def test_other_data_embedded(self):
        recorder = TraceRecorder()
        payload = recorder.to_payload({"offered": 7})
        assert payload["otherData"] == {"offered": 7}
        assert payload["displayTimeUnit"] == "ms"


class TestStateDict:
    def test_round_trip_preserves_events_and_batch_seq(self):
        recorder = TraceRecorder()
        recorder.complete("m", cat="batch", ts_s=0.1, dur_s=0.2, pid=0, tid=0)
        recorder.next_batch_id()
        restored = TraceRecorder()
        restored.load_state_dict(recorder.state_dict())
        assert restored.next_batch_id() == 2
        assert _recorded(restored) == _recorded(recorder)

    def test_display_names_are_not_state(self):
        """Names are wiring-time config, rebuilt by register_fleet on
        resume — a restored recorder starts nameless."""
        recorder = TraceRecorder()
        recorder.set_process_name(0, "fleet 0")
        restored = TraceRecorder()
        restored.load_state_dict(recorder.state_dict())
        assert _recorded(restored) == []


class TestWriteAndSummarize:
    def _sample(self, path):
        recorder = TraceRecorder()
        recorder.set_process_name(0, "fleet 0")
        recorder.complete(
            "m", cat="request", ts_s=0.0, dur_s=0.004, pid=0, tid=0
        )
        recorder.complete(
            "m", cat="batch", ts_s=0.001, dur_s=0.002, pid=0, tid=0
        )
        recorder.instant("shed", cat="admission", ts_s=0.002, pid=0, tid=1)
        recorder.write(
            path, other_data={"offered": 2, "completed": 1, "shed": 1}
        )

    def test_written_file_is_compact_json_with_newline(self, tmp_path):
        path = tmp_path / "t.json"
        self._sample(path)
        text = path.read_text()
        assert text.endswith("\n")
        assert ": " not in text  # compact separators
        assert json.loads(text)["displayTimeUnit"] == "ms"

    def test_write_is_deterministic(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._sample(a)
        self._sample(b)
        assert a.read_bytes() == b.read_bytes()

    def test_unwritable_path_raises_repro_error(self, tmp_path):
        recorder = TraceRecorder()
        with pytest.raises(ReproError):
            recorder.write(tmp_path / "no" / "dir" / "t.json")

    def test_summary_counts_and_span(self, tmp_path):
        path = tmp_path / "t.json"
        self._sample(path)
        summary = summarize_trace(path)
        assert summary["events"] == 3
        assert summary["by_phase"] == {"M": 1, "X": 2, "i": 1}
        assert summary["by_category"] == {
            "request": 1, "batch": 1, "admission": 1
        }
        assert summary["span_us"] == 4000.0
        assert summary["other_data"]["offered"] == 2
        text = render_trace_summary(path, summary)
        assert "3 events" in text
        assert "offered=2" in text

    def test_summary_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read"):
            summarize_trace(tmp_path / "nope.json")

    def test_summary_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ReproError, match="not valid JSON"):
            summarize_trace(path)

    def test_summary_non_trace_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"reports": []}')
        with pytest.raises(ReproError, match="traceEvents"):
            summarize_trace(path)
