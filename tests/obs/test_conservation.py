"""Span conservation and trace determinism across the execution grid.

Every admitted request must close exactly one complete span, every
shed request exactly one shed instant, and spans + sheds == offered —
across arrival shapes, hooked/hook-free planes, and kill/resume.  The
trace itself must be a pure function of the scenario: byte-identical
across repeated runs and across a mid-run checkpoint cut.
"""

import dataclasses
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import checkpoint as cp
from repro.checkpoint import (
    resume_checkpointed,
    run_control_checkpointed,
    save_checkpoint,
)
from repro.control import (
    ControlScenario,
    MultiFleetScenario,
    simulate_controlled,
    simulate_multi_fleet,
)
from repro.obs import Observability
from repro.serve import ServingScenario, simulate

ARRIVALS = ("poisson", "bursty", "diurnal")

_CHECK_TRACE = (
    Path(__file__).resolve().parents[2] / "tools" / "check_trace.py"
)


def _span_counts(recorder) -> tuple[int, int]:
    events = recorder.to_payload()["traceEvents"]
    spans = sum(
        1
        for e in events
        if e["ph"] == "X" and e.get("cat") == "request"
    )
    sheds = sum(
        1 for e in events if e["ph"] == "i" and e["name"] == "shed"
    )
    return spans, sheds


def _assert_conserved(obs, offered: int) -> None:
    counts = obs.counts()
    spans, sheds = _span_counts(obs.recorder)
    assert spans == counts["completed"]
    assert sheds == counts["shed"]
    assert spans + sheds == counts["offered"] == offered


def _serve_scenario(arrival: str) -> ServingScenario:
    return ServingScenario(
        requests=600,
        instances=2,
        seed=13,
        arrival=arrival,
        diurnal_period_s=0.5,
    )


def _control_scenario(arrival: str) -> ControlScenario:
    return ControlScenario(
        requests=600,
        instances=2,
        qps=2_500.0,
        seed=13,
        arrival=arrival,
        diurnal_period_s=0.5,
        shedding="deadline",
        autoscale="utilization",
        min_instances=1,
    )


class TestConservationGrid:
    @pytest.mark.parametrize("arrival", ARRIVALS)
    def test_serve_hook_free(self, arrival):
        obs = Observability(trace=True)
        scenario = _serve_scenario(arrival)
        report = simulate(scenario, obs=obs)
        _assert_conserved(obs, scenario.requests)
        assert obs.counts()["shed"] == 0
        assert obs.counts()["completed"] == report.requests

    @pytest.mark.parametrize("arrival", ARRIVALS)
    def test_control_hooked(self, arrival):
        obs = Observability(trace=True)
        scenario = _control_scenario(arrival)
        report = simulate_controlled(scenario, obs=obs)
        _assert_conserved(obs, scenario.requests)
        assert obs.counts()["shed"] == report.shed_requests
        assert obs.counts()["completed"] == report.requests

    @pytest.mark.parametrize("arrival", ARRIVALS)
    def test_resume_from_checkpoint(self, arrival, tmp_path):
        scenario = _control_scenario(arrival)
        path = tmp_path / "run.ckpt"
        obs_cut = Observability(trace=True)
        execution, engine, _ = cp._begin_control(scenario, obs_cut)
        t_cut = 0.4 * float(execution.times[-1])
        engine.run_until(t_cut)
        save_checkpoint(
            path,
            cp._payload(
                "control", scenario, execution, t_cut, 2 * t_cut,
                obs_cut,
            ),
        )
        obs_res = Observability(trace=True)
        _, _, report = resume_checkpointed(path, obs=obs_res)
        _assert_conserved(obs_res, scenario.requests)
        assert obs_res.counts()["completed"] == report.requests

    def test_multi_fleet_spillover(self):
        base = ControlScenario(
            requests=400,
            instances=1,
            seed=7,
            shedding="deadline",
        )
        scenario = MultiFleetScenario(
            fleets=(
                dataclasses.replace(base, qps=6_000.0),
                dataclasses.replace(base, qps=500.0),
            ),
            spillover="deadline",
            seed=7,
        )
        obs = Observability(trace=True)
        report = simulate_multi_fleet(scenario, obs=obs)
        counts = obs.counts()
        spans, sheds = _span_counts(obs.recorder)
        # Spilled requests are re-offered at the receiver, so the
        # engine-local invariant holds with them counted twice.
        assert spans + sheds == counts["offered"]
        events = obs.recorder.to_payload()["traceEvents"]
        spills = [e for e in events if e["name"] == "spill"]
        assert len(spills) == report.spilled_requests
        assert {e["pid"] for e in events if e["ph"] != "M"} >= {0, 1}


class TestTraceDeterminism:
    def test_repeat_runs_are_byte_identical(self, tmp_path):
        scenario = _control_scenario("bursty")
        paths = []
        for name in ("a.json", "b.json"):
            obs = Observability(trace=True, metrics_every_s=0.05)
            simulate_controlled(scenario, obs=obs)
            path = tmp_path / name
            obs.write_trace(path)
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_cut_and_resume_is_byte_identical(self, tmp_path):
        scenario = _control_scenario("poisson")
        obs_ref = Observability(trace=True, metrics_every_s=0.05)
        reference = run_control_checkpointed(scenario, obs=obs_ref)
        ref_path = tmp_path / "ref.json"
        obs_ref.write_trace(ref_path)

        path = tmp_path / "run.ckpt"
        obs_cut = Observability(trace=True, metrics_every_s=0.05)
        execution, engine, _ = cp._begin_control(scenario, obs_cut)
        t_cut = 0.35 * float(execution.times[-1])
        engine.run_until(t_cut)
        save_checkpoint(
            path,
            cp._payload(
                "control", scenario, execution, t_cut, 2 * t_cut,
                obs_cut,
            ),
        )

        obs_res = Observability(trace=True, metrics_every_s=0.05)
        _, _, resumed = resume_checkpointed(path, obs=obs_res)
        res_path = tmp_path / "res.json"
        obs_res.write_trace(res_path)
        assert resumed == reference
        assert res_path.read_bytes() == ref_path.read_bytes()
        assert obs_res.metrics_payload() == obs_ref.metrics_payload()

    def test_resume_flag_mismatch_fails_loudly(self, tmp_path):
        from repro.errors import ReproError

        scenario = _control_scenario("poisson")
        path = tmp_path / "run.ckpt"
        obs_cut = Observability(trace=True)
        execution, engine, _ = cp._begin_control(scenario, obs_cut)
        engine.run_until(0.05)
        save_checkpoint(
            path,
            cp._payload(
                "control", scenario, execution, 0.05, 0.1, obs_cut
            ),
        )
        with pytest.raises(ReproError, match="telemetry"):
            resume_checkpointed(path)


class TestTracedRunsMatchUntraced:
    """Telemetry is observation-only: the report physics must not
    move when tracing reroutes a fast-path run to the general loop."""

    @pytest.mark.parametrize("arrival", ARRIVALS)
    def test_serve_report_unchanged(self, arrival):
        scenario = _serve_scenario(arrival)
        assert simulate(
            scenario, obs=Observability(trace=True)
        ) == simulate(scenario)

    def test_control_report_unchanged(self):
        scenario = _control_scenario("diurnal")
        assert simulate_controlled(
            scenario, obs=Observability(trace=True, metrics_every_s=0.1)
        ) == simulate_controlled(scenario)

    def test_multi_fleet_report_unchanged(self):
        base = ControlScenario(
            requests=300, instances=1, seed=5, shedding="deadline"
        )
        scenario = MultiFleetScenario(
            fleets=(
                dataclasses.replace(base, qps=2_000.0),
                dataclasses.replace(base, qps=700.0),
            ),
            spillover="deadline",
            seed=5,
        )
        assert simulate_multi_fleet(
            scenario, obs=Observability(trace=True)
        ) == simulate_multi_fleet(scenario)


class TestCheckTraceTool:
    def test_validator_accepts_recorded_trace(self, tmp_path):
        obs = Observability(trace=True)
        simulate_controlled(_control_scenario("bursty"), obs=obs)
        path = tmp_path / "t.json"
        obs.write_trace(path)
        proc = subprocess.run(
            [sys.executable, str(_CHECK_TRACE), str(path)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout

    def test_validator_rejects_broken_conservation(self, tmp_path):
        obs = Observability(trace=True)
        simulate_controlled(_control_scenario("poisson"), obs=obs)
        path = tmp_path / "t.json"
        counts = obs.counts()
        counts["offered"] += 1  # claim a request the trace never saw
        obs.recorder.write(path, other_data=counts)
        proc = subprocess.run(
            [sys.executable, str(_CHECK_TRACE), str(path)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert "offered" in proc.stderr


class TestSigkillResumeTrace:
    def test_killed_run_resumes_to_identical_trace(self, tmp_path):
        """The full crash shape: a subprocess checkpointing with
        --trace is SIGKILLed, a fresh process resumes, and the trace
        bytes equal the uninterrupted run's."""
        import signal
        import time

        src = str(Path(__file__).resolve().parents[2] / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            src + os.pathsep + env.get("PYTHONPATH", "")
        )
        scenario_flags = [
            "--qps", "1500", "--requests", "60000",
            "--instances", "3", "--shedding", "deadline",
            "--autoscale", "utilization", "--seed", "9",
            "--metrics-every", "0.1",
        ]
        ref = tmp_path / "ref.trace.json"
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "control",
                *scenario_flags, "--trace", str(ref),
            ],
            env=env,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr

        ckpt = tmp_path / "run.ckpt"
        victim = tmp_path / "victim.trace.json"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "control",
                *scenario_flags, "--trace", str(victim),
                "--checkpoint", str(ckpt),
                "--checkpoint-every", "1.0",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60.0
            while not ckpt.exists():
                if proc.poll() is not None or (
                    time.monotonic() > deadline
                ):
                    break
                time.sleep(0.02)
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert ckpt.exists(), "no checkpoint before the kill"

        resumed = tmp_path / "resumed.trace.json"
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "control",
                "--resume", str(ckpt), "--trace", str(resumed),
                "--metrics-every", "0.1",
            ],
            env=env,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        assert ref.read_bytes() == resumed.read_bytes()
