"""MetricsTimeline and the Observability session wiring."""

import numpy as np
import pytest

from repro.errors import ConfigError, ReproError
from repro.obs import MetricsTimeline, Observability
from repro.serve.fleet import Fleet


class _Counters:
    def __init__(self, offered=0, shed=0):
        self.offered = offered
        self.shed = shed


class TestTimeline:
    def test_rejects_non_positive_window(self):
        with pytest.raises(ConfigError):
            MetricsTimeline(0.0)
        with pytest.raises(ConfigError):
            MetricsTimeline(-1.0)

    def test_due_respects_boundary(self):
        timeline = MetricsTimeline(0.5)
        assert not timeline.due(0.4)
        assert timeline.due(0.5)
        assert timeline.due(0.5 - 1e-12)  # float-drift tolerance

    def test_boundary_skips_past_quiet_windows(self):
        """A late sample (no ticks fired for a while) advances the
        boundary past `now`, not just by one window."""
        timeline = MetricsTimeline(0.5)
        fleet = Fleet(1)
        timeline.sample(3.2, _Counters(10, 0), fleet, None)
        assert timeline.next_sample_t == pytest.approx(3.5)

    def test_rates_are_window_deltas(self):
        timeline = MetricsTimeline(1.0)
        fleet = Fleet(2)
        timeline.sample(1.0, _Counters(100, 10), fleet, None)
        timeline.sample(2.0, _Counters(160, 30), fleet, None)
        first, second = timeline.samples
        assert first["offered_qps"] == pytest.approx(100.0)
        assert first["shed_qps"] == pytest.approx(10.0)
        assert first["admitted_qps"] == pytest.approx(90.0)
        assert second["offered_qps"] == pytest.approx(60.0)
        assert second["shed_qps"] == pytest.approx(20.0)

    def test_zero_elapsed_window_is_finite(self):
        """Two samples at the same instant (degenerate run) must report
        0.0 rates, never inf/nan."""
        timeline = MetricsTimeline(1.0)
        fleet = Fleet(1)
        timeline.sample(0.0, _Counters(0, 0), fleet, None)
        timeline.sample(0.0, _Counters(5, 5), fleet, None)
        for sample in timeline.samples:
            for key, value in sample.items():
                if isinstance(value, float):
                    assert np.isfinite(value), (key, value)

    def test_ring_buffer_bounds_memory_and_reports_drops(self):
        timeline = MetricsTimeline(1.0, maxlen=3)
        fleet = Fleet(1)
        for i in range(1, 6):
            timeline.sample(float(i), _Counters(i, 0), fleet, None)
        payload = timeline.to_payload()
        assert len(payload["samples"]) == 3
        assert payload["dropped_samples"] == 2
        assert payload["samples"][0]["t"] == 3.0

    def test_state_dict_round_trip(self):
        timeline = MetricsTimeline(0.5, maxlen=8)
        fleet = Fleet(1)
        timeline.sample(0.5, _Counters(10, 1), fleet, None)
        timeline.sample(1.0, _Counters(25, 2), fleet, None)
        restored = MetricsTimeline(0.5, maxlen=8)
        restored.load_state_dict(timeline.state_dict())
        assert restored.to_payload() == timeline.to_payload()
        assert restored.next_sample_t == timeline.next_sample_t
        # The restored timeline keeps sampling from the same baseline.
        timeline.sample(1.5, _Counters(40, 3), fleet, None)
        restored.sample(1.5, _Counters(40, 3), fleet, None)
        assert restored.to_payload() == timeline.to_payload()


class TestObservabilitySession:
    def test_inactive_session(self):
        obs = Observability()
        assert not obs.active
        assert obs.timeline() is None
        assert obs.metrics_payload() is None
        with pytest.raises(ReproError):
            obs.write_trace("/tmp/never-written.json")

    def test_rejects_bad_metrics_interval(self):
        with pytest.raises(ConfigError):
            Observability(metrics_every_s=0.0)

    def test_engine_tick_prefers_plane_cadence(self):
        obs = Observability(metrics_every_s=0.5)
        assert obs.engine_tick_s(0.01) == 0.01
        assert obs.engine_tick_s(None) == 0.5
        assert Observability(trace=True).engine_tick_s(None) is None

    def test_per_fleet_timelines(self):
        obs = Observability(metrics_every_s=1.0)
        a = obs.timeline(0)
        b = obs.timeline(1)
        assert a is not b
        assert obs.timeline(0) is a
        obs.register_fleet(0, "fleet 0 (mixed)", Fleet(1))
        payload = obs.metrics_payload()
        assert [t["pid"] for t in payload["timelines"]] == [0, 1]
        assert payload["timelines"][0]["label"] == "fleet 0 (mixed)"

    def test_counts_aggregate_across_wrapped_hooks(self):
        obs = Observability(trace=True)
        a = obs.wrap(None, pid=0)
        b = obs.wrap(None, pid=1)
        a.offered, a.shed, a.completed = 10, 2, 8
        b.offered, b.shed, b.completed = 5, 0, 5
        assert obs.counts() == {
            "offered": 15, "completed": 13, "shed": 2
        }


class TestCheckResume:
    def test_matching_specs_pass(self):
        obs = Observability(trace=True, metrics_every_s=0.5)
        Observability.check_resume(obs.spec(), obs)
        Observability.check_resume(None, None)

    def test_traced_checkpoint_needs_traced_resume(self):
        spec = Observability(trace=True).spec()
        with pytest.raises(ReproError, match="--trace"):
            Observability.check_resume(spec, None)

    def test_untraced_checkpoint_rejects_traced_resume(self):
        with pytest.raises(ReproError, match="no telemetry flags"):
            Observability.check_resume(None, Observability(trace=True))

    def test_window_mismatch_rejected(self):
        spec = Observability(metrics_every_s=0.5).spec()
        with pytest.raises(ReproError, match="metrics-every"):
            Observability.check_resume(
                spec, Observability(metrics_every_s=0.25)
            )
