#!/usr/bin/env python
"""Multi-tenant serving: per-model SLOs, correlated fleets, forecasts.

Plays the three production stories this control plane layer adds:

1. **per-model SLOs** — deadlines attached to the *model* a request
   carries, not just its traffic class: the heavyweight tenant gets a
   tight bound, everything else rides a default tier, and the report
   breaks attainment out per tenant;
2. **a correlated regional spike** — two fleets whose arrivals share
   one latent day/night factor, so the spike hits both at once; the
   overloaded fleet forwards deadline-feasible sheds to its sibling's
   headroom (spillover) instead of dropping them;
3. **predictive autoscaling** — a Holt level+trend forecast of the
   offered rate scales the fleet one warm-up *ahead* of the morning
   ramp, matching the reactive governor's attainment at lower ramp
   p99 and no more energy.

Usage::

    python examples/multi_tenant_fleets.py
"""

import dataclasses

from repro.control import (
    ControlScenario,
    MultiFleetScenario,
    SLOClass,
    simulate_controlled,
    simulate_multi_fleet,
)

TENANT_CLASSES = (
    SLOClass("llm", deadline_ms=25.0, target=0.95,
             model="mobilenet-v1-224"),
    SLOClass("default", deadline_ms=50.0, target=0.9, priority=1),
)


def per_model_slos() -> None:
    print("per-model SLOs on mixed traffic:")
    # 70% of nominal capacity leaves no headroom for the model
    # switches priority interleaving forces; 4k QPS keeps the default
    # tier's queue honest while the llm tenant still gets priority.
    report = simulate_controlled(
        ControlScenario(
            requests=4_000, qps=4_000.0,
            slo_classes=TENANT_CLASSES, seed=3,
        )
    )
    for ms in report.model_stats:
        print(
            f"  {ms.name:20s} offered={ms.offered:5d} "
            f"attainment={ms.attainment:.3f} "
            f"p99={1e3 * ms.latency_p99_s:.2f} ms"
        )


def correlated_spillover() -> None:
    print("\ncorrelated two-fleet spike, with and without spillover:")
    base = MultiFleetScenario(
        fleets=(
            ControlScenario(
                mix="v1-224", qps=2_500.0, requests=3_000,
                instances=1, max_batch=1, max_wait_ms=0.0,
                shedding="deadline",
                slo_classes=(
                    SLOClass("only", deadline_ms=40.0, target=0.9),
                ),
            ),
            ControlScenario(
                mix="mixed", qps=1_000.0, requests=3_000,
                instances=4, shedding="deadline",
            ),
        ),
        modulator="diurnal", period_s=5.0, amplitude=0.6, seed=11,
    )
    for spillover in ("none", "deadline"):
        report = simulate_multi_fleet(
            dataclasses.replace(base, spillover=spillover)
        )
        print(
            f"  spillover={spillover:8s} completed="
            f"{report.completed_requests:5d} "
            f"shed={report.shed_requests:4d} "
            f"spilled={report.spilled_requests:4d} "
            f"attainment={report.attainment:.3f}"
        )


def predictive_vs_reactive() -> None:
    print("\npredictive vs reactive autoscaling on diurnal traffic:")
    base = ControlScenario(
        requests=10_000, arrival="diurnal", qps=4_000.0,
        instances=8, autoscale="utilization", min_instances=1,
        diurnal_period_s=1.0, diurnal_amplitude=0.8,
        util_low=0.3, util_high=0.7, seed=0,
    )
    for governor in ("utilization", "predictive"):
        report = simulate_controlled(
            dataclasses.replace(base, autoscale=governor)
        )
        print(
            f"  {governor:12s} attainment="
            f"{report.slo_attainment:.4f} "
            f"p99={1e3 * report.latency_p99_s:.1f} ms "
            f"energy={1e3 * report.energy_joules:.1f} mJ "
            f"mean-active={report.mean_active_instances:.2f}"
        )


def main() -> None:
    per_model_slos()
    correlated_spillover()
    predictive_vs_reactive()


if __name__ == "__main__":
    main()
