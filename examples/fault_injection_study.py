#!/usr/bin/env python
"""Reliability study: bit flips in the weight SRAM of a DSC layer.

Injects single-bit faults into the int8 depthwise/pointwise weights and
the Q8.16 Non-Conv constants of a quantized MobileNetV1 layer and
measures the output corruption — by bit position and by target.  The
classic picture emerges: low-order bits are frequently masked by the
requantization, the sign bit is the most destructive, and pointwise
faults spread wider than depthwise faults (one PWC weight touches every
spatial position of one output channel).
"""

import numpy as np

from repro.eval import bar_chart, prepare_workload
from repro.sim import FaultSpec, measure_impact


def main() -> None:
    workload = prepare_workload(width_multiplier=0.25)
    layer = workload.qmodel.layers[4]
    x_q = workload.qmodel.layer_input(workload.images[:1], 4)[0]
    rng = np.random.default_rng(0)

    print("== impact by bit position (dwc weights, 16 random sites) ==")
    mean_by_bit = []
    for bit in range(8):
        impacts = []
        for _ in range(16):
            idx = int(rng.integers(0, layer.dwc_weight.size))
            impact = measure_impact(
                layer, FaultSpec("dwc_weight", flat_index=idx, bit=bit), x_q
            )
            impacts.append(impact.mean_abs_error)
        mean_by_bit.append(float(np.mean(impacts)))
    print(bar_chart(
        "mean |output error| per flipped bit (bit 7 = sign)",
        [f"bit {b}" for b in range(8)],
        mean_by_bit,
    ))

    print()
    print("== impact by fault target (bit 6, 16 random sites each) ==")
    by_target = {}
    for target, size in (
        ("dwc_weight", layer.dwc_weight.size),
        ("pwc_weight", layer.pwc_weight.size),
        ("dwc_k", layer.spec.in_channels),
        ("pwc_k", layer.spec.out_channels),
    ):
        fractions = []
        for _ in range(16):
            idx = int(rng.integers(0, size))
            bit = 6 if target.endswith("weight") else 20
            impact = measure_impact(
                layer, FaultSpec(target, flat_index=idx, bit=bit), x_q
            )
            fractions.append(impact.changed_fraction * 100)
        by_target[target] = float(np.mean(fractions))
    print(bar_chart(
        "% of layer outputs perturbed, by fault target",
        list(by_target),
        list(by_target.values()),
        unit="%",
    ))

    silent = 0
    trials = 64
    for _ in range(trials):
        idx = int(rng.integers(0, layer.dwc_weight.size))
        impact = measure_impact(
            layer, FaultSpec("dwc_weight", flat_index=idx, bit=0), x_q
        )
        silent += impact.silent
    print()
    print(f"LSB faults fully masked by requantization: "
          f"{silent}/{trials} trials")


if __name__ == "__main__":
    main()
