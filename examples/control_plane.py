#!/usr/bin/env python
"""The SLO-aware control plane: shedding, autoscaling, and the
energy/SLO Pareto frontier.

Plays four control stories end to end:

1. an overloaded single instance (rho ~ 2.3) with and without
   queue-depth shedding — graceful degradation vs an unbounded queue,
2. priority-preemptive shedding under the default three-tier SLO
   classes — urgent traffic keeps its deadlines while batch work pays,
3. a bursty workload served by a static max-size fleet vs the
   utilization autoscaler — same SLO attainment, fewer joules,
4. the static (voltage x fleet size) energy/SLO frontier, fanned out
   through the parallel executor with Pareto points starred.

Usage::

    python examples/control_plane.py [jobs] [cache_dir]
"""

import dataclasses
import sys

from repro.control import (
    ControlScenario,
    SLOClass,
    pareto_frontier,
    simulate_controlled,
    static_frontier_sweep,
)
from repro.eval import render_control_report, render_control_sweep
from repro.parallel import ResultCache


def main() -> None:
    jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    cache = ResultCache(sys.argv[2]) if len(sys.argv) > 2 else None

    # 1. Overload: shedding keeps the admitted tail bounded.
    overload = ControlScenario(
        mix="v1-224",
        qps=2_000.0,
        requests=4_000,
        instances=1,
        max_batch=1,
        slo_classes=(SLOClass("only", deadline_ms=50.0),),
        seed=5,
    )
    for shedding in ("none", "queue-depth"):
        report = simulate_controlled(
            dataclasses.replace(
                overload, shedding=shedding, queue_threshold=16
            )
        )
        print(
            f"rho~2.3, shedding={shedding:11s}  "
            f"p99={1e3 * report.latency_p99_s:8.1f} ms  "
            f"shed={report.shed_requests}/{report.offered_requests}"
        )
    print()

    # 2. Priority classes under pressure: who keeps their SLO?
    print(
        render_control_report(
            simulate_controlled(
                ControlScenario(
                    qps=7_000.0,
                    requests=8_000,
                    shedding="priority",
                    queue_threshold=32,
                    seed=7,
                )
            )
        )
    )
    print()

    # 3. Autoscaler vs static fleet on bursty traffic.
    bursty = ControlScenario(
        arrival="bursty",
        qps=500.0,
        requests=6_000,
        instances=4,
        slo_classes=(SLOClass("lax", deadline_ms=250.0, target=0.95),),
        seed=21,
    )
    static = simulate_controlled(bursty)
    auto = simulate_controlled(
        dataclasses.replace(
            bursty, autoscale="utilization", min_instances=1
        )
    )
    for name, report in (("static x4", static), ("autoscaled", auto)):
        print(
            f"{name:11s} attainment={report.slo_attainment:.3f}  "
            f"energy={1e3 * report.energy_joules:7.1f} mJ  "
            f"mean active={report.mean_active_instances:.2f}"
        )
    print()

    # 4. The static energy/SLO frontier (voltage x fleet size).
    base = dataclasses.replace(bursty, arrival="poisson", qps=2_000.0)
    voltages, sizes = (0.6, 0.7, 0.8), (1, 2, 4)
    reports = static_frontier_sweep(
        base, voltages, sizes, jobs=jobs, cache=cache
    )
    labels = [f"{v:.2f}V x{n}" for v in voltages for n in sizes]
    print(
        render_control_sweep(
            reports, labels, pareto_frontier(reports)
        )
    )


if __name__ == "__main__":
    main()
