#!/usr/bin/env python
"""LSQ quantization-aware training, as the paper's quantization flow.

The paper trains MobileNetV1 in float and then quantizes weights and
activations to 8 bit "using the LSQ technique" — quantization-aware
training with learned step sizes.  This example runs the full flow on a
width-0.25 model:

1. float pre-training,
2. QAT: LSQ fake-quantizers on every DSC weight tensor and activation
   edge, trained jointly with the weights,
3. conversion to the deployable int8 model (learned steps become the
   hardware scales, BN folds into the Non-Conv constants),
4. bit-exact execution of a layer on the accelerator model,
5. comparison against plain post-training quantization (PTQ).
"""

import numpy as np

from repro.datasets import make_cifar10_like
from repro.nn import SGD, Trainer, build_mobilenet_v1, mobilenet_v1_specs
from repro.nn.loss import accuracy
from repro.quant import (
    convert_qat_mobilenet,
    prepare_qat_mobilenet,
    quantize_mobilenet,
)
from repro.sim import AcceleratorRunner


def main() -> None:
    width = 0.25
    specs = mobilenet_v1_specs(width_multiplier=width)
    dataset = make_cifar10_like(num_samples=128, seed=5)
    (train_x, train_y), (test_x, test_y) = dataset.split(0.75)

    print("== 1. float pre-training ==")
    model = build_mobilenet_v1(width_multiplier=width, seed=6)
    trainer = Trainer(
        model, SGD(list(model.parameters()), lr=0.02), batch_size=16, seed=7
    )
    result = trainer.fit(train_x, train_y, epochs=2)
    print(f"float train acc: {result.final_accuracy:.2f}")

    print("== 2. LSQ quantization-aware training ==")
    qat_model = prepare_qat_mobilenet(model, num_blocks=len(specs))
    qat_trainer = Trainer(
        qat_model,
        SGD(list(qat_model.parameters()), lr=0.01),
        batch_size=16,
        seed=8,
    )
    qat_result = qat_trainer.fit(train_x, train_y, epochs=2)
    print(f"QAT train acc : {qat_result.final_accuracy:.2f}")

    print("== 3. conversion to int8 ==")
    qat_int8 = convert_qat_mobilenet(qat_model, specs)
    model.eval()
    ptq_int8 = quantize_mobilenet(model, specs, train_x[:16])

    float_logits = model.forward(test_x)
    qat_logits = qat_int8.forward(test_x)
    ptq_logits = ptq_int8.forward(test_x)
    print(f"float test acc: {accuracy(float_logits, test_y):.2f}")
    print(f"QAT   test acc: {accuracy(qat_logits, test_y):.2f}")
    print(f"PTQ   test acc: {accuracy(ptq_logits, test_y):.2f}")
    agree = float(np.mean(qat_logits.argmax(1) == float_logits.argmax(1)))
    print(f"QAT/float prediction agreement: {agree:.2f}")

    print("== 4. accelerator check (bit-exact) ==")
    runner = AcceleratorRunner(qat_int8, verify=True)
    x_q = qat_int8.layer_input(test_x[:1], 0)
    _, stats = runner.run_layer(0, x_q[0])
    print(f"layer 0 on the accelerator: {stats.cycles} cycles, "
          f"verified bit-exact against the QAT-converted reference")

    print("== 5. learned step sizes ==")
    for i in (0, 6, 12):
        layer = qat_int8.layers[i]
        print(f"layer {i:2d}: s_act={layer.input_params.scale:.5f}  "
              f"s_w(dwc)={np.abs(layer.dwc_weight).max():d} codes used")


if __name__ == "__main__":
    main()
