#!/usr/bin/env python
"""PE-array scaling study (the paper's "friendly to scaling" claim).

Section III-B: "PE arrays are friendly to scaling to enhance parallelism
without reducing utilization.  Specifically, in DWC, the number of channels
can be scaled, while in PWC, both the number of channels and kernels can
be scaled."  This study doubles Td and/or Tk, re-derives latency from the
timing model, and extrapolates area from the calibrated area model —
showing throughput scaling with sustained 100% spatial PE utilization.
"""

from repro.arch import ArchConfig
from repro.eval import render_table
from repro.nn import MOBILENET_V1_CIFAR10_SPECS
from repro.power import AreaModel
from repro.sim import layer_latency


def network_cycles(config: ArchConfig) -> int:
    return sum(
        layer_latency(spec, config).total_cycles
        for spec in MOBILENET_V1_CIFAR10_SPECS
    )


def network_ops() -> int:
    return sum(spec.total_ops for spec in MOBILENET_V1_CIFAR10_SPECS)


def main() -> None:
    base = ArchConfig()
    variants = {
        "baseline (Td=8, Tk=16)": base,
        "2x channels (Td=16)": ArchConfig(td=16),
        "2x kernels (Tk=32)": ArchConfig(tk=32),
        "2x both (Td=16, Tk=32)": ArchConfig(td=16, tk=32),
    }
    area_model = AreaModel.calibrated(base)
    ops = network_ops()

    rows = []
    for name, config in variants.items():
        cycles = network_cycles(config)
        gops = ops / (cycles / config.clock_hz) / 1e9
        area = area_model.total_area_mm2(config)
        rows.append(
            [
                name,
                config.total_macs_per_cycle,
                cycles,
                round(gops, 1),
                round(area, 3),
                round(gops / area, 1),
            ]
        )
    print(
        render_table(
            "PE scaling: whole-network DSC throughput and modelled area",
            ["Variant", "MACs/cycle", "Cycles", "GOPS", "Area mm2",
             "GOPS/mm2"],
            rows,
        )
    )
    base_cycles = network_cycles(base)
    both = network_cycles(ArchConfig(td=16, tk=32))
    print()
    print(f"speedup from doubling both tiles: {base_cycles / both:.2f}x "
          f"(4x MACs; sub-linear only through the fixed 9-cycle initiation)")
    print("utilization note: every variant keeps all PE lanes busy during "
          "streaming because MobileNet channel counts remain multiples of "
          "Td and Tk — the paper's scaling-friendliness claim.")


if __name__ == "__main__":
    main()
