#!/usr/bin/env python
"""Quickstart: train, quantize, and run one DSC layer on the accelerator.

Uses a width-0.25 MobileNetV1 so the whole script finishes in seconds.
Demonstrates the core loop of the library:

1. build + briefly train a float MobileNetV1 on synthetic CIFAR10-like data,
2. post-training-quantize it to int8 with folded Non-Conv constants,
3. execute a layer on the cycle-level dual-engine accelerator model,
4. check bit-exactness against the int8 reference and inspect the stats.
"""

from repro.datasets import make_cifar10_like
from repro.nn import SGD, Trainer, build_mobilenet_v1, mobilenet_v1_specs
from repro.quant import quantize_mobilenet
from repro.sim import AcceleratorRunner, layer_latency


def main() -> None:
    width = 0.25
    specs = mobilenet_v1_specs(width_multiplier=width)
    model = build_mobilenet_v1(width_multiplier=width, seed=1)
    dataset = make_cifar10_like(num_samples=64, seed=2)

    print("== training (1 epoch, synthetic data) ==")
    trainer = Trainer(
        model, SGD(list(model.parameters()), lr=0.02), batch_size=16
    )
    result = trainer.fit(dataset.images, dataset.labels, epochs=1)
    print(f"loss {result.final_loss:.3f}  acc {result.final_accuracy:.2f}")

    print("== quantizing to int8 (Non-Conv constants in Q8.16) ==")
    qmodel = quantize_mobilenet(model, specs, dataset.images[:16])
    layer0 = qmodel.layers[0]
    print(
        f"layer 0: k range [{layer0.dwc_nonconv.k_float().min():.4f}, "
        f"{layer0.dwc_nonconv.k_float().max():.4f}]  "
        f"(stored as 24-bit Q8.16)"
    )

    print("== running DSC layer 0 on the accelerator ==")
    runner = AcceleratorRunner(qmodel, verify=True)  # bit-exact check inside
    x_q = qmodel.layer_input(dataset.images[:1], 0)[0]
    out_q, stats = runner.run_layer(0, x_q)

    breakdown = layer_latency(specs[0], runner.config)
    print(f"output shape           : {out_q.shape} (int8)")
    print(f"cycles (simulated)     : {stats.cycles}")
    print(f"cycles (Eq. 1/2 model) : {breakdown.total_cycles}")
    print(f"MACs                   : {stats.total_macs:,}")
    print(f"PWC engine utilization : {stats.pwc_utilization:.1%}")
    print(f"DWC engine utilization : {stats.dwc_utilization:.1%}")
    print(
        "throughput             : "
        f"{stats.throughput_ops_per_second(runner.config.clock_hz) / 1e9:.1f}"
        " GOPS"
    )
    print("bit-exact vs int8 reference: yes (verified by the runner)")


if __name__ == "__main__":
    main()
