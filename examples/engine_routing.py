#!/usr/bin/env python
"""The unified engine's first hook clients: deadline-aware routing,
energy-aware routing, and diurnal traffic driving the autoscaler.

Plays three stories end to end on DVFS-heterogeneous fleets:

1. tight deadlines on a mixed 0.8 V / 0.6 V fleet — the deadline-aware
   scheduler *sees* each request's deadline and beats least-loaded
   attainment by detouring around too-slow instances,
2. the same fleet under a relaxed deadline — the energy-aware router
   serves identical traffic for fewer mJ/request by keeping the cheap
   low-voltage instances busy until their backlog costs more than the
   joules they save,
3. day/night (diurnal) traffic against the utilization autoscaler —
   the fleet grows every morning, shrinks every night, and finishes
   the same work for less energy than a static fleet.

It also shows the hook API directly: a five-line `EngineHooks`
subclass that counts admissions, run under the same kernel that powers
`simulate()` and `simulate_controlled()`.

Usage::

    python examples/engine_routing.py
"""

import dataclasses

from repro.control import (
    ControlScenario,
    InstanceSpec,
    SLOClass,
    simulate_controlled,
)

HETERO_FLEET = (
    InstanceSpec(voltage_v=0.8),
    InstanceSpec(voltage_v=0.8),
    InstanceSpec(voltage_v=0.6),
    InstanceSpec(voltage_v=0.6),
)


def routing_stories() -> None:
    base = ControlScenario(
        mix="v1-224",
        qps=1_500.0,
        requests=4_000,
        fleet=HETERO_FLEET,
        slo_classes=(SLOClass("tight", deadline_ms=2.5, target=0.9),),
        max_batch=1,
        max_wait_ms=0.0,
        seed=7,
    )
    print("tight deadlines on a 0.8Vx2 + 0.6Vx2 fleet:")
    for policy in ("least-loaded", "deadline-aware"):
        report = simulate_controlled(
            dataclasses.replace(base, policy=policy)
        )
        print(
            f"  {policy:15s} attainment={report.slo_attainment:.4f}  "
            f"p99={1e3 * report.latency_p99_s:.2f} ms"
        )
    print()

    relaxed = dataclasses.replace(
        base,
        qps=1_200.0,
        slo_classes=(SLOClass("svc", deadline_ms=4.0, target=0.9),),
    )
    print("relaxed deadline, same fleet:")
    for policy in ("least-loaded", "energy-aware"):
        report = simulate_controlled(
            dataclasses.replace(relaxed, policy=policy)
        )
        print(
            f"  {policy:15s} attainment={report.slo_attainment:.4f}  "
            f"energy={1e3 * report.joules_per_request:.4f} mJ/request"
        )
    print()


def diurnal_story() -> None:
    base = ControlScenario(
        arrival="diurnal",
        diurnal_period_s=0.8,
        diurnal_amplitude=0.9,
        qps=5_000.0,
        requests=12_000,
        instances=6,
        slo_classes=(SLOClass("svc", deadline_ms=25.0, target=0.9),),
        autoscale="utilization",
        tick_ms=5.0,
        min_instances=1,
        seed=4,
    )
    scaled = simulate_controlled(base)
    static = simulate_controlled(
        dataclasses.replace(base, autoscale="none")
    )
    days = scaled.busy_window_s / base.diurnal_period_s
    print(f"diurnal traffic over ~{days:.1f} day/night cycles:")
    print(
        f"  autoscaled: {scaled.autoscale_events} scaling actions, "
        f"mean {scaled.mean_active_instances:.2f}/{scaled.instances} "
        f"instances, {1e3 * scaled.energy_joules:.1f} mJ, "
        f"attainment={scaled.slo_attainment:.4f}"
    )
    print(
        f"  static:     {static.instances} instances always on, "
        f"{1e3 * static.energy_joules:.1f} mJ, "
        f"attainment={static.slo_attainment:.4f}"
    )
    print()


def hook_api_story() -> None:
    import numpy as np

    from repro.serve import (
        Engine,
        EngineHooks,
        Fleet,
        PoissonArrivals,
        make_policy,
    )
    from repro.serve.engine import build_requests
    from repro.serve.profile import build_mix

    class CountingHooks(EngineHooks):
        admitted = 0

        def on_arrival(self, request, instance, now, engine):
            CountingHooks.admitted += 1
            return True

    mix = build_mix("edge")
    rng = np.random.default_rng(0)
    times = PoissonArrivals(2_000.0).times(1_000, rng)
    requests = build_requests(mix, times, rng)
    engine = Engine(
        Fleet(2),
        make_policy("least-loaded"),
        max_batch=8,
        max_wait_s=2e-3,
        hooks=CountingHooks(),
    )
    run = engine.run(requests)
    print(
        f"custom hook on the shared kernel: {CountingHooks.admitted} "
        f"admissions over {run.events} events"
    )


def main() -> None:
    routing_stories()
    diurnal_story()
    hook_api_story()


if __name__ == "__main__":
    main()
