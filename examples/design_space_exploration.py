#!/usr/bin/env python
"""Reproduce the paper's Section II design-space exploration.

Sweeps loop orders (La/Lb) x output tiles (Tn=Tm=1/2) x the six Table I
(Td, Tk) cases over all 13 DSC layers of MobileNetV1-CIFAR10, then prints
the Fig. 2 data and the Fig. 3 intermediate-traffic analysis, ending with
the architecture decision the paper draws from them.
"""

from repro.dse import (
    LoopOrder,
    best_point,
    explore,
    intermediate_access_report,
    pe_array_size,
    table1_case,
)
from repro.eval import render_table


def main() -> None:
    result = explore()

    rows = [
        [p.group, p.case, p.tiling.describe(), p.pe_total,
         p.activation_access, p.weight_access, p.total_access]
        for p in sorted(result.points, key=lambda q: (q.group, q.case))
    ]
    print(
        render_table(
            "Fig. 2 sweep: PE size and access counts (all 13 DSC layers)",
            ["Group", "Case", "Tiling", "PEs", "Activation",
             "Weight", "Total"],
            rows,
        )
    )

    best = best_point(result)
    pe = pe_array_size(best.tiling)
    print()
    print(f"Best configuration : {best.group}, Case {best.case} "
          f"({best.tiling.describe()})")
    print(f"PE arrays          : DWC {pe.dwc} MACs + PWC {pe.pwc} MACs "
          f"= {pe.total} (paper: 288 + 512 = 800)")
    for case in sorted({p.case for p in result.points}):
        la = next(p for p in result.by_case(case)
                  if p.order is LoopOrder.LA and p.tiling.tn == 2)
        lb = next(p for p in result.by_case(case)
                  if p.order is LoopOrder.LB and p.tiling.tn == 2)
        assert la.activation_access > lb.activation_access
        assert lb.weight_access > la.weight_access
    print("Checked            : La always costs more activation traffic, "
          "Lb always costs more weight traffic (paper Section II)")

    print()
    report = intermediate_access_report()
    rows = [
        [x.index, x.baseline, x.optimized, round(x.reduction_percent, 1)]
        for x in report.layers
    ]
    print(
        render_table(
            "Fig. 3: eliminating intermediate DWC->PWC traffic",
            ["Layer", "Baseline", "Direct transfer", "Reduction %"],
            rows,
        )
    )
    print(
        f"Total reduction    : {report.total_reduction_percent:.1f}% "
        f"(paper: 34.7%; per-layer range "
        f"{report.min_reduction_percent:.1f}%-"
        f"{report.max_reduction_percent:.1f}%, paper 15.4%-46.9%)"
    )

    # Sanity: the implemented architecture config matches the DSE winner.
    chosen = table1_case(6, tn=2)
    assert best.tiling == chosen
    print("The accelerator in repro.arch implements exactly this winner.")


if __name__ == "__main__":
    main()
