#!/usr/bin/env python
"""The accelerator on other DSC networks (the conclusion's claim).

"This dataflow is applicable to other datasets, and the accelerator is
also suitable for other DSC-based networks."  This example runs the
analytic pipelines — timing (Eqs. 1-2), throughput, DSE and roofline —
over three further geometries without retraining anything:

* MobileNetV1 at ImageNet resolution (224x224),
* MobileNetV2's inverted residuals viewed as DSC layers,
* a custom hourglass DSC stack.
"""

from repro.arch import EDEA_CONFIG
from repro.dse import best_point, explore
from repro.eval import bar_chart, render_table, roofline_analysis
from repro.nn import (
    MOBILENET_V1_CIFAR10_SPECS,
    custom_dsc_specs,
    mobilenet_v1_imagenet_specs,
    mobilenet_v2_dsc_specs,
)
from repro.sim import layer_latency


NETWORKS = {
    "MobileNetV1-CIFAR10 (paper)": MOBILENET_V1_CIFAR10_SPECS,
    "MobileNetV1-ImageNet": mobilenet_v1_imagenet_specs(),
    "MobileNetV2 (DSC view)": mobilenet_v2_dsc_specs(),
    "custom hourglass": custom_dsc_specs(
        32,
        [(1, 32, 64), (2, 64, 128), (2, 128, 256), (1, 256, 128),
         (1, 128, 64), (1, 64, 64)],
    ),
}


def main() -> None:
    rows = []
    for name, specs in NETWORKS.items():
        cycles = sum(layer_latency(s).total_cycles for s in specs)
        ops = sum(s.total_ops for s in specs)
        gops = ops / (cycles / EDEA_CONFIG.clock_hz) / 1e9
        profile = roofline_analysis(specs)
        peak_bw = max(x.required_bandwidth_gbs for x in profile)
        rows.append(
            [name, len(specs), f"{ops / 1e6:.0f}M", cycles,
             round(gops, 1), round(peak_bw, 1)]
        )
    print(render_table(
        "EDEA timing model across DSC networks (1 GHz)",
        ["Network", "DSC layers", "Ops", "Cycles", "GOPS", "Peak BW GB/s"],
        rows,
    ))

    print()
    gops_values = [float(r[4]) for r in rows]
    print(bar_chart(
        "Sustained throughput by network",
        [r[0] for r in rows],
        gops_values,
        unit=" GOPS",
    ))

    print()
    print("DSE re-run per network (does Case 6 / La / Tn=2 stay optimal?):")
    for name, specs in NETWORKS.items():
        best = best_point(explore(specs))
        print(f"  {name:32s} -> {best.group}, Case {best.case}")


if __name__ == "__main__":
    main()
