#!/usr/bin/env python
"""Serving a heterogeneous traffic mix on a fleet of EDEA accelerators.

Plays three serving stories end to end:

1. one 10k-request Poisson run on a four-instance fleet (full report:
   tail latencies, sustained QPS, per-instance utilization),
2. a scheduling-policy x fleet-size sweep through the parallel
   executor (rerun this script with a cache dir and the sweep is
   served from disk),
3. a throughput-latency curve, the figure every serving system is
   judged by.

Usage::

    python examples/serving_simulation.py [jobs] [cache_dir]
"""

import sys

from repro.eval import (
    render_serving_report,
    render_serving_sweep,
    render_throughput_latency,
)
from repro.parallel import ResultCache
from repro.serve import (
    ServingScenario,
    policy_fleet_sweep,
    simulate,
    throughput_latency_curve,
)


def main() -> None:
    jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    cache = ResultCache(sys.argv[2]) if len(sys.argv) > 2 else None

    base = ServingScenario(
        mix="mixed", instances=4, policy="least-loaded", requests=10_000
    )

    print(render_serving_report(simulate(base)))
    print()

    reports = policy_fleet_sweep(
        base,
        policies=["round-robin", "least-loaded", "affinity"],
        instance_counts=[1, 2, 4, 8],
        jobs=jobs,
        cache=cache,
    )
    print(render_serving_sweep(reports))
    print()

    curve = throughput_latency_curve(
        base,
        qps_values=[1_000, 2_000, 4_000, 6_000, 7_500],
        jobs=jobs,
        cache=cache,
    )
    print(render_throughput_latency(curve))


if __name__ == "__main__":
    main()
