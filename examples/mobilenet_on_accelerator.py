#!/usr/bin/env python
"""End-to-end: full-width MobileNetV1 on the cycle-level accelerator.

Reproduces the paper's Section IV per-layer evaluation on the full
(width 1.0) network: latency (Fig. 10), power and zero percentages
(Fig. 11), energy efficiency (Fig. 12) and throughput (Fig. 13), with
every layer's int8 output verified bit-exactly against the reference
model.  Takes ~15 s (training + 13-layer simulation).
"""

from repro.eval import (
    PAPER_FIG12_EE_TOPS_W,
    PAPER_FIG13_THROUGHPUT_GOPS,
    build_efficiency_report,
    prepare_workload,
    render_table,
)


def main() -> None:
    print("preparing workload (train -> quantize -> simulate, verified)...")
    workload = prepare_workload(
        width_multiplier=1.0, num_samples=48, train_epochs=1, batch_size=12
    )
    clock_hz = workload.run_stats.clock_hz

    rows = []
    for stats in workload.layer_stats:
        rows.append(
            [
                stats.layer_index,
                stats.total_macs,
                stats.cycles,
                round(stats.throughput_ops_per_second(clock_hz) / 1e9, 2),
                PAPER_FIG13_THROUGHPUT_GOPS[stats.layer_index],
                round(100 * stats.dwc_zero_fraction, 1),
                round(100 * stats.pwc_zero_fraction, 1),
            ]
        )
    print(
        render_table(
            "Per-layer accelerator measurements (bit-exact vs reference)",
            ["Layer", "MACs", "Cycles", "GOPS", "Paper GOPS",
             "DWC zero %", "PWC zero %"],
            rows,
        )
    )

    measured = build_efficiency_report(
        workload.layer_stats, clock_hz, mode="measured"
    )
    profile = build_efficiency_report(
        workload.layer_stats, clock_hz, mode="paper_profile"
    )
    rows = [
        [m.index, round(1e3 * m.power_w, 1), round(m.ee_tops_w, 2),
         round(p.ee_tops_w, 2), PAPER_FIG12_EE_TOPS_W[m.index]]
        for m, p in zip(measured.layers, profile.layers)
    ]
    print()
    print(
        render_table(
            "Power / energy efficiency (measured sparsity vs paper-anchored "
            "sparsity profile)",
            ["Layer", "Power mW", "EE meas", "EE profile", "EE paper"],
            rows,
        )
    )
    print()
    print(f"network latency (13 DSC layers): "
          f"{workload.run_stats.total_latency_seconds * 1e6:.2f} us")
    print(f"mean layer throughput          : "
          f"{workload.run_stats.mean_layer_throughput_gops:.2f} GOPS "
          f"(paper: 981.42)")
    print(f"paper-profile peak EE          : {profile.peak_ee_tops_w:.2f} "
          f"TOPS/W at layer {profile.peak_ee_layer} "
          f"(paper: 13.43 at layer 10)")
    if measured.calibration_note:
        print(f"calibration note               : "
              f"{measured.calibration_note}")


if __name__ == "__main__":
    main()
