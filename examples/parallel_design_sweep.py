#!/usr/bin/env python
"""Architecture-level design sweep through the parallel executor.

Builds a grid of :class:`ArchConfig` candidates around the paper's
design point, prunes infeasible ones (tiling divisibility, PE budget),
and simulates the survivors end to end — quantized MobileNetV1 on the
accelerator — fanned out across worker processes with a persistent
result cache, so a rerun of this script is served from disk.

Usage::

    python examples/parallel_design_sweep.py [jobs] [cache_dir]
"""

import sys

from repro.arch.params import EDEA_CONFIG, ArchConfig
from repro.eval import render_table
from repro.parallel import ResultCache, design_point_sweep


def main() -> None:
    jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    cache = ResultCache(sys.argv[2]) if len(sys.argv) > 2 else None

    candidates = [
        ArchConfig(td=td, tk=tk, max_output_tile=mot)
        for td in (2, 4, 8)
        for tk in (8, 16)
        for mot in (4, 8)
    ]
    # The fast-latency mode is exact for cycles/MACs on these nets and
    # lets the whole grid evaluate in seconds even serially.
    results = design_point_sweep(
        candidates,
        width_multiplier=0.25,
        fast=True,
        jobs=jobs,
        cache=cache,
        max_total_pes=1024,
    )

    rows = [
        [
            f"Td={r.config.td} Tk={r.config.tk} "
            f"tile={r.config.max_output_tile}",
            r.config.total_macs_per_cycle,
            r.total_cycles,
            round(r.latency_us, 2),
            round(r.throughput_gops, 1),
            round(1e3 * r.mean_power_w, 1),
            round(r.ee_tops_w, 2),
        ]
        for r in results
    ]
    print(
        render_table(
            f"Design sweep: {len(results)} feasible of "
            f"{len(candidates)} candidates (jobs={jobs})",
            ["Config", "PEs", "Cycles", "Latency us", "GOPS",
             "Power mW", "TOPS/W"],
            rows,
        )
    )

    best = min(results, key=lambda r: r.total_cycles)
    note = (
        " (the paper's design point)"
        if best.config == EDEA_CONFIG
        else ""
    )
    print(
        f"\nLowest latency: Td={best.config.td} Tk={best.config.tk} "
        f"tile={best.config.max_output_tile} at {best.latency_us:.2f} us"
        f"{note}"
    )
    if cache is not None:
        print(f"cache: {cache.hits} hits, {cache.misses} misses")


if __name__ == "__main__":
    main()
