"""Legacy setuptools shim.

All metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-use-pep517`` on toolchains too old to build
PEP 660 editable wheels (setuptools < 70.1 without ``wheel``).
"""

from setuptools import setup

setup()
