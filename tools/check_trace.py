#!/usr/bin/env python3
"""Validate a trace written by ``repro serve/control --trace``.

Stdlib-only (runs in CI without installing the package). Checks:

* the file is well-formed Chrome trace-event JSON — a top-level object
  with a ``traceEvents`` list (the format Perfetto and
  ``chrome://tracing`` load);
* every event is a known phase (``X`` complete span, ``i`` instant,
  ``M`` metadata) with the fields that phase requires, and every
  ``X`` span has a non-negative duration;
* non-metadata timestamps are monotone non-decreasing in file order
  (the recorder sorts on write; a violation means a torn or
  hand-edited file);
* the span-conservation invariant against the embedded counters:
  request spans == completed, shed instants == shed, and
  spans + shed == offered — every offered request ends in exactly one
  terminal event.

Exits 0 and prints a one-line summary when the trace passes; exits 1
with the first violation otherwise.

Usage::

    python tools/check_trace.py out.trace.json
"""

from __future__ import annotations

import json
import sys

_PHASES = {"X", "i", "M"}


def check_trace(path: str) -> str:
    """Validate one trace file; returns the summary line.

    Raises:
        ValueError: On the first violation found.
    """
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ValueError(f"cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValueError(
            f"{path}: top level must be an object, got "
            f"{type(payload).__name__}"
        )
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError(f"{path}: no traceEvents list")

    last_ts = None
    request_spans = 0
    shed_instants = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"{path}: event {i} is not an object")
        phase = event.get("ph")
        if phase not in _PHASES:
            raise ValueError(
                f"{path}: event {i} has unknown phase {phase!r}"
            )
        if phase == "M":
            continue
        for key in ("name", "ts", "pid", "tid"):
            if key not in event:
                raise ValueError(
                    f"{path}: event {i} ({event.get('name')!r}) "
                    f"is missing {key!r}"
                )
        ts = event["ts"]
        if not isinstance(ts, (int, float)):
            raise ValueError(
                f"{path}: event {i} has non-numeric ts {ts!r}"
            )
        if last_ts is not None and ts < last_ts:
            raise ValueError(
                f"{path}: timestamps regress at event {i} "
                f"({ts} after {last_ts}); events must be sorted"
            )
        last_ts = ts
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(
                    f"{path}: span {i} ({event['name']!r}) has "
                    f"invalid duration {dur!r}"
                )
            if event.get("cat") == "request":
                request_spans += 1
        elif event["name"] == "shed":
            shed_instants += 1

    counters = payload.get("otherData") or {}
    for key in ("offered", "completed", "shed"):
        if key not in counters:
            raise ValueError(
                f"{path}: otherData is missing the {key!r} counter"
            )
    offered = counters["offered"]
    completed = counters["completed"]
    shed = counters["shed"]
    if request_spans != completed:
        raise ValueError(
            f"{path}: {request_spans} request spans but "
            f"{completed} completed requests"
        )
    if shed_instants != shed:
        raise ValueError(
            f"{path}: {shed_instants} shed instants but "
            f"{shed} shed requests"
        )
    if request_spans + shed_instants != offered:
        raise ValueError(
            f"{path}: spans ({request_spans}) + shed "
            f"({shed_instants}) != offered ({offered}); a request "
            "was dropped or double-counted"
        )
    return (
        f"{path}: OK — {len(events)} events, {request_spans} request "
        f"spans + {shed_instants} shed == {offered} offered"
    )


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print("usage: check_trace.py TRACE.json", file=sys.stderr)
        return 2
    try:
        print(check_trace(argv[0]))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
