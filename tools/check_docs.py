#!/usr/bin/env python
"""Check that documentation links and file pointers resolve.

Walks the repo's markdown documentation (README.md, ROADMAP.md,
CHANGES.md, docs/*.md) and verifies:

* every relative markdown link ``[text](path)`` points at a file or
  directory that exists (anchors and external ``http(s)``/``mailto``
  targets are skipped);
* every repo path named in inline code, such as
  ``tests/serve/test_engine_parity.py`` or ``benchmarks/_pr4_kernel.py``,
  exists on disk — this is what keeps the "where to verify claims"
  pointers in docs/ARCHITECTURE.md honest across refactors.

Exits non-zero with one line per broken pointer.  No dependencies
beyond the standard library, so CI can run it before installing the
package.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Markdown files to scan (globs relative to the repo root).
DOC_GLOBS = ["README.md", "ROADMAP.md", "CHANGES.md", "docs/*.md"]

#: ``[text](target)`` — stops at the first unescaped ``)``.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Inline-code spans that look like repo file paths: at least one
#: directory component and a conventional source/doc suffix.
_CODE_PATH = re.compile(
    r"`([A-Za-z0-9_.\-]+(?:/[A-Za-z0-9_.\-]+)+"
    r"\.(?:py|md|json|yml|yaml|toml|txt|csv))`"
)

#: Inline-code paths that intentionally do not exist in the repo
#: (illustrative output paths, generated artifacts).
IGNORE_CODE_PATHS = {
    ".cache/repro",
}


def _iter_docs() -> list[Path]:
    docs: list[Path] = []
    for pattern in DOC_GLOBS:
        docs.extend(sorted(REPO.glob(pattern)))
    return docs


def _check_file(doc: Path) -> list[str]:
    errors: list[str] = []
    text = doc.read_text(encoding="utf-8")
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), 1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:  # pure in-page anchor
                continue
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(
                    f"{doc.relative_to(REPO)}:{lineno}: "
                    f"broken link target {target!r}"
                )
        for match in _CODE_PATH.finditer(line):
            target = match.group(1)
            if target in IGNORE_CODE_PATHS:
                continue
            # Docs name modules both repo-relative and package-relative
            # (``sim/faults.py`` means ``src/repro/sim/faults.py``).
            candidates = (REPO / target, REPO / "src" / "repro" / target)
            if not any(c.exists() for c in candidates):
                errors.append(
                    f"{doc.relative_to(REPO)}:{lineno}: "
                    f"missing file pointer {target!r}"
                )
    return errors


def main() -> int:
    docs = _iter_docs()
    if not docs:
        print("check_docs: no documentation files found", file=sys.stderr)
        return 1
    errors: list[str] = []
    for doc in docs:
        errors.extend(_check_file(doc))
    for error in errors:
        print(error, file=sys.stderr)
    print(
        f"check_docs: scanned {len(docs)} files, "
        f"{len(errors)} broken pointers"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
