"""MobileNetV1 for CIFAR10: layer geometry and model builder.

The EDEA evaluation targets the 13 depthwise-separable (DSC) layers of
MobileNetV1 adapted to 32x32 CIFAR10 inputs: the stem convolution runs with
stride 1 (the usual CIFAR adaptation) and the four stride-2 DSC layers land
at indices 1, 3, 5 and 11, exactly as the paper reports ("layers 1, 3, 5 and
11 exhibit a reduced number of MAC operations due to the stride of 2"), with
layers 11/12 reaching the 2x2 feature maps the paper calls out.

:data:`MOBILENET_V1_CIFAR10_SPECS` is the single source of truth for the
layer geometry; the DSE models, the accelerator simulator and the evaluation
harness all consume it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from .layers import (
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    GlobalAvgPool,
    Linear,
    PointwiseConv2d,
    ReLU,
)
from .model import Sequential

__all__ = [
    "DSCLayerSpec",
    "MOBILENET_V1_CIFAR10_SPECS",
    "mobilenet_v1_specs",
    "build_mobilenet_v1",
    "KERNEL_SIZE",
    "NUM_CLASSES",
]

KERNEL_SIZE = 3
"""Depthwise kernel size (3x3 throughout MobileNetV1)."""

NUM_CLASSES = 10
"""CIFAR10 class count."""


@dataclass(frozen=True)
class DSCLayerSpec:
    """Geometry of one depthwise-separable layer.

    Attributes:
        index: Layer index, 0..12 (the paper's x-axis).
        in_size: Input spatial extent R (= C; maps are square).
        stride: Depthwise stride (1 or 2).
        in_channels: D, the DWC/PWC input channel count.
        out_channels: K, the PWC output channel count.
    """

    index: int
    in_size: int
    stride: int
    in_channels: int
    out_channels: int

    def __post_init__(self) -> None:
        if self.stride not in (1, 2):
            raise ConfigError(f"stride must be 1 or 2 (got {self.stride})")
        if self.in_size < 1 or self.in_channels < 1 or self.out_channels < 1:
            raise ConfigError(f"invalid layer geometry: {self}")

    @property
    def out_size(self) -> int:
        """Output spatial extent N (= M) after the stride-s depthwise."""
        # 3x3, padding 1: stride 1 preserves size, stride 2 halves it.
        return (self.in_size + self.stride - 1) // self.stride

    @property
    def dwc_macs(self) -> int:
        """Multiply-accumulates in the depthwise convolution."""
        n = self.out_size
        return n * n * self.in_channels * KERNEL_SIZE * KERNEL_SIZE

    @property
    def pwc_macs(self) -> int:
        """Multiply-accumulates in the pointwise convolution."""
        n = self.out_size
        return n * n * self.in_channels * self.out_channels

    @property
    def total_macs(self) -> int:
        """MACs in the whole DSC layer."""
        return self.dwc_macs + self.pwc_macs

    @property
    def total_ops(self) -> int:
        """Operations (1 MAC = 2 ops, the paper's GOPS convention)."""
        return 2 * self.total_macs


def _base_channel_plan() -> list[tuple[int, int, int]]:
    """(stride, in_channels, out_channels) for each DSC layer at width 1.0."""
    return [
        (1, 32, 64),
        (2, 64, 128),
        (1, 128, 128),
        (2, 128, 256),
        (1, 256, 256),
        (2, 256, 512),
        (1, 512, 512),
        (1, 512, 512),
        (1, 512, 512),
        (1, 512, 512),
        (1, 512, 512),
        (2, 512, 1024),
        (1, 1024, 1024),
    ]


def mobilenet_v1_specs(
    input_size: int = 32, width_multiplier: float = 1.0
) -> list[DSCLayerSpec]:
    """Build the DSC layer specs for a given input size and width.

    Args:
        input_size: Spatial size fed to the stem (CIFAR10: 32).
        width_multiplier: MobileNet width multiplier; channel counts are
            scaled and rounded to a multiple of 8 (the accelerator's Td) so
            reduced-width models still tile exactly.

    Returns:
        Thirteen :class:`DSCLayerSpec` entries.
    """
    if input_size < 4:
        raise ConfigError(f"input_size too small: {input_size}")
    if width_multiplier <= 0:
        raise ConfigError(
            f"width_multiplier must be positive (got {width_multiplier})"
        )

    def scale(channels: int) -> int:
        scaled = max(8, int(round(channels * width_multiplier / 8)) * 8)
        return scaled

    specs = []
    size = input_size  # stem conv is stride 1 and keeps the size
    for idx, (stride, d_in, d_out) in enumerate(_base_channel_plan()):
        spec = DSCLayerSpec(
            index=idx,
            in_size=size,
            stride=stride,
            in_channels=scale(d_in),
            out_channels=scale(d_out),
        )
        specs.append(spec)
        size = spec.out_size
    return specs


MOBILENET_V1_CIFAR10_SPECS: list[DSCLayerSpec] = mobilenet_v1_specs()
"""The canonical 13-layer geometry the paper evaluates."""


def build_mobilenet_v1(
    num_classes: int = NUM_CLASSES,
    input_size: int = 32,
    width_multiplier: float = 1.0,
    seed: int = 0,
) -> Sequential:
    """Construct a float MobileNetV1 for CIFAR10-like inputs.

    The layer order inside each DSC block is DW conv → BN → ReLU → PW conv
    → BN → ReLU, which is what the Non-Conv unit folds between the engines.

    Args:
        num_classes: Classifier width.
        input_size: Input spatial size.
        width_multiplier: Channel width multiplier (1.0 = paper model).
        seed: Seed for deterministic weight initialization.

    Returns:
        A :class:`Sequential` model.
    """
    rng = np.random.default_rng(seed)
    specs = mobilenet_v1_specs(input_size, width_multiplier)
    stem_out = specs[0].in_channels

    model = Sequential()
    model.add(
        Conv2d(3, stem_out, kernel_size=3, stride=1, padding=1, rng=rng)
    )
    model.add(BatchNorm2d(stem_out))
    model.add(ReLU())
    for spec in specs:
        model.add(
            DepthwiseConv2d(
                spec.in_channels,
                kernel_size=KERNEL_SIZE,
                stride=spec.stride,
                padding=1,
                rng=rng,
            )
        )
        model.add(BatchNorm2d(spec.in_channels))
        model.add(ReLU())
        model.add(
            PointwiseConv2d(spec.in_channels, spec.out_channels, rng=rng)
        )
        model.add(BatchNorm2d(spec.out_channels))
        model.add(ReLU())
    model.add(GlobalAvgPool())
    model.add(Linear(specs[-1].out_channels, num_classes, rng=rng))
    return model
