"""Layer objects with explicit forward/backward passes.

The training substrate uses layer-wise backpropagation rather than a general
autograd: each layer caches what it needs during ``forward`` and returns the
input gradient from ``backward``, accumulating parameter gradients into its
:class:`Parameter` objects.  This keeps the framework small, explicit, and
easy to verify against finite differences (see the test suite).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import ShapeError
from . import functional as F
from . import init

__all__ = [
    "Parameter",
    "Layer",
    "Conv2d",
    "DepthwiseConv2d",
    "PointwiseConv2d",
    "BatchNorm2d",
    "ReLU",
    "GlobalAvgPool",
    "Linear",
]


class Parameter:
    """A trainable array and its gradient accumulator."""

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad[...] = 0.0

    @property
    def size(self) -> int:
        """Number of scalar elements."""
        return int(self.data.size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Parameter({self.name!r}, shape={self.data.shape})"


class Layer:
    """Base class for all layers.

    Subclasses implement :meth:`forward` and :meth:`backward` and list
    their parameters via :meth:`parameters`.
    """

    def __init__(self) -> None:
        self.training = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the layer output, caching whatever backward needs."""
        raise NotImplementedError

    def backward(self, dout: np.ndarray) -> np.ndarray:
        """Given d(loss)/d(output), accumulate parameter gradients and
        return d(loss)/d(input)."""
        raise NotImplementedError

    def parameters(self) -> Iterator[Parameter]:
        """Yield this layer's trainable parameters (default: none)."""
        return iter(())

    def train(self) -> None:
        """Switch to training mode (affects BatchNorm and fake-quant)."""
        self.training = True

    def eval(self) -> None:
        """Switch to inference mode."""
        self.training = False

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Conv2d(Layer):
    """Standard 2-D convolution with square kernels, no bias by default.

    MobileNet convolutions are always followed by BatchNorm, which absorbs
    any bias, so ``bias=False`` is the default as in common practice.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = False,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            init.he_normal(
                (out_channels, in_channels, kernel_size, kernel_size),
                fan_in,
                rng,
            ),
            name="conv.weight",
        )
        self.bias = (
            Parameter(init.zeros((out_channels,)), name="conv.bias")
            if bias
            else None
        )
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        b = self.bias.data if self.bias is not None else None
        return F.conv2d(x, self.weight.data, b, self.stride, self.padding)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise ShapeError("backward called before forward")
        dx, dw, db = F.conv2d_backward(
            dout,
            self._x,
            self.weight.data,
            self.stride,
            self.padding,
            has_bias=self.bias is not None,
        )
        self.weight.grad += dw
        if self.bias is not None and db is not None:
            self.bias.grad += db
        return dx

    def parameters(self) -> Iterator[Parameter]:
        yield self.weight
        if self.bias is not None:
            yield self.bias


class DepthwiseConv2d(Layer):
    """Depthwise convolution: one ``k x k`` filter per channel."""

    def __init__(
        self,
        channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.channels = channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = kernel_size * kernel_size
        self.weight = Parameter(
            init.he_normal(
                (channels, kernel_size, kernel_size), fan_in, rng
            ),
            name="dwconv.weight",
        )
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return F.depthwise_conv2d(
            x, self.weight.data, None, self.stride, self.padding
        )

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise ShapeError("backward called before forward")
        dx, dw, _ = F.depthwise_conv2d_backward(
            dout,
            self._x,
            self.weight.data,
            self.stride,
            self.padding,
            has_bias=False,
        )
        self.weight.grad += dw
        return dx

    def parameters(self) -> Iterator[Parameter]:
        yield self.weight


class PointwiseConv2d(Layer):
    """Pointwise (1 x 1) convolution."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.weight = Parameter(
            init.he_normal(
                (out_channels, in_channels), in_channels, rng
            ),
            name="pwconv.weight",
        )
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return F.pointwise_conv2d(x, self.weight.data, None)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise ShapeError("backward called before forward")
        dx, dw, _ = F.pointwise_conv2d_backward(
            dout, self._x, self.weight.data, has_bias=False
        )
        self.weight.grad += dw
        return dx

    def parameters(self) -> Iterator[Parameter]:
        yield self.weight


class BatchNorm2d(Layer):
    """Batch normalization over the channel dimension of NCHW input.

    In training mode, batch statistics are used and running statistics are
    updated with exponential moving averages; in eval mode the running
    statistics are used, matching the behaviour the Non-Conv unit folds.
    """

    def __init__(
        self, channels: int, momentum: float = 0.1, eps: float = 1e-5
    ) -> None:
        super().__init__()
        self.channels = channels
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(init.ones((channels,)), name="bn.gamma")
        self.beta = Parameter(init.zeros((channels,)), name="bn.beta")
        self.running_mean = np.zeros(channels, dtype=np.float64)
        self.running_var = np.ones(channels, dtype=np.float64)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.channels:
            raise ShapeError(
                f"BatchNorm2d({self.channels}) got input shape {x.shape}"
            )
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var
            )
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean.reshape(1, -1, 1, 1)) * inv_std.reshape(1, -1, 1, 1)
        out = (
            self.gamma.data.reshape(1, -1, 1, 1) * x_hat
            + self.beta.data.reshape(1, -1, 1, 1)
        )
        self._cache = (x_hat, inv_std, x.shape)
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("backward called before forward")
        x_hat, inv_std, shape = self._cache
        n, _, h, w = shape
        m = n * h * w
        self.gamma.grad += (dout * x_hat).sum(axis=(0, 2, 3))
        self.beta.grad += dout.sum(axis=(0, 2, 3))
        gamma = self.gamma.data.reshape(1, -1, 1, 1)
        dxhat = dout * gamma
        # Standard batch-norm input gradient (batch statistics path).
        sum_dxhat = dxhat.sum(axis=(0, 2, 3), keepdims=True)
        sum_dxhat_xhat = (dxhat * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        dx = (
            inv_std.reshape(1, -1, 1, 1)
            / m
            * (m * dxhat - sum_dxhat - x_hat * sum_dxhat_xhat)
        )
        return dx

    def parameters(self) -> Iterator[Parameter]:
        yield self.gamma
        yield self.beta


class ReLU(Layer):
    """Rectified linear unit."""

    def __init__(self) -> None:
        super().__init__()
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return F.relu(x)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise ShapeError("backward called before forward")
        return F.relu_backward(dout, self._x)


class GlobalAvgPool(Layer):
    """Global average pooling: ``(N, C, H, W)`` → ``(N, C)``."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return F.global_avg_pool(x)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise ShapeError("backward called before forward")
        return F.global_avg_pool_backward(dout, self._shape)


class Linear(Layer):
    """Fully-connected layer: ``(N, in)`` → ``(N, out)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform(
                (out_features, in_features), in_features, out_features, rng
            ),
            name="linear.weight",
        )
        self.bias = Parameter(init.zeros((out_features,)), name="linear.bias")
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ShapeError(
                f"Linear({self.in_features}) got input shape {x.shape}"
            )
        self._x = x
        return x @ self.weight.data.T + self.bias.data

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise ShapeError("backward called before forward")
        self.weight.grad += dout.T @ self._x
        self.bias.grad += dout.sum(axis=0)
        return dout @ self.weight.data

    def parameters(self) -> Iterator[Parameter]:
        yield self.weight
        yield self.bias
