"""Minimal training loop for the NumPy substrate."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError
from .loss import accuracy, cross_entropy, cross_entropy_backward
from .model import Sequential
from .optim import SGD

__all__ = ["TrainResult", "Trainer"]


@dataclass
class TrainResult:
    """Per-epoch history of a training run."""

    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        """Loss of the last epoch (inf when never trained)."""
        return self.losses[-1] if self.losses else float("inf")

    @property
    def final_accuracy(self) -> float:
        """Training accuracy of the last epoch (0 when never trained)."""
        return self.accuracies[-1] if self.accuracies else 0.0


class Trainer:
    """Mini-batch SGD trainer for :class:`Sequential` classifiers.

    The reproduction trains MobileNetV1 briefly on the synthetic dataset —
    enough to move weights and activations away from their initialization
    so the quantization and sparsity behaviour downstream is realistic.
    """

    def __init__(
        self,
        model: Sequential,
        optimizer: SGD,
        batch_size: int = 32,
        seed: int = 0,
    ) -> None:
        if batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1 (got {batch_size})")
        self.model = model
        self.optimizer = optimizer
        self.batch_size = batch_size
        self._rng = np.random.default_rng(seed)

    def train_epoch(self, images: np.ndarray, labels: np.ndarray) -> tuple:
        """Run one epoch; returns (mean loss, mean accuracy)."""
        n = images.shape[0]
        if labels.shape[0] != n:
            raise ConfigError(
                f"images/labels size mismatch: {n} vs {labels.shape[0]}"
            )
        order = self._rng.permutation(n)
        self.model.train()
        losses, accs = [], []
        for start in range(0, n, self.batch_size):
            idx = order[start : start + self.batch_size]
            x, y = images[idx], labels[idx]
            self.optimizer.zero_grad()
            logits = self.model.forward(x)
            losses.append(cross_entropy(logits, y))
            accs.append(accuracy(logits, y))
            self.model.backward(cross_entropy_backward(logits, y))
            self.optimizer.step()
        return float(np.mean(losses)), float(np.mean(accs))

    def fit(
        self, images: np.ndarray, labels: np.ndarray, epochs: int = 1
    ) -> TrainResult:
        """Train for ``epochs`` epochs and return the history."""
        if epochs < 1:
            raise ConfigError(f"epochs must be >= 1 (got {epochs})")
        result = TrainResult()
        for _ in range(epochs):
            loss, acc = self.train_epoch(images, labels)
            result.losses.append(loss)
            result.accuracies.append(acc)
        return result

    def evaluate(self, images: np.ndarray, labels: np.ndarray) -> tuple:
        """Compute (loss, accuracy) in eval mode without updating weights."""
        self.model.eval()
        logits = self.model.forward(images)
        return cross_entropy(logits, labels), accuracy(logits, labels)
