"""Geometry zoo: other DSC-based networks the accelerator can serve.

The paper's conclusion claims the "dataflow is applicable to other
datasets, and the accelerator is also suitable for other DSC-based
networks".  This module backs that claim with additional spec factories —
pure geometry, consumable by every analytic pipeline (DSE, timing,
throughput, traffic) without any training:

* :func:`mobilenet_v1_imagenet_specs` — the original 224x224 MobileNetV1
  (stride-2 stem, 13 DSC layers down to 7x7),
* :func:`mobilenet_v2_dsc_specs` — the depthwise+projection pairs of
  MobileNetV2's inverted-residual blocks, viewed as DSC layers (the
  expansion 1x1 runs as a PWC-only pass on the host in this model),
* :func:`custom_dsc_specs` — a parameterized DSC stack for what-if
  studies.

Every factory returns :class:`~repro.nn.mobilenet.DSCLayerSpec` lists, so
``layer_latency``, ``explore`` and the accelerator all accept them as-is
(channel counts are kept multiples of Td/Tk).
"""

from __future__ import annotations

from typing import Callable

from ..errors import ConfigError
from .mobilenet import DSCLayerSpec, mobilenet_v1_specs

__all__ = [
    "mobilenet_v1_imagenet_specs",
    "mobilenet_v2_dsc_specs",
    "custom_dsc_specs",
    "ZOO_MODELS",
    "zoo_specs",
]


def mobilenet_v1_imagenet_specs() -> list[DSCLayerSpec]:
    """MobileNetV1 for 224x224 inputs (Howard et al., 2017).

    The stem conv is stride 2 (224 → 112); the 13 DSC layers then follow
    the canonical channel plan with strides at indices 1, 3, 5 and 11,
    ending at 7x7x1024.
    """
    plan = [
        (1, 32, 64),
        (2, 64, 128),
        (1, 128, 128),
        (2, 128, 256),
        (1, 256, 256),
        (2, 256, 512),
        (1, 512, 512),
        (1, 512, 512),
        (1, 512, 512),
        (1, 512, 512),
        (1, 512, 512),
        (2, 512, 1024),
        (1, 1024, 1024),
    ]
    specs = []
    size = 112  # after the stride-2 stem
    for idx, (stride, d, k) in enumerate(plan):
        spec = DSCLayerSpec(idx, size, stride, d, k)
        specs.append(spec)
        size = spec.out_size
    return specs


def mobilenet_v2_dsc_specs(input_size: int = 32) -> list[DSCLayerSpec]:
    """The DSC view of MobileNetV2's inverted-residual blocks (CIFAR).

    Each inverted-residual block expands to ``t * c_in`` channels with a
    1x1 conv, applies a 3x3 depthwise, then projects to ``c_out`` with a
    1x1 conv.  The depthwise + projection pair is exactly a DSC layer for
    the EDEA engines: D = expanded channels, K = projected channels.  The
    expansion itself is a pure PWC workload the dual-engine design would
    schedule on the PWC engine alone; it is not part of these specs.

    Channel counts are rounded to multiples of 16 so both Td=8 and Tk=16
    tile exactly (MobileNetV2's own widths are multiples of 8; the
    first block's 16→16 projection already fits).
    """
    if input_size < 4:
        raise ConfigError(f"input_size too small: {input_size}")
    # (expansion t, c_out, repeats, first stride) per the MNv2 paper,
    # CIFAR adaptation: first two strides relaxed to 1.
    cfg = [
        (1, 16, 1, 1),
        (6, 32, 2, 1),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ]
    specs = []
    size = input_size  # stride-1 stem for CIFAR
    c_in = 32
    index = 0
    for t, c_out, repeats, first_stride in cfg:
        for r in range(repeats):
            stride = first_stride if r == 0 else 1
            expanded = max(16, t * c_in)
            expanded = ((expanded + 15) // 16) * 16
            k_out = ((c_out + 15) // 16) * 16
            spec = DSCLayerSpec(index, size, stride, expanded, k_out)
            specs.append(spec)
            size = spec.out_size
            c_in = c_out
            index += 1
    return specs


def custom_dsc_specs(
    input_size: int,
    channel_plan: list[tuple[int, int, int]],
) -> list[DSCLayerSpec]:
    """Build a DSC stack from an explicit ``(stride, D, K)`` plan.

    Args:
        input_size: Spatial size entering the first DSC layer.
        channel_plan: One ``(stride, in_channels, out_channels)`` tuple
            per layer; consecutive entries must chain (``K_i == D_{i+1}``).

    Raises:
        ConfigError: On an empty or non-chaining plan.
    """
    if not channel_plan:
        raise ConfigError("channel_plan must not be empty")
    specs = []
    size = input_size
    for idx, (stride, d, k) in enumerate(channel_plan):
        if idx > 0 and channel_plan[idx - 1][2] != d:
            raise ConfigError(
                f"channel plan does not chain at layer {idx}: "
                f"{channel_plan[idx - 1][2]} -> {d}"
            )
        spec = DSCLayerSpec(idx, size, stride, d, k)
        specs.append(spec)
        size = spec.out_size
    return specs


def _edge_tiny_specs() -> list[DSCLayerSpec]:
    """A four-layer 56x56 stack: a light edge/IoT-style workload that
    keeps mixed-traffic serving scenarios heterogeneous in service time."""
    return custom_dsc_specs(
        56, [(2, 8, 16), (1, 16, 32), (2, 32, 64), (1, 64, 64)]
    )


#: Named spec factories: every DSC workload the accelerator can serve.
#: Keys are the model names used by serving mixes and the CLI.
ZOO_MODELS: dict[str, Callable[[], list[DSCLayerSpec]]] = {
    "mobilenet-v1-224": mobilenet_v1_imagenet_specs,
    "mobilenet-v1-32": mobilenet_v1_specs,
    "mobilenet-v2-dsc": mobilenet_v2_dsc_specs,
    "edge-tiny": _edge_tiny_specs,
}


def zoo_specs(name: str) -> list[DSCLayerSpec]:
    """Resolve a zoo model name to its layer specs.

    Raises:
        ConfigError: On an unknown name (the message lists valid ones).
    """
    try:
        factory = ZOO_MODELS[name]
    except KeyError:
        known = ", ".join(sorted(ZOO_MODELS))
        raise ConfigError(
            f"unknown zoo model {name!r} (known: {known})"
        ) from None
    return factory()
