"""Sequential model container."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .layers import Layer, Parameter

__all__ = ["Sequential"]


class Sequential(Layer):
    """A linear chain of layers executed in order.

    Also records per-layer activations when ``record_activations`` is set,
    which the quantization calibration and sparsity analyses rely on.
    """

    def __init__(self, layers: list[Layer] | None = None) -> None:
        super().__init__()
        self.layers: list[Layer] = list(layers) if layers else []
        self.record_activations = False
        self.activations: list[np.ndarray] = []

    def add(self, layer: Layer) -> "Sequential":
        """Append a layer; returns self for chaining."""
        self.layers.append(layer)
        return self

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.record_activations:
            self.activations = [x]
        for layer in self.layers:
            x = layer.forward(x)
            if self.record_activations:
                self.activations.append(x)
        return x

    def backward(self, dout: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            dout = layer.backward(dout)
        return dout

    def parameters(self) -> Iterator[Parameter]:
        for layer in self.layers:
            yield from layer.parameters()

    def zero_grad(self) -> None:
        """Reset all parameter gradients."""
        for p in self.parameters():
            p.zero_grad()

    def train(self) -> None:
        self.training = True
        for layer in self.layers:
            layer.train()

    def eval(self) -> None:
        self.training = False
        for layer in self.layers:
            layer.eval()

    def num_parameters(self) -> int:
        """Total number of trainable scalars."""
        return sum(p.size for p in self.parameters())

    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, idx: int) -> Layer:
        return self.layers[idx]
