"""NumPy neural-network substrate: layers, models, training.

Provides the float reference implementation of MobileNetV1 (the network the
EDEA paper evaluates), a layer-wise backpropagation trainer, and the
functional primitives the quantized reference path and the hardware model
are validated against.
"""

from . import functional
from .layers import (
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    GlobalAvgPool,
    Layer,
    Linear,
    Parameter,
    PointwiseConv2d,
    ReLU,
)
from .loss import accuracy, cross_entropy, cross_entropy_backward, softmax
from .mobilenet import (
    KERNEL_SIZE,
    MOBILENET_V1_CIFAR10_SPECS,
    NUM_CLASSES,
    DSCLayerSpec,
    build_mobilenet_v1,
    mobilenet_v1_specs,
)
from .model import Sequential
from .optim import SGD
from .zoo import (
    ZOO_MODELS,
    custom_dsc_specs,
    mobilenet_v1_imagenet_specs,
    mobilenet_v2_dsc_specs,
    zoo_specs,
)
from .trainer import Trainer, TrainResult

__all__ = [
    "functional",
    "Layer",
    "Parameter",
    "Conv2d",
    "DepthwiseConv2d",
    "PointwiseConv2d",
    "BatchNorm2d",
    "ReLU",
    "GlobalAvgPool",
    "Linear",
    "Sequential",
    "SGD",
    "Trainer",
    "TrainResult",
    "softmax",
    "cross_entropy",
    "cross_entropy_backward",
    "accuracy",
    "DSCLayerSpec",
    "MOBILENET_V1_CIFAR10_SPECS",
    "mobilenet_v1_specs",
    "build_mobilenet_v1",
    "KERNEL_SIZE",
    "NUM_CLASSES",
    "mobilenet_v1_imagenet_specs",
    "mobilenet_v2_dsc_specs",
    "custom_dsc_specs",
    "ZOO_MODELS",
    "zoo_specs",
]
