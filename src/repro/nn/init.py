"""Deterministic weight initialization schemes.

All initializers take an explicit :class:`numpy.random.Generator` so every
experiment in the repository is reproducible bit-for-bit from a seed.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError

__all__ = ["he_normal", "xavier_uniform", "zeros", "ones"]


def he_normal(
    shape: tuple[int, ...], fan_in: int, rng: np.random.Generator
) -> np.ndarray:
    """He (Kaiming) normal initialization, suited to ReLU networks."""
    if fan_in <= 0:
        raise ConfigError(f"fan_in must be positive (got {fan_in})")
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float64)


def xavier_uniform(
    shape: tuple[int, ...],
    fan_in: int,
    fan_out: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Xavier/Glorot uniform initialization, suited to linear heads."""
    if fan_in <= 0 or fan_out <= 0:
        raise ConfigError(
            f"fan_in/fan_out must be positive (got {fan_in}, {fan_out})"
        )
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zeros parameter (biases, BN shift)."""
    return np.zeros(shape, dtype=np.float64)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    """All-ones parameter (BN scale)."""
    return np.ones(shape, dtype=np.float64)
