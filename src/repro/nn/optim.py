"""Optimizers for the NumPy training substrate."""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from .layers import Parameter

__all__ = ["SGD"]


class SGD:
    """Stochastic gradient descent with classical momentum and weight decay.

    This is the optimizer the MobileNetV1 reference training uses; the LSQ
    step-size parameters are trained with the same rule (the LSQ paper's
    gradient-scale factor is applied inside the quantizer layer).
    """

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 0.05,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ConfigError(f"learning rate must be positive (got {lr})")
        if not 0.0 <= momentum < 1.0:
            raise ConfigError(f"momentum must be in [0, 1) (got {momentum})")
        if weight_decay < 0:
            raise ConfigError(
                f"weight decay must be >= 0 (got {weight_decay})"
            )
        self.parameters = list(parameters)
        if not self.parameters:
            raise ConfigError("optimizer received no parameters")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one update using the currently accumulated gradients."""
        for param, vel in zip(self.parameters, self._velocity):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            vel *= self.momentum
            vel += grad
            param.data -= self.lr * vel

    def zero_grad(self) -> None:
        """Reset gradients of all managed parameters."""
        for param in self.parameters:
            param.zero_grad()
