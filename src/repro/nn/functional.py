"""Pure-NumPy neural-network primitives (forward and backward).

Data layout is NCHW throughout.  Convolutions are implemented with im2col /
col2im so both the forward pass and the gradients are exact and reasonably
fast; these primitives back the float training path used to obtain realistic
weights/activations for the accelerator experiments, and they double as the
golden reference the hardware model is checked against.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError

__all__ = [
    "conv_output_size",
    "pad2d",
    "im2col",
    "col2im",
    "conv2d",
    "conv2d_backward",
    "depthwise_conv2d",
    "depthwise_conv2d_backward",
    "pointwise_conv2d",
    "pointwise_conv2d_backward",
    "global_avg_pool",
    "global_avg_pool_backward",
    "relu",
    "relu_backward",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Output spatial extent of a convolution along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"convolution produces empty output: size={size}, "
            f"kernel={kernel}, stride={stride}, padding={padding}"
        )
    return out


def pad2d(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the two trailing (spatial) dimensions of ``x``."""
    if padding == 0:
        return x
    pad_width = [(0, 0)] * (x.ndim - 2) + [(padding, padding)] * 2
    return np.pad(x, pad_width, mode="constant")


def im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> np.ndarray:
    """Unfold sliding windows of ``x`` into columns.

    Args:
        x: Input of shape ``(N, C, H, W)``.
        kernel: Square kernel size.
        stride: Stride in both dimensions.
        padding: Zero padding in both dimensions.

    Returns:
        Array of shape ``(N, C, kernel, kernel, out_h, out_w)``; a view-free
        copy safe to mutate.
    """
    if x.ndim != 4:
        raise ShapeError(f"im2col expects NCHW input, got shape {x.shape}")
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    xp = pad2d(x, padding)
    cols = np.empty((n, c, kernel, kernel, out_h, out_w), dtype=x.dtype)
    for ky in range(kernel):
        y_end = ky + stride * out_h
        for kx in range(kernel):
            x_end = kx + stride * out_w
            cols[:, :, ky, kx] = xp[:, :, ky:y_end:stride, kx:x_end:stride]
    return cols


def col2im(
    cols: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back to an image.

    Overlapping windows accumulate, which is exactly the operation needed
    to turn the gradient w.r.t. columns into the gradient w.r.t. the input.
    """
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    expected = (n, c, kernel, kernel, out_h, out_w)
    if cols.shape != expected:
        raise ShapeError(f"col2im expects shape {expected}, got {cols.shape}")
    xp = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for ky in range(kernel):
        y_end = ky + stride * out_h
        for kx in range(kernel):
            x_end = kx + stride * out_w
            xp[:, :, ky:y_end:stride, kx:x_end:stride] += cols[:, :, ky, kx]
    if padding == 0:
        return xp
    return xp[:, :, padding:-padding, padding:-padding]


def conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Standard convolution.

    Args:
        x: ``(N, C, H, W)`` input.
        weight: ``(F, C, k, k)`` kernels.
        bias: Optional ``(F,)`` bias.

    Returns:
        ``(N, F, out_h, out_w)`` output.
    """
    f, c, kh, kw = weight.shape
    if kh != kw:
        raise ShapeError(f"only square kernels supported, got {kh}x{kw}")
    if x.shape[1] != c:
        raise ShapeError(
            f"input has {x.shape[1]} channels but weight expects {c}"
        )
    cols = im2col(x, kh, stride, padding)
    n, _, _, _, out_h, out_w = cols.shape
    cols2 = cols.reshape(n, c * kh * kw, out_h * out_w)
    w2 = weight.reshape(f, c * kh * kw)
    out = np.einsum("fk,nkl->nfl", w2, cols2, optimize=True)
    out = out.reshape(n, f, out_h, out_w)
    if bias is not None:
        out = out + bias.reshape(1, f, 1, 1)
    return out


def conv2d_backward(
    dout: np.ndarray,
    x: np.ndarray,
    weight: np.ndarray,
    stride: int = 1,
    padding: int = 0,
    has_bias: bool = True,
):
    """Gradients of :func:`conv2d`.

    Returns:
        Tuple ``(dx, dweight, dbias)``; ``dbias`` is None when
        ``has_bias`` is False.
    """
    f, c, kh, _ = weight.shape
    n = x.shape[0]
    cols = im2col(x, kh, stride, padding)
    out_h, out_w = dout.shape[2], dout.shape[3]
    cols2 = cols.reshape(n, c * kh * kh, out_h * out_w)
    dout2 = dout.reshape(n, f, out_h * out_w)
    dweight = np.einsum("nfl,nkl->fk", dout2, cols2, optimize=True)
    dweight = dweight.reshape(weight.shape)
    w2 = weight.reshape(f, c * kh * kh)
    dcols2 = np.einsum("fk,nfl->nkl", w2, dout2, optimize=True)
    dcols = dcols2.reshape(n, c, kh, kh, out_h, out_w)
    dx = col2im(dcols, x.shape, kh, stride, padding)
    dbias = dout.sum(axis=(0, 2, 3)) if has_bias else None
    return dx, dweight, dbias


def depthwise_conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Depthwise convolution: one k x k filter per input channel.

    Args:
        x: ``(N, C, H, W)`` input.
        weight: ``(C, k, k)`` per-channel kernels.
        bias: Optional ``(C,)`` bias.

    Returns:
        ``(N, C, out_h, out_w)`` output.
    """
    c, kh, kw = weight.shape
    if kh != kw:
        raise ShapeError(f"only square kernels supported, got {kh}x{kw}")
    if x.shape[1] != c:
        raise ShapeError(
            f"input has {x.shape[1]} channels but weight expects {c}"
        )
    cols = im2col(x, kh, stride, padding)
    # cols: (N, C, k, k, out_h, out_w); contract the kernel window per channel
    out = np.einsum("nckjhw,ckj->nchw", cols, weight, optimize=True)
    if bias is not None:
        out = out + bias.reshape(1, c, 1, 1)
    return out


def depthwise_conv2d_backward(
    dout: np.ndarray,
    x: np.ndarray,
    weight: np.ndarray,
    stride: int = 1,
    padding: int = 0,
    has_bias: bool = True,
):
    """Gradients of :func:`depthwise_conv2d` → ``(dx, dweight, dbias)``."""
    c, kh, _ = weight.shape
    cols = im2col(x, kh, stride, padding)
    dweight = np.einsum("nckjhw,nchw->ckj", cols, dout, optimize=True)
    dcols = np.einsum("ckj,nchw->nckjhw", weight, dout, optimize=True)
    dx = col2im(dcols, x.shape, kh, stride, padding)
    dbias = dout.sum(axis=(0, 2, 3)) if has_bias else None
    return dx, dweight, dbias


def pointwise_conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
) -> np.ndarray:
    """Pointwise (1 x 1) convolution.

    Args:
        x: ``(N, C, H, W)`` input.
        weight: ``(F, C)`` kernels.
        bias: Optional ``(F,)`` bias.

    Returns:
        ``(N, F, H, W)`` output.
    """
    f, c = weight.shape
    if x.shape[1] != c:
        raise ShapeError(
            f"input has {x.shape[1]} channels but weight expects {c}"
        )
    out = np.einsum("fc,nchw->nfhw", weight, x, optimize=True)
    if bias is not None:
        out = out + bias.reshape(1, f, 1, 1)
    return out


def pointwise_conv2d_backward(
    dout: np.ndarray,
    x: np.ndarray,
    weight: np.ndarray,
    has_bias: bool = True,
):
    """Gradients of :func:`pointwise_conv2d` → ``(dx, dweight, dbias)``."""
    dweight = np.einsum("nfhw,nchw->fc", dout, x, optimize=True)
    dx = np.einsum("fc,nfhw->nchw", weight, dout, optimize=True)
    dbias = dout.sum(axis=(0, 2, 3)) if has_bias else None
    return dx, dweight, dbias


def global_avg_pool(x: np.ndarray) -> np.ndarray:
    """Global average pooling: ``(N, C, H, W)`` → ``(N, C)``."""
    return x.mean(axis=(2, 3))


def global_avg_pool_backward(
    dout: np.ndarray, input_shape: tuple[int, int, int, int]
) -> np.ndarray:
    """Gradient of :func:`global_avg_pool`."""
    n, c, h, w = input_shape
    scale = 1.0 / (h * w)
    return np.broadcast_to(
        dout.reshape(n, c, 1, 1) * scale, input_shape
    ).copy()


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0)


def relu_backward(dout: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Gradient of :func:`relu` w.r.t. its input."""
    return dout * (x > 0)
