"""Loss functions."""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError

__all__ = ["softmax", "cross_entropy", "cross_entropy_backward", "accuracy"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically-stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def cross_entropy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Mean cross-entropy between logits ``(N, C)`` and int labels ``(N,)``."""
    if logits.ndim != 2:
        raise ShapeError(f"logits must be (N, C), got {logits.shape}")
    if labels.shape[0] != logits.shape[0]:
        raise ShapeError(
            f"batch mismatch: logits {logits.shape[0]} vs labels "
            f"{labels.shape[0]}"
        )
    probs = softmax(logits)
    n = logits.shape[0]
    picked = probs[np.arange(n), labels]
    return float(-np.log(np.clip(picked, 1e-12, None)).mean())


def cross_entropy_backward(
    logits: np.ndarray, labels: np.ndarray
) -> np.ndarray:
    """Gradient of mean cross-entropy w.r.t. the logits."""
    probs = softmax(logits)
    n = logits.shape[0]
    grad = probs.copy()
    grad[np.arange(n), labels] -= 1.0
    return grad / n


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 classification accuracy in [0, 1]."""
    return float((logits.argmax(axis=-1) == labels).mean())
