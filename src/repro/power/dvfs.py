"""Voltage/frequency operating-point model (DVFS study).

EDEA's published numbers are at one operating point: 0.8 V, 1 GHz at the
TT corner.  This module models how throughput and energy efficiency move
when that point changes, using the standard first-order CMOS relations
the paper's normalization reference (Latotzke & Gemmeke, 2021) builds on:

* maximum frequency follows the alpha-power law
  ``f_max ∝ (V - V_th)^alpha / V`` (alpha ≈ 1.3 in scaled nodes),
* dynamic energy per operation scales with ``V²``,
* leakage power scales roughly with ``V³`` around nominal.

All constants are normalized to the published 0.8 V / 1 GHz /
13.43 TOPS/W point, so the model answers relative "what if" questions —
e.g. the classic result that peak *energy efficiency* sits below the peak
*performance* voltage — without claiming absolute silicon accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["OperatingPoint", "DVFSModel", "frequency_scaled_latency"]

NOMINAL_VOLTAGE_V = 0.8
NOMINAL_FREQUENCY_HZ = 1.0e9
NOMINAL_PEAK_EE_TOPS_W = 13.43


@dataclass(frozen=True)
class OperatingPoint:
    """One (voltage, frequency) point with derived metrics.

    Attributes:
        voltage_v: Supply voltage.
        frequency_hz: Clock frequency actually run at (must not exceed
            the voltage's ``f_max``).
        throughput_factor: Throughput relative to 0.8 V / 1 GHz.
        energy_efficiency_tops_w: Modelled peak TOPS/W at this point.
        dynamic_power_factor / leakage_power_factor: Power components
            relative to nominal.
    """

    voltage_v: float
    frequency_hz: float
    throughput_factor: float
    energy_efficiency_tops_w: float
    dynamic_power_factor: float
    leakage_power_factor: float

    @property
    def latency_scale(self) -> float:
        """Latency multiplier vs the nominal 1 GHz clock (cycle counts
        are frequency-independent, so latency stretches as 1/f)."""
        return NOMINAL_FREQUENCY_HZ / self.frequency_hz


class DVFSModel:
    """First-order DVFS model anchored at the paper's operating point."""

    def __init__(
        self,
        v_threshold: float = 0.35,
        alpha: float = 1.3,
        leakage_fraction: float = 0.08,
    ) -> None:
        """Create a model.

        Args:
            v_threshold: Effective threshold voltage of the 22 nm FDSOI
                process (FDSOI bodies allow ~0.3-0.4 V effective Vth).
            alpha: Velocity-saturation exponent of the alpha-power law.
            leakage_fraction: Share of total power that is leakage at the
                nominal point (post-layout digital logic: a few percent).
        """
        if not 0.0 < v_threshold < NOMINAL_VOLTAGE_V:
            raise ConfigError(
                f"v_threshold must be in (0, {NOMINAL_VOLTAGE_V}) "
                f"(got {v_threshold})"
            )
        if alpha < 1.0 or alpha > 2.0:
            raise ConfigError(f"alpha must be in [1, 2] (got {alpha})")
        if not 0.0 <= leakage_fraction < 1.0:
            raise ConfigError(
                f"leakage_fraction must be in [0, 1) (got {leakage_fraction})"
            )
        self.v_threshold = v_threshold
        self.alpha = alpha
        self.leakage_fraction = leakage_fraction

    def max_frequency_hz(self, voltage_v: float) -> float:
        """Alpha-power-law maximum frequency at ``voltage_v``."""
        if voltage_v <= self.v_threshold:
            raise ConfigError(
                f"voltage {voltage_v} V is at or below threshold "
                f"{self.v_threshold} V"
            )
        def speed(v: float) -> float:
            return (v - self.v_threshold) ** self.alpha / v

        return NOMINAL_FREQUENCY_HZ * speed(voltage_v) / speed(
            NOMINAL_VOLTAGE_V
        )

    def operating_point(
        self, voltage_v: float, frequency_hz: float | None = None
    ) -> OperatingPoint:
        """Evaluate a (voltage, frequency) point.

        Args:
            voltage_v: Supply voltage.
            frequency_hz: Clock; defaults to the voltage's ``f_max``.

        Raises:
            ConfigError: If the requested frequency exceeds ``f_max``.
        """
        f_max = self.max_frequency_hz(voltage_v)
        f = f_max if frequency_hz is None else float(frequency_hz)
        if f <= 0:
            raise ConfigError(f"frequency must be positive (got {f})")
        if f > f_max * (1 + 1e-9):
            raise ConfigError(
                f"{f / 1e9:.3f} GHz exceeds f_max "
                f"{f_max / 1e9:.3f} GHz at {voltage_v} V"
            )
        v_ratio = voltage_v / NOMINAL_VOLTAGE_V
        f_ratio = f / NOMINAL_FREQUENCY_HZ
        dynamic = v_ratio**2 * f_ratio
        leakage = v_ratio**3
        # Energy/op: dynamic part ∝ V²; leakage part ∝ leakage power / f.
        energy_factor = (1 - self.leakage_fraction) * v_ratio**2 + (
            self.leakage_fraction * leakage / f_ratio
        )
        return OperatingPoint(
            voltage_v=voltage_v,
            frequency_hz=f,
            throughput_factor=f_ratio,
            energy_efficiency_tops_w=NOMINAL_PEAK_EE_TOPS_W / energy_factor,
            dynamic_power_factor=dynamic,
            leakage_power_factor=leakage,
        )

    def sweep(
        self, voltages: list[float]
    ) -> list[OperatingPoint]:
        """Evaluate the f_max point at each voltage (a V-f curve)."""
        return [self.operating_point(v) for v in voltages]

    def best_efficiency_point(
        self, voltages: list[float]
    ) -> OperatingPoint:
        """The sweep point with the highest modelled TOPS/W."""
        points = self.sweep(voltages)
        if not points:
            raise ConfigError("voltage sweep is empty")
        return max(points, key=lambda p: p.energy_efficiency_tops_w)


def frequency_scaled_latency(
    nominal_seconds: float, point: OperatingPoint
) -> float:
    """Stretch a latency measured at the nominal 1 GHz clock to
    ``point``'s frequency (used by DVFS-heterogeneous serving fleets)."""
    if nominal_seconds < 0:
        raise ConfigError(
            f"nominal_seconds must be non-negative ({nominal_seconds})"
        )
    return nominal_seconds * point.latency_scale
