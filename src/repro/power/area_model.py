"""Component area model (paper Fig. 8 layout and Fig. 9 area breakdown).

The signed-off design occupies 825.032 µm x 699.52 µm = 0.577 mm², with
the PWC engine at 47.90%, the DWC engine at 28.37% and the Non-Conv units
at 14.87% of the area (the paper labels these three; the remaining slices
— 5.38%, 2.48%, 1.00% — we assign to buffers, control and other, a
documented labelling choice).  The PWC:DWC area ratio of ≈1.7x closely
tracks their 512:288 ≈ 1.8x MAC ratio, which this model preserves by
construction: engine areas are linear in MAC count.

The model supports the scaling question the paper raises ("PE arrays are
friendly to scaling"): rebuilding with a larger :class:`ArchConfig`
extrapolates each component's area from the calibrated per-unit costs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.params import EDEA_CONFIG, ArchConfig
from ..errors import ConfigError

__all__ = ["AreaModel", "PAPER_AREA_SHARES", "PAPER_DIE"]

#: Paper Fig. 9 (left): area shares.
PAPER_AREA_SHARES = {
    "pwc_engine": 0.4790,
    "dwc_engine": 0.2837,
    "nonconv": 0.1487,
    "buffers": 0.0538,
    "control": 0.0248,
    "other": 0.0100,
}

#: Paper Fig. 8: die dimensions in micrometres.
PAPER_DIE = (825.032, 699.52)


def paper_total_area_mm2() -> float:
    """Die area from the Fig. 8 dimensions (≈0.577 mm²; quoted 0.58)."""
    return PAPER_DIE[0] * PAPER_DIE[1] / 1e6


@dataclass(frozen=True)
class AreaModel:
    """Per-unit area costs calibrated to the paper's breakdown.

    Attributes:
        dwc_mm2_per_mac: Area of one DWC MAC (incl. its adder-tree share).
        pwc_mm2_per_mac: Area of one PWC MAC.
        nonconv_mm2_per_unit: Area of one Non-Conv unit.
        buffer_mm2_per_kentry: Buffer area per 1024 int8 entries.
        fixed_mm2: Control + other (assumed size-independent).
    """

    dwc_mm2_per_mac: float
    pwc_mm2_per_mac: float
    nonconv_mm2_per_unit: float
    buffer_mm2_per_kentry: float
    fixed_mm2: float

    @classmethod
    def calibrated(
        cls, config: ArchConfig = EDEA_CONFIG
    ) -> "AreaModel":
        """Derive per-unit costs from the paper's shares and die area."""
        total = paper_total_area_mm2()
        buffers_entries = (
            config.dwc_ifmap_buffer_entries
            + config.dwc_weight_buffer_entries
            + config.offline_buffer_entries * 3  # 24-bit k/b constants
            + config.intermediate_buffer_entries
            + 1024 * config.td  # worst-case K x Td PWC weight slice
        )
        return cls(
            dwc_mm2_per_mac=total
            * PAPER_AREA_SHARES["dwc_engine"]
            / config.dwc_macs_per_cycle,
            pwc_mm2_per_mac=total
            * PAPER_AREA_SHARES["pwc_engine"]
            / config.pwc_macs_per_cycle,
            nonconv_mm2_per_unit=total
            * PAPER_AREA_SHARES["nonconv"]
            / config.td,
            buffer_mm2_per_kentry=total
            * PAPER_AREA_SHARES["buffers"]
            / (buffers_entries / 1024),
            fixed_mm2=total
            * (
                PAPER_AREA_SHARES["control"]
                + PAPER_AREA_SHARES["other"]
            ),
        )

    def component_areas_mm2(
        self, config: ArchConfig = EDEA_CONFIG
    ) -> dict[str, float]:
        """Component areas for an (optionally scaled) configuration."""
        buffers_entries = (
            config.dwc_ifmap_buffer_entries
            + config.dwc_weight_buffer_entries
            + config.offline_buffer_entries * 3
            + config.intermediate_buffer_entries
            + 1024 * config.td
        )
        return {
            "dwc_engine": self.dwc_mm2_per_mac * config.dwc_macs_per_cycle,
            "pwc_engine": self.pwc_mm2_per_mac * config.pwc_macs_per_cycle,
            "nonconv": self.nonconv_mm2_per_unit * config.td,
            "buffers": self.buffer_mm2_per_kentry * buffers_entries / 1024,
            "fixed": self.fixed_mm2,
        }

    def total_area_mm2(self, config: ArchConfig = EDEA_CONFIG) -> float:
        """Total area of a configuration."""
        return sum(self.component_areas_mm2(config).values())

    def pwc_to_dwc_ratio(self, config: ArchConfig = EDEA_CONFIG) -> float:
        """Engine area ratio (paper: ≈1.7x)."""
        areas = self.component_areas_mm2(config)
        if areas["dwc_engine"] <= 0:
            raise ConfigError("DWC engine area must be positive")
        return areas["pwc_engine"] / areas["dwc_engine"]
