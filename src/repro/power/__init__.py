"""Power, energy, area and technology-scaling models (paper Section IV)."""

from .area_model import PAPER_AREA_SHARES, PAPER_DIE, AreaModel, paper_total_area_mm2
from .energy_model import (
    PAPER_LAYER1_POWER_W,
    PAPER_LAYER12_POWER_W,
    PAPER_POWER_SHARES,
    LayerPower,
    PowerBreakdownShares,
    PowerModel,
)
from .dvfs import DVFSModel, OperatingPoint, frequency_scaled_latency
from .metrics import energy_joules, gops, gops_per_mm2, tops_per_watt
from .tech_scaling import ScalingModel, precision_ops_factor

__all__ = [
    "PowerModel",
    "PowerBreakdownShares",
    "LayerPower",
    "PAPER_POWER_SHARES",
    "PAPER_LAYER1_POWER_W",
    "PAPER_LAYER12_POWER_W",
    "AreaModel",
    "PAPER_AREA_SHARES",
    "PAPER_DIE",
    "paper_total_area_mm2",
    "ScalingModel",
    "precision_ops_factor",
    "gops",
    "tops_per_watt",
    "gops_per_mm2",
    "energy_joules",
    "DVFSModel",
    "OperatingPoint",
    "frequency_scaled_latency",
]
