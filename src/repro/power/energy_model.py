"""Activity-gated component power model (paper Figs. 9 and 11).

Absolute power cannot be derived without the paper's netlist and PrimeTime
flow, so this model is *calibrated*, not derived — see DESIGN.md.  Its
structure follows the mechanism the paper identifies: layer power falls as
the activation zero percentage rises (zero operands gate the multipliers),
and the component split at the reference point matches the Fig. 9 power
breakdown.

Model.  For a layer ``l`` with measured engine utilizations ``u_dwc, u_pwc``
(busy cycles / total cycles) and engine-input zero fractions
``z_dwc, z_pwc``:

    P(l) = S * [  w_pwc * u_pwc(l) * g(z_pwc(l))
                + w_dwc * u_dwc(l) * g(z_dwc(l))
                + (w_ncu + w_buf) * (u_dwc(l) + u_pwc(l)) / 2
                + w_clk + w_ctrl + w_other ]

where ``w_*`` are the Fig. 9 power shares, ``g(z) = beta + (1-beta)*(1-z)``
is the switching factor (``beta`` = residual toggling with a zero operand),
and ``S`` is a global scale.  ``S`` and ``beta`` are fit so the paper's two
published endpoints are met exactly: layer 1 = 117.7 mW (highest) and
layer 12 = 67.7 mW (lowest); every other layer's power then follows the
*measured* activity of our simulator runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.accelerator import LayerRunStats
from ..errors import ConfigError

__all__ = ["PowerBreakdownShares", "PowerModel", "LayerPower"]

#: Paper Fig. 9 (right): power shares.  The paper labels PWC (66.23%) and
#: DWC (15.70%) explicitly and says the "others" slice is the clock tree;
#: our assignment of the remaining slices to clock/non-conv/buffers/control
#: is a documented labelling choice.
PAPER_POWER_SHARES = {
    "pwc_engine": 0.6623,
    "dwc_engine": 0.1570,
    "clock_tree": 0.0614,
    "nonconv": 0.0420,
    "buffers": 0.0349,
    "control": 0.0348,
    "other": 0.0075,
}

#: Paper-reported endpoint powers used for calibration (Section IV-A).
PAPER_LAYER1_POWER_W = 0.1177
PAPER_LAYER12_POWER_W = 0.0677


@dataclass(frozen=True)
class PowerBreakdownShares:
    """Component shares of total power at the reference activity."""

    pwc_engine: float = PAPER_POWER_SHARES["pwc_engine"]
    dwc_engine: float = PAPER_POWER_SHARES["dwc_engine"]
    clock_tree: float = PAPER_POWER_SHARES["clock_tree"]
    nonconv: float = PAPER_POWER_SHARES["nonconv"]
    buffers: float = PAPER_POWER_SHARES["buffers"]
    control: float = PAPER_POWER_SHARES["control"]
    other: float = PAPER_POWER_SHARES["other"]

    def __post_init__(self) -> None:
        total = (
            self.pwc_engine
            + self.dwc_engine
            + self.clock_tree
            + self.nonconv
            + self.buffers
            + self.control
            + self.other
        )
        if not 0.99 <= total <= 1.01:
            raise ConfigError(f"power shares must sum to 1 (got {total:.4f})")

    @property
    def constant(self) -> float:
        """Activity-independent share (clock tree + control + other)."""
        return self.clock_tree + self.control + self.other

    @property
    def tracking(self) -> float:
        """Share tracking mean engine duty (Non-Conv units + buffers)."""
        return self.nonconv + self.buffers


@dataclass(frozen=True)
class LayerPower:
    """Power estimate for one layer.

    Attributes:
        total_watts: Estimated layer power.
        components: Per-component watts (keys as in PAPER_POWER_SHARES).
    """

    total_watts: float
    components: dict


class PowerModel:
    """Calibrated activity-to-power mapping."""

    def __init__(
        self,
        shares: PowerBreakdownShares | None = None,
        scale_watts: float = 0.15,
        beta: float = 0.3,
    ) -> None:
        """Create a model with explicit parameters (see also ``calibrate``).

        Args:
            shares: Component power shares at reference activity.
            scale_watts: Global scale ``S``.
            beta: Residual switching factor for a zero operand, in (0, 1].
        """
        if scale_watts <= 0:
            raise ConfigError(f"scale_watts must be positive ({scale_watts})")
        if not 0.0 < beta <= 1.0:
            raise ConfigError(f"beta must be in (0, 1] (got {beta})")
        self.shares = shares if shares is not None else PowerBreakdownShares()
        self.scale_watts = scale_watts
        self.beta = beta
        self.calibration_note: str | None = None

    # --- core model ------------------------------------------------------

    def switching_factor(self, zero_fraction: float) -> float:
        """``g(z) = beta + (1 - beta) * (1 - z)``."""
        if not 0.0 <= zero_fraction <= 1.0:
            raise ConfigError(
                f"zero_fraction must be in [0, 1] (got {zero_fraction})"
            )
        return self.beta + (1.0 - self.beta) * (1.0 - zero_fraction)

    def _relative_activity(self, stats: LayerRunStats) -> dict:
        s = self.shares
        g_dwc = self.switching_factor(stats.dwc_zero_fraction)
        g_pwc = self.switching_factor(stats.pwc_zero_fraction)
        duty = (stats.dwc_utilization + stats.pwc_utilization) / 2.0
        return {
            "pwc_engine": s.pwc_engine * stats.pwc_utilization * g_pwc,
            "dwc_engine": s.dwc_engine * stats.dwc_utilization * g_dwc,
            "nonconv": s.nonconv * duty,
            "buffers": s.buffers * duty,
            "clock_tree": s.clock_tree,
            "control": s.control,
            "other": s.other,
        }

    def layer_power(self, stats: LayerRunStats) -> LayerPower:
        """Estimate one layer's power from its run statistics."""
        parts = {
            name: self.scale_watts * value
            for name, value in self._relative_activity(stats).items()
        }
        return LayerPower(
            total_watts=sum(parts.values()), components=parts
        )

    def layer_energy_joules(
        self, stats: LayerRunStats, clock_hz: float
    ) -> float:
        """Energy of one layer run."""
        return self.layer_power(stats).total_watts * (
            stats.cycles / clock_hz
        )

    def layer_efficiency_tops_per_watt(
        self, stats: LayerRunStats, clock_hz: float
    ) -> float:
        """Energy efficiency of one layer (Fig. 12's metric)."""
        power = self.layer_power(stats).total_watts
        throughput = stats.throughput_ops_per_second(clock_hz)
        return throughput / power / 1e12

    # --- calibration ------------------------------------------------------

    @classmethod
    def calibrate(
        cls,
        layer_stats: list[LayerRunStats],
        high_power_watts: float = PAPER_LAYER1_POWER_W,
        low_power_watts: float = PAPER_LAYER12_POWER_W,
        high_layer: int = 1,
        low_layer: int = 12,
        shares: PowerBreakdownShares | None = None,
        strict: bool = False,
    ) -> "PowerModel":
        """Fit ``(S, beta)`` to the paper's two published endpoints.

        Finds ``beta`` by bisection so the power *ratio* between the high
        and low layers matches, then sets ``S`` to hit the absolute value.

        The paper's 117.7/67.7 mW ratio reflects a fully-trained CIFAR10
        network whose deep layers are 95%+ sparse; a briefly-trained
        synthetic workload has a flatter sparsity profile, which can make
        the exact ratio unreachable.  With ``strict=False`` (default) the
        model then takes the feasible extreme (maximum dynamic range),
        matches the high endpoint exactly, and records the shortfall in
        :attr:`PowerModel.calibration_note`; with ``strict=True`` it
        raises instead.

        Args:
            layer_stats: Measured stats for all layers (indexable by the
                ``layer_index`` attribute).
            high_power_watts / low_power_watts: Calibration targets.
            high_layer / low_layer: Which layer indices the targets refer
                to (paper: layers 1 and 12).
            shares: Component shares (defaults to Fig. 9).
            strict: Raise instead of falling back when the ratio is
                unreachable.

        Raises:
            ConfigError: When ``strict`` and the measured activities
                cannot produce the requested ratio for any ``beta``.
        """
        if high_power_watts <= low_power_watts:
            raise ConfigError(
                "calibration expects high_power_watts > low_power_watts"
            )
        by_index = {s.layer_index: s for s in layer_stats}
        try:
            stats_hi = by_index[high_layer]
            stats_lo = by_index[low_layer]
        except KeyError as exc:
            raise ConfigError(
                f"layer stats missing calibration layer {exc}"
            ) from exc
        target_ratio = high_power_watts / low_power_watts

        def ratio_at(beta: float) -> float:
            model = cls(shares=shares, scale_watts=1.0, beta=beta)
            hi = model.layer_power(stats_hi).total_watts
            lo = model.layer_power(stats_lo).total_watts
            return hi / lo

        lo_beta, hi_beta = 1e-6, 1.0
        ratio_sparse, ratio_uniform = ratio_at(lo_beta), ratio_at(hi_beta)
        # g(z) flattens as beta -> 1, so the ratio is monotone in beta.
        note = None
        if (
            min(ratio_sparse, ratio_uniform)
            <= target_ratio
            <= max(ratio_sparse, ratio_uniform)
        ):
            for _ in range(100):
                mid = 0.5 * (lo_beta + hi_beta)
                above = ratio_at(mid) > target_ratio
                if above == (ratio_sparse > target_ratio):
                    lo_beta = mid
                else:
                    hi_beta = mid
            beta = 0.5 * (lo_beta + hi_beta)
        else:
            message = (
                f"target power ratio {target_ratio:.3f} is outside the "
                f"achievable range [{min(ratio_sparse, ratio_uniform):.3f}, "
                f"{max(ratio_sparse, ratio_uniform):.3f}] for the measured "
                "activities"
            )
            if strict:
                raise ConfigError(message)
            # Take the feasible extreme with the largest dynamic range and
            # match the high-power endpoint exactly.
            beta = (
                lo_beta if ratio_sparse >= ratio_uniform else hi_beta
            )
            achieved = ratio_at(beta)
            note = (
                message
                + f"; using beta={beta:.6f} (achieved ratio "
                f"{achieved:.3f}) and matching the "
                f"{high_power_watts * 1e3:.1f} mW endpoint"
            )
        probe = cls(shares=shares, scale_watts=1.0, beta=beta)
        scale = high_power_watts / probe.layer_power(stats_hi).total_watts
        model = cls(shares=shares, scale_watts=scale, beta=beta)
        model.calibration_note = note
        return model
