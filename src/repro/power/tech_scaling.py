"""Technology and precision normalization for cross-work comparison.

Table III of the paper normalizes prior works to 22 nm / 0.8 V / 8 bit
"following the methodology in [19]" (Latotzke & Gemmeke, IEEE Access 2021).
[19] uses per-node empirical factors rather than a single closed form, and
the paper prints the resulting normalized numbers; we therefore keep the
paper's published normalized values as data (see
:mod:`repro.eval.comparison`) and provide here a transparent parametric
power-law model for *our own* scaling estimates and ablations:

* energy efficiency  ∝ (L / 22 nm)^alpha_e * (V / 0.8 V)^beta_e
* area efficiency    ∝ (L / 22 nm)^alpha_a
* precision: ops scale by ``(bits / 8)^2`` (the paper's footnote — a
  W x A multiplier array grows quadratically with word length).

Defaults ``alpha_e = 2, beta_e = 0, alpha_a = 2`` approximate the paper's
published factors within ~5% for two of the four rows and within ~25% for
the others; EXPERIMENTS.md tabulates the deviation per row.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["ScalingModel", "precision_ops_factor"]

REFERENCE_TECH_NM = 22.0
REFERENCE_VOLTAGE_V = 0.8
REFERENCE_PRECISION_BITS = 8


def precision_ops_factor(precision_bits: int) -> float:
    """Throughput multiplier when normalizing to 8-bit ops.

    The paper's Table III footnote: values are normalized to 8 bits using
    ``(precision / 8)²`` — e.g. a 16-bit MAC counts as four 8-bit ops.
    """
    if precision_bits < 1:
        raise ConfigError(f"precision must be >= 1 bit ({precision_bits})")
    return (precision_bits / REFERENCE_PRECISION_BITS) ** 2


@dataclass(frozen=True)
class ScalingModel:
    """Power-law technology scaling to the 22 nm / 0.8 V reference."""

    alpha_energy: float = 2.0
    beta_energy: float = 0.0
    alpha_area: float = 2.0

    def energy_efficiency_factor(
        self, tech_nm: float, voltage_v: float
    ) -> float:
        """Multiplier applied to TOPS/W when scaling to the reference."""
        if tech_nm <= 0 or voltage_v <= 0:
            raise ConfigError("technology node and voltage must be positive")
        return (tech_nm / REFERENCE_TECH_NM) ** self.alpha_energy * (
            voltage_v / REFERENCE_VOLTAGE_V
        ) ** self.beta_energy

    def area_efficiency_factor(self, tech_nm: float) -> float:
        """Multiplier applied to GOPS/mm² when scaling to the reference."""
        if tech_nm <= 0:
            raise ConfigError("technology node must be positive")
        return (tech_nm / REFERENCE_TECH_NM) ** self.alpha_area

    def normalize_energy_efficiency(
        self,
        tops_per_watt: float,
        tech_nm: float,
        voltage_v: float,
        precision_bits: int = 8,
    ) -> float:
        """Scale a published TOPS/W figure to 22 nm / 0.8 V / 8 bit."""
        return (
            tops_per_watt
            * self.energy_efficiency_factor(tech_nm, voltage_v)
            * precision_ops_factor(precision_bits)
        )

    def normalize_area_efficiency(
        self,
        gops_per_mm2: float,
        tech_nm: float,
        precision_bits: int = 8,
    ) -> float:
        """Scale a published GOPS/mm² figure to 22 nm / 8 bit."""
        return (
            gops_per_mm2
            * self.area_efficiency_factor(tech_nm)
            * precision_ops_factor(precision_bits)
        )
