"""Performance-metric helpers (GOPS, TOPS/W, GOPS/mm²)."""

from __future__ import annotations

from ..errors import ConfigError

__all__ = [
    "gops",
    "tops_per_watt",
    "gops_per_mm2",
    "energy_joules",
]


def gops(ops: int, seconds: float) -> float:
    """Throughput in giga-operations per second."""
    if seconds <= 0:
        raise ConfigError(f"duration must be positive (got {seconds})")
    return ops / seconds / 1e9


def tops_per_watt(ops: int, seconds: float, watts: float) -> float:
    """Energy efficiency in tera-operations per second per watt."""
    if watts <= 0:
        raise ConfigError(f"power must be positive (got {watts})")
    return gops(ops, seconds) / watts / 1e3


def gops_per_mm2(throughput_gops: float, area_mm2: float) -> float:
    """Area efficiency in GOPS per square millimetre."""
    if area_mm2 <= 0:
        raise ConfigError(f"area must be positive (got {area_mm2})")
    return throughput_gops / area_mm2


def energy_joules(watts: float, seconds: float) -> float:
    """Energy consumed by a run."""
    if watts < 0 or seconds < 0:
        raise ConfigError("power and duration must be non-negative")
    return watts * seconds
