"""Exception hierarchy for the EDEA reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied (bad tile size, etc.)."""


class ShapeError(ReproError):
    """Tensor/feature-map shapes are inconsistent with the operation."""


class QuantizationError(ReproError):
    """Quantization parameters are missing, invalid, or out of range."""


class FixedPointError(ReproError):
    """A value cannot be represented in the requested fixed-point format."""


class SimulationError(ReproError):
    """The cycle-level simulator reached an inconsistent state."""


class BufferError_(ReproError):
    """An on-chip buffer was used beyond its configured capacity."""


class EvaluationError(ReproError):
    """An experiment harness was asked for an unknown figure/table."""
