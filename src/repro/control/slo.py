"""SLO specifications, priority classes, and admission control.

An :class:`SLOClass` names a deadline, a target attainment percentile,
and a priority for one slice of the traffic; the admission controller
decides — per arriving request, against the instance the scheduling
policy chose — whether to admit, shed, or preempt a lower-priority
queued request.  Shedding is what lets an overloaded fleet degrade
gracefully: instead of queues (and tail latencies) growing without
bound past rho = 1, excess requests are dropped at arrival and the
admitted traffic keeps a bounded p99.

Policies are deliberately small single-decision objects, mirroring
:mod:`repro.serve.policies`, so governor sweeps can cross them cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..serve.fleet import Instance, Request

__all__ = [
    "SLOClass",
    "ClassStats",
    "DEFAULT_SLO_CLASSES",
    "parse_slo_classes",
    "SheddingPolicy",
    "NoShedding",
    "DeadlineShedding",
    "QueueDepthShedding",
    "PriorityShedding",
    "SHEDDING_POLICIES",
    "make_shedder",
]

_EPS = 1e-12


@dataclass(frozen=True)
class SLOClass:
    """One service-level objective attached to a slice of the traffic.

    Attributes:
        name: Class handle (appears in reports and CLI specs).
        deadline_ms: Arrival-to-completion deadline.
        target: Required attainment — the fraction of the class's
            *offered* requests that must meet the deadline (e.g. 0.99
            encodes "p99 under the deadline"; shed requests are misses).
        priority: Priority class; lower values preempt higher ones.
        share: Traffic-sampling weight (normalized across classes).
    """

    name: str
    deadline_ms: float
    target: float = 0.99
    priority: int = 0
    share: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("SLO class needs a non-empty name")
        if self.deadline_ms <= 0:
            raise ConfigError(
                f"deadline_ms must be positive ({self.deadline_ms})"
            )
        if not 0.0 < self.target <= 1.0:
            raise ConfigError(
                f"target must be in (0, 1] ({self.target})"
            )
        if self.share <= 0:
            raise ConfigError(f"share must be positive ({self.share})")

    @property
    def deadline_s(self) -> float:
        return self.deadline_ms * 1e-3


#: Three-tier default: urgent interactive traffic, a standard tier, and
#: deadline-tolerant batch work (deadlines sized for the ~0.5 ms mean
#: service time of the mixed zoo traffic).
DEFAULT_SLO_CLASSES: tuple[SLOClass, ...] = (
    SLOClass("interactive", deadline_ms=5.0, target=0.99, priority=0,
             share=0.3),
    SLOClass("standard", deadline_ms=25.0, target=0.95, priority=1,
             share=0.5),
    SLOClass("batch", deadline_ms=100.0, target=0.90, priority=2,
             share=0.2),
)


def parse_slo_classes(text: str) -> tuple[SLOClass, ...]:
    """Parse a CLI class spec: ``name:deadline_ms:target:priority:share``
    entries separated by commas (later fields optional)."""
    classes = []
    for entry in (e for e in text.split(",") if e.strip()):
        parts = entry.strip().split(":")
        if not 2 <= len(parts) <= 5:
            raise ConfigError(
                f"cannot parse SLO class {entry!r} (expected "
                "name:deadline_ms[:target[:priority[:share]]])"
            )
        try:
            classes.append(
                SLOClass(
                    name=parts[0],
                    deadline_ms=float(parts[1]),
                    target=float(parts[2]) if len(parts) > 2 else 0.99,
                    priority=int(parts[3]) if len(parts) > 3 else 0,
                    share=float(parts[4]) if len(parts) > 4 else 1.0,
                )
            )
        except ValueError:
            raise ConfigError(
                f"cannot parse SLO class {entry!r} (non-numeric field)"
            ) from None
    if not classes:
        raise ConfigError("SLO class spec is empty")
    names = [c.name for c in classes]
    if len(set(names)) != len(names):
        raise ConfigError(f"duplicate SLO class names in {names}")
    return tuple(classes)


@dataclass(frozen=True)
class ClassStats:
    """Per-SLO-class outcome of one controlled simulation.

    ``attainment`` is met / offered — shed requests count as misses, so
    an admission controller cannot game the metric by dropping load.
    """

    name: str
    priority: int
    deadline_ms: float
    target: float
    offered: int
    shed: int
    completed: int
    met: int
    attainment: float
    latency_p99_s: float

    @property
    def satisfied(self) -> bool:
        """Did the class reach its attainment target?"""
        return self.attainment >= self.target


class SheddingPolicy:
    """Base admission controller: admit, shed, or preempt per arrival."""

    name = "base"

    def admit(
        self, request: Request, instance: Instance, now: float
    ) -> tuple[bool, Request | None]:
        """Decide the fate of ``request`` at its chosen instance.

        Returns:
            ``(admitted, victim)``: ``victim`` is a queued request the
            controller preempted to make room (already removed from the
            instance's queue); only the priority policy produces one.
        """
        raise NotImplementedError


class NoShedding(SheddingPolicy):
    """Admit everything (the unbounded-queue baseline)."""

    name = "none"

    def admit(self, request, instance, now):
        return True, None


class DeadlineShedding(SheddingPolicy):
    """Reject requests whose deadline is already infeasible.

    The feasibility estimate is first-order — in-flight remainder plus
    queued work plus the request's own service time, ignoring batching
    effects — so it sheds exactly the requests that would miss anyway
    and converts deadline misses into cheap early rejections.
    """

    name = "deadline"

    def admit(self, request, instance, now):
        feasible = (
            instance.estimated_completion(request, now)
            <= request.deadline + _EPS
        )
        return feasible, None


class QueueDepthShedding(SheddingPolicy):
    """Reject arrivals when the chosen instance's queue is full."""

    name = "queue-depth"

    def __init__(self, threshold: int = 64) -> None:
        if threshold < 1:
            raise ConfigError(
                f"queue threshold must be >= 1 ({threshold})"
            )
        self.threshold = threshold

    def admit(self, request, instance, now):
        return instance.queue_depth() < self.threshold, None


class PriorityShedding(QueueDepthShedding):
    """Queue-depth shedding that drops the lowest-priority work first.

    When the queue is full, the arrival preempts the worst queued
    request — the priority-sorted queue's tail — if that victim is
    strictly lower-priority; otherwise the arrival itself is shed.
    Urgent classes therefore keep admission even in overload, and only
    deadline-tolerant traffic pays.
    """

    name = "priority"

    def admit(self, request, instance, now):
        if instance.queue_depth() < self.threshold:
            return True, None
        victim = instance.queue[-1]
        if victim.priority > request.priority:
            instance.remove(victim)
            return True, victim
        return False, None


#: Shedding-policy name -> factory (threshold-bearing ones accept it).
SHEDDING_POLICIES = {
    NoShedding.name: NoShedding,
    DeadlineShedding.name: DeadlineShedding,
    QueueDepthShedding.name: QueueDepthShedding,
    PriorityShedding.name: PriorityShedding,
}


def make_shedder(name: str, queue_threshold: int = 64) -> SheddingPolicy:
    """Instantiate a shedding policy by name.

    Raises:
        ConfigError: On an unknown name (the message lists valid ones).
    """
    try:
        factory = SHEDDING_POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(SHEDDING_POLICIES))
        raise ConfigError(
            f"unknown shedding policy {name!r} (known: {known})"
        ) from None
    if factory in (QueueDepthShedding, PriorityShedding):
        return factory(queue_threshold)
    return factory()
