"""SLO specifications, priority classes, and admission control.

An :class:`SLOClass` names a deadline, a target attainment percentile,
and a priority for one slice of the traffic; the admission controller
decides — per arriving request, against the instance the scheduling
policy chose — whether to admit, shed, or preempt a lower-priority
queued request.  Shedding is what lets an overloaded fleet degrade
gracefully: instead of queues (and tail latencies) growing without
bound past rho = 1, excess requests are dropped at arrival and the
admitted traffic keeps a bounded p99.

Policies are deliberately small single-decision objects, mirroring
:mod:`repro.serve.policies`, so governor sweeps can cross them cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..parallel.cache import extension_field, restore_extended
from ..serve.fleet import Instance, Request

__all__ = [
    "SLOClass",
    "ClassStats",
    "DEFAULT_SLO_CLASSES",
    "parse_slo_classes",
    "SheddingPolicy",
    "NoShedding",
    "DeadlineShedding",
    "QueueDepthShedding",
    "PriorityShedding",
    "SHEDDING_POLICIES",
    "make_shedder",
]

_EPS = 1e-12


@dataclass(frozen=True)
class SLOClass:
    """One service-level objective attached to a slice of the traffic.

    Attributes:
        name: Class handle (appears in reports and CLI specs).
        deadline_ms: Arrival-to-completion deadline.
        target: Required attainment — the fraction of the class's
            *offered* requests that must meet the deadline (e.g. 0.99
            encodes "p99 under the deadline"; shed requests are misses).
        priority: Priority class; lower values preempt higher ones.
        share: Traffic-sampling weight (normalized across classes).
        model: Optional zoo-model (tenant) binding.  A bound class
            applies only to that model's requests — deadlines,
            priorities, and shares follow the *model* a request
            carries, the multi-tenant contract — while unbound classes
            form the default pool for every model without a binding of
            its own.  Extension field: unbound specs keep their
            pre-existing cache content keys.
    """

    name: str
    deadline_ms: float
    target: float = 0.99
    priority: int = 0
    share: float = 1.0
    model: str | None = extension_field(None)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("SLO class needs a non-empty name")
        if self.deadline_ms <= 0:
            raise ConfigError(
                f"deadline_ms must be positive ({self.deadline_ms})"
            )
        if not 0.0 < self.target <= 1.0:
            raise ConfigError(
                f"target must be in (0, 1] ({self.target})"
            )
        if self.share <= 0:
            raise ConfigError(f"share must be positive ({self.share})")
        if self.model is not None and not self.model:
            raise ConfigError(
                "SLO class model binding must be a non-empty name "
                "(omit it for an unbound class)"
            )

    @property
    def deadline_s(self) -> float:
        return self.deadline_ms * 1e-3


#: Three-tier default: urgent interactive traffic, a standard tier, and
#: deadline-tolerant batch work (deadlines sized for the ~0.5 ms mean
#: service time of the mixed zoo traffic).
DEFAULT_SLO_CLASSES: tuple[SLOClass, ...] = (
    SLOClass("interactive", deadline_ms=5.0, target=0.99, priority=0,
             share=0.3),
    SLOClass("standard", deadline_ms=25.0, target=0.95, priority=1,
             share=0.5),
    SLOClass("batch", deadline_ms=100.0, target=0.90, priority=2,
             share=0.2),
)


#: key=value field names accepted by :func:`parse_slo_classes`
#: (canonical name -> SLOClass field).
_SPEC_KEYS = {
    "deadline": "deadline_ms",
    "deadline_ms": "deadline_ms",
    "target": "target",
    "priority": "priority",
    "prio": "priority",
    "share": "share",
    "model": "model",
}

#: Positional field order after the class name (the legacy spec form).
_SPEC_POSITIONAL = ("deadline_ms", "target", "priority", "share")


def _parse_spec_entry(entry: str) -> SLOClass:
    """One class entry: a name followed by ``:``-separated fields,
    each positional (legacy order) or ``key=value``."""
    parts = entry.strip().split(":")
    name, fields = parts[0], parts[1:]
    if not fields:
        raise ConfigError(
            f"cannot parse SLO class {entry!r} (expected "
            "name:deadline_ms[:target[:priority[:share]]] or "
            "name:key=value fields incl. deadline=, model=)"
        )
    kwargs: dict = {}
    position = 0
    for field in fields:
        if "=" in field:
            key, _, value = field.partition("=")
            target_field = _SPEC_KEYS.get(key.strip())
            if target_field is None:
                known = ", ".join(sorted(_SPEC_KEYS))
                raise ConfigError(
                    f"unknown SLO class field {key!r} in {entry!r} "
                    f"(known: {known})"
                )
            position = len(_SPEC_POSITIONAL)  # key=value ends positional
        else:
            if position >= len(_SPEC_POSITIONAL):
                raise ConfigError(
                    f"cannot parse SLO class {entry!r} (positional "
                    "fields must precede key=value fields and number "
                    f"at most {len(_SPEC_POSITIONAL)})"
                )
            target_field, value = _SPEC_POSITIONAL[position], field
            position += 1
        if target_field in kwargs:
            raise ConfigError(
                f"duplicate field {target_field!r} in SLO class "
                f"{entry!r}"
            )
        value = value.strip()
        try:
            if target_field == "model":
                kwargs["model"] = value
            elif target_field == "deadline_ms":
                if value.endswith("ms"):
                    value = value[:-2]
                kwargs["deadline_ms"] = float(value)
            elif target_field == "priority":
                kwargs["priority"] = int(value)
            else:
                kwargs[target_field] = float(value)
        except ValueError:
            raise ConfigError(
                f"cannot parse SLO class {entry!r} (non-numeric "
                f"{target_field})"
            ) from None
    if "deadline_ms" not in kwargs:
        raise ConfigError(
            f"SLO class {entry!r} needs a deadline "
            "(deadline_ms positionally or deadline=)"
        )
    return SLOClass(name=name, **kwargs)


def parse_slo_classes(text: str) -> tuple[SLOClass, ...]:
    """Parse a CLI class spec.

    Entries are separated by commas; each entry is a class name
    followed by ``:``-separated fields — positionally
    ``name:deadline_ms[:target[:priority[:share]]]`` (the legacy
    form), or ``key=value`` fields (``deadline``/``deadline_ms`` —
    an ``ms`` suffix is accepted — ``target``, ``priority``/``prio``,
    ``share``, and ``model``, which binds the class to one zoo model's
    traffic)::

        interactive:5,batch:100:0.9:2
        llm:deadline=5ms:model=mobilenet-v1-224,default:deadline=50
    """
    classes = []
    for entry in (e for e in text.split(",") if e.strip()):
        classes.append(_parse_spec_entry(entry))
    if not classes:
        raise ConfigError("SLO class spec is empty")
    names = [c.name for c in classes]
    if len(set(names)) != len(names):
        raise ConfigError(f"duplicate SLO class names in {names}")
    return tuple(classes)


@dataclass(frozen=True)
class ClassStats:
    """Per-SLO-class outcome of one controlled simulation.

    ``attainment`` is met / offered — shed requests count as misses, so
    an admission controller cannot game the metric by dropping load.

    ``model`` carries the class's tenant binding, and per-*model*
    aggregate rows (``ServingReport.model_stats``) reuse this shape
    with ``name == model``; there ``deadline_ms``/``target`` are
    offered-weighted means over the classes the model's traffic drew
    and ``priority`` is the most urgent one seen.
    """

    name: str
    priority: int
    deadline_ms: float
    target: float
    offered: int
    shed: int
    completed: int
    met: int
    attainment: float
    latency_p99_s: float
    model: str | None = None

    def __setstate__(self, state: dict) -> None:
        # Stats unpickled from caches written before ``model`` existed
        # backfill its default (see restore_extended).
        restore_extended(self, state)

    @property
    def satisfied(self) -> bool:
        """Did the class reach its attainment target?"""
        return self.attainment >= self.target


class SheddingPolicy:
    """Base admission controller: admit, shed, or preempt per arrival."""

    name = "base"

    def admit(
        self, request: Request, instance: Instance, now: float
    ) -> tuple[bool, Request | None]:
        """Decide the fate of ``request`` at its chosen instance.

        Returns:
            ``(admitted, victim)``: ``victim`` is a queued request the
            controller preempted to make room (already removed from the
            instance's queue); only the priority policy produces one.
        """
        raise NotImplementedError

    def state_dict(self) -> dict:
        """Picklable mid-run state for checkpointing.  Every shipped
        shedder is stateless (thresholds are configuration, rebuilt
        from the scenario), so the base implementation suffices."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""


class NoShedding(SheddingPolicy):
    """Admit everything (the unbounded-queue baseline)."""

    name = "none"

    def admit(self, request, instance, now):
        return True, None


class DeadlineShedding(SheddingPolicy):
    """Reject requests whose deadline is already infeasible.

    The feasibility estimate is first-order — in-flight remainder plus
    queued work plus the request's own service time, ignoring batching
    effects — so it sheds exactly the requests that would miss anyway
    and converts deadline misses into cheap early rejections.
    """

    name = "deadline"

    def admit(self, request, instance, now):
        feasible = (
            instance.estimated_completion(request, now)
            <= request.deadline + _EPS
        )
        return feasible, None


class QueueDepthShedding(SheddingPolicy):
    """Reject arrivals when the chosen instance's queue is full."""

    name = "queue-depth"

    def __init__(self, threshold: int = 64) -> None:
        if threshold < 1:
            raise ConfigError(
                f"queue threshold must be >= 1 ({threshold})"
            )
        self.threshold = threshold

    def admit(self, request, instance, now):
        return instance.queue_depth() < self.threshold, None


class PriorityShedding(QueueDepthShedding):
    """Queue-depth shedding that drops the lowest-priority work first.

    When the queue is full, the arrival preempts the worst queued
    request — the priority-sorted queue's tail — if that victim is
    strictly lower-priority; otherwise the arrival itself is shed.
    Urgent classes therefore keep admission even in overload, and only
    deadline-tolerant traffic pays.
    """

    name = "priority"

    def admit(self, request, instance, now):
        if instance.queue_depth() < self.threshold:
            return True, None
        victim = instance.queue[-1]
        if victim.priority > request.priority:
            instance.remove(victim)
            return True, victim
        return False, None


#: Shedding-policy name -> factory (threshold-bearing ones accept it).
SHEDDING_POLICIES = {
    NoShedding.name: NoShedding,
    DeadlineShedding.name: DeadlineShedding,
    QueueDepthShedding.name: QueueDepthShedding,
    PriorityShedding.name: PriorityShedding,
}


def make_shedder(name: str, queue_threshold: int = 64) -> SheddingPolicy:
    """Instantiate a shedding policy by name.

    Raises:
        ConfigError: On an unknown name (the message lists valid ones).
    """
    try:
        factory = SHEDDING_POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(SHEDDING_POLICIES))
        raise ConfigError(
            f"unknown shedding policy {name!r} (known: {known})"
        ) from None
    if factory in (QueueDepthShedding, PriorityShedding):
        return factory(queue_threshold)
    return factory()
