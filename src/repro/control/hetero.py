"""DVFS-heterogeneous fleets: per-instance architecture + operating point.

Each serving instance can run its own ``(ArchConfig, OperatingPoint)``
pair: a different architecture changes a model's cycle count (so the
instance carries its own service profiles), and a different operating
point stretches the clock period and moves the power draw.  Latency
scales as 1/f via :func:`repro.power.dvfs.frequency_scaled_latency`'s
relation; power scales with the DVFS model's dynamic (``V^2 f``) and
leakage (``V^3``) factors, anchored at a nominal busy power derived
from the paper's calibrated layer-power endpoints.

Energy is integrated per instance: busy energy accrues batch by batch
at the operating point in force at launch; idle (leakage) energy is the
powered-but-idle time at the instance's idle power.  That makes a
serving report an energy-vs-SLO data point, which is what the governor
sweeps in :mod:`repro.control.sweep` trade off.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.params import ArchConfig
from ..errors import ConfigError
from ..power.dvfs import (
    NOMINAL_FREQUENCY_HZ,
    NOMINAL_VOLTAGE_V,
    DVFSModel,
    OperatingPoint,
)
from ..serve.fleet import Instance
from ..serve.profile import ScenarioMix

__all__ = [
    "NOMINAL_BUSY_POWER_W",
    "InstanceSpec",
    "parse_fleet_spec",
    "busy_power_w",
    "idle_power_w",
    "apply_operating_point",
    "configure_instance",
]

#: Busy power of one instance at the published 0.8 V / 1 GHz point: the
#: mean of the paper's two calibrated layer-power endpoints (117.7 mW
#: and 67.7 mW) — a representative mid-network draw, used for *relative*
#: energy comparisons across operating points and fleet sizes.
NOMINAL_BUSY_POWER_W = 0.5 * (0.1177 + 0.0677)


@dataclass(frozen=True)
class InstanceSpec:
    """One instance's architecture and DVFS operating point.

    Attributes:
        voltage_v: Supply voltage (sets f_max and the power factors).
        frequency_hz: Clock; None runs at the voltage's f_max.
        config: Per-instance architecture; None inherits the scenario's
            (heterogeneous configs give the instance its own service
            profiles, since cycle counts depend on the architecture).
    """

    voltage_v: float = NOMINAL_VOLTAGE_V
    frequency_hz: float | None = None
    config: ArchConfig | None = None

    def operating_point(self, model: DVFSModel) -> OperatingPoint:
        return model.operating_point(self.voltage_v, self.frequency_hz)


def parse_fleet_spec(text: str) -> tuple[InstanceSpec, ...]:
    """Parse a CLI fleet spec: comma-separated ``voltage[xCOUNT]``
    entries, e.g. ``"0.8x2,0.6x2"`` = two nominal + two slow instances."""
    specs: list[InstanceSpec] = []
    for entry in (e for e in text.split(",") if e.strip()):
        part = entry.strip()
        count = 1
        if "x" in part:
            part, _, count_text = part.partition("x")
            try:
                count = int(count_text)
            except ValueError:
                raise ConfigError(
                    f"cannot parse fleet entry {entry!r} "
                    "(expected VOLTAGE[xCOUNT])"
                ) from None
        try:
            voltage = float(part)
        except ValueError:
            raise ConfigError(
                f"cannot parse fleet entry {entry!r} "
                "(expected VOLTAGE[xCOUNT])"
            ) from None
        if count < 1:
            raise ConfigError(
                f"fleet entry {entry!r} needs a positive count"
            )
        specs.extend(InstanceSpec(voltage_v=voltage) for _ in range(count))
    if not specs:
        raise ConfigError("fleet spec is empty")
    return tuple(specs)


def busy_power_w(
    point: OperatingPoint,
    model: DVFSModel,
    base_w: float = NOMINAL_BUSY_POWER_W,
) -> float:
    """Instance power while serving at ``point`` (dynamic + leakage)."""
    lf = model.leakage_fraction
    return base_w * (
        (1.0 - lf) * point.dynamic_power_factor
        + lf * point.leakage_power_factor
    )


def idle_power_w(
    point: OperatingPoint,
    model: DVFSModel,
    base_w: float = NOMINAL_BUSY_POWER_W,
) -> float:
    """Powered-but-idle draw: the clock-gated instance only leaks."""
    return base_w * model.leakage_fraction * point.leakage_power_factor


def apply_operating_point(
    instance: Instance,
    point: OperatingPoint,
    model: DVFSModel,
    profile_clock_hz: float,
) -> None:
    """Re-point one instance's DVFS state (latency scale + power).

    ``profile_clock_hz`` is the clock the service profiles were built
    at, so the scale is exact even for non-nominal architectures.
    """
    scale = point.latency_scale  # vs the nominal 1 GHz clock
    if profile_clock_hz != NOMINAL_FREQUENCY_HZ:
        scale *= profile_clock_hz / NOMINAL_FREQUENCY_HZ
    instance.latency_scale = scale
    instance.busy_power_w = busy_power_w(point, model)
    instance.idle_power_w = idle_power_w(point, model)


def configure_instance(
    instance: Instance,
    spec: InstanceSpec,
    model: DVFSModel,
    mix: ScenarioMix,
    own_mix: ScenarioMix | None = None,
) -> OperatingPoint:
    """Wire one fleet instance to its spec.

    Args:
        instance: The mutable simulation instance.
        spec: Architecture + operating point.
        model: DVFS relations (shared across the fleet).
        mix: The scenario's baseline mix (profiles at the scenario
            architecture).
        own_mix: The mix rebuilt under ``spec.config``, when it differs —
            becomes the instance's private profile table.

    Returns:
        The evaluated operating point (for reporting).
    """
    point = spec.operating_point(model)
    profiles = mix.profiles
    if own_mix is not None:
        instance.profiles = {p.name: p for p in own_mix.profiles}
        profiles = own_mix.profiles
    clock_hz = profiles[0].clock_hz
    apply_operating_point(instance, point, model, clock_hz)
    return point
