"""Predictive autoscaling: act on a traffic forecast, not the backlog.

The reactive governors in :mod:`repro.control.autoscale` observe the
*consequences* of a load swing — utilization over the high-water mark,
queueing delay past the setpoint — and only then scale, so every
morning ramp of a diurnal cycle pays the scale-up warm-up out of tail
latency.  The predictive governor instead observes the *offered rate*
(arrivals counted per tick by the control hooks), smooths it with a
Holt double-exponential filter (an EWMA level plus an EWMA linear
trend), extrapolates one warm-up lead ahead, and sizes the fleet for
the rate that will hold *when the instance it powers up now becomes
useful* — capacity arrives with the traffic instead of behind it.

On the same correlated diurnal traffic this matches the reactive
utilization governor's SLO attainment at lower ramp-window p99 and no
more energy (asserted fixed-seed in
``tests/control/test_control_predict.py``): the forecast both powers
up earlier on the ramp and powers down promptly past the peak, where
band control keeps instances alive until utilization sags below the
low-water mark.
"""

from __future__ import annotations

from math import ceil

from ..errors import ConfigError
from .autoscale import Governor

__all__ = ["HoltForecaster", "PredictiveGovernor"]


class HoltForecaster:
    """Holt's linear method over a scalar rate series.

    Level and trend are exponentially weighted: after observing
    ``x_t``::

        level_t = alpha * x_t + (1 - alpha) * (level_{t-1} + trend_{t-1})
        trend_t = beta * (level_t - level_{t-1}) + (1 - beta) * trend_{t-1}

    and the ``h``-step-ahead forecast is ``level + h * trend``.  With
    ``beta = 0`` the trend stays 0 and the filter degrades to a plain
    EWMA.  The first observation initializes the level (trend 0), so
    the forecaster is usable from the second tick.
    """

    __slots__ = ("alpha", "beta", "level", "trend")

    def __init__(self, alpha: float = 0.5, beta: float = 0.2) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigError(f"alpha must be in (0, 1] ({alpha})")
        if not 0.0 <= beta <= 1.0:
            raise ConfigError(f"beta must be in [0, 1] ({beta})")
        self.alpha = alpha
        self.beta = beta
        self.level: float | None = None
        self.trend = 0.0

    def observe(self, value: float) -> None:
        """Fold one observation into the level/trend state."""
        if self.level is None:
            self.level = float(value)
            return
        previous = self.level
        self.level = (
            self.alpha * value
            + (1.0 - self.alpha) * (previous + self.trend)
        )
        self.trend = (
            self.beta * (self.level - previous)
            + (1.0 - self.beta) * self.trend
        )

    def forecast(self, horizon_steps: float) -> float:
        """The extrapolated value ``horizon_steps`` observations ahead
        (clamped at 0 — a rate forecast cannot go negative)."""
        if self.level is None:
            return 0.0
        return max(0.0, self.level + horizon_steps * self.trend)

    def state_dict(self) -> dict:
        """Picklable filter state (the smoothing constants are
        configuration, rebuilt with the governor)."""
        return {"level": self.level, "trend": self.trend}

    def load_state_dict(self, state: dict) -> None:
        self.level = state["level"]
        self.trend = state["trend"]


class PredictiveGovernor(Governor):
    """Size the fleet for the *forecast* offered rate, one warm-up ahead.

    Per tick: the arrivals counted by the control hooks since the last
    tick become a rate observation; the Holt forecast at ``now +
    warmup_s`` (the lead time — exactly how long a powered-up instance
    takes to become useful) is converted to a desired instance count
    ``ceil(rate * mean_service_s / target_util)`` and the fleet steps
    one instance toward it.  ``target_util`` is the utilization the
    sized fleet should settle at; the reactive band's midpoint is the
    natural choice, making the two governors directly comparable.
    """

    name = "predictive"

    def __init__(
        self,
        tick_s: float,
        min_instances: int,
        max_instances: int,
        warmup_s: float,
        mean_service_s: float,
        target_util: float = 0.575,
        alpha: float = 0.5,
        beta: float = 0.2,
    ) -> None:
        super().__init__(tick_s, min_instances, max_instances, warmup_s)
        if mean_service_s <= 0:
            raise ConfigError(
                f"mean_service_s must be positive ({mean_service_s})"
            )
        if not 0.0 < target_util <= 1.0:
            raise ConfigError(
                f"target_util must be in (0, 1] ({target_util})"
            )
        self.mean_service_s = mean_service_s
        self.target_util = target_util
        self.forecaster = HoltForecaster(alpha=alpha, beta=beta)
        self._arrivals = 0

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["forecaster"] = self.forecaster.state_dict()
        state["arrivals"] = self._arrivals
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.forecaster.load_state_dict(state["forecaster"])
        self._arrivals = state["arrivals"]

    def observe_arrival(self, now: float) -> None:
        """Count one offered request (called by the arrival hook for
        every request, admitted or shed — the forecaster tracks the
        offered rate, not the post-shedding one)."""
        self._arrivals += 1

    def tick(self, fleet, now: float) -> int:
        self._window_utilization(fleet)  # keep snapshots current
        rate = self._arrivals / self.tick_s
        self._arrivals = 0
        self.forecaster.observe(rate)
        # Lead the forecast by the warm-up: the instance powered up on
        # this tick serves its first batch warmup_s from now.
        horizon = self.warmup_s / self.tick_s
        predicted = self.forecaster.forecast(horizon)
        desired = ceil(
            predicted * self.mean_service_s / self.target_util
        )
        desired = min(
            self.max_instances, max(self.min_instances, desired)
        )
        active = len(fleet.active_indices())
        if desired > active:
            return int(self._scale_up(fleet, now))
        if desired < active:
            return int(self._scale_down(fleet, now))
        return 0
