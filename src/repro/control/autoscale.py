"""Autoscaling governors: the control loop over the serving fleet.

A governor is evaluated at a fixed tick inside the event loop and takes
at most one action per tick — powering an instance up or down, or
re-pointing the fleet's DVFS level — so the control dynamics stay
observable and deterministic.  Scale-up pays a warm-up modeled as a
weight reload (the instance is busy, and burning busy power, for the
mix's mean model-switch time before it serves its first batch);
scale-down drains: the instance stops receiving traffic but finishes
its queue before its powered interval closes.

Three governors ship:

* **utilization** — classic band control on the fleet's busy fraction
  over the last tick window: above the high-water mark, add an
  instance; below the low-water mark, retire one.
* **queue-delay** — a queueing-model signal: the mean pending work per
  active instance *is* the expected queueing delay of the next arrival,
  so the governor compares it to a target delay directly.  Reacts to
  backlog before utilization saturates.
* **dvfs** — the same band signal, but instead of changing the fleet
  size it walks every active instance up and down a voltage ladder:
  overload buys frequency with V^2 energy cost, slack gives it back.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..power.dvfs import DVFSModel, OperatingPoint
from ..serve.fleet import Fleet
from .hetero import apply_operating_point

__all__ = [
    "Governor",
    "UtilizationBandGovernor",
    "QueueDelayGovernor",
    "DVFSGovernor",
    "GOVERNORS",
    "make_governor",
]


class Governor:
    """Base control loop: observe the fleet, take at most one action."""

    name = "base"

    def __init__(
        self,
        tick_s: float,
        min_instances: int,
        max_instances: int,
        warmup_s: float,
    ) -> None:
        if tick_s <= 0:
            raise ConfigError(f"tick_s must be positive ({tick_s})")
        if min_instances < 1:
            raise ConfigError(
                f"min_instances must be >= 1 ({min_instances})"
            )
        if max_instances < min_instances:
            raise ConfigError(
                f"max_instances ({max_instances}) must be >= "
                f"min_instances ({min_instances})"
            )
        if warmup_s < 0:
            raise ConfigError(f"warmup_s must be >= 0 ({warmup_s})")
        self.tick_s = tick_s
        self.min_instances = min_instances
        self.max_instances = max_instances
        self.warmup_s = warmup_s
        self._busy_snapshot: list[float] = []

    def reset(self, fleet: Fleet) -> None:
        """Snapshot per-instance busy time before the first tick."""
        self._busy_snapshot = [i.busy_seconds for i in fleet]

    def state_dict(self) -> dict:
        """Picklable mid-run state for checkpointing: the busy-time
        snapshot behind :meth:`_window_utilization`.  Subclasses with
        more state extend the dict (and :meth:`load_state_dict`)."""
        return {"busy_snapshot": list(self._busy_snapshot)}

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`.  Call after
        :meth:`reset` when rebuilding a run: restore overlays the
        mid-run values reset initialized."""
        self._busy_snapshot = list(state["busy_snapshot"])

    def _window_utilization(self, fleet: Fleet) -> float:
        """Mean busy fraction of the active instances over the last
        tick (clamped to 1: busy time accrues at launch, so a window
        can momentarily over-count service scheduled into the future)."""
        active = fleet.active_indices()
        if not active:
            return 0.0
        total = 0.0
        for index in active:
            delta = fleet[index].busy_seconds - self._busy_snapshot[index]
            total += min(1.0, max(0.0, delta / self.tick_s))
        for instance in fleet:
            self._busy_snapshot[instance.index] = instance.busy_seconds
        return total / len(active)

    def _scale_up(self, fleet: Fleet, now: float) -> bool:
        active = fleet.active_indices()
        if len(active) >= self.max_instances:
            return False
        for instance in fleet:
            if not instance.active:
                instance.power_up(now, self.warmup_s)
                return True
        return False

    def _scale_down(self, fleet: Fleet, now: float) -> bool:
        active = fleet.active_indices()
        if len(active) <= self.min_instances:
            return False
        # Retire the emptiest instance; an idle one closes its powered
        # interval immediately, a busy one drains first.
        victim = min(
            (fleet[i] for i in active),
            key=lambda inst: (inst.pending_seconds(now), -inst.index),
        )
        victim.active = False
        if victim.is_idle(now) and not victim.queue:
            victim.close_power_interval(now)
        return True

    def tick(self, fleet: Fleet, now: float) -> int:
        """Observe and act; returns the number of actions taken."""
        raise NotImplementedError


class UtilizationBandGovernor(Governor):
    """Keep window utilization inside ``[low, high]`` by resizing."""

    name = "utilization"

    def __init__(
        self,
        tick_s: float,
        min_instances: int,
        max_instances: int,
        warmup_s: float,
        low: float = 0.3,
        high: float = 0.85,
    ) -> None:
        super().__init__(tick_s, min_instances, max_instances, warmup_s)
        if not 0.0 <= low < high <= 1.0:
            raise ConfigError(
                f"need 0 <= low < high <= 1 (got {low}, {high})"
            )
        self.low = low
        self.high = high

    def tick(self, fleet: Fleet, now: float) -> int:
        utilization = self._window_utilization(fleet)
        if utilization > self.high:
            return int(self._scale_up(fleet, now))
        if utilization < self.low:
            return int(self._scale_down(fleet, now))
        return 0


class QueueDelayGovernor(Governor):
    """Hold the expected queueing delay near a target."""

    name = "queue-delay"

    def __init__(
        self,
        tick_s: float,
        min_instances: int,
        max_instances: int,
        warmup_s: float,
        target_delay_s: float = 5e-3,
    ) -> None:
        super().__init__(tick_s, min_instances, max_instances, warmup_s)
        if target_delay_s <= 0:
            raise ConfigError(
                f"target_delay_s must be positive ({target_delay_s})"
            )
        self.target_delay_s = target_delay_s

    def tick(self, fleet: Fleet, now: float) -> int:
        self._window_utilization(fleet)  # keep snapshots current
        active = fleet.active_indices()
        if not active:
            return 0
        delay = sum(
            fleet[i].pending_seconds(now) for i in active
        ) / len(active)
        if delay > self.target_delay_s:
            return int(self._scale_up(fleet, now))
        if delay < 0.25 * self.target_delay_s:
            return int(self._scale_down(fleet, now))
        return 0


class DVFSGovernor(Governor):
    """Band control that re-points frequency instead of fleet size.

    The ladder is a tuple of operating points ascending in frequency;
    the whole active fleet shares one ladder level so batches launched
    in the same regime see the same clock.
    """

    name = "dvfs"

    def __init__(
        self,
        tick_s: float,
        min_instances: int,
        max_instances: int,
        warmup_s: float,
        ladder: tuple[OperatingPoint, ...],
        dvfs_model: DVFSModel,
        profile_clock_hz: float,
        low: float = 0.3,
        high: float = 0.85,
    ) -> None:
        super().__init__(tick_s, min_instances, max_instances, warmup_s)
        if len(ladder) < 2:
            raise ConfigError(
                "DVFS governor needs a ladder of >= 2 operating points"
            )
        if not 0.0 <= low < high <= 1.0:
            raise ConfigError(
                f"need 0 <= low < high <= 1 (got {low}, {high})"
            )
        self.ladder = tuple(
            sorted(ladder, key=lambda p: p.frequency_hz)
        )
        self.dvfs_model = dvfs_model
        self.profile_clock_hz = profile_clock_hz
        self.low = low
        self.high = high
        self.level = len(self.ladder) - 1  # start at full speed

    def _repoint(self, fleet: Fleet, level: int) -> None:
        self.level = level
        point = self.ladder[level]
        for index in fleet.active_indices():
            apply_operating_point(
                fleet[index], point, self.dvfs_model,
                self.profile_clock_hz,
            )

    def reset(self, fleet: Fleet) -> None:
        super().reset(fleet)
        self._repoint(fleet, self.level)

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["level"] = self.level
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        # Only the ladder position: the per-instance operating points
        # it implies are restored with the instances themselves.
        self.level = state["level"]

    def tick(self, fleet: Fleet, now: float) -> int:
        utilization = self._window_utilization(fleet)
        if utilization > self.high and self.level < len(self.ladder) - 1:
            self._repoint(fleet, self.level + 1)
            return 1
        if utilization < self.low and self.level > 0:
            self._repoint(fleet, self.level - 1)
            return 1
        return 0


def make_governor(
    name: str,
    tick_s: float,
    min_instances: int,
    max_instances: int,
    warmup_s: float,
    util_low: float = 0.3,
    util_high: float = 0.85,
    target_delay_s: float = 5e-3,
    ladder: tuple[OperatingPoint, ...] = (),
    dvfs_model: DVFSModel | None = None,
    profile_clock_hz: float = 1.0e9,
    mean_service_s: float = 1e-3,
    forecast_alpha: float = 0.5,
    forecast_beta: float = 0.2,
) -> Governor:
    """Instantiate a governor by name (see :data:`GOVERNORS`)."""
    common = (tick_s, min_instances, max_instances, warmup_s)
    if name == UtilizationBandGovernor.name:
        return UtilizationBandGovernor(
            *common, low=util_low, high=util_high
        )
    if name == QueueDelayGovernor.name:
        return QueueDelayGovernor(*common, target_delay_s=target_delay_s)
    if name == DVFSGovernor.name:
        if dvfs_model is None:
            raise ConfigError("DVFS governor needs a DVFS model")
        return DVFSGovernor(
            *common, ladder=ladder, dvfs_model=dvfs_model,
            profile_clock_hz=profile_clock_hz,
            low=util_low, high=util_high,
        )
    if name == PredictiveGovernor.name:
        # Sized for the reactive band's midpoint, so the predictive and
        # utilization governors target the same steady-state fleet and
        # differ only in *when* they move.
        return PredictiveGovernor(
            *common,
            mean_service_s=mean_service_s,
            target_util=0.5 * (util_low + util_high),
            alpha=forecast_alpha,
            beta=forecast_beta,
        )
    known = ", ".join(sorted(GOVERNORS))
    raise ConfigError(
        f"unknown autoscale governor {name!r} (known: {known})"
    )


# Imported after Governor exists: predict subclasses it, and every
# import path routes through the package __init__, which executes this
# module (and therefore the registration below) exactly once.
from .predict import PredictiveGovernor  # noqa: E402

#: Governor name -> class, for the CLI and sweeps ("none" = no loop).
GOVERNORS = {
    UtilizationBandGovernor.name: UtilizationBandGovernor,
    QueueDelayGovernor.name: QueueDelayGovernor,
    DVFSGovernor.name: DVFSGovernor,
    PredictiveGovernor.name: PredictiveGovernor,
}
