"""SLO-aware controlled serving simulation.

:func:`simulate_controlled` drives the same discrete-event kernel as
:func:`repro.serve.simulate` (:class:`repro.serve.engine.Engine`) with
the control plane plugged into its hooks:

* every request carries an :class:`~repro.control.slo.SLOClass`
  (deadline, priority), drawn from the scenario's class shares;
* ``on_arrival`` runs the admission controller — shed or preempt at
  arrival, so overload degrades gracefully instead of queueing
  unboundedly;
* instance queues are priority-ordered, so urgent classes batch first;
* each instance runs its own ``(ArchConfig, OperatingPoint)`` — service
  times stretch with 1/f and busy/idle power follow the DVFS factors —
  and integrates energy over the run;
* ``on_tick`` evaluates an optional autoscaling governor at a fixed
  interval, powering instances up/down (warm-up = weight reload) or
  walking a DVFS ladder, and ``on_complete`` closes the power interval
  of an instance that drained after being retired.

Everything remains deterministic for a given :class:`ControlScenario`
(a frozen dataclass of primitives), so controlled scenarios are
cacheable content keys exactly like plain serving scenarios.

Idle (leakage) energy is integrated at each instance's final operating
point; DVFS governors re-point all active instances together, so the
approximation only matters for the tick in which a transition lands.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arch.params import EDEA_CONFIG, ArchConfig
from ..errors import ConfigError
from ..parallel.cache import extension_field
from ..power.dvfs import DVFSModel
from ..serve.arrival import make_arrivals
from ..serve.engine import (
    Engine,
    EngineHooks,
    EngineRun,
    build_requests,
    realized_offered_qps,
    summarize_requests,
)
from ..serve.fleet import Fleet
from ..serve.policies import make_policy
from ..serve.profile import DEFAULT_WEIGHT_BANDWIDTH, build_mix
from ..serve.sketch import StreamingLatencyStats
from ..serve.simulator import ServingReport
from .autoscale import GOVERNORS, make_governor
from .hetero import InstanceSpec, configure_instance
from .slo import (
    DEFAULT_SLO_CLASSES,
    ClassStats,
    DeadlineShedding,
    NoShedding,
    QueueDepthShedding,
    SLOClass,
    make_shedder,
)

__all__ = [
    "ControlScenario",
    "ControlHooks",
    "ControlExecution",
    "build_control_fleet",
    "prepare_controlled",
    "finalize_controlled",
    "execute_controlled",
    "simulate_controlled",
    "simulate_controlled_detailed",
]

_INF = float("inf")

#: Same feasibility epsilon as the shedders in :mod:`repro.control.slo`
#: — the batched admission hook must reproduce their floats bit-for-bit.
_EPS = 1e-12

#: Default offered load (fraction of full-fleet capacity), as in serve.
_DEFAULT_LOAD = 0.7

#: Sizing governors start from the minimum fleet; pure-DVFS keeps all
#: instances powered and only moves their frequency.
_SIZING_GOVERNORS = ("utilization", "queue-delay", "predictive")


@dataclass(frozen=True)
class ControlScenario:
    """Complete, hashable description of one controlled simulation.

    The data-plane fields mirror :class:`repro.serve.ServingScenario`;
    the control-plane fields add SLO classes, shedding, the fleet's
    per-instance specs, and the autoscaling governor.

    Attributes:
        slo_classes: Priority/deadline classes; requests draw a class
            by ``share`` weight.
        shedding: Admission policy name (``none``, ``deadline``,
            ``queue-depth``, ``priority``).
        queue_threshold: Queue-depth bound for the threshold shedders.
        fleet: Per-instance ``(ArchConfig, OperatingPoint)`` specs;
            None = ``instances`` copies of the nominal spec.
        autoscale: Governor name (``none``, ``utilization``,
            ``queue-delay``, ``dvfs``).
        tick_ms: Governor evaluation interval.
        min_instances / max_instances: Sizing bounds (max defaults to
            the fleet size).
        util_low / util_high: Band thresholds for the utilization and
            DVFS governors.
        target_delay_ms: Setpoint for the queue-delay governor.
        dvfs_ladder: Voltage ladder for the DVFS governor (each run at
            its f_max), nominal-first or any order.
        forecast_alpha / forecast_beta: Holt level/trend smoothing for
            the ``predictive`` governor.
    """

    mix: str = "mixed"
    arrival: str = "poisson"
    qps: float | None = None
    burst_factor: float = 4.0
    trace: tuple[float, ...] | None = None
    requests: int = 10_000
    instances: int = 4
    policy: str = "least-loaded"
    max_batch: int = 8
    max_wait_ms: float = 2.0
    seed: int = 0
    config: ArchConfig = EDEA_CONFIG
    weight_bandwidth: float = DEFAULT_WEIGHT_BANDWIDTH
    slo_classes: tuple[SLOClass, ...] = DEFAULT_SLO_CLASSES
    shedding: str = "none"
    queue_threshold: int = 64
    fleet: tuple[InstanceSpec, ...] | None = None
    autoscale: str = "none"
    tick_ms: float = 10.0
    min_instances: int = 1
    max_instances: int | None = None
    util_low: float = 0.3
    util_high: float = 0.85
    target_delay_ms: float = 5.0
    dvfs_ladder: tuple[float, ...] = (0.6, 0.7, 0.8)
    diurnal_period_s: float = extension_field(60.0)
    diurnal_amplitude: float = extension_field(0.8)
    forecast_alpha: float = extension_field(0.5)
    forecast_beta: float = extension_field(0.2)
    stats: str = extension_field("exact")

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ConfigError(f"requests must be >= 1 ({self.requests})")
        if self.fleet is not None and not self.fleet:
            raise ConfigError("fleet spec must not be empty")
        if self.fleet is None and self.instances < 1:
            raise ConfigError(
                f"instances must be >= 1 ({self.instances})"
            )
        if not self.slo_classes:
            raise ConfigError("need at least one SLO class")
        if self.max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1 ({self.max_batch})")
        if self.max_wait_ms < 0:
            raise ConfigError(
                f"max_wait_ms must be >= 0 ({self.max_wait_ms})"
            )
        if self.qps is not None and self.qps <= 0:
            raise ConfigError(f"qps must be positive ({self.qps})")
        if self.tick_ms <= 0:
            raise ConfigError(f"tick_ms must be positive ({self.tick_ms})")
        if self.stats not in ("exact", "sketch"):
            raise ConfigError(
                f"unknown stats mode {self.stats!r} "
                "(known: exact, sketch)"
            )
        # The diurnal knobs are validated by DiurnalArrivals when the
        # arrival process is built, like burst_factor by BurstyArrivals.
        if self.autoscale not in ("none", *GOVERNORS):
            known = ", ".join(["none", *sorted(GOVERNORS)])
            raise ConfigError(
                f"unknown autoscale governor {self.autoscale!r} "
                f"(known: {known})"
            )
        if self.autoscale == "dvfs" and self.fleet is not None:
            # The governor drives one shared voltage ladder; silently
            # overwriting per-instance operating points would simulate
            # a different fleet than the one requested.
            raise ConfigError(
                "the dvfs governor re-points the whole fleet along its "
                "ladder and cannot be combined with per-instance fleet "
                "specs; use a homogeneous fleet (instances=N) instead"
            )

    @property
    def fleet_specs(self) -> tuple[InstanceSpec, ...]:
        """The per-instance specs (materializing the homogeneous case)."""
        if self.fleet is not None:
            return self.fleet
        return tuple(InstanceSpec() for _ in range(self.instances))


class ControlHooks(EngineHooks):
    """The control plane as an engine hook configuration.

    Admission runs the shedding policy against the instance the
    scheduler chose; the tick evaluates the autoscaling governor; the
    completion hook closes the power interval of a retired instance
    once it has fully drained.
    """

    def __init__(self, shedder, governor=None) -> None:
        self.shedder = shedder
        self.governor = governor
        # A forecasting governor watches the offered rate itself; bind
        # its observer once so non-predictive runs pay nothing extra.
        self._observe_arrival = getattr(
            governor, "observe_arrival", None
        )
        # Which batched-admission kernel applies.  Exact type checks:
        # PriorityShedding subclasses QueueDepthShedding but preempts
        # queued victims, so it (and any other subclass) must keep the
        # generic scalar path.
        shedder_type = type(shedder)
        if shedder_type is NoShedding:
            self._batch_kind = "none"
        elif shedder_type is DeadlineShedding:
            self._batch_kind = "deadline"
        elif shedder_type is QueueDepthShedding:
            self._batch_kind = "queue-depth"
        else:
            self._batch_kind = "generic"
        # Per-arena column tables for the deadline kernel, cached by
        # arena identity (one .tolist() per run, not per request).
        self._batch_cols = None

    def on_arrival(self, request, instance, now, engine) -> bool:
        if self._observe_arrival is not None:
            self._observe_arrival(now)
        admitted, victim = self.shedder.admit(request, instance, now)
        if victim is not None:
            victim.shed = True
        return admitted

    def on_arrival_batch(
        self, arena, index, request, instance, now, engine
    ) -> bool:
        """Columnar admission: same decisions (and floats) as
        :meth:`on_arrival`, reading arena columns instead of view
        properties.  Shedders outside the three vectorizable kinds —
        and heterogeneous instances with their own profile tables —
        delegate to the scalar shedder unchanged."""
        if self._observe_arrival is not None:
            self._observe_arrival(now)
        kind = self._batch_kind
        if kind == "none":
            return True
        if kind == "queue-depth":
            return len(instance.queue) < self.shedder.threshold
        if kind == "deadline" and instance.profiles is None:
            cols = self._batch_cols
            if cols is None or cols[0] is not arena:
                cols = self._batch_cols = (
                    arena,
                    (arena.deadline + _EPS).tolist(),
                    arena.per_image.tolist(),
                    arena.model_idx.tolist(),
                )
            # Inlined Instance.estimated_completion/pending_seconds,
            # same float order as DeadlineShedding.admit.
            pending = instance.busy_until - now
            if pending < 0.0:
                pending = 0.0
            queued = instance.queued_seconds
            if queued > 0.0:
                pending += queued * instance.latency_scale
            est = (now + pending) + cols[2][
                cols[3][index]
            ] * instance.latency_scale
            return est <= cols[1][index]
        admitted, victim = self.shedder.admit(request, instance, now)
        if victim is not None:
            victim.shed = True
        return admitted

    def fast_admission(self):
        """Declare the governor-less vectorizable configurations for
        the engine's ``"rr-ctl"`` kernel (see
        :meth:`repro.serve.engine.EngineHooks.fast_admission`): no
        governor means ``on_tick`` never runs and no arrival observer
        is bound, ``on_complete`` only acts on retired instances (and
        the path requires an always-active fleet), and the three
        declared shedding rules are exactly ``on_arrival``."""
        if self.governor is not None:
            return None
        kind = self._batch_kind
        if kind == "generic":
            return None
        return (kind, getattr(self.shedder, "threshold", 0))

    def on_tick(self, now, engine) -> int:
        if self.governor is None:
            return 0
        return self.governor.tick(engine.fleet, now)

    def on_complete(self, instance, now, engine) -> None:
        if (
            not instance.active
            and not instance.queue
            and instance.is_idle(now)
        ):
            instance.close_power_interval(now)

    def state_dict(self) -> dict:
        return {
            "shedder": self.shedder.state_dict(),
            "governor": (
                self.governor.state_dict()
                if self.governor is not None
                else None
            ),
        }

    def load_state_dict(self, state: dict) -> None:
        self.shedder.load_state_dict(state["shedder"])
        if self.governor is not None:
            self.governor.load_state_dict(state["governor"])


def _bucket_latency_stats(latencies) -> tuple[int, float]:
    """``(completed, p99_s)`` of a summary bucket's latency entry —
    an array/list in exact mode, a sketch in sketch mode."""
    if isinstance(latencies, StreamingLatencyStats):
        count = latencies.count
        return count, (latencies.quantile(0.99) if count else 0.0)
    count = len(latencies)
    return count, (
        float(np.percentile(latencies, 99)) if count else 0.0
    )


def _class_stats(
    slo_classes: tuple[SLOClass, ...], buckets: dict
) -> tuple[ClassStats, ...]:
    """Materialize per-class stats from the summary's single-pass
    buckets (``name -> [offered, met, latencies]``)."""
    stats = []
    for cls in slo_classes:
        offered, met, latencies = buckets.get(cls.name, (0, 0, []))
        completed, p99 = _bucket_latency_stats(latencies)
        stats.append(
            ClassStats(
                name=cls.name,
                priority=cls.priority,
                deadline_ms=cls.deadline_ms,
                target=cls.target,
                offered=offered,
                shed=offered - completed,
                completed=completed,
                met=met,
                attainment=met / offered if offered else 0.0,
                latency_p99_s=p99,
                model=cls.model,
            )
        )
    return tuple(stats)


def _model_stats(
    slo_classes: tuple[SLOClass, ...],
    model_buckets: dict,
    class_buckets: dict,
) -> tuple[ClassStats, ...]:
    """Per-model (tenant) aggregates, sorted by model name.

    Each model's row reuses the :class:`ClassStats` shape: offered /
    shed / met / p99 aggregate the model's whole request population;
    ``deadline_ms`` and ``target`` are offered-weighted means over the
    classes the model's traffic drew (exact when the model is bound to
    a single class) and ``priority`` is the most urgent one seen.
    """
    bound: dict[str, list[SLOClass]] = {}
    for cls in slo_classes:
        if cls.model is not None:
            bound.setdefault(cls.model, []).append(cls)
    unbound = [cls for cls in slo_classes if cls.model is None]
    stats = []
    for model in sorted(model_buckets):
        offered, met, latencies = model_buckets[model]
        completed, p99 = _bucket_latency_stats(latencies)
        classes = bound.get(model, unbound)
        weights = [
            class_buckets.get(cls.name, (0,))[0] for cls in classes
        ]
        if not sum(weights):
            weights = [1] * len(classes)
        total = sum(weights)
        deadline = sum(
            w * cls.deadline_ms for w, cls in zip(weights, classes)
        ) / total
        target = sum(
            w * cls.target for w, cls in zip(weights, classes)
        ) / total
        stats.append(
            ClassStats(
                name=model,
                priority=min(cls.priority for cls in classes),
                deadline_ms=deadline,
                target=target,
                offered=offered,
                shed=offered - completed,
                completed=completed,
                met=met,
                attainment=met / offered if offered else 0.0,
                latency_p99_s=p99,
                model=model,
            )
        )
    return tuple(stats)


def build_control_fleet(
    scenario: ControlScenario, dvfs_model: DVFSModel | None = None
):
    """Materialize the scenario's fleet: ``(fleet, mix, capacity)``.

    Each instance is configured to its ``(ArchConfig, OperatingPoint)``
    spec; ``capacity`` is the sum of per-instance service rates at the
    scenario's mix.  Split out of :func:`simulate_controlled` so
    multi-fleet scenarios (:mod:`repro.control.tenancy`) can size and
    run each member fleet with injected arrival streams.
    """
    dvfs_model = dvfs_model if dvfs_model is not None else DVFSModel()
    specs = scenario.fleet_specs
    mix = build_mix(
        scenario.mix, scenario.config, scenario.weight_bandwidth
    )
    own_mixes = {
        spec.config: build_mix(
            scenario.mix, spec.config, scenario.weight_bandwidth
        )
        for spec in specs
        if spec.config is not None and spec.config != scenario.config
    }

    fleet = Fleet(len(specs))
    capacity = 0.0
    for instance, spec in zip(fleet, specs):
        own = own_mixes.get(spec.config)
        configure_instance(instance, spec, dvfs_model, mix, own)
        service = (own or mix).mean_service_seconds()
        capacity += 1.0 / (service * instance.latency_scale)
    return fleet, mix, capacity


def _build_governor(scenario, fleet, mix, dvfs_model, tick_s):
    """The scenario's governor over ``fleet`` (None for ``"none"``),
    with sizing governors started from the minimum fleet."""
    if scenario.autoscale == "none":
        return None
    warmup_s = float(
        np.mean([p.setup_seconds for p in mix.profiles])
    )
    max_instances = (
        scenario.max_instances
        if scenario.max_instances is not None
        else len(fleet)
    )
    ladder = tuple(
        dvfs_model.operating_point(v) for v in scenario.dvfs_ladder
    )
    governor = make_governor(
        scenario.autoscale,
        tick_s=tick_s,
        min_instances=scenario.min_instances,
        max_instances=min(max_instances, len(fleet)),
        warmup_s=warmup_s,
        util_low=scenario.util_low,
        util_high=scenario.util_high,
        target_delay_s=scenario.target_delay_ms * 1e-3,
        ladder=ladder,
        dvfs_model=dvfs_model,
        profile_clock_hz=mix.profiles[0].clock_hz,
        mean_service_s=mix.mean_service_seconds(),
        forecast_alpha=scenario.forecast_alpha,
        forecast_beta=scenario.forecast_beta,
    )
    if scenario.autoscale in _SIZING_GOVERNORS:
        for instance in fleet:
            if instance.index >= scenario.min_instances:
                instance.active = False
                instance.powered_since = None
    governor.reset(fleet)
    return governor


@dataclass
class ControlExecution:
    """One armed controlled run, mid-flight.

    :func:`prepare_controlled` builds everything up to (and including)
    ``engine.begin``; the caller advances ``engine`` with
    :meth:`~repro.serve.engine.Engine.run_until` — to drain for the
    classic one-shot run, or in bounded slices for checkpointed and
    epoch-stepped execution — and :func:`finalize_controlled` turns
    the drained execution into the :class:`ServingReport`.
    """

    scenario: ControlScenario
    fleet: Fleet
    mix: object
    capacity: float
    qps: float
    times: np.ndarray
    requests: list
    engine: Engine


def prepare_controlled(
    scenario: ControlScenario,
    fleet: Fleet,
    mix,
    capacity: float,
    qps: float,
    times: np.ndarray,
    requests: list,
    dvfs_model: DVFSModel | None = None,
    *,
    obs=None,
    obs_pid: int = 0,
) -> ControlExecution:
    """Wire the control plane over a prepared fleet and arm the engine.

    The head half of :func:`execute_controlled`: sets the busy window,
    builds the governor/policy/shedder from the scenario (all
    deterministic, RNG-free), constructs the engine with the control
    hooks, and calls ``engine.begin(requests)`` so the caller can step
    it with ``run_until``.  An active ``obs`` session wraps the control
    hooks in telemetry observers (``obs_pid`` names the trace process,
    the fleet index on multi-fleet runs).
    """
    dvfs_model = dvfs_model if dvfs_model is not None else DVFSModel()
    window_end = float(times[-1])
    for instance in fleet:
        instance.window_end = window_end

    tick_s = scenario.tick_ms * 1e-3
    governor = _build_governor(
        scenario, fleet, mix, dvfs_model, tick_s
    )

    policy = make_policy(scenario.policy)
    policy.reset()
    shedder = make_shedder(scenario.shedding, scenario.queue_threshold)

    hooks: EngineHooks = ControlHooks(shedder, governor)
    engine_tick_s = tick_s if governor is not None else None
    if obs is not None and obs.active:
        hooks = obs.wrap(hooks, pid=obs_pid)
        obs.register_fleet(
            obs_pid, f"fleet {obs_pid} ({scenario.mix})", fleet
        )
        # Metrics sampling rides ticks; a governor-less run gets a
        # metrics-cadence tick (inner on_tick contributes 0 actions,
        # so the physics is unchanged).
        engine_tick_s = obs.engine_tick_s(engine_tick_s)
    engine = Engine(
        fleet,
        policy,
        max_batch=scenario.max_batch,
        max_wait_s=scenario.max_wait_ms * 1e-3,
        hooks=hooks,
        tick_s=engine_tick_s,
        priority_queues=True,
    )
    engine.begin(requests)
    return ControlExecution(
        scenario=scenario,
        fleet=fleet,
        mix=mix,
        capacity=capacity,
        qps=qps,
        times=times,
        requests=requests,
        engine=engine,
    )


def finalize_controlled(execution: ControlExecution) -> ServingReport:
    """Aggregate a drained :class:`ControlExecution` into its report.

    The tail half of :func:`execute_controlled`; identical whether the
    engine drained in one ``run_until(inf)`` call, in checkpointed
    slices, or after a restore in a fresh process — which is what makes
    resumed reports byte-identical to uninterrupted ones.
    """
    scenario = execution.scenario
    fleet = execution.fleet
    capacity = execution.capacity
    qps = execution.qps
    times = execution.times
    requests = execution.requests
    state = execution.engine.state
    # Counters read from the engine *state*, not the last run_until
    # slice, so a resumed run reports identical values to an
    # uninterrupted one (the CLI's byte-equality pin).  The dispatch
    # path (and any fallback reason) comes from the run itself: the
    # rr-ctl kernel backfills the state's counters, so both sources
    # agree whichever path drained the engine.
    last = execution.engine.last_run
    run = EngineRun(
        events=state.events,
        tick_actions=state.tick_actions,
        peak_heap=state.peak_heap,
        dispatch=last.dispatch if last is not None else "general",
        fallback=last.fallback if last is not None else "",
    )
    n = len(requests)
    window_end = float(times[-1])

    track_models = any(
        cls.model is not None for cls in scenario.slo_classes
    )
    summary = summarize_requests(
        requests,
        track_classes=True,
        track_models=track_models,
        stats=scenario.stats,
    )
    completed = summary.completed

    end_time = max(
        window_end,
        summary.max_finish,
        max(i.busy_until for i in fleet),
    )
    for instance in fleet:
        if instance.powered_since is not None:
            instance.close_power_interval(
                max(end_time, instance.powered_since)
            )

    energy = 0.0
    for instance in fleet:
        idle = max(0.0, instance.powered_seconds - instance.busy_seconds)
        energy += instance.energy_joules + idle * instance.idle_power_w

    total_batches = sum(i.batches for i in fleet)
    return ServingReport(
        mix=scenario.mix,
        arrival=scenario.arrival,
        policy=scenario.policy,
        instances=len(fleet),
        requests=completed,
        offered_qps=realized_offered_qps(
            scenario.arrival, times, n, qps
        ),
        capacity_qps=float(capacity),
        makespan_s=end_time,
        sustained_qps=completed / end_time if end_time > 0 else 0.0,
        # An all-shed overload run completes nothing: report explicit
        # zeros instead of feeding empty arrays through mean/percentile
        # (NaN + RuntimeWarning in the report).
        latency_mean_s=summary.latency_mean() if completed else 0.0,
        latency_p50_s=(
            summary.latency_percentile(50) if completed else 0.0
        ),
        latency_p95_s=(
            summary.latency_percentile(95) if completed else 0.0
        ),
        latency_p99_s=(
            summary.latency_percentile(99) if completed else 0.0
        ),
        latency_max_s=summary.latency_max() if completed else 0.0,
        mean_wait_s=summary.wait_mean() if completed else 0.0,
        mean_batch_size=(
            completed / total_batches if total_batches else 0.0
        ),
        setups=sum(i.setups for i in fleet),
        utilization=tuple(
            i.busy_seconds / end_time if end_time > 0 else 0.0
            for i in fleet
        ),
        served_per_instance=tuple(i.served for i in fleet),
        per_model_counts=summary.model_counts,
        busy_window_s=window_end,
        utilization_busy=tuple(
            i.busy_seconds_window / window_end if window_end > 0 else 0.0
            for i in fleet
        ),
        offered_requests=n,
        shed_requests=n - completed,
        energy_joules=float(energy),
        joules_per_request=(
            float(energy / completed) if completed else None
        ),
        class_stats=_class_stats(
            scenario.slo_classes, summary.class_buckets
        ),
        model_stats=(
            _model_stats(
                scenario.slo_classes,
                summary.model_buckets,
                summary.class_buckets,
            )
            if track_models
            else ()
        ),
        autoscale_events=run.tick_actions,
        mean_active_instances=(
            sum(i.powered_seconds for i in fleet) / end_time
            if end_time > 0
            else 0.0
        ),
        engine_events=run.events,
        engine_peak_heap=run.peak_heap,
        engine_dispatch=run.dispatch,
        engine_fallback=run.fallback,
    )


def execute_controlled(
    scenario: ControlScenario,
    fleet: Fleet,
    mix,
    capacity: float,
    qps: float,
    times: np.ndarray,
    requests: list,
    dvfs_model: DVFSModel | None = None,
    *,
    obs=None,
    obs_pid: int = 0,
) -> ServingReport:
    """Drive one prepared fleet over an already-built request stream.

    The tail half of :func:`simulate_controlled`: wires the control
    hooks, runs the engine to drain, and aggregates the report —
    now composed of :func:`prepare_controlled` and
    :func:`finalize_controlled` around one unbounded ``run_until``.
    Multi-fleet simulation reuses it per member fleet with correlated
    (and spillover-merged) streams the caller generated.
    """
    execution = prepare_controlled(
        scenario, fleet, mix, capacity, qps, times, requests,
        dvfs_model=dvfs_model, obs=obs, obs_pid=obs_pid,
    )
    execution.engine.run_until(_INF)
    return finalize_controlled(execution)


def simulate_controlled_detailed(
    scenario: ControlScenario,
    *,
    obs=None,
) -> tuple[ServingReport, list]:
    """Like :func:`simulate_controlled`, also returning the drained
    request objects (windowed tail analyses, e.g. p99 over a diurnal
    ramp, need per-request outcomes the aggregate report folds away).
    """
    dvfs_model = DVFSModel()
    fleet, mix, capacity = build_control_fleet(scenario, dvfs_model)

    qps = scenario.qps if scenario.qps is not None else (
        _DEFAULT_LOAD * capacity
    )
    arrivals = make_arrivals(
        scenario.arrival,
        qps,
        burst_factor=scenario.burst_factor,
        trace=scenario.trace,
        diurnal_period_s=scenario.diurnal_period_s,
        diurnal_amplitude=scenario.diurnal_amplitude,
    )
    n = scenario.requests
    if scenario.arrival == "trace":
        n = min(n, len(scenario.trace))

    rng = np.random.default_rng(scenario.seed)
    times = arrivals.times(n, rng)
    requests = build_requests(
        mix, times, rng, slo_classes=scenario.slo_classes
    )
    report = execute_controlled(
        scenario, fleet, mix, capacity, qps, times, requests,
        dvfs_model=dvfs_model, obs=obs,
    )
    return report, requests


def simulate_controlled(
    scenario: ControlScenario, *, obs=None
) -> ServingReport:
    """Run one controlled scenario to completion.

    Deterministic for a given scenario; safe to cache and to fan out
    across worker processes.  Returns a :class:`ServingReport` with the
    control-plane fields (energy, shedding, per-class attainment, and —
    with model-bound SLO classes — per-model ``model_stats``) filled
    in; ``requests`` is the *completed* count and ``offered_requests``
    the admitted + shed total.
    """
    report, _ = simulate_controlled_detailed(scenario, obs=obs)
    return report
