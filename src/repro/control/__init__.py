"""SLO-aware serving control plane over the :mod:`repro.serve` data plane.

The serving simulator answers "what latency does a fleet deliver?";
this package answers the production questions layered on top: do
requests meet their *deadlines* per priority class, what does overload
do to the tail (admission control and load shedding), how much *energy*
does the fleet burn at each DVFS operating point, and can an autoscaler
buy the same SLO attainment for fewer joules?

The tenancy layer scales the same questions out to *multi-tenant,
multi-fleet* deployments: SLO classes bindable to individual zoo
models (:class:`~repro.control.slo.SLOClass.model`), N fleets whose
traffic is correlated through one latent diurnal/burst modulator with
cross-fleet spillover (:mod:`repro.control.tenancy`), and a
forecast-driven governor that scales ahead of the ramp instead of
behind it (:mod:`repro.control.predict`).

Quick start::

    from repro.control import ControlScenario, simulate_controlled

    report = simulate_controlled(
        ControlScenario(shedding="priority", autoscale="utilization")
    )
    print(report.slo_attainment, report.energy_joules)
"""

from .autoscale import (
    GOVERNORS,
    DVFSGovernor,
    Governor,
    QueueDelayGovernor,
    UtilizationBandGovernor,
    make_governor,
)
from .hetero import (
    NOMINAL_BUSY_POWER_W,
    InstanceSpec,
    apply_operating_point,
    busy_power_w,
    idle_power_w,
    parse_fleet_spec,
)
from .predict import HoltForecaster, PredictiveGovernor
from .simulator import (
    ControlHooks,
    ControlScenario,
    build_control_fleet,
    execute_controlled,
    simulate_controlled,
    simulate_controlled_detailed,
)
from .slo import (
    DEFAULT_SLO_CLASSES,
    SHEDDING_POLICIES,
    ClassStats,
    DeadlineShedding,
    NoShedding,
    PriorityShedding,
    QueueDepthShedding,
    SheddingPolicy,
    SLOClass,
    make_shedder,
    parse_slo_classes,
)
from .sweep import (
    control_sweep,
    governor_sweep,
    multi_fleet_sweep,
    pareto_frontier,
    static_frontier_sweep,
)
from .tenancy import (
    MultiFleetReport,
    MultiFleetScenario,
    simulate_multi_fleet,
)

__all__ = [
    "SLOClass",
    "ClassStats",
    "DEFAULT_SLO_CLASSES",
    "parse_slo_classes",
    "SheddingPolicy",
    "NoShedding",
    "DeadlineShedding",
    "QueueDepthShedding",
    "PriorityShedding",
    "SHEDDING_POLICIES",
    "make_shedder",
    "InstanceSpec",
    "NOMINAL_BUSY_POWER_W",
    "parse_fleet_spec",
    "busy_power_w",
    "idle_power_w",
    "apply_operating_point",
    "Governor",
    "UtilizationBandGovernor",
    "QueueDelayGovernor",
    "DVFSGovernor",
    "HoltForecaster",
    "PredictiveGovernor",
    "GOVERNORS",
    "make_governor",
    "ControlHooks",
    "ControlScenario",
    "build_control_fleet",
    "execute_controlled",
    "simulate_controlled",
    "simulate_controlled_detailed",
    "MultiFleetScenario",
    "MultiFleetReport",
    "simulate_multi_fleet",
    "control_sweep",
    "governor_sweep",
    "multi_fleet_sweep",
    "static_frontier_sweep",
    "pareto_frontier",
]
