"""SLO-aware serving control plane over the :mod:`repro.serve` data plane.

The serving simulator answers "what latency does a fleet deliver?";
this package answers the production questions layered on top: do
requests meet their *deadlines* per priority class, what does overload
do to the tail (admission control and load shedding), how much *energy*
does the fleet burn at each DVFS operating point, and can an autoscaler
buy the same SLO attainment for fewer joules?

Quick start::

    from repro.control import ControlScenario, simulate_controlled

    report = simulate_controlled(
        ControlScenario(shedding="priority", autoscale="utilization")
    )
    print(report.slo_attainment, report.energy_joules)
"""

from .autoscale import (
    GOVERNORS,
    DVFSGovernor,
    Governor,
    QueueDelayGovernor,
    UtilizationBandGovernor,
    make_governor,
)
from .hetero import (
    NOMINAL_BUSY_POWER_W,
    InstanceSpec,
    apply_operating_point,
    busy_power_w,
    idle_power_w,
    parse_fleet_spec,
)
from .simulator import ControlHooks, ControlScenario, simulate_controlled
from .slo import (
    DEFAULT_SLO_CLASSES,
    SHEDDING_POLICIES,
    ClassStats,
    DeadlineShedding,
    NoShedding,
    PriorityShedding,
    QueueDepthShedding,
    SheddingPolicy,
    SLOClass,
    make_shedder,
    parse_slo_classes,
)
from .sweep import (
    control_sweep,
    governor_sweep,
    pareto_frontier,
    static_frontier_sweep,
)

__all__ = [
    "SLOClass",
    "ClassStats",
    "DEFAULT_SLO_CLASSES",
    "parse_slo_classes",
    "SheddingPolicy",
    "NoShedding",
    "DeadlineShedding",
    "QueueDepthShedding",
    "PriorityShedding",
    "SHEDDING_POLICIES",
    "make_shedder",
    "InstanceSpec",
    "NOMINAL_BUSY_POWER_W",
    "parse_fleet_spec",
    "busy_power_w",
    "idle_power_w",
    "apply_operating_point",
    "Governor",
    "UtilizationBandGovernor",
    "QueueDelayGovernor",
    "DVFSGovernor",
    "GOVERNORS",
    "make_governor",
    "ControlHooks",
    "ControlScenario",
    "simulate_controlled",
    "control_sweep",
    "governor_sweep",
    "static_frontier_sweep",
    "pareto_frontier",
]
