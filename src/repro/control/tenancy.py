"""Multi-tenant, multi-fleet serving: correlated traffic + spillover.

One :class:`MultiFleetScenario` co-simulates N member fleets (each a
full :class:`~repro.control.simulator.ControlScenario`: its own
instances, SLO classes — including per-model bindings — shedding and
governor) whose arrival processes are *correlated*: a single latent
modulating factor (:class:`repro.serve.arrival.SharedModulator`, a
day/night sinusoid or a sampled MMPP burst state) multiplies every
fleet's offered rate at the same simulated instant, while each fleet's
arrival jitter comes from an independent substream of the scenario's
master seed.  That is the regional-spike story a production control
plane cannot avoid: when the modulator peaks, *every* fleet peaks
together, so one fleet's headroom is only real if the spike leaves any.

Cross-fleet **spillover** exploits exactly that headroom: a fleet whose
offered load exceeds its capacity (``rho > 1``) forwards the requests
its admission controller shed — when their deadlines survive a
forwarding hop plus the sibling's service time — to the sibling with
the most headroom.  Donor fleets run first and receivers after, so a
forwarded request arrives in the receiver's event order at
``arrival + hop`` and takes its chances against the receiver's own
admission control; spillover can never loop back into a fleet that
already ran.

Every member fleet is its own :class:`~repro.serve.engine.Engine`,
advanced through :meth:`~repro.serve.engine.Engine.run_until`-bounded
*epochs* with the spillover exchange at the phase barrier (donors
drain, shed rows are forwarded, receivers merge and drain).  Epoch
length and process sharding (``epoch_s``/``jobs``, keyword-only) are
execution details — any positive epoch and any job count reproduce
the identical report — and everything — the latent path, per-fleet
thinning, engine order — is a pure function of the frozen scenario,
so multi-fleet reports are cacheable content keys exactly like
single-fleet ones.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..errors import ConfigError
from ..parallel.executor import ParallelExecutor
from ..power.dvfs import DVFSModel
from ..serve.arena import RequestArena
from ..serve.arrival import SharedModulator
from ..serve.engine import build_requests
from ..serve.fleet import Request
from ..serve.simulator import ServingReport
from .simulator import (
    _DEFAULT_LOAD,
    ControlScenario,
    build_control_fleet,
    finalize_controlled,
    prepare_controlled,
)
from .slo import SLOClass

__all__ = [
    "MultiFleetScenario",
    "MultiFleetReport",
    "simulate_multi_fleet",
]


@dataclass(frozen=True)
class MultiFleetScenario:
    """Complete, hashable description of one correlated multi-fleet run.

    Attributes:
        fleets: Member fleets.  Each member's data- and control-plane
            knobs apply unchanged, except its ``arrival``/``trace``/
            ``seed`` fields: arrivals come from the shared modulator
            on substreams of the master ``seed`` below.
        modulator: Latent factor kind — ``"diurnal"`` (deterministic
            day/night sinusoid) or ``"burst"`` (one sampled MMPP-2
            state path all fleets share).
        period_s / amplitude: Diurnal cycle and swing (amplitude in
            [0, 1), as in :class:`~repro.serve.arrival.DiurnalArrivals`).
        burst_factor / burst_share / mean_dwell_s: MMPP-2 parameters
            for ``modulator="burst"``.
        spillover: ``"none"`` or ``"deadline"`` — fleets at rho > 1
            forward shed, deadline-feasible requests to the sibling
            with the most headroom.
        spillover_hop_ms: Forwarding latency a spilled request pays
            before it reaches the sibling.
        seed: Master seed; substream 0 drives the latent burst path
            and substream k+1 fleet k's thinning and request draws.
    """

    fleets: tuple[ControlScenario, ...]
    modulator: str = "diurnal"
    period_s: float = 60.0
    amplitude: float = 0.8
    burst_factor: float = 4.0
    burst_share: float = 0.2
    mean_dwell_s: float = 0.05
    spillover: str = "none"
    spillover_hop_ms: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.fleets:
            raise ConfigError(
                "multi-fleet scenario needs at least one fleet"
            )
        if self.spillover not in ("none", "deadline"):
            raise ConfigError(
                f"unknown spillover policy {self.spillover!r} "
                "(known: none, deadline)"
            )
        if self.spillover_hop_ms < 0:
            raise ConfigError(
                "spillover_hop_ms must be >= 0 "
                f"({self.spillover_hop_ms})"
            )
        for scenario in self.fleets:
            if scenario.arrival == "trace":
                raise ConfigError(
                    "member fleets cannot replay traces: multi-fleet "
                    "arrivals come from the shared modulator"
                )
        if self.spillover != "none" and all(
            scenario.shedding == "none" for scenario in self.fleets
        ):
            # Only *shed* requests are eligible to spill; without any
            # admission control the flag would silently forward nothing.
            raise ConfigError(
                "spillover forwards shed requests, but every member "
                "fleet runs shedding='none' — give at least the "
                "overloaded fleets a shedding policy (e.g. 'deadline')"
            )
        # Validates the modulator parameters (incl. amplitude < 1).
        self.shared_modulator()

    def shared_modulator(self) -> SharedModulator:
        return SharedModulator(
            kind=self.modulator,
            period_s=self.period_s,
            amplitude=self.amplitude,
            burst_factor=self.burst_factor,
            burst_share=self.burst_share,
            mean_dwell_s=self.mean_dwell_s,
        )


@dataclass(frozen=True)
class MultiFleetReport:
    """Aggregate outcome of one multi-fleet run.

    ``fleets`` holds each member's :class:`ServingReport` over the
    traffic *its engine processed* (home arrivals plus received
    spill-ins), so per-fleet conservation reads directly off it.  The
    aggregate fields account end-to-end per *original* request: a
    request that was shed at home, forwarded, and completed at a
    sibling counts as completed (and met, when its original deadline
    held), and only terminally dropped requests count as shed.

    Attributes:
        offered_requests: Requests generated across all fleets.
        completed_requests: Completed anywhere (home or sibling).
        shed_requests: Terminally dropped (never completed anywhere).
        spilled_requests: Forwarded to a sibling.
        spill_completed: Forwarded and completed there.
        spill_met: Forwarded and completed within the original
            deadline (the hop included) — the spillover's actual SLO
            contribution, not just its throughput one.
        met_requests: Completed within the original deadline.
        attainment: ``met / offered`` (shed requests are misses).
        latency_p99_s: p99 of original-arrival-to-final-completion
            (spilled requests include the forwarding hop).
        energy_joules: Total across fleets.
        offered_load: Per-fleet rho (offered QPS over capacity).
    """

    fleets: tuple[ServingReport, ...]
    modulator: str
    spillover: str
    offered_requests: int
    completed_requests: int
    shed_requests: int
    spilled_requests: int
    spill_completed: int
    spill_met: int
    met_requests: int
    attainment: float
    latency_p99_s: float
    energy_joules: float
    offered_load: tuple[float, ...]

    @property
    def conserved(self) -> bool:
        """offered == completed + terminally shed, end to end."""
        return (
            self.offered_requests
            == self.completed_requests + self.shed_requests
        )


def _forward_target(
    request: Request,
    receivers: list[int],
    mixes: dict,
    hop_s: float,
):
    """The sibling a shed request spills to: the first receiver (most
    headroom first) that serves the model and can still make the
    deadline to first order — hop plus one nominal service time."""
    for k in receivers:
        mix = mixes[k]
        profile = None
        for p in mix.profiles:
            if p.name == request.model:
                profile = p
                break
        if profile is None:
            continue
        if (
            request.arrival + hop_s + profile.per_image_seconds
            <= request.deadline
        ):
            return k, profile
    return None, None


def _drain_epochs(engine, arena, epoch_s: float) -> list[int]:
    """Advance one member engine to drain in ``epoch_s``-bounded
    ``run_until`` slices.

    Returns the arena rows the member's admission control shed, in
    stream order, collected per consumed arrival-cursor window — the
    rows eligible for spillover at the next exchange barrier.  (Sheds
    happen only at admission, so the concatenated windows cover every
    shed request exactly once.)  ``arena`` may be ``None`` when the
    caller does not forward (receivers, plain lists of merged views).

    The slicing is bit-for-bit the one-shot run: ``run_until`` is the
    same loop with a horizon check.
    """
    shed_rows: list[int] = []
    prev = engine.state.cursor
    t = epoch_s
    while not engine.finished:
        engine.run_until(t)
        cursor = engine.state.cursor
        if arena is not None and cursor > prev:
            shed_rows.extend(arena.shed_indices(prev, cursor))
        prev = cursor
        t += epoch_s
    return shed_rows


def _member_point(payload: dict):
    """Worker half of the spillover barrier: run one member fleet.

    ``payload`` is checkpoint-shaped — the member's frozen scenario
    plus its materialized request stream (home arena, and for
    receivers the spill-in clones forwarded at the barrier).  The
    worker rebuilds the fleet deterministically, epoch-steps the
    engine to drain, and ships back the report together with the
    mutated outcome columns, which the parent overlays by stream
    position (subprocess arena mutations never propagate by
    themselves).
    """
    member = payload["scenario"]
    home = payload["requests"]
    clones = payload["spill_ins"]
    epoch_s = payload["epoch_s"]
    if clones:
        # Stable by arrival: home requests keep their relative order,
        # spill-ins theirs — identical to the parent-side merge.
        stream = sorted(
            [*home, *clones],
            key=lambda request: request.arrival,
        )
        for i, request in enumerate(stream):
            request.index = i
    else:
        stream = home
    dvfs_model = DVFSModel()
    fleet, mix, capacity = build_control_fleet(member, dvfs_model)
    qps = (
        member.qps
        if member.qps is not None
        else _DEFAULT_LOAD * capacity
    )
    stream_times = np.array(
        [request.arrival for request in stream]
    )
    execution = prepare_controlled(
        member, fleet, mix, capacity, qps,
        stream_times, stream, dvfs_model=dvfs_model,
    )
    _drain_epochs(execution.engine, None, epoch_s)
    report = finalize_controlled(execution)
    return (
        report,
        home.shed.copy(),
        home.start.copy(),
        home.finish.copy(),
        [(clone.shed, clone.finish) for clone in clones],
    )


def simulate_multi_fleet(
    scenario: MultiFleetScenario,
    *,
    epoch_s: float | None = None,
    jobs: int = 1,
    obs=None,
) -> MultiFleetReport:
    """Run one correlated multi-fleet scenario to completion.

    Deterministic for a given scenario; safe to cache and to fan out
    across worker processes.  Both knobs below are keyword-only
    execution details — they never perturb the result or the cache
    content key.

    Args:
        scenario: The frozen scenario description.
        epoch_s: Spillover epoch length in simulated seconds (default:
            the scenario's modulator ``period_s``).  Each member fleet
            advances through its run in ``run_until(epoch)`` slices,
            collecting newly shed requests per consumed arrival-cursor
            window; the donor -> receiver exchange happens at the
            barrier between the donor and receiver phases.  Any
            positive value yields the identical report — the slicing
            is bit-for-bit the one-shot run.
        jobs: Worker processes for the member fleets (``1`` = serial).
            Donors shard across processes first, receivers after the
            exchange barrier; each worker gets a checkpoint-shaped
            payload (scenario + materialized stream) and returns its
            report plus the mutated outcome columns, overlaid by
            stream position.
        obs: Optional :class:`~repro.obs.Observability` session; an
            active one records every member fleet into one shared
            trace (fleet k is trace process k) plus a spillover
            instant per forwarded request.  Telemetry needs the live
            recorder in-process, so an active session runs the members
            serially regardless of ``jobs`` — same report, shared
            observers.
    """
    modulator = scenario.shared_modulator()
    path = modulator.build_path(
        np.random.default_rng([scenario.seed, 0])
    )
    dvfs_model = DVFSModel()
    if epoch_s is None:
        epoch_s = scenario.period_s
    if epoch_s <= 0:
        raise ConfigError(
            f"epoch_s must be positive ({epoch_s})"
        )

    n_fleets = len(scenario.fleets)
    setups = []  # (fleet, mix, capacity) per member
    rates = []
    for member in scenario.fleets:
        fleet, mix, capacity = build_control_fleet(member, dvfs_model)
        setups.append((fleet, mix, capacity))
        rates.append(
            member.qps
            if member.qps is not None
            else _DEFAULT_LOAD * capacity
        )

    rhos = [
        rates[k] / setups[k][2] if setups[k][2] > 0 else 0.0
        for k in range(n_fleets)
    ]

    # Correlated arrivals: every fleet thins against the one shared
    # path on its own substream, then draws its request content
    # (models, classes) from the same substream — exactly the
    # single-fleet draw order, per fleet.
    home_requests = []
    for k, member in enumerate(scenario.fleets):
        rng = np.random.default_rng([scenario.seed, k + 1])
        fleet_times = modulator.fleet_times(
            member.requests, rates[k], path, rng
        )
        home_requests.append(
            build_requests(
                setups[k][1],
                fleet_times,
                rng,
                slo_classes=member.slo_classes,
            )
        )

    spill = scenario.spillover != "none"
    donors = [k for k in range(n_fleets) if spill and rhos[k] > 1.0]
    receivers = sorted(
        (k for k in range(n_fleets) if k not in donors),
        key=lambda k: (rhos[k], k),
    )
    hop_s = scenario.spillover_hop_ms * 1e-3
    mixes = {k: setups[k][1] for k in receivers}

    arrival_label = f"shared-{scenario.modulator}"
    reports: list[ServingReport | None] = [None] * n_fleets
    # clone -> original, to fold sibling outcomes back per request.
    spilled: list[tuple[Request, Request]] = []
    # Views are created on demand, so identity is per access; key
    # forwarded originals by (fleet, index) instead of id().
    forwarded: set[tuple[int, int]] = set()
    spill_ins: list[list[Request]] = [[] for _ in range(n_fleets)]
    # Donor class specs by name (first definition wins), so a receiver
    # can report spill-ins whose class it does not define itself.
    class_specs: dict[str, SLOClass] = {}
    for member in scenario.fleets:
        for cls in member.slo_classes:
            class_specs.setdefault(cls.name, cls)

    def member_scenario(k: int):
        member = replace(
            scenario.fleets[k], arrival=arrival_label
        )
        own = {cls.name for cls in member.slo_classes}
        foreign = []
        for request in spill_ins[k]:
            if request.slo not in own:
                own.add(request.slo)
                foreign.append(class_specs[request.slo])
        if foreign:
            # Spill-ins keep their donor class: grow the receiver's
            # reporting classes so its per-class table and attainment
            # cover every request its engine processed.
            member = replace(
                member,
                slo_classes=member.slo_classes + tuple(foreign),
            )
        return member

    def run_member(k: int, requests) -> list[int]:
        """In-process member run: epoch-stepped on the parent's own
        fleet and arena; returns the shed rows (stream order)."""
        fleet, mix, capacity = setups[k]
        stream_times = np.array(
            [request.arrival for request in requests]
        )
        execution = prepare_controlled(
            member_scenario(k), fleet, mix, capacity, rates[k],
            stream_times, requests, dvfs_model=dvfs_model,
            obs=obs, obs_pid=k,
        )
        arena = requests if isinstance(requests, RequestArena) else None
        shed_rows = _drain_epochs(execution.engine, arena, epoch_s)
        reports[k] = finalize_controlled(execution)
        return shed_rows

    def forward(k: int, shed_rows: list[int]) -> None:
        """Donor k's barrier exchange: spill its shed rows to the
        sibling with the most headroom that can still make the
        deadline."""
        if not receivers:
            return
        arena = home_requests[k]
        for row in shed_rows:
            request = arena.view(row)
            target, profile = _forward_target(
                request, receivers, mixes, hop_s
            )
            if target is None:
                continue
            clone = Request(
                index=0,  # re-indexed after the receiver merge
                model=request.model,
                profile=profile,
                arrival=request.arrival + hop_s,
                slo=request.slo,
                priority=request.priority,
                deadline=request.deadline,
            )
            spilled.append((clone, request))
            forwarded.add((k, request.index))
            spill_ins[target].append(clone)
            if obs is not None:
                obs.spill(
                    k, target, request, scenario.spillover_hop_ms
                )

    def payload(k: int) -> dict:
        return {
            "kind": "control",
            "scenario": member_scenario(k),
            "requests": home_requests[k],
            "spill_ins": list(spill_ins[k]),
            "epoch_s": epoch_s,
        }

    def overlay(k: int, result) -> list[int]:
        report, shed_col, start_col, finish_col, clone_out = result
        reports[k] = report
        arena = home_requests[k]
        arena.shed[:] = shed_col
        arena.start[:] = start_col
        arena.finish[:] = finish_col
        for clone, (c_shed, c_finish) in zip(
            spill_ins[k], clone_out
        ):
            clone.shed = c_shed
            clone.finish = c_finish
        return arena.shed_indices()

    # Subprocess workers cannot feed the in-process recorder/timelines,
    # so an active telemetry session pins the members to the serial
    # path (identical report either way — sharding is an execution
    # detail).
    observed = obs is not None and obs.active
    executor = (
        ParallelExecutor(jobs=jobs)
        if jobs != 1 and n_fleets > 1 and not observed
        else None
    )

    def run_phases() -> None:
        # Donor phase: donors epoch-step to drain (donors never
        # receive, so they shard freely); their sheds cross the
        # exchange barrier into the receivers' spill-in buffers.
        if executor is not None and len(donors) > 1:
            for k, result in zip(
                donors,
                executor.map(
                    _member_point, [(payload(k),) for k in donors]
                ),
            ):
                forward(k, overlay(k, result))
        else:
            for k in donors:
                forward(k, run_member(k, home_requests[k]))

        # Receiver phase, after the barrier: home traffic merged with
        # the forwarded spill-ins in arrival order (stable: home
        # requests keep their relative order), then epoch-stepped to
        # drain.
        if executor is not None and len(receivers) > 1:
            for k, result in zip(
                receivers,
                executor.map(
                    _member_point, [(payload(k),) for k in receivers]
                ),
            ):
                overlay(k, result)
        else:
            for k in receivers:
                merged = sorted(
                    [*home_requests[k], *spill_ins[k]],
                    key=lambda request: request.arrival,
                )
                for i, request in enumerate(merged):
                    request.index = i
                run_member(k, merged)

    if executor is not None:
        # One pool spans both phases: the barrier exchanges payloads,
        # not workers.
        with executor.session():
            run_phases()
    else:
        run_phases()

    # End-to-end accounting per original request.
    completed = met = terminally_shed = 0
    spill_completed = spill_met = 0
    final_latencies: list[float] = []
    for k in range(n_fleets):
        for request in home_requests[k]:
            if not request.shed:
                completed += 1
                met += request.finish <= request.deadline
                final_latencies.append(
                    request.finish - request.arrival
                )
            elif (k, request.index) not in forwarded:
                terminally_shed += 1
    for clone, original in spilled:
        if clone.shed:
            terminally_shed += 1
            continue
        completed += 1
        spill_completed += 1
        hit = clone.finish <= clone.deadline
        met += hit
        spill_met += hit
        final_latencies.append(clone.finish - original.arrival)

    offered = sum(member.requests for member in scenario.fleets)
    energy = sum(
        report.energy_joules or 0.0 for report in reports
    )
    return MultiFleetReport(
        fleets=tuple(reports),
        modulator=scenario.modulator,
        spillover=scenario.spillover,
        offered_requests=offered,
        completed_requests=completed,
        shed_requests=terminally_shed,
        spilled_requests=len(spilled),
        spill_completed=spill_completed,
        spill_met=int(spill_met),
        met_requests=int(met),
        attainment=met / offered if offered else 0.0,
        latency_p99_s=(
            float(np.percentile(final_latencies, 99))
            if final_latencies
            else 0.0
        ),
        energy_joules=float(energy),
        offered_load=tuple(rhos),
    )
