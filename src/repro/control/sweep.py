"""Governor sweeps: SLO attainment vs energy through the executor.

A controlled scenario is a frozen dataclass of primitives, so grids of
governors, fleet sizes, and operating voltages fan out through
:class:`repro.parallel.ParallelExecutor` and land in the persistent
result cache exactly like plain serving sweeps.  The payoff question is
the Pareto one — which (fleet, operating point, governor) settings are
not dominated on (energy, SLO attainment)? — answered by
:func:`pareto_frontier` over the resulting reports.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Sequence

from ..errors import ConfigError
from ..parallel.cache import ResultCache
from ..parallel.executor import ParallelExecutor
from ..serve.simulator import ServingReport
from .hetero import InstanceSpec
from .simulator import ControlScenario, simulate_controlled
from .tenancy import MultiFleetReport, MultiFleetScenario, simulate_multi_fleet

__all__ = [
    "control_sweep",
    "governor_sweep",
    "multi_fleet_sweep",
    "static_frontier_sweep",
    "pareto_frontier",
]


def multi_fleet_sweep(
    scenarios: Sequence[MultiFleetScenario],
    jobs: int | None = 1,
    cache: ResultCache | None = None,
) -> list[MultiFleetReport]:
    """Simulate many multi-fleet scenarios, fanned out and cached.

    A :class:`MultiFleetScenario` is a frozen dataclass of primitives
    (with nested member scenarios), so the persistent cache keys it
    exactly like single-fleet control points — the CLI's warm reruns
    are served from disk.

    With a single scenario the worker fan-out has nothing to spread
    over, so ``jobs`` is routed *into* the co-simulation instead:
    member fleets shard across processes at the spillover epoch
    barrier.  Reports are bit-identical either way, so both routes
    share one cache key.
    """
    if not scenarios:
        raise ConfigError("multi_fleet_sweep needs at least one scenario")
    executor = ParallelExecutor(jobs=jobs, cache=cache)
    fn = simulate_multi_fleet
    if len(scenarios) == 1 and executor.jobs > 1:
        fn = functools.partial(simulate_multi_fleet, jobs=executor.jobs)
    return executor.map_cached(
        "multi_fleet_point",
        fn,
        [(s,) for s in scenarios],
    )


def control_sweep(
    scenarios: Sequence[ControlScenario],
    jobs: int | None = 1,
    cache: ResultCache | None = None,
) -> list[ServingReport]:
    """Simulate many controlled scenarios, fanned out and cached."""
    if not scenarios:
        raise ConfigError("control_sweep needs at least one scenario")
    executor = ParallelExecutor(jobs=jobs, cache=cache)
    return executor.map_cached(
        "control_point", simulate_controlled, [(s,) for s in scenarios]
    )


def governor_sweep(
    base: ControlScenario,
    governors: Sequence[str],
    jobs: int | None = 1,
    cache: ResultCache | None = None,
) -> list[ServingReport]:
    """Cross the base scenario with autoscaling governors (in order)."""
    if not governors:
        raise ConfigError("governor sweep needs at least one governor")
    grid = [
        dataclasses.replace(base, autoscale=name) for name in governors
    ]
    return control_sweep(grid, jobs=jobs, cache=cache)


def static_frontier_sweep(
    base: ControlScenario,
    voltages: Sequence[float],
    fleet_sizes: Sequence[int],
    jobs: int | None = 1,
    cache: ResultCache | None = None,
) -> list[ServingReport]:
    """Sample the static energy/SLO design space (row-major order).

    Each grid point is a homogeneous fleet of ``n`` instances all at
    voltage ``v`` (running at that voltage's f_max), with no governor —
    the static baselines an autoscaler must beat.
    """
    if not voltages or not fleet_sizes:
        raise ConfigError("frontier sweep needs voltages and fleet sizes")
    grid = [
        dataclasses.replace(
            base,
            autoscale="none",
            fleet=tuple(
                InstanceSpec(voltage_v=float(v)) for _ in range(n)
            ),
        )
        for v in voltages
        for n in fleet_sizes
    ]
    return control_sweep(grid, jobs=jobs, cache=cache)


def pareto_frontier(reports: Sequence[ServingReport]) -> list[int]:
    """Indices of the reports not dominated on (energy, attainment).

    A report dominates another when it uses no more energy *and*
    attains no less of its SLOs, with at least one strict inequality.
    Reports without energy or attainment data are never on the
    frontier.  Indices come back sorted by energy (ascending).
    """
    if not reports:
        raise ConfigError("pareto_frontier needs at least one report")
    candidates = [
        (i, r.energy_joules, r.slo_attainment)
        for i, r in enumerate(reports)
        if r.energy_joules is not None and r.slo_attainment is not None
    ]
    frontier = []
    for i, energy, attainment in candidates:
        dominated = any(
            (oe <= energy and oa >= attainment)
            and (oe < energy or oa > attainment)
            for j, oe, oa in candidates
            if j != i
        )
        if not dominated:
            frontier.append((energy, i))
    return [i for _, i in sorted(frontier)]
