"""Command-line interface: ``repro <command>`` / ``python -m repro``.

Commands:

* ``list`` — show all reproducible figure/table ids.
* ``run <id> [...]`` — regenerate one or more experiments and print them.
* ``all`` — regenerate everything (the measured experiments prepare a
  full-width workload once, ~15 s).
* ``sweep`` — width/resolution scaling sweep through the parallel
  executor.
* ``serve`` — request-level serving simulation over an accelerator
  fleet (arrival process incl. diurnal day/night traffic, scheduling
  policy incl. deadline-/energy-aware routing, batching; reports
  p50/p95/p99 latency, sustained QPS, per-instance utilization; can
  sweep policies x fleet sizes or sample a throughput-latency curve).
  SLO flags (``--slo-classes``/``--shedding``/``--autoscale``) route
  the run through the control plane.
* ``control`` — SLO-aware control plane over the serving fleet:
  deadline/priority classes (bindable to individual zoo models via
  ``model=`` for multi-tenant SLOs), admission control and load
  shedding, DVFS-heterogeneous fleets with energy accounting,
  autoscaling governors (incl. the forecast-driven ``predictive``
  one), correlated multi-fleet co-simulation with cross-fleet
  spillover (``--multi-fleet-qps``), and energy-vs-attainment
  governor sweeps with Pareto marking.
* ``info`` — print the library's headline reproduction summary.
* ``report`` — check every reproduced claim against the paper.
* ``trace summary <path>`` — inspect a trace recorded with
  ``--trace`` (event counts by phase/category/process, time span).

``serve`` and ``control`` accept ``--json PATH`` to also write the
report(s) machine-readably for external tooling, ``--trace PATH``
to record per-request spans as Perfetto-loadable Chrome trace-event
JSON, and ``--metrics-every SECS`` to sample rolling engine metrics
on the tick cadence.

Performance flags (each registered only where it has an effect):

* ``--jobs N`` (``run``/``all``/``sweep``) — fan independent work out
  across N worker processes (0 = one per CPU; default 1 = serial).
* ``--cache-dir PATH`` (``run``/``all``/``report``/``sweep``) —
  persist simulation results (sweep points, measured workloads) so
  repeated runs with identical configurations are served from disk.
* ``--fast`` (``run``/``all``/``report``) — analytic fast-latency
  mode for measured workloads (aggregate latency/energy only; skips
  event-driven tracing).

Examples::

    repro list
    repro run fig13 table3
    repro run fig12 --width 0.25 --fast      # fast, reduced-width
    repro all --jobs 4 --cache-dir ~/.cache/repro
    repro sweep --widths 0.5,1.0 --resolutions 32,64 --jobs 4
    repro serve --instances 4 --policy least-loaded
    repro serve --arrival bursty --qps 4000 --mix mixed
    repro serve --sweep-policies round-robin,least-loaded,affinity \
        --sweep-instances 1,2,4 --jobs 4 --cache-dir /tmp/repro-cache
    repro serve --curve-qps 1000,2000,4000,6000,8000
    repro control --shedding priority --queue-threshold 32 --json out.json
    repro control --autoscale utilization --min-instances 1
    repro control --fleet 0.8x2,0.6x2        # DVFS-heterogeneous fleet
    repro control --fleet 0.8x2,0.6x2 --policy energy-aware
    repro control --policy deadline-aware --shedding deadline
    repro control --arrival diurnal --diurnal-period 30 \
        --autoscale utilization --min-instances 1
    repro control --arrival diurnal --autoscale predictive
    repro control --slo-classes \
        "llm:deadline=5ms:model=mobilenet-v1-224,default:deadline=50"
    repro control --multi-fleet-qps 2000,800 --modulator diurnal \
        --spillover deadline --shedding deadline
    repro control --sweep-voltages 0.6,0.7,0.8 --sweep-fleet-sizes 1,2,4
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import tempfile
from pathlib import Path

from . import __version__
from .checkpoint import (
    resume_checkpointed,
    run_control_checkpointed,
    run_serve_checkpointed,
)
from .control import (
    DEFAULT_SLO_CLASSES,
    GOVERNORS,
    SHEDDING_POLICIES,
    ControlScenario,
    MultiFleetScenario,
    governor_sweep,
    multi_fleet_sweep,
    pareto_frontier,
    parse_fleet_spec,
    parse_slo_classes,
    simulate_controlled,
    simulate_multi_fleet,
    static_frontier_sweep,
)
from .errors import ReproError
from .eval import list_experiments, prepare_workload, run_experiment
from .eval.control import (
    multi_fleet_to_dict,
    render_control_report,
    render_control_sweep,
    render_multi_fleet_report,
    report_to_dict,
)
from .eval.obs import engine_counters_dict, render_metrics_timeline
from .eval.paper_data import PAPER_HEADLINE
from .eval.report import render_table
from .eval.serving import (
    render_serving_report,
    render_serving_sweep,
    render_throughput_latency,
)
from .eval.sweep import width_resolution_sweep
from .obs import Observability, render_trace_summary, summarize_trace
from .parallel import ParallelExecutor, ResultCache
from .serve import (
    POLICIES,
    SCENARIO_MIXES,
    ServingScenario,
    policy_fleet_sweep,
    simulate,
    throughput_latency_curve,
)

__all__ = ["main", "build_parser"]

#: Experiments that need the trained/simulated workload.
MEASURED_EXPERIMENTS = ("fig11", "fig12")


def _add_performance_flags(
    parser: argparse.ArgumentParser,
    jobs: bool = True,
    fast: bool = True,
) -> None:
    if jobs:
        parser.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="worker processes for independent work "
                 "(default 1 = serial; 0 = one per CPU)",
        )
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="persist simulation results under PATH and reuse them "
             "across runs",
    )
    if fast:
        parser.add_argument(
            "--fast", action="store_true",
            help="analytic fast-latency mode for measured workloads "
                 "(aggregate latency/energy only)",
        )


def _add_checkpoint_flags(parser: argparse.ArgumentParser) -> None:
    """Checkpoint/resume flags shared by ``serve`` and ``control``."""
    parser.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        dest="checkpoint_path",
        help="save an atomic resume checkpoint to PATH every "
             "--checkpoint-every simulated seconds",
    )
    parser.add_argument(
        "--checkpoint-every", type=float, default=None,
        metavar="SECS", dest="checkpoint_every_s",
        help="simulated seconds between checkpoints (with "
             "--checkpoint)",
    )
    parser.add_argument(
        "--resume", default=None, metavar="PATH", dest="resume_path",
        help="resume an interrupted run from PATH; the scenario comes "
             "from the checkpoint, the report is byte-identical to "
             "the uninterrupted run",
    )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """Telemetry flags shared by ``serve`` and ``control``."""
    parser.add_argument(
        "--trace", default=None, metavar="PATH", dest="trace_path",
        help="record per-request spans and engine events to PATH as "
             "Chrome trace-event JSON (open in Perfetto or "
             "chrome://tracing); distinct from --trace-file, which "
             "feeds arrival timestamps in",
    )
    parser.add_argument(
        "--metrics-every", type=float, default=None, metavar="SECS",
        dest="metrics_every_s",
        help="sample rolling engine metrics (rates, queue depth, "
             "utilization, power) every SECS simulated seconds; "
             "printed as a table and embedded in --json",
    )


def _add_traffic_flags(parser: argparse.ArgumentParser) -> None:
    """Data-plane scenario flags shared by ``serve`` and ``control``."""
    parser.add_argument(
        "--mix", default="mixed", choices=sorted(SCENARIO_MIXES),
        help="traffic scenario mix (default: mixed)",
    )
    parser.add_argument(
        "--arrival", default="poisson",
        choices=["poisson", "bursty", "diurnal", "trace"],
        help="arrival process (default: poisson)",
    )
    parser.add_argument(
        "--qps", type=float, default=None,
        help="offered rate; omitted = 70%% of fleet capacity",
    )
    parser.add_argument(
        "--requests", type=int, default=10_000,
        help="requests to simulate (default: 10000)",
    )
    parser.add_argument(
        "--instances", type=int, default=4,
        help="fleet size (default: 4)",
    )
    parser.add_argument(
        "--policy", default="least-loaded", choices=sorted(POLICIES),
        help="scheduling policy (default: least-loaded)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=8,
        help="largest same-model batch per launch (default: 8)",
    )
    parser.add_argument(
        "--max-wait-ms", type=float, default=2.0,
        help="longest a queue head waits to fill its batch (default: 2)",
    )
    parser.add_argument(
        "--burst-factor", type=float, default=4.0,
        help="burst-state rate multiplier for --arrival bursty",
    )
    parser.add_argument(
        "--diurnal-period", type=float, default=60.0,
        dest="diurnal_period_s", metavar="SECONDS",
        help="day/night cycle length for --arrival diurnal "
             "(default: 60)",
    )
    parser.add_argument(
        "--diurnal-amplitude", type=float, default=0.8,
        help="peak-to-mean swing in [0, 1] for --arrival diurnal "
             "(default: 0.8)",
    )
    parser.add_argument(
        "--trace-file", default=None, metavar="PATH",
        help="arrival timestamps (seconds, one per line) for "
             "--arrival trace",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="simulation seed",
    )
    parser.add_argument(
        "--stats", default="exact", choices=["exact", "sketch"],
        help="latency statistics mode: exact retains every latency, "
             "sketch streams them through a t-digest with flat memory "
             "(default: exact)",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH", dest="json_path",
        help="also write the report(s) as machine-readable JSON",
    )


def _add_slo_flags(parser: argparse.ArgumentParser) -> None:
    """Control-plane flags (on ``serve`` they reroute the run through
    the control simulator)."""
    parser.add_argument(
        "--slo-classes", default=None,
        metavar="NAME:DEADLINE_MS[:TARGET[:PRIO[:SHARE]]],...",
        help="SLO classes (default: interactive/standard/batch "
             "tiers); fields may also be key=value — incl. model=, "
             "which binds the class to one zoo model's traffic, "
             "e.g. llm:deadline=5ms:model=mobilenet-v1-224",
    )
    parser.add_argument(
        "--shedding", default=None, choices=sorted(SHEDDING_POLICIES),
        help="admission/shedding policy (default: none)",
    )
    parser.add_argument(
        "--queue-threshold", type=int, default=64,
        help="queue bound for queue-depth/priority shedding "
             "(default: 64)",
    )
    parser.add_argument(
        "--autoscale", default=None,
        choices=sorted(GOVERNORS),
        help="autoscaling governor (default: none)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EDEA (SOCC 2024) reproduction - experiment runner",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list reproducible figure/table ids")
    sub.add_parser("info", help="print the headline reproduction summary")

    report_parser = sub.add_parser(
        "report", help="check every reproduced claim against the paper"
    )
    report_parser.add_argument(
        "--width", type=float, default=None,
        help="also run the measured (power/efficiency) claims on a "
             "workload of this width (e.g. 1.0; omitted = analytic only)",
    )
    _add_performance_flags(report_parser, jobs=False)

    run_parser = sub.add_parser("run", help="run one or more experiments")
    run_parser.add_argument(
        "experiments", nargs="+", metavar="ID",
        help="figure/table ids (see 'list')",
    )
    run_parser.add_argument(
        "--width", type=float, default=1.0,
        help="MobileNet width multiplier for measured experiments "
             "(default 1.0; use 0.25 for a fast demo)",
    )
    _add_performance_flags(run_parser)

    all_parser = sub.add_parser("all", help="run every experiment")
    all_parser.add_argument("--width", type=float, default=1.0)
    _add_performance_flags(all_parser)

    sweep_parser = sub.add_parser(
        "sweep", help="width/resolution scaling sweep"
    )
    sweep_parser.add_argument(
        "--widths", default="0.25,0.5,0.75,1.0", metavar="W,W,...",
        help="comma-separated MobileNet width multipliers",
    )
    sweep_parser.add_argument(
        "--resolutions", default="32,64,128,224", metavar="R,R,...",
        help="comma-separated input resolutions",
    )
    _add_performance_flags(sweep_parser, fast=False)

    serve_parser = sub.add_parser(
        "serve",
        help="request-level serving simulation over an accelerator fleet",
    )
    _add_traffic_flags(serve_parser)
    serve_parser.add_argument(
        "--sweep-policies", default=None, metavar="P,P,...",
        help="sweep these policies (with --sweep-instances) through "
             "the parallel executor",
    )
    serve_parser.add_argument(
        "--sweep-instances", default=None, metavar="N,N,...",
        help="sweep these fleet sizes (with --sweep-policies)",
    )
    serve_parser.add_argument(
        "--curve-qps", default=None, metavar="Q,Q,...",
        help="sample the throughput-latency curve at these offered "
             "rates",
    )
    _add_slo_flags(serve_parser)
    _add_checkpoint_flags(serve_parser)
    _add_obs_flags(serve_parser)
    _add_performance_flags(serve_parser, fast=False)

    control_parser = sub.add_parser(
        "control",
        help="SLO-aware control plane: deadlines, shedding, DVFS "
             "fleets, autoscaling, energy",
    )
    _add_traffic_flags(control_parser)
    _add_slo_flags(control_parser)
    control_parser.add_argument(
        "--fleet", default=None, metavar="V[xN],...",
        help="DVFS-heterogeneous fleet spec, e.g. 0.8x2,0.6x2 "
             "(overrides --instances)",
    )
    control_parser.add_argument(
        "--tick-ms", type=float, default=10.0,
        help="autoscaler evaluation interval (default: 10)",
    )
    control_parser.add_argument(
        "--min-instances", type=int, default=1,
        help="autoscaler lower bound (default: 1)",
    )
    control_parser.add_argument(
        "--max-instances", type=int, default=None,
        help="autoscaler upper bound (default: fleet size)",
    )
    control_parser.add_argument(
        "--util-low", type=float, default=0.3,
        help="scale-down utilization threshold (default: 0.3)",
    )
    control_parser.add_argument(
        "--util-high", type=float, default=0.85,
        help="scale-up utilization threshold (default: 0.85)",
    )
    control_parser.add_argument(
        "--target-delay-ms", type=float, default=5.0,
        help="queue-delay governor setpoint (default: 5)",
    )
    control_parser.add_argument(
        "--dvfs-ladder", default="0.6,0.7,0.8", metavar="V,V,...",
        help="voltage ladder for --autoscale dvfs (default: 0.6,0.7,0.8)",
    )
    control_parser.add_argument(
        "--multi-fleet-qps", default=None, metavar="Q,Q,...",
        help="co-simulate one fleet per offered rate, their arrivals "
             "correlated through a shared traffic modulator "
             "(replicates the base scenario per fleet)",
    )
    control_parser.add_argument(
        "--modulator", default="diurnal",
        choices=["diurnal", "burst"],
        help="shared multi-fleet rate modulator (default: diurnal; "
             "uses --diurnal-period/--diurnal-amplitude or "
             "--burst-factor)",
    )
    control_parser.add_argument(
        "--spillover", default="none",
        choices=["none", "deadline"],
        help="cross-fleet spillover: fleets at rho > 1 forward shed, "
             "deadline-feasible requests to the sibling with the most "
             "headroom (default: none)",
    )
    control_parser.add_argument(
        "--spillover-hop-ms", type=float, default=0.5,
        help="forwarding latency a spilled request pays (default: 0.5)",
    )
    control_parser.add_argument(
        "--sweep-governors", default=None, metavar="G,G,...",
        help="compare these autoscaling governors on the same traffic",
    )
    control_parser.add_argument(
        "--sweep-voltages", default=None, metavar="V,V,...",
        help="static energy/SLO frontier over these voltages (with "
             "--sweep-fleet-sizes)",
    )
    control_parser.add_argument(
        "--sweep-fleet-sizes", default=None, metavar="N,N,...",
        help="static frontier fleet sizes (with --sweep-voltages)",
    )
    _add_checkpoint_flags(control_parser)
    _add_obs_flags(control_parser)
    _add_performance_flags(control_parser, fast=False)

    trace_parser = sub.add_parser(
        "trace", help="inspect a trace recorded with --trace"
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command")
    trace_summary = trace_sub.add_parser(
        "summary",
        help="event counts, categories, and time span of one trace",
    )
    trace_summary.add_argument(
        "path", metavar="PATH",
        help="trace-event JSON written by serve/control --trace",
    )
    return parser


def _cache_from(args) -> ResultCache | None:
    if getattr(args, "cache_dir", None) is None:
        return None
    return ResultCache(args.cache_dir)


def _workload_if_needed(experiment_ids, args):
    if any(eid in MEASURED_EXPERIMENTS for eid in experiment_ids):
        return prepare_workload(
            width_multiplier=args.width,
            fast=getattr(args, "fast", False),
            cache=_cache_from(args),
        )
    return None


def _run(experiment_ids, args, out) -> None:
    workload = _workload_if_needed(experiment_ids, args)
    analytic = [e for e in experiment_ids if e not in MEASURED_EXPERIMENTS]
    results = {}
    if args.jobs != 1 and len(analytic) > 1:
        executor = ParallelExecutor(jobs=args.jobs)
        for eid, result in zip(
            analytic,
            executor.map(run_experiment, [(eid,) for eid in analytic]),
        ):
            results[eid] = result
    for eid in experiment_ids:
        if eid not in results:
            results[eid] = run_experiment(
                eid, workload if eid in MEASURED_EXPERIMENTS else None
            )
        print(results[eid].text, file=out)
        print(file=out)


def _parse_grid(text: str, kind: type):
    try:
        values = tuple(kind(part) for part in text.split(",") if part)
    except ValueError:
        raise ReproError(
            f"cannot parse {text!r} as {kind.__name__} list"
        ) from None
    return values


def _sweep(args, out) -> None:
    points = width_resolution_sweep(
        widths=_parse_grid(args.widths, float),
        resolutions=_parse_grid(args.resolutions, int),
        jobs=args.jobs,
        cache=_cache_from(args),
    )
    rows = [
        [
            p.width,
            p.resolution,
            p.total_macs,
            p.total_cycles,
            round(p.latency_us, 2),
            round(p.throughput_gops, 2),
            round(100 * p.init_fraction, 2),
        ]
        for p in points
    ]
    text = render_table(
        f"Width/resolution sweep ({len(points)} points, "
        f"jobs={args.jobs})",
        ["Width", "Res", "MACs", "Cycles", "Latency us", "GOPS", "Init %"],
        rows,
    )
    print(text, file=out)


def _read_trace(path: str) -> tuple[float, ...]:
    try:
        with open(path) as handle:
            return tuple(
                float(line) for line in handle if line.strip()
            )
    except OSError as exc:
        raise ReproError(f"cannot read trace file {path}: {exc}") from exc
    except ValueError:
        raise ReproError(
            f"trace file {path} must contain one timestamp per line"
        ) from None


def _write_json_payload(path: str, payload: dict) -> None:
    # Atomic, same idiom as the result cache: serialize into a temp
    # file in the target directory, then os.replace.  A reader (or a
    # crashed run) sees the old complete file or the new one, never a
    # truncated half-write.
    target = Path(path)
    try:
        fd, tmp_name = tempfile.mkstemp(
            dir=target.parent or Path("."),
            prefix=".tmp-",
            suffix=".json",
        )
    except OSError as exc:
        raise ReproError(f"cannot write JSON to {path}: {exc}") from exc
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        os.replace(tmp_name, target)
    except OSError as exc:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise ReproError(f"cannot write JSON to {path}: {exc}") from exc
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _write_json(path: str, reports, obs=None) -> None:
    payload = {"reports": [report_to_dict(r) for r in reports]}
    # Execution telemetry rides beside the reports, not inside them:
    # report dicts stay byte-stable for the parity goldens and caches.
    engine = [engine_counters_dict(r) for r in reports]
    if any(entry is not None for entry in engine):
        payload["engine"] = engine
    if obs is not None:
        metrics = obs.metrics_payload()
        if metrics is not None:
            payload["metrics"] = metrics
    _write_json_payload(path, payload)


def _obs_from(args):
    """The run's :class:`~repro.obs.Observability`, or ``None`` when
    neither telemetry flag was given."""
    trace = getattr(args, "trace_path", None)
    every = getattr(args, "metrics_every_s", None)
    if trace is None and every is None:
        return None
    if every is not None and every <= 0:
        raise ReproError(
            f"--metrics-every must be positive (got {every})"
        )
    return Observability(trace=trace is not None, metrics_every_s=every)


def _reject_obs_with(args, what: str) -> None:
    if (
        getattr(args, "trace_path", None)
        or getattr(args, "metrics_every_s", None) is not None
    ):
        raise ReproError(
            f"--trace/--metrics-every cannot be combined with {what}; "
            "telemetry covers single runs (and --multi-fleet-qps) only"
        )


def _emit_obs(args, obs, out) -> None:
    """Write the trace file and print the metrics tables, if recorded."""
    if obs is None:
        return
    if args.trace_path:
        obs.write_trace(args.trace_path)
    metrics = obs.metrics_payload()
    if metrics is not None:
        print(file=out)
        print(render_metrics_timeline(metrics), file=out)


def _read_trace_arg(args) -> tuple[float, ...] | None:
    trace = (
        _read_trace(args.trace_file)
        if args.trace_file is not None
        else None
    )
    if args.arrival == "trace" and trace is None:
        raise ReproError("--arrival trace requires --trace-file")
    return trace


def _check_diurnal_amplitude(args) -> None:
    """Reject a full-swing amplitude with the flag's own name before
    the scenario machinery reports it in dataclass terms (the same
    bound :class:`~repro.serve.arrival.DiurnalArrivals` enforces)."""
    uses_diurnal = args.arrival == "diurnal" or (
        getattr(args, "multi_fleet_qps", None)
        and getattr(args, "modulator", None) == "diurnal"
    )
    if uses_diurnal and not 0.0 <= args.diurnal_amplitude < 1.0:
        raise ReproError(
            f"--diurnal-amplitude must be in [0, 1) "
            f"(got {args.diurnal_amplitude}): amplitude 1.0 drives "
            "the trough rate to exactly 0 — use 0.999 for a "
            "near-quiet night"
        )


def _control_scenario(args, trace) -> ControlScenario:
    kwargs = dict(
        mix=args.mix,
        arrival=args.arrival,
        qps=args.qps,
        burst_factor=args.burst_factor,
        trace=trace,
        requests=args.requests,
        instances=args.instances,
        policy=args.policy,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        seed=args.seed,
        diurnal_period_s=args.diurnal_period_s,
        diurnal_amplitude=args.diurnal_amplitude,
        slo_classes=(
            parse_slo_classes(args.slo_classes)
            if args.slo_classes
            else DEFAULT_SLO_CLASSES
        ),
        shedding=args.shedding or "none",
        queue_threshold=args.queue_threshold,
        autoscale=args.autoscale or "none",
        stats=getattr(args, "stats", "exact"),
    )
    if getattr(args, "fleet", None):
        kwargs["fleet"] = parse_fleet_spec(args.fleet)
    # `serve` registers only the SLO flags; the governor knobs exist on
    # `control` alone, so absent attributes fall through to the
    # ControlScenario defaults instead of a re-hardcoded copy here.
    for name in (
        "tick_ms",
        "min_instances",
        "max_instances",
        "util_low",
        "util_high",
        "target_delay_ms",
    ):
        if hasattr(args, name):
            kwargs[name] = getattr(args, name)
    if getattr(args, "dvfs_ladder", None):
        kwargs["dvfs_ladder"] = _parse_grid(args.dvfs_ladder, float)
    return ControlScenario(**kwargs)


def _checkpoint_args(args) -> tuple[str | None, float | None]:
    """Validate the checkpoint flag pair; returns ``(path, every_s)``."""
    path = args.checkpoint_path
    every = args.checkpoint_every_s
    if (path is None) != (every is None):
        raise ReproError(
            "--checkpoint and --checkpoint-every must be given "
            "together"
        )
    if every is not None and every <= 0:
        raise ReproError(
            f"--checkpoint-every must be positive (got {every})"
        )
    return path, every


def _reject_checkpoint_with(args, what: str) -> None:
    if (
        args.checkpoint_path
        or args.checkpoint_every_s is not None
        or args.resume_path
    ):
        raise ReproError(
            f"--checkpoint/--resume cannot be combined with {what}; "
            "checkpointing covers single runs only"
        )


def _resume(args, out) -> None:
    """Continue an interrupted run; the scenario lives in the
    checkpoint, so traffic/fleet flags on the command line are
    ignored.  Telemetry flags must match the checkpointing run's —
    the recorded spans live in the checkpoint and land back on an
    identically configured observer."""
    obs = _obs_from(args)
    kind, _scenario, report = resume_checkpointed(
        args.resume_path, checkpoint_path=args.checkpoint_path, obs=obs
    )
    if kind == "control":
        print(render_control_report(report), file=out)
    else:
        print(render_serving_report(report), file=out)
    _emit_obs(args, obs, out)
    if args.json_path:
        _write_json(args.json_path, [report], obs)


def _serve(args, out) -> None:
    if args.sweep_policies or args.sweep_instances or args.curve_qps:
        _reject_checkpoint_with(args, "serve sweeps")
        _reject_obs_with(args, "serve sweeps")
    if args.resume_path:
        _resume(args, out)
        return
    trace = _read_trace_arg(args)
    _check_diurnal_amplitude(args)
    checkpoint_path, checkpoint_every = _checkpoint_args(args)
    obs = _obs_from(args)
    if args.slo_classes or args.shedding or args.autoscale:
        if args.sweep_policies or args.sweep_instances or args.curve_qps:
            raise ReproError(
                "SLO/control flags cannot be combined with serve "
                "sweeps; use 'repro control' for governor sweeps"
            )
        control_scenario = _control_scenario(args, trace)
        if checkpoint_path:
            report = run_control_checkpointed(
                control_scenario, checkpoint_path, checkpoint_every,
                obs=obs,
            )
        else:
            report = simulate_controlled(control_scenario, obs=obs)
        print(render_control_report(report), file=out)
        _emit_obs(args, obs, out)
        if args.json_path:
            _write_json(args.json_path, [report], obs)
        return
    scenario = ServingScenario(
        mix=args.mix,
        arrival=args.arrival,
        qps=args.qps,
        burst_factor=args.burst_factor,
        trace=trace,
        requests=args.requests,
        instances=args.instances,
        policy=args.policy,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        seed=args.seed,
        diurnal_period_s=args.diurnal_period_s,
        diurnal_amplitude=args.diurnal_amplitude,
        stats=args.stats,
    )
    cache = _cache_from(args)
    if args.curve_qps and (args.sweep_policies or args.sweep_instances):
        raise ReproError(
            "--curve-qps cannot be combined with --sweep-policies/"
            "--sweep-instances; run them separately"
        )
    if args.sweep_policies or args.sweep_instances:
        policies = (
            [p for p in args.sweep_policies.split(",") if p]
            if args.sweep_policies
            else [args.policy]
        )
        counts = (
            list(_parse_grid(args.sweep_instances, int))
            if args.sweep_instances
            else [args.instances]
        )
        reports = policy_fleet_sweep(
            scenario, policies, counts, jobs=args.jobs, cache=cache
        )
        print(render_serving_sweep(reports), file=out)
    elif args.curve_qps:
        reports = throughput_latency_curve(
            scenario,
            _parse_grid(args.curve_qps, float),
            jobs=args.jobs,
            cache=cache,
        )
        print(render_throughput_latency(reports), file=out)
    elif checkpoint_path:
        reports = [
            run_serve_checkpointed(
                scenario, checkpoint_path, checkpoint_every, obs=obs
            )
        ]
        print(render_serving_report(reports[0]), file=out)
    else:
        reports = [simulate(scenario, obs=obs)]
        print(render_serving_report(reports[0]), file=out)
    _emit_obs(args, obs, out)
    if args.json_path:
        _write_json(args.json_path, reports, obs)


def _multi_fleet(args, base, cache, out, obs=None) -> None:
    if args.arrival != "poisson":
        raise ReproError(
            "--arrival has no effect with --multi-fleet-qps: member "
            "arrivals come from the shared --modulator (diurnal|burst)"
        )
    rates = _parse_grid(args.multi_fleet_qps, float)
    # Member fields the co-simulation ignores (seed, per-fleet arrival
    # shape) are pinned to their defaults: they must neither suggest an
    # effect they don't have nor perturb the cache content key — the
    # modulator owns the traffic shape at the MultiFleetScenario level.
    fields = ControlScenario.__dataclass_fields__
    ignored = {
        name: fields[name].default
        for name in (
            "burst_factor", "diurnal_period_s", "diurnal_amplitude"
        )
    }
    scenario = MultiFleetScenario(
        fleets=tuple(
            dataclasses.replace(
                base, qps=qps, seed=0, trace=None, **ignored
            )
            for qps in rates
        ),
        modulator=args.modulator,
        period_s=args.diurnal_period_s,
        amplitude=args.diurnal_amplitude,
        burst_factor=args.burst_factor,
        spillover=args.spillover,
        spillover_hop_ms=args.spillover_hop_ms,
        seed=args.seed,
    )
    if obs is not None:
        # Telemetry observes execution, so the run can't be served
        # from (or stored into) the result cache — simulate directly.
        report = simulate_multi_fleet(scenario, jobs=args.jobs, obs=obs)
    else:
        report = multi_fleet_sweep(
            [scenario], jobs=args.jobs, cache=cache
        )[0]
    print(render_multi_fleet_report(report), file=out)
    _emit_obs(args, obs, out)
    if args.json_path:
        payload = {"multi_fleet": multi_fleet_to_dict(report)}
        if obs is not None:
            metrics = obs.metrics_payload()
            if metrics is not None:
                payload["metrics"] = metrics
        _write_json_payload(args.json_path, payload)


def _control(args, out) -> None:
    if (
        args.sweep_governors
        or args.sweep_voltages
        or args.sweep_fleet_sizes
        or args.multi_fleet_qps
    ):
        _reject_checkpoint_with(args, "governor/frontier sweeps and "
                                      "--multi-fleet-qps")
    if args.resume_path:
        _resume(args, out)
        return
    trace = _read_trace_arg(args)
    _check_diurnal_amplitude(args)
    checkpoint_path, checkpoint_every = _checkpoint_args(args)
    base = _control_scenario(args, trace)
    cache = _cache_from(args)
    voltage_sweep = args.sweep_voltages or args.sweep_fleet_sizes
    if args.sweep_governors or voltage_sweep:
        _reject_obs_with(args, "governor/frontier sweeps")
    if args.sweep_governors and voltage_sweep:
        raise ReproError(
            "--sweep-governors cannot be combined with the static "
            "--sweep-voltages/--sweep-fleet-sizes frontier; run them "
            "separately"
        )
    obs = _obs_from(args)
    if args.multi_fleet_qps:
        if args.sweep_governors or voltage_sweep:
            raise ReproError(
                "--multi-fleet-qps cannot be combined with governor "
                "or frontier sweeps; run them separately"
            )
        _multi_fleet(args, base, cache, out, obs)
        return
    if args.sweep_governors:
        governors = [g for g in args.sweep_governors.split(",") if g]
        reports = governor_sweep(
            base, governors, jobs=args.jobs, cache=cache
        )
        labels = governors
    elif voltage_sweep:
        voltages = (
            list(_parse_grid(args.sweep_voltages, float))
            if args.sweep_voltages
            else [0.8]
        )
        sizes = (
            list(_parse_grid(args.sweep_fleet_sizes, int))
            if args.sweep_fleet_sizes
            else [args.instances]
        )
        reports = static_frontier_sweep(
            base, voltages, sizes, jobs=args.jobs, cache=cache
        )
        labels = [f"{v:.2f}V x{n}" for v in voltages for n in sizes]
    else:
        if checkpoint_path:
            report = run_control_checkpointed(
                base, checkpoint_path, checkpoint_every, obs=obs
            )
        else:
            report = simulate_controlled(base, obs=obs)
        print(render_control_report(report), file=out)
        _emit_obs(args, obs, out)
        if args.json_path:
            _write_json(args.json_path, [report], obs)
        return
    frontier = pareto_frontier(reports)
    print(
        render_control_sweep(reports, labels, frontier), file=out
    )
    if args.json_path:
        _write_json(args.json_path, reports)


def _info(out) -> None:
    print("EDEA reproduction - headline numbers (paper values)", file=out)
    for key, value in sorted(PAPER_HEADLINE.items()):
        print(f"  {key:32s} {value}", file=out)
    print(
        "\nSee EXPERIMENTS.md for the full paper-vs-measured comparison.",
        file=out,
    )


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help(file=out)
        return 2
    try:
        if args.command == "list":
            for eid in list_experiments():
                print(eid, file=out)
        elif args.command == "info":
            _info(out)
        elif args.command == "run":
            _run(args.experiments, args, out)
        elif args.command == "all":
            _run(list_experiments(), args, out)
        elif args.command == "sweep":
            _sweep(args, out)
        elif args.command == "serve":
            _serve(args, out)
        elif args.command == "control":
            _control(args, out)
        elif args.command == "trace":
            if getattr(args, "trace_command", None) != "summary":
                print(
                    "usage: repro trace summary PATH", file=sys.stderr
                )
                return 2
            print(
                render_trace_summary(
                    args.path, summarize_trace(args.path)
                ),
                file=out,
            )
        elif args.command == "report":
            from .eval import render_report, reproduction_report

            workload = (
                prepare_workload(
                    width_multiplier=args.width,
                    fast=args.fast,
                    cache=_cache_from(args),
                )
                if args.width is not None
                else None
            )
            checks = reproduction_report(workload)
            print(render_report(checks), file=out)
            if not all(c.passed for c in checks):
                return 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0
