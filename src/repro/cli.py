"""Command-line interface: ``repro <command>`` / ``python -m repro``.

Commands:

* ``list`` — show all reproducible figure/table ids.
* ``run <id> [...]`` — regenerate one or more experiments and print them.
* ``all`` — regenerate everything (the measured experiments prepare a
  full-width workload once, ~15 s).
* ``sweep`` — width/resolution scaling sweep through the parallel
  executor.
* ``info`` — print the library's headline reproduction summary.
* ``report`` — check every reproduced claim against the paper.

Performance flags (each registered only where it has an effect):

* ``--jobs N`` (``run``/``all``/``sweep``) — fan independent work out
  across N worker processes (0 = one per CPU; default 1 = serial).
* ``--cache-dir PATH`` (``run``/``all``/``report``/``sweep``) —
  persist simulation results (sweep points, measured workloads) so
  repeated runs with identical configurations are served from disk.
* ``--fast`` (``run``/``all``/``report``) — analytic fast-latency
  mode for measured workloads (aggregate latency/energy only; skips
  event-driven tracing).

Examples::

    repro list
    repro run fig13 table3
    repro run fig12 --width 0.25 --fast      # fast, reduced-width
    repro all --jobs 4 --cache-dir ~/.cache/repro
    repro sweep --widths 0.5,1.0 --resolutions 32,64 --jobs 4
"""

from __future__ import annotations

import argparse
import sys

from . import __version__
from .errors import ReproError
from .eval import list_experiments, prepare_workload, run_experiment
from .eval.paper_data import PAPER_HEADLINE
from .eval.report import render_table
from .eval.sweep import width_resolution_sweep
from .parallel import ParallelExecutor, ResultCache

__all__ = ["main", "build_parser"]

#: Experiments that need the trained/simulated workload.
MEASURED_EXPERIMENTS = ("fig11", "fig12")


def _add_performance_flags(
    parser: argparse.ArgumentParser,
    jobs: bool = True,
    fast: bool = True,
) -> None:
    if jobs:
        parser.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="worker processes for independent work "
                 "(default 1 = serial; 0 = one per CPU)",
        )
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="persist simulation results under PATH and reuse them "
             "across runs",
    )
    if fast:
        parser.add_argument(
            "--fast", action="store_true",
            help="analytic fast-latency mode for measured workloads "
                 "(aggregate latency/energy only)",
        )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EDEA (SOCC 2024) reproduction - experiment runner",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list reproducible figure/table ids")
    sub.add_parser("info", help="print the headline reproduction summary")

    report_parser = sub.add_parser(
        "report", help="check every reproduced claim against the paper"
    )
    report_parser.add_argument(
        "--width", type=float, default=None,
        help="also run the measured (power/efficiency) claims on a "
             "workload of this width (e.g. 1.0; omitted = analytic only)",
    )
    _add_performance_flags(report_parser, jobs=False)

    run_parser = sub.add_parser("run", help="run one or more experiments")
    run_parser.add_argument(
        "experiments", nargs="+", metavar="ID",
        help="figure/table ids (see 'list')",
    )
    run_parser.add_argument(
        "--width", type=float, default=1.0,
        help="MobileNet width multiplier for measured experiments "
             "(default 1.0; use 0.25 for a fast demo)",
    )
    _add_performance_flags(run_parser)

    all_parser = sub.add_parser("all", help="run every experiment")
    all_parser.add_argument("--width", type=float, default=1.0)
    _add_performance_flags(all_parser)

    sweep_parser = sub.add_parser(
        "sweep", help="width/resolution scaling sweep"
    )
    sweep_parser.add_argument(
        "--widths", default="0.25,0.5,0.75,1.0", metavar="W,W,...",
        help="comma-separated MobileNet width multipliers",
    )
    sweep_parser.add_argument(
        "--resolutions", default="32,64,128,224", metavar="R,R,...",
        help="comma-separated input resolutions",
    )
    _add_performance_flags(sweep_parser, fast=False)
    return parser


def _cache_from(args) -> ResultCache | None:
    if getattr(args, "cache_dir", None) is None:
        return None
    return ResultCache(args.cache_dir)


def _workload_if_needed(experiment_ids, args):
    if any(eid in MEASURED_EXPERIMENTS for eid in experiment_ids):
        return prepare_workload(
            width_multiplier=args.width,
            fast=getattr(args, "fast", False),
            cache=_cache_from(args),
        )
    return None


def _run(experiment_ids, args, out) -> None:
    workload = _workload_if_needed(experiment_ids, args)
    analytic = [e for e in experiment_ids if e not in MEASURED_EXPERIMENTS]
    results = {}
    if args.jobs != 1 and len(analytic) > 1:
        executor = ParallelExecutor(jobs=args.jobs)
        for eid, result in zip(
            analytic,
            executor.map(run_experiment, [(eid,) for eid in analytic]),
        ):
            results[eid] = result
    for eid in experiment_ids:
        if eid not in results:
            results[eid] = run_experiment(
                eid, workload if eid in MEASURED_EXPERIMENTS else None
            )
        print(results[eid].text, file=out)
        print(file=out)


def _parse_grid(text: str, kind: type):
    try:
        values = tuple(kind(part) for part in text.split(",") if part)
    except ValueError:
        raise ReproError(
            f"cannot parse {text!r} as {kind.__name__} list"
        ) from None
    return values


def _sweep(args, out) -> None:
    points = width_resolution_sweep(
        widths=_parse_grid(args.widths, float),
        resolutions=_parse_grid(args.resolutions, int),
        jobs=args.jobs,
        cache=_cache_from(args),
    )
    rows = [
        [
            p.width,
            p.resolution,
            p.total_macs,
            p.total_cycles,
            round(p.latency_us, 2),
            round(p.throughput_gops, 2),
            round(100 * p.init_fraction, 2),
        ]
        for p in points
    ]
    text = render_table(
        f"Width/resolution sweep ({len(points)} points, "
        f"jobs={args.jobs})",
        ["Width", "Res", "MACs", "Cycles", "Latency us", "GOPS", "Init %"],
        rows,
    )
    print(text, file=out)


def _info(out) -> None:
    print("EDEA reproduction - headline numbers (paper values)", file=out)
    for key, value in sorted(PAPER_HEADLINE.items()):
        print(f"  {key:32s} {value}", file=out)
    print(
        "\nSee EXPERIMENTS.md for the full paper-vs-measured comparison.",
        file=out,
    )


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help(file=out)
        return 2
    try:
        if args.command == "list":
            for eid in list_experiments():
                print(eid, file=out)
        elif args.command == "info":
            _info(out)
        elif args.command == "run":
            _run(args.experiments, args, out)
        elif args.command == "all":
            _run(list_experiments(), args, out)
        elif args.command == "sweep":
            _sweep(args, out)
        elif args.command == "report":
            from .eval import render_report, reproduction_report

            workload = (
                prepare_workload(
                    width_multiplier=args.width,
                    fast=args.fast,
                    cache=_cache_from(args),
                )
                if args.width is not None
                else None
            )
            checks = reproduction_report(workload)
            print(render_report(checks), file=out)
            if not all(c.passed for c in checks):
                return 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0
