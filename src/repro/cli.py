"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — show all reproducible figure/table ids.
* ``run <id> [...]`` — regenerate one or more experiments and print them.
* ``all`` — regenerate everything (the measured experiments prepare a
  full-width workload once, ~15 s).
* ``info`` — print the library's headline reproduction summary.

Examples::

    python -m repro list
    python -m repro run fig13 table3
    python -m repro run fig12 --width 0.25     # fast, reduced-width
    python -m repro all
"""

from __future__ import annotations

import argparse
import sys

from . import __version__
from .errors import ReproError
from .eval import list_experiments, prepare_workload, run_experiment
from .eval.paper_data import PAPER_HEADLINE

__all__ = ["main", "build_parser"]

#: Experiments that need the trained/simulated workload.
MEASURED_EXPERIMENTS = ("fig11", "fig12")


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EDEA (SOCC 2024) reproduction - experiment runner",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list reproducible figure/table ids")
    sub.add_parser("info", help="print the headline reproduction summary")

    report_parser = sub.add_parser(
        "report", help="check every reproduced claim against the paper"
    )
    report_parser.add_argument(
        "--width", type=float, default=None,
        help="also run the measured (power/efficiency) claims on a "
             "workload of this width (e.g. 1.0; omitted = analytic only)",
    )

    run_parser = sub.add_parser("run", help="run one or more experiments")
    run_parser.add_argument(
        "experiments", nargs="+", metavar="ID",
        help="figure/table ids (see 'list')",
    )
    run_parser.add_argument(
        "--width", type=float, default=1.0,
        help="MobileNet width multiplier for measured experiments "
             "(default 1.0; use 0.25 for a fast demo)",
    )

    all_parser = sub.add_parser("all", help="run every experiment")
    all_parser.add_argument("--width", type=float, default=1.0)
    return parser


def _workload_if_needed(experiment_ids, width: float):
    if any(eid in MEASURED_EXPERIMENTS for eid in experiment_ids):
        return prepare_workload(width_multiplier=width)
    return None


def _run(experiment_ids, width: float, out) -> None:
    workload = _workload_if_needed(experiment_ids, width)
    for eid in experiment_ids:
        result = run_experiment(
            eid, workload if eid in MEASURED_EXPERIMENTS else None
        )
        print(result.text, file=out)
        print(file=out)


def _info(out) -> None:
    print("EDEA reproduction - headline numbers (paper values)", file=out)
    for key, value in sorted(PAPER_HEADLINE.items()):
        print(f"  {key:32s} {value}", file=out)
    print(
        "\nSee EXPERIMENTS.md for the full paper-vs-measured comparison.",
        file=out,
    )


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help(file=out)
        return 2
    try:
        if args.command == "list":
            for eid in list_experiments():
                print(eid, file=out)
        elif args.command == "info":
            _info(out)
        elif args.command == "run":
            _run(args.experiments, args.width, out)
        elif args.command == "all":
            _run(list_experiments(), args.width, out)
        elif args.command == "report":
            from .eval import render_report, reproduction_report

            workload = (
                prepare_workload(width_multiplier=args.width)
                if args.width is not None
                else None
            )
            checks = reproduction_report(workload)
            print(render_report(checks), file=out)
            if not all(c.passed for c in checks):
                return 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0
