"""Design-space exploration sweep (paper Fig. 2).

Sweeps the four groups (loop order La/Lb x output tile Tn=Tm=1 or 2) over
the six Table I (Td, Tk) cases, evaluating for each point the PE array size
(Fig. 2a) and the activation/weight access counts summed over all thirteen
DSC layers of MobileNetV1 (Fig. 2b).  Candidates are independent, so the
sweep fans out through the
:class:`~repro.parallel.executor.ParallelExecutor` (serial by default)
with optional persistent caching per candidate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nn.mobilenet import MOBILENET_V1_CIFAR10_SPECS, DSCLayerSpec
from ..parallel.cache import ResultCache
from ..parallel.executor import ParallelExecutor
from .access_model import (
    DEFAULT_ACCESS_CONFIG,
    AccessCounts,
    AccessModelConfig,
    layer_access,
)
from .loops import LoopOrder
from .pe_model import pe_array_size
from .tiling import TABLE1_CASES, TilingConfig, table1_case

__all__ = [
    "DSEPoint",
    "DSEResult",
    "evaluate_dse_point",
    "explore",
    "best_point",
]


@dataclass(frozen=True)
class DSEPoint:
    """One evaluated configuration of the design space."""

    order: LoopOrder
    case: int
    tiling: TilingConfig
    pe_dwc: int
    pe_pwc: int
    activation_access: int
    weight_access: int

    @property
    def pe_total(self) -> int:
        """Total PE array size (Fig. 2a's y value)."""
        return self.pe_dwc + self.pe_pwc

    @property
    def total_access(self) -> int:
        """Activation plus weight accesses (Fig. 2b's stacked bar)."""
        return self.activation_access + self.weight_access

    @property
    def group(self) -> str:
        """Legend label, e.g. ``"La, Tn=Tm=2"``."""
        return f"{self.order.value}, Tn=Tm={self.tiling.tn}"


@dataclass
class DSEResult:
    """All evaluated points of one sweep."""

    points: list[DSEPoint]
    specs: list[DSCLayerSpec]

    def group_points(self, order: LoopOrder, tn: int) -> list[DSEPoint]:
        """Points of one legend group, ordered by case number."""
        selected = [
            p
            for p in self.points
            if p.order is order and p.tiling.tn == tn
        ]
        return sorted(selected, key=lambda p: p.case)

    def by_case(self, case: int) -> list[DSEPoint]:
        """All four group points of one Table I case."""
        return [p for p in self.points if p.case == case]


def evaluate_dse_point(
    order: LoopOrder,
    tn: int,
    case: int,
    specs: tuple[DSCLayerSpec, ...],
    config: AccessModelConfig = DEFAULT_ACCESS_CONFIG,
) -> DSEPoint:
    """Evaluate one DSE candidate (module-level, hence pool-picklable)."""
    tiling = table1_case(case, tn=tn)
    pe = pe_array_size(tiling)
    total = AccessCounts(0, 0, 0, 0)
    for spec in specs:
        total = total + layer_access(spec, tiling, order, config)
    return DSEPoint(
        order=order,
        case=case,
        tiling=tiling,
        pe_dwc=pe.dwc,
        pe_pwc=pe.pwc,
        activation_access=total.activation,
        weight_access=total.weight_reads,
    )


def explore(
    specs: list[DSCLayerSpec] | None = None,
    tn_values: tuple[int, ...] = (1, 2),
    config: AccessModelConfig = DEFAULT_ACCESS_CONFIG,
    jobs: int | None = 1,
    cache: ResultCache | None = None,
) -> DSEResult:
    """Run the full Fig. 2 sweep.

    Args:
        specs: Layer geometry (defaults to MobileNetV1-CIFAR10).
        tn_values: Output tile sizes to explore (paper: 1 and 2).
        config: Access-counting conventions.
        jobs: Worker processes (1 = serial; None/0 = all CPUs).
        cache: Optional persistent result cache keyed per candidate.

    Returns:
        :class:`DSEResult` with ``len(tn_values) * 2 * 6`` points, in the
        same order for serial and parallel runs.
    """
    specs = specs if specs is not None else MOBILENET_V1_CIFAR10_SPECS
    candidates = [
        (order, tn, case, tuple(specs), config)
        for order in LoopOrder
        for tn in tn_values
        for case in sorted(TABLE1_CASES)
    ]
    executor = ParallelExecutor(jobs=jobs, cache=cache)
    points = executor.map_cached("dse_point", evaluate_dse_point, candidates)
    return DSEResult(points=points, specs=list(specs))


def best_point(result: DSEResult) -> DSEPoint:
    """Configuration with the lowest total access count.

    The paper's conclusion: loop order La with Tn=Tm=2 in Case 6
    (Td=8, Tk=16) "achieves the lowest access count being our preferred
    choice for hardware implementation".
    """
    return min(result.points, key=lambda p: p.total_access)
