"""Intermediate-activation traffic elimination (paper Fig. 3).

The paper's baseline counts external activation accesses of a DSC layer as
DWC input + DWC output + PWC input + PWC output; direct DWC→PWC transfer
through the on-chip intermediate buffer removes the DWC-output write and
the PWC-input read, leaving DWC input + PWC output.

Two counting modes are provided:

* ``"unique"`` (default): each tensor element is counted once per logical
  transfer — the cleanest apples-to-apples comparison.
* ``"tiled"``: the DWC input includes halo re-reads and the PWC input is
  re-read once per kernel group, i.e. the Table II traffic under the chosen
  architecture tiling.

The paper reports per-layer reductions of 15.4%–46.9% and 34.7% in total;
our ``"unique"`` mode yields 25%–50% per layer and ≈40% total — same
sawtooth shape (stride-2 layers benefit least), see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..nn.mobilenet import MOBILENET_V1_CIFAR10_SPECS, DSCLayerSpec
from .tiling import TilingConfig

__all__ = ["IntermediateAccessReport", "intermediate_access_report"]

_DEFAULT_TILING = TilingConfig(tn=2, tm=2, td=8, tk=16)


@dataclass(frozen=True)
class LayerIntermediateAccess:
    """Fig. 3 data for one layer."""

    index: int
    baseline: int
    optimized: int

    @property
    def eliminated(self) -> int:
        """Accesses removed by direct DWC→PWC transfer."""
        return self.baseline - self.optimized

    @property
    def reduction_percent(self) -> float:
        """Per-layer reduction percentage (the Fig. 3 line)."""
        return 100.0 * self.eliminated / self.baseline


@dataclass
class IntermediateAccessReport:
    """Fig. 3 data for all layers."""

    layers: list[LayerIntermediateAccess]

    @property
    def total_baseline(self) -> int:
        """Sum of baseline accesses over all layers."""
        return sum(layer.baseline for layer in self.layers)

    @property
    def total_optimized(self) -> int:
        """Sum of optimized accesses over all layers."""
        return sum(layer.optimized for layer in self.layers)

    @property
    def total_reduction_percent(self) -> float:
        """Network-level reduction (paper: 34.7%)."""
        return (
            100.0
            * (self.total_baseline - self.total_optimized)
            / self.total_baseline
        )

    @property
    def min_reduction_percent(self) -> float:
        """Smallest per-layer reduction (paper: 15.4%)."""
        return min(layer.reduction_percent for layer in self.layers)

    @property
    def max_reduction_percent(self) -> float:
        """Largest per-layer reduction (paper: 46.9%)."""
        return max(layer.reduction_percent for layer in self.layers)


def _layer_counts(
    spec: DSCLayerSpec, mode: str, tiling: TilingConfig
) -> LayerIntermediateAccess:
    r, n = spec.in_size, spec.out_size
    d, k = spec.in_channels, spec.out_channels
    if mode == "unique":
        dwc_in = r * r * d
        dwc_out = n * n * d
        pwc_in = n * n * d
        pwc_out = n * n * k
    elif mode == "tiled":
        tr = tiling.input_tile(spec.stride)
        tiles = -(-n // tiling.tn) * (-(-n // tiling.tm))
        dwc_in = tr * tr * d * tiles
        dwc_out = n * n * d
        pwc_in = n * n * d * (-(-k // tiling.tk))
        pwc_out = n * n * k
    else:
        raise ConfigError(f"unknown counting mode {mode!r}")
    return LayerIntermediateAccess(
        index=spec.index,
        baseline=dwc_in + dwc_out + pwc_in + pwc_out,
        optimized=dwc_in + pwc_out,
    )


def intermediate_access_report(
    specs: list[DSCLayerSpec] | None = None,
    mode: str = "unique",
    tiling: TilingConfig = _DEFAULT_TILING,
) -> IntermediateAccessReport:
    """Build the Fig. 3 report for a network.

    Args:
        specs: Layer geometry (defaults to MobileNetV1-CIFAR10).
        mode: Counting mode, ``"unique"`` or ``"tiled"``.
        tiling: Architecture tiling used by the ``"tiled"`` mode.
    """
    specs = specs if specs is not None else MOBILENET_V1_CIFAR10_SPECS
    return IntermediateAccessReport(
        layers=[_layer_counts(spec, mode, tiling) for spec in specs]
    )
