"""Design-space exploration (paper Section II): loop orders, tiling,
access-count models, the Fig. 2 sweep and the Fig. 3 intermediate-traffic
analysis."""

from .access_model import (
    DEFAULT_ACCESS_CONFIG,
    AccessCounts,
    AccessModelConfig,
    dwc_access,
    layer_access,
    pwc_access,
    table2_dwc_activation_access,
    table2_dwc_weight_access,
    table2_pwc_activation_access,
    table2_pwc_weight_access,
)
from .explorer import (
    DSEPoint,
    DSEResult,
    best_point,
    evaluate_dse_point,
    explore,
)
from .intermediate import IntermediateAccessReport, intermediate_access_report
from .loops import LoopLevel, LoopOrder
from .pe_model import PEArraySize, pe_array_size
from .tiling import TABLE1_CASES, TilingConfig, table1_case

__all__ = [
    "LoopOrder",
    "LoopLevel",
    "TilingConfig",
    "TABLE1_CASES",
    "table1_case",
    "PEArraySize",
    "pe_array_size",
    "AccessCounts",
    "AccessModelConfig",
    "DEFAULT_ACCESS_CONFIG",
    "dwc_access",
    "pwc_access",
    "layer_access",
    "table2_dwc_activation_access",
    "table2_dwc_weight_access",
    "table2_pwc_activation_access",
    "table2_pwc_weight_access",
    "DSEPoint",
    "DSEResult",
    "evaluate_dse_point",
    "explore",
    "best_point",
    "IntermediateAccessReport",
    "intermediate_access_report",
]
