"""Convolution loop nests and the paper's two loop orders.

Section II of the paper considers five loop levels (innermost first):

* **Loop1** — MACs inside one convolution window / output tile
  (``Tr x Tc`` for DWC, ``Tn x Tm`` for PWC).
* **Loop2** — across the channel tile ``Td``.
* **Loop3** — scanning the feature map spatially (``R x C`` / ``N x M``).
* **Loop4** — across the input-channel dimension ``D``.
* **Loop5** — across the output-kernel dimension ``K`` (PWC only).

Only the relative order of Loop3 and Loop4 is free (Loops 1/2 are bound to
the PE array; Loop5 is outermost for PWC), giving two candidate orders:

* ``La``: Loop1 → Loop2 → **Loop3 → Loop4** → Loop5 (spatial inside channel)
* ``Lb``: Loop1 → Loop2 → **Loop4 → Loop3** → Loop5 (channel inside spatial)
"""

from __future__ import annotations

import enum

__all__ = ["LoopOrder", "LoopLevel"]


class LoopLevel(enum.IntEnum):
    """The five convolution loop levels, innermost = 1."""

    WINDOW = 1
    CHANNEL_TILE = 2
    SPATIAL = 3
    CHANNEL = 4
    KERNEL = 5


class LoopOrder(enum.Enum):
    """The two candidate loop orders explored by the paper."""

    LA = "La"
    LB = "Lb"

    @property
    def spatial_inside_channel(self) -> bool:
        """True for La: the spatial scan (Loop3) runs inside the channel
        loop (Loop4), so data tied to a channel group is reused across the
        whole feature map before moving to the next group."""
        return self is LoopOrder.LA

    def levels(self) -> tuple[LoopLevel, ...]:
        """Loop levels from innermost to outermost."""
        if self is LoopOrder.LA:
            return (
                LoopLevel.WINDOW,
                LoopLevel.CHANNEL_TILE,
                LoopLevel.SPATIAL,
                LoopLevel.CHANNEL,
                LoopLevel.KERNEL,
            )
        return (
            LoopLevel.WINDOW,
            LoopLevel.CHANNEL_TILE,
            LoopLevel.CHANNEL,
            LoopLevel.SPATIAL,
            LoopLevel.KERNEL,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
