"""Tile-size configurations (paper Table I) and tile geometry helpers.

A tiling is described by four parameters: the output tile ``Tn x Tm``
(spatial), the input-channel tile ``Td`` and the PWC kernel tile ``Tk``.
The DWC input tile ``Tr x Tc`` follows from the output tile, the 3x3
kernel and the stride:

* stride 1: ``Tr = Tn + 2``  (e.g. 4x4 input → 2x2 output)
* stride 2: ``Tr = 2*Tn + 1`` (e.g. 5x5 input → 2x2 output)

which matches Fig. 5a's "ifmap of size 4x4x8 (5x5x8 when stride is 2)".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..nn.mobilenet import KERNEL_SIZE

__all__ = ["TilingConfig", "TABLE1_CASES", "table1_case"]


@dataclass(frozen=True)
class TilingConfig:
    """Tile sizes for one DSC mapping.

    Attributes:
        tn: Output tile height (paper: 1 or 2).
        tm: Output tile width.
        td: Input-channel tile (paper Table I: 4 or 8).
        tk: PWC kernel tile (paper Table I: 4, 8 or 16).
    """

    tn: int
    tm: int
    td: int
    tk: int

    def __post_init__(self) -> None:
        for name in ("tn", "tm", "td", "tk"):
            value = getattr(self, name)
            if value < 1:
                raise ConfigError(f"{name} must be >= 1 (got {value})")

    def input_tile(self, stride: int) -> int:
        """DWC input tile extent Tr (= Tc) for a given stride."""
        if stride == 1:
            return self.tn + KERNEL_SIZE - 1
        if stride == 2:
            return 2 * self.tn + KERNEL_SIZE - 2
        raise ConfigError(f"stride must be 1 or 2 (got {stride})")

    @property
    def outputs_per_tile(self) -> int:
        """Output elements per spatial tile (``Tn * Tm``)."""
        return self.tn * self.tm

    def describe(self) -> str:
        """Human-readable summary, e.g. ``Tn=Tm=2, Td=8, Tk=16``."""
        spatial = (
            f"Tn=Tm={self.tn}" if self.tn == self.tm
            else f"Tn={self.tn}, Tm={self.tm}"
        )
        return f"{spatial}, Td={self.td}, Tk={self.tk}"


#: Paper Table I: the six (Td, Tk) cases explored per loop-order group.
TABLE1_CASES: dict[int, tuple[int, int]] = {
    1: (4, 4),
    2: (4, 8),
    3: (4, 16),
    4: (8, 4),
    5: (8, 8),
    6: (8, 16),
}


def table1_case(case: int, tn: int = 2, tm: int | None = None) -> TilingConfig:
    """Build the tiling for a Table I case number (1..6).

    Args:
        case: Case index as printed in the paper.
        tn: Output tile height (1 or 2 in the paper's exploration).
        tm: Output tile width; defaults to ``tn``.
    """
    if case not in TABLE1_CASES:
        raise ConfigError(f"Table I defines cases 1..6 (got {case})")
    td, tk = TABLE1_CASES[case]
    return TilingConfig(tn=tn, tm=tm if tm is not None else tn, td=td, tk=tk)
