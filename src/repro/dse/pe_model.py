"""PE-array sizing (paper Table II, Fig. 2a).

The number of multiply-accumulate units needed to keep both engines fully
busy follows directly from the tile sizes:

* DWC: ``Td * H * W * Tn * Tm`` — one 3x3 window per output element of the
  tile, across ``Td`` channels.
* PWC: ``Td * Tk * Tn * Tm`` — a dot-product lane per (kernel, output
  element) pair across ``Td`` channels.

For the paper's chosen configuration (Tn=Tm=2, Td=8, Tk=16) these evaluate
to 288 and 512 MACs — the engine sizes of Fig. 5 — totalling the 800 "PE
count" reported in Table III.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nn.mobilenet import KERNEL_SIZE
from .tiling import TilingConfig

__all__ = ["PEArraySize", "pe_array_size"]


@dataclass(frozen=True)
class PEArraySize:
    """MAC counts of the two engines for one tiling."""

    dwc: int
    pwc: int

    @property
    def total(self) -> int:
        """Combined MAC count (the paper's "PE Array Size")."""
        return self.dwc + self.pwc

    @property
    def pwc_to_dwc_ratio(self) -> float:
        """PWC/DWC MAC ratio (paper: 512/288 ≈ 1.8)."""
        return self.pwc / self.dwc


def pe_array_size(
    tiling: TilingConfig, kernel_size: int = KERNEL_SIZE
) -> PEArraySize:
    """Evaluate the Table II PE-array equations for a tiling."""
    spatial = tiling.tn * tiling.tm
    return PEArraySize(
        dwc=tiling.td * kernel_size * kernel_size * spatial,
        pwc=tiling.td * tiling.tk * spatial,
    )
