"""Memory-access counting for DWC/PWC under a loop order and tiling.

This module implements both:

* the **closed-form equations of Table II** (valid for loop order La with
  exact divisibility), and
* a **general tiled-loop model** for either order with ceiling division,
  which reduces to the Table II forms in their domain (checked by tests).

Counting conventions (documented because the paper does not fully specify
them; see DESIGN.md "Known modelling deviations"):

* *ifmap reads*: every element of every DWC input tile, including halo
  overlap between neighbouring tiles (``Tr x Tc`` per ``Tn x Tm`` outputs);
  PWC input tiles are re-read once per kernel group (``ceil(K/Tk)``) since
  only one ``Td``-slice is buffered at a time.
* *weight reads*: weights are re-fetched whenever an outer loop invalidates
  the weight buffer — under La (spatial inside channel) DWC/PWC weights are
  fetched exactly once; under Lb (channel inside spatial) they are fetched
  once per spatial tile.
* *psum spills*: under La the PWC partial sums of a whole feature map slice
  outlive the per-tile accumulators and spill to a buffer once per
  non-final channel group (counted with a configurable per-spill access
  factor, default 1.0 modelling a read-modify-write accumulation port);
  under Lb accumulation completes inside the PE registers, so no spills.
* *ofmap writes*: each output element written once.

Activation traffic = ifmap reads + psum spills + ofmap writes; this is the
upper bar of Fig. 2b, the weight traffic the lower bar.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError
from ..nn.mobilenet import KERNEL_SIZE, DSCLayerSpec
from .loops import LoopOrder
from .tiling import TilingConfig

__all__ = [
    "AccessCounts",
    "AccessModelConfig",
    "dwc_access",
    "pwc_access",
    "layer_access",
    "table2_dwc_activation_access",
    "table2_dwc_weight_access",
    "table2_pwc_activation_access",
    "table2_pwc_weight_access",
]


@dataclass(frozen=True)
class AccessCounts:
    """Access counts of one convolution under one mapping."""

    ifmap_reads: int
    weight_reads: int
    ofmap_writes: int
    psum_spills: int = 0

    @property
    def activation(self) -> int:
        """Total activation traffic (reads + spills + writes)."""
        return self.ifmap_reads + self.psum_spills + self.ofmap_writes

    @property
    def total(self) -> int:
        """Activation plus weight traffic."""
        return self.activation + self.weight_reads

    def __add__(self, other: "AccessCounts") -> "AccessCounts":
        return AccessCounts(
            ifmap_reads=self.ifmap_reads + other.ifmap_reads,
            weight_reads=self.weight_reads + other.weight_reads,
            ofmap_writes=self.ofmap_writes + other.ofmap_writes,
            psum_spills=self.psum_spills + other.psum_spills,
        )


@dataclass(frozen=True)
class AccessModelConfig:
    """Tunable counting conventions (see module docstring)."""

    psum_access_factor: float = 1.0
    count_psum: bool = True

    def __post_init__(self) -> None:
        if self.psum_access_factor < 0:
            raise ConfigError(
                f"psum_access_factor must be >= 0 "
                f"(got {self.psum_access_factor})"
            )


DEFAULT_ACCESS_CONFIG = AccessModelConfig()


def _tile_counts(
    spec: DSCLayerSpec, tiling: TilingConfig
) -> tuple[int, int, int]:
    """(spatial tiles, channel groups, kernel groups) for a layer."""
    n = spec.out_size
    n_spatial = math.ceil(n / tiling.tn) * math.ceil(n / tiling.tm)
    n_channel = math.ceil(spec.in_channels / tiling.td)
    n_kernel = math.ceil(spec.out_channels / tiling.tk)
    return n_spatial, n_channel, n_kernel


def dwc_access(
    spec: DSCLayerSpec,
    tiling: TilingConfig,
    order: LoopOrder,
) -> AccessCounts:
    """Access counts of the depthwise convolution of one layer."""
    n_spatial, n_channel, _ = _tile_counts(spec, tiling)
    tr = tiling.input_tile(spec.stride)
    ifmap = tr * tr * tiling.td * n_spatial * n_channel
    weight_once = KERNEL_SIZE * KERNEL_SIZE * tiling.td * n_channel
    if order.spatial_inside_channel:
        weight = weight_once  # weights live across the spatial scan
    else:
        weight = weight_once * n_spatial  # re-fetched per spatial tile
    ofmap = tiling.outputs_per_tile * tiling.td * n_spatial * n_channel
    return AccessCounts(
        ifmap_reads=ifmap, weight_reads=weight, ofmap_writes=ofmap
    )


def pwc_access(
    spec: DSCLayerSpec,
    tiling: TilingConfig,
    order: LoopOrder,
    config: AccessModelConfig = DEFAULT_ACCESS_CONFIG,
) -> AccessCounts:
    """Access counts of the pointwise convolution of one layer."""
    n_spatial, n_channel, n_kernel = _tile_counts(spec, tiling)
    per_tile = tiling.outputs_per_tile
    ifmap = per_tile * tiling.td * n_spatial * n_channel * n_kernel
    weight_once = tiling.td * tiling.tk * n_channel * n_kernel
    if order.spatial_inside_channel:
        weight = weight_once
        psum = 0
        if config.count_psum and n_channel > 1:
            spills = per_tile * tiling.tk * n_spatial * (n_channel - 1)
            psum = int(round(spills * n_kernel * config.psum_access_factor))
    else:
        weight = weight_once * n_spatial
        psum = 0  # accumulation completes inside the PE registers
    ofmap = per_tile * tiling.tk * n_spatial * n_kernel
    return AccessCounts(
        ifmap_reads=ifmap,
        weight_reads=weight,
        ofmap_writes=ofmap,
        psum_spills=psum,
    )


def layer_access(
    spec: DSCLayerSpec,
    tiling: TilingConfig,
    order: LoopOrder,
    config: AccessModelConfig = DEFAULT_ACCESS_CONFIG,
) -> AccessCounts:
    """Combined DWC + PWC access counts of one DSC layer."""
    return dwc_access(spec, tiling, order) + pwc_access(
        spec, tiling, order, config
    )


# --- Table II closed forms (loop order La) ---------------------------------


def table2_dwc_activation_access(
    spec: DSCLayerSpec, tiling: TilingConfig
) -> int:
    """Table II, DWC activation: ``Tr*Tc*D*(N*M)/(Tn*Tm)``."""
    tr = tiling.input_tile(spec.stride)
    n = spec.out_size
    return (
        tr * tr * spec.in_channels * n * n
        // (tiling.tn * tiling.tm)
    )


def table2_dwc_weight_access(spec: DSCLayerSpec) -> int:
    """Table II, DWC weight: ``H*W*D``."""
    return KERNEL_SIZE * KERNEL_SIZE * spec.in_channels


def table2_pwc_activation_access(
    spec: DSCLayerSpec, tiling: TilingConfig
) -> int:
    """Table II, PWC activation: ``N*M*D*K/Tk``."""
    n = spec.out_size
    return n * n * spec.in_channels * spec.out_channels // tiling.tk


def table2_pwc_weight_access(spec: DSCLayerSpec) -> int:
    """Table II, PWC weight: ``D*K``."""
    return spec.in_channels * spec.out_channels
