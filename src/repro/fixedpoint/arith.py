"""Saturating integer arithmetic helpers for datapath modelling.

All routines operate on NumPy integer arrays and model the behaviour of the
corresponding hardware operators: width-limited storage, saturation instead
of wrap-around, and round-to-nearest right shifts.  They are deliberately
explicit — each function does one thing and states its widths.
"""

from __future__ import annotations

import numpy as np

from ..errors import FixedPointError
from .qformat import QFormat

__all__ = [
    "clip_to_width",
    "saturating_add",
    "saturating_mul",
    "rounding_right_shift",
    "fixed_mul_add",
    "requantize_to_int8",
]


def _width_limits(bits: int) -> tuple[int, int]:
    if bits < 2 or bits > 63:
        raise FixedPointError(f"unsupported width {bits} (need 2..63)")
    return -(1 << (bits - 1)), (1 << (bits - 1)) - 1


def clip_to_width(values, bits: int):
    """Saturate ``values`` to a signed two's-complement width of ``bits``."""
    lo, hi = _width_limits(bits)
    return np.clip(np.asarray(values, dtype=np.int64), lo, hi)


def saturating_add(a, b, bits: int):
    """Add two int arrays and saturate the result to ``bits`` wide."""
    total = np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64)
    return clip_to_width(total, bits)


def saturating_mul(a, b, bits: int):
    """Multiply two int arrays and saturate the result to ``bits`` wide."""
    product = np.asarray(a, dtype=np.int64) * np.asarray(b, dtype=np.int64)
    return clip_to_width(product, bits)


def rounding_right_shift(values, shift: int):
    """Arithmetic right shift with round-to-nearest (ties away from zero).

    This models the hardware rescale stage: add half an LSB of the result
    in the direction of the sign, then shift.  ``shift == 0`` is a no-op.
    """
    if shift < 0:
        raise FixedPointError(f"shift must be >= 0 (got {shift})")
    arr = np.asarray(values, dtype=np.int64)
    if shift == 0:
        return arr.copy()
    half = np.int64(1) << np.int64(shift - 1)
    offset = np.where(arr >= 0, half, half - 1)
    return (arr + offset) >> np.int64(shift)


def fixed_mul_add(x, k_raw: int, b_raw: int, fmt: QFormat):
    """Compute ``y = k*x + b`` where k and b are raw values in ``fmt``.

    ``x`` is a plain integer array (e.g. an int32 convolution accumulator).
    The product ``k_raw * x`` carries ``fmt.fraction_bits`` fractional bits;
    ``b_raw`` already does, so they align without shifting.  The result is
    returned still carrying the fractional bits (caller requantizes).

    This mirrors the Non-Conv unit datapath: one multiplier, one adder.
    """
    arr = np.asarray(x, dtype=np.int64)
    return arr * np.int64(k_raw) + np.int64(b_raw)


def requantize_to_int8(
    values,
    fraction_bits: int,
    apply_relu: bool,
    lo: int = -128,
    hi: int = 127,
    relu_floor: int = 0,
) -> np.ndarray:
    """Round off ``fraction_bits``, optionally ReLU, saturate to int8.

    This is the tail of the Non-Conv unit: round the fixed-point result to
    an integer, clamp at the code of real zero when ReLU is enabled, and
    saturate into the int8 activation range.  ``relu_floor`` is that code —
    0 for the symmetric scheme, the output zero-point for affine outputs.
    """
    if not -128 <= lo <= hi <= 127:
        raise FixedPointError(f"invalid int8 clip range [{lo}, {hi}]")
    rounded = rounding_right_shift(values, fraction_bits)
    if apply_relu:
        rounded = np.maximum(rounded, relu_floor)
    return np.clip(rounded, lo, hi).astype(np.int8)
