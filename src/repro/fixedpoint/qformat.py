"""Signed fixed-point Q-format descriptors.

The EDEA Non-Conv unit stores its folded batch-norm/quantization constants
``k`` and ``b`` as 24-bit signed fixed-point numbers with 8 integer bits and
16 fractional bits (paper, Section III-C).  This module provides a small,
explicit Q-format abstraction used throughout the datapath model:

>>> q = QFormat(integer_bits=8, fraction_bits=16)
>>> q.total_bits
24
>>> q.to_fixed(1.5)
98304
>>> q.to_float(q.to_fixed(1.5))
1.5
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import FixedPointError

__all__ = ["QFormat", "Q8_16", "INT8", "INT16", "INT32"]


@dataclass(frozen=True)
class QFormat:
    """A signed two's-complement fixed-point format ``Q<integer>.<fraction>``.

    The sign bit is counted inside ``integer_bits``, matching the paper's
    "24-bit fixed-point numbers with 8 integer bits and 16 fractional bits".

    Attributes:
        integer_bits: Number of integer bits, including the sign bit.
        fraction_bits: Number of fractional bits.
    """

    integer_bits: int
    fraction_bits: int

    def __post_init__(self) -> None:
        if self.integer_bits < 1:
            raise FixedPointError(
                f"integer_bits must be >= 1 (got {self.integer_bits})"
            )
        if self.fraction_bits < 0:
            raise FixedPointError(
                f"fraction_bits must be >= 0 (got {self.fraction_bits})"
            )
        if self.total_bits > 62:
            # int64 intermediates must hold raw values and products safely.
            raise FixedPointError(
                f"formats wider than 62 bits are not supported "
                f"(got {self.total_bits})"
            )

    @property
    def total_bits(self) -> int:
        """Total storage width in bits (sign bit included)."""
        return self.integer_bits + self.fraction_bits

    @property
    def scale(self) -> int:
        """Value of one least-significant bit, as ``2**fraction_bits``."""
        return 1 << self.fraction_bits

    @property
    def raw_min(self) -> int:
        """Smallest representable raw (integer) value."""
        return -(1 << (self.total_bits - 1))

    @property
    def raw_max(self) -> int:
        """Largest representable raw (integer) value."""
        return (1 << (self.total_bits - 1)) - 1

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.raw_min / self.scale

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.raw_max / self.scale

    @property
    def resolution(self) -> float:
        """Real-valued step between adjacent representable numbers."""
        return 1.0 / self.scale

    def to_fixed(self, value, saturate: bool = True):
        """Convert real value(s) to raw fixed-point integers.

        Rounds to nearest (ties away from zero, matching hardware rounders
        built from an add-half-then-truncate stage on the magnitude).

        Args:
            value: Scalar or array of real values.
            saturate: Clamp out-of-range values to the format limits when
                True; raise :class:`FixedPointError` when False.

        Returns:
            ``np.int64`` scalar or array of raw values.
        """
        arr = np.asarray(value, dtype=np.float64)
        raw = np.round(arr * self.scale).astype(np.int64)
        out_of_range = (raw < self.raw_min) | (raw > self.raw_max)
        if np.any(out_of_range):
            if not saturate:
                bad = arr[out_of_range].flat[0]
                raise FixedPointError(
                    f"value {bad!r} is outside the range of Q"
                    f"{self.integer_bits}.{self.fraction_bits} "
                    f"[{self.min_value}, {self.max_value}]"
                )
            raw = np.clip(raw, self.raw_min, self.raw_max)
        if np.isscalar(value) or np.ndim(value) == 0:
            return int(raw)
        return raw

    def to_float(self, raw):
        """Convert raw fixed-point integer(s) back to real value(s)."""
        arr = np.asarray(raw, dtype=np.int64)
        out = arr.astype(np.float64) / self.scale
        if np.isscalar(raw) or np.ndim(raw) == 0:
            return float(out)
        return out

    def quantize(self, value):
        """Round real value(s) to the nearest representable real value."""
        return self.to_float(self.to_fixed(value))

    def representable(self, value, rtol: float = 0.0) -> bool:
        """Return True when ``value`` round-trips through this format."""
        back = self.quantize(value)
        return bool(np.allclose(back, value, rtol=rtol, atol=0.0))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Q{self.integer_bits}.{self.fraction_bits}"


# Formats used by the EDEA datapath.
Q8_16 = QFormat(integer_bits=8, fraction_bits=16)
"""Non-Conv unit constant format: 24-bit, 8 integer + 16 fractional bits."""

INT8 = QFormat(integer_bits=8, fraction_bits=0)
"""Activation / weight storage format."""

INT16 = QFormat(integer_bits=16, fraction_bits=0)
"""Product width of an int8 x int8 multiplier."""

INT32 = QFormat(integer_bits=32, fraction_bits=0)
"""Accumulator width used by the engine models."""
