"""Fixed-point number formats and saturating arithmetic.

This subpackage models the numeric substrate of the EDEA datapath: int8
storage, wide accumulators, and the Q8.16 constants of the Non-Conv unit.
"""

from .arith import (
    clip_to_width,
    fixed_mul_add,
    requantize_to_int8,
    rounding_right_shift,
    saturating_add,
    saturating_mul,
)
from .qformat import INT8, INT16, INT32, Q8_16, QFormat

__all__ = [
    "QFormat",
    "Q8_16",
    "INT8",
    "INT16",
    "INT32",
    "clip_to_width",
    "saturating_add",
    "saturating_mul",
    "rounding_right_shift",
    "fixed_mul_add",
    "requantize_to_int8",
]
