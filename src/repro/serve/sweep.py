"""Serving sweeps through the parallel executor and result cache.

Scenario grids — scheduling policies x fleet sizes, or offered-load
ladders for throughput-latency curves — fan out through
:class:`repro.parallel.ParallelExecutor`.  Each
:class:`~repro.serve.simulator.ServingScenario` is a frozen dataclass
of primitives, so it canonicalizes into a stable content key and warm
reruns of a sweep are served entirely from the persistent cache.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from ..errors import ConfigError
from ..parallel.cache import ResultCache
from ..parallel.executor import ParallelExecutor
from .simulator import ServingReport, ServingScenario, simulate

__all__ = [
    "serving_sweep",
    "policy_fleet_sweep",
    "throughput_latency_curve",
]


def serving_sweep(
    scenarios: Sequence[ServingScenario],
    jobs: int | None = 1,
    cache: ResultCache | None = None,
) -> list[ServingReport]:
    """Simulate many scenarios, fanned out and cached.

    Args:
        scenarios: The scenario grid, in output order.
        jobs: Worker processes (1 = serial, None/0 = all CPUs).
        cache: Persistent result cache; identical scenarios are
            simulated once across runs.
    """
    if not scenarios:
        raise ConfigError("serving_sweep needs at least one scenario")
    executor = ParallelExecutor(jobs=jobs, cache=cache)
    return executor.map_cached(
        "serving_point", simulate, [(s,) for s in scenarios]
    )


def policy_fleet_sweep(
    base: ServingScenario,
    policies: Sequence[str],
    instance_counts: Sequence[int],
    jobs: int | None = 1,
    cache: ResultCache | None = None,
) -> list[ServingReport]:
    """Cross every policy with every fleet size (row-major order).

    The offered rate is whatever ``base`` specifies: an explicit QPS
    holds the workload constant across fleet sizes (how much does
    adding instances help at this traffic?), while ``qps=None`` scales
    it with capacity (how does each policy behave at constant load?).
    """
    if not policies or not instance_counts:
        raise ConfigError("sweep needs policies and instance counts")
    grid = [
        dataclasses.replace(base, policy=policy, instances=count)
        for policy in policies
        for count in instance_counts
    ]
    return serving_sweep(grid, jobs=jobs, cache=cache)


def throughput_latency_curve(
    base: ServingScenario,
    qps_values: Sequence[float],
    jobs: int | None = 1,
    cache: ResultCache | None = None,
) -> list[ServingReport]:
    """Sample the throughput-latency curve at explicit offered rates."""
    if not qps_values:
        raise ConfigError("curve needs at least one offered rate")
    grid = [
        dataclasses.replace(base, qps=float(qps)) for qps in qps_values
    ]
    return serving_sweep(grid, jobs=jobs, cache=cache)
