"""Columnar request storage: one arena of numpy columns per run.

PR 4's engine allocated one Python ``Request`` object per request —
fine at 10^4 requests, ruinous at 10^6 (a day-long diurnal trace at
production QPS).  This module stores the whole request stream as a
:class:`RequestArena` of parallel numpy columns (arrival, start,
finish, deadline, priority, class/model ids, shed flags) plus small
interned side tables (model names, service profiles, SLO class names),
so per-request state is 8-byte column slots instead of ~400-byte
Python objects and the engine's fast paths can process it with
vectorized kernels.

The object API did not go away: :class:`Request` is now a *view* — a
two-slot proxy holding ``(arena, i)`` whose attribute reads and writes
go straight through to the columns.  Views keep every object-era
client working unchanged:

* hooks (shedding, governors) receive views and mutate
  ``request.shed`` / read ``request.deadline`` as before;
* tenancy spillover clones a view into a fresh single-row arena and
  re-times it, then merges donor views into receiver streams;
* the legacy keyword constructor ``Request(index=..., model=...,
  profile=..., arrival=...)`` still works (it builds a private
  single-row arena), so tests and ad-hoc callers need no changes.

Invariants:

* A view *writes through*: mutating a view mutates its arena, and
  every view of the same row observes the write.  This is load-bearing
  for multi-fleet spillover, where donor arenas are re-read after
  receiver runs.
* :meth:`RequestArena.build` is RNG-draw-identical to the object-era
  ``build_requests`` loop: same uniform block, same inverse-CDF
  boundaries, same model-then-class interleave — fixed seeds reproduce
  the PR-4 streams bit-for-bit (pinned by
  ``tests/serve/test_engine_parity.py``).
* Getters return plain Python scalars (``float``/``int``/``bool``),
  never numpy scalars, so identity checks (``request.shed is False``)
  and JSON serialization behave exactly as the dataclass era did.
"""

from __future__ import annotations

import numpy as np

from .profile import ScenarioMix, ServiceProfile

__all__ = ["Request", "RequestArena"]

_INF = float("inf")


class RequestArena:
    """Column store for one request stream.

    Columns (length ``n``, one slot per request):

    ``arrival``/``start``/``finish``/``deadline``
        float64 timestamps; ``start``/``finish`` are ``-1.0`` until
        served, ``deadline`` is ``inf`` without an SLO class.
    ``index``/``priority``/``model_idx``/``class_idx``
        int64; ``model_idx`` indexes the side tables, ``class_idx`` is
        ``-1`` for requests outside the control plane (``slo == ""``).
    ``shed``
        bool; set by admission hooks through views.

    Side tables (length = distinct models / classes, shared by every
    row): ``model_names``, ``profiles``, ``per_image``, ``setup``,
    ``slo_names``.
    """

    __slots__ = (
        "arrival",
        "start",
        "finish",
        "deadline",
        "index",
        "priority",
        "model_idx",
        "class_idx",
        "shed",
        "model_names",
        "profiles",
        "per_image",
        "setup",
        "slo_names",
    )

    def __init__(
        self,
        n: int,
        model_names: tuple[str, ...],
        profiles: tuple[ServiceProfile, ...],
        slo_names: tuple[str, ...] = (),
    ) -> None:
        self.arrival = np.zeros(n, dtype=np.float64)
        self.start = np.full(n, -1.0, dtype=np.float64)
        self.finish = np.full(n, -1.0, dtype=np.float64)
        self.deadline = np.full(n, _INF, dtype=np.float64)
        self.index = np.arange(n, dtype=np.int64)
        self.priority = np.zeros(n, dtype=np.int64)
        self.model_idx = np.zeros(n, dtype=np.int64)
        self.class_idx = np.full(n, -1, dtype=np.int64)
        self.shed = np.zeros(n, dtype=bool)
        self.model_names = model_names
        self.profiles = profiles
        # A None profile is legal for summary-only request streams
        # (the dataclass era never enforced one either); such rows can
        # not reach the engine's fast paths, which read these tables.
        self.per_image = np.array(
            [0.0 if p is None else p.per_image_seconds for p in profiles],
            dtype=np.float64,
        )
        self.setup = np.array(
            [0.0 if p is None else p.setup_seconds for p in profiles],
            dtype=np.float64,
        )
        self.slo_names = slo_names

    @classmethod
    def build(
        cls,
        mix: ScenarioMix,
        times: np.ndarray,
        rng: np.random.Generator,
        slo_classes: tuple | None = None,
    ) -> "RequestArena":
        """Vectorized request-stream construction (columns, no loop).

        Consumes the RNG exactly like the object-era builder: one
        ``rng.random(n)`` block for model draws, or one
        ``rng.random(2 * n)`` block interleaving model-then-class
        draws when ``slo_classes`` is given.
        """
        n = len(times)
        weights = np.asarray(mix.weights, dtype=np.float64)
        cum_weights = np.cumsum(weights)
        if slo_classes is None:
            u_model = rng.random(n)
            u_class = None
        else:
            u = rng.random(2 * n)
            u_model = u[0::2]
            u_class = u[1::2]
        model_idx = np.minimum(
            np.searchsorted(
                cum_weights, u_model * cum_weights[-1], side="right"
            ),
            len(cum_weights) - 1,
        ).astype(np.int64)

        slo_names = (
            tuple(c.name for c in slo_classes) if slo_classes else ()
        )
        arena = cls(
            n,
            model_names=tuple(p.name for p in mix.profiles),
            profiles=tuple(mix.profiles),
            slo_names=slo_names,
        )
        arena.arrival[:] = times
        arena.model_idx[:] = model_idx

        if slo_classes is None:
            return arena

        if any(getattr(c, "model", None) for c in slo_classes):
            pools = _class_pools(mix, slo_classes)
            class_arr = np.empty(n, dtype=np.int64)
            for position, profile in enumerate(mix.profiles):
                members, cum = pools[profile.name]
                mask = model_idx == position
                if not mask.any():
                    continue
                drawn = np.minimum(
                    np.searchsorted(
                        cum, u_class[mask] * cum[-1], side="right"
                    ),
                    len(members) - 1,
                )
                class_arr[mask] = np.asarray(members)[drawn]
        else:
            shares = np.asarray(
                [c.share for c in slo_classes], dtype=np.float64
            )
            cum_shares = np.cumsum(shares)
            class_arr = np.minimum(
                np.searchsorted(
                    cum_shares, u_class * cum_shares[-1], side="right"
                ),
                len(cum_shares) - 1,
            ).astype(np.int64)
        arena.class_idx[:] = class_arr
        arena.priority[:] = np.asarray(
            [c.priority for c in slo_classes], dtype=np.int64
        )[class_arr]
        # Same float op as the scalar era: arrival + cls.deadline_s.
        arena.deadline[:] = arena.arrival + np.asarray(
            [c.deadline_s for c in slo_classes], dtype=np.float64
        )[class_arr]
        return arena

    def __len__(self) -> int:
        return len(self.arrival)

    def view(self, i: int) -> "Request":
        """A write-through view of row ``i`` (no bounds translation)."""
        request = Request.__new__(Request)
        request.arena = self
        request.i = i
        return request

    def __getitem__(self, i: int) -> "Request":
        n = len(self.arrival)
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError(i)
        return self.view(i)

    def __iter__(self):
        for i in range(len(self.arrival)):
            yield self.view(i)

    def shed_indices(self, lo: int = 0, hi: int | None = None) -> list:
        """Row indices of shed requests in ``[lo, hi)``, ascending.

        The epoch-stepped spillover exchange walks the arrival-cursor
        window an epoch consumed and forwards exactly the requests the
        admission controller shed in it, in stream order — the same
        order a full-run scan would visit them."""
        if hi is None:
            hi = len(self.arrival)
        return (
            np.flatnonzero(self.shed[lo:hi]) + lo
        ).tolist()


def _class_pools(mix: ScenarioMix, slo_classes: tuple) -> dict:
    """Per-model class-draw pools for model-bound SLO classes.

    Each mix model maps to ``(class positions, cumulative shares)``:
    the classes bound to it when any are, else the unbound defaults.
    """
    from ..errors import ConfigError

    unbound = [
        i
        for i, c in enumerate(slo_classes)
        if not getattr(c, "model", None)
    ]
    pools: dict[str, tuple[list[int], np.ndarray]] = {}
    for name in mix.model_names:
        members = [
            i
            for i, c in enumerate(slo_classes)
            if getattr(c, "model", None) == name
        ] or unbound
        if not members:
            raise ConfigError(
                f"model {name!r} has no applicable SLO class: every "
                "class is bound to another model — bind one with "
                "model= or add an unbound default class"
            )
        pools[name] = (
            members,
            np.cumsum(
                [slo_classes[i].share for i in members],
                dtype=np.float64,
            ),
        )
    return pools


class Request:
    """A write-through view of one arena row.

    Presents the object-era dataclass API — ``index``, ``model``,
    ``profile``, ``arrival``, ``start``, ``finish``, ``slo``,
    ``priority``, ``deadline``, ``shed`` plus the ``latency`` /
    ``queue_wait`` / ``met_deadline`` helpers — over ``(arena, i)``.
    The legacy constructor builds a private single-row arena, so
    ``Request(index=0, model=..., profile=..., arrival=...)`` keeps
    working for tests, hooks, and tenancy spill clones.

    Equality is identity (the dataclass era's value-``__eq__`` made
    requests unhashable and was never relied on: queue membership
    tests compare the very objects the engine enqueued).
    """

    __slots__ = ("arena", "i")

    def __init__(
        self,
        index: int,
        model: str,
        profile: ServiceProfile,
        arrival: float,
        start: float = -1.0,
        finish: float = -1.0,
        slo: str = "",
        priority: int = 0,
        deadline: float = _INF,
        shed: bool = False,
    ) -> None:
        arena = RequestArena(
            1,
            model_names=(model,),
            profiles=(profile,),
            slo_names=(slo,) if slo else (),
        )
        arena.arrival[0] = arrival
        arena.start[0] = start
        arena.finish[0] = finish
        arena.deadline[0] = deadline
        arena.index[0] = index
        arena.priority[0] = priority
        arena.class_idx[0] = 0 if slo else -1
        arena.shed[0] = shed
        self.arena = arena
        self.i = 0

    # -- identity ----------------------------------------------------
    @property
    def index(self) -> int:
        return int(self.arena.index[self.i])

    @index.setter
    def index(self, value: int) -> None:
        self.arena.index[self.i] = value

    @property
    def model(self) -> str:
        return self.arena.model_names[self.arena.model_idx[self.i]]

    @property
    def profile(self) -> ServiceProfile:
        return self.arena.profiles[self.arena.model_idx[self.i]]

    @property
    def slo(self) -> str:
        ci = self.arena.class_idx[self.i]
        return "" if ci < 0 else self.arena.slo_names[ci]

    # -- timestamps --------------------------------------------------
    @property
    def arrival(self) -> float:
        return float(self.arena.arrival[self.i])

    @arrival.setter
    def arrival(self, value: float) -> None:
        self.arena.arrival[self.i] = value

    @property
    def start(self) -> float:
        return float(self.arena.start[self.i])

    @start.setter
    def start(self, value: float) -> None:
        self.arena.start[self.i] = value

    @property
    def finish(self) -> float:
        return float(self.arena.finish[self.i])

    @finish.setter
    def finish(self, value: float) -> None:
        self.arena.finish[self.i] = value

    @property
    def deadline(self) -> float:
        return float(self.arena.deadline[self.i])

    @deadline.setter
    def deadline(self, value: float) -> None:
        self.arena.deadline[self.i] = value

    # -- control-plane state -----------------------------------------
    @property
    def priority(self) -> int:
        return int(self.arena.priority[self.i])

    @priority.setter
    def priority(self, value: int) -> None:
        self.arena.priority[self.i] = value

    @property
    def shed(self) -> bool:
        return bool(self.arena.shed[self.i])

    @shed.setter
    def shed(self, value: bool) -> None:
        self.arena.shed[self.i] = value

    # -- derived -----------------------------------------------------
    @property
    def latency(self) -> float:
        """Arrival-to-completion latency."""
        return self.finish - self.arrival

    @property
    def queue_wait(self) -> float:
        """Arrival-to-launch wait."""
        return self.start - self.arrival

    @property
    def met_deadline(self) -> bool:
        """Completed at or before the deadline (shed never counts)."""
        return not self.shed and 0 <= self.finish <= self.deadline

    def __repr__(self) -> str:
        return (
            f"Request(index={self.index}, model={self.model!r}, "
            f"arrival={self.arrival}, start={self.start}, "
            f"finish={self.finish}, slo={self.slo!r}, "
            f"priority={self.priority}, deadline={self.deadline}, "
            f"shed={self.shed})"
        )
