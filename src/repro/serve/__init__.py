"""Request-level serving simulation over a fleet of EDEA accelerators.

The paper measures single-inference latency; this package asks the
deployment question: what p50/p95/p99 latency, sustained QPS, and
utilization does a *fleet* of these accelerators deliver under real
traffic?  It composes the repository's existing layers — fastpath
analytic latencies as service times, :mod:`repro.nn.zoo` geometries as
heterogeneous workloads, :mod:`repro.parallel` for sweeps — into a
discrete-event simulator with pluggable arrival processes, scheduling
policies, and per-instance batching.

The event machinery is one shared kernel, :mod:`repro.serve.engine`:
:func:`simulate` runs it with default hooks, and the SLO/energy control
plane (:mod:`repro.control`) runs the *same* loop through its
admission/governor hooks.

Quick start::

    from repro.serve import ServingScenario, simulate

    report = simulate(ServingScenario(instances=4, policy="affinity"))
    print(report.latency_p99_s, report.sustained_qps)
"""

from .arrival import (
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    SharedModulator,
    TraceArrivals,
    make_arrivals,
    thin_nhpp,
)
from .arena import RequestArena
from .engine import Engine, EngineHooks, EngineRun
from .fleet import Batch, Fleet, Instance, Request
from .sketch import StreamingLatencyStats, TDigest
from .policies import (
    POLICIES,
    AffinityPolicy,
    DeadlineAwarePolicy,
    EnergyAwarePolicy,
    LeastLoadedPolicy,
    RoundRobinPolicy,
    SchedulingPolicy,
    make_policy,
)
from .profile import (
    SCENARIO_MIXES,
    ScenarioMix,
    ServiceProfile,
    build_mix,
    service_profile,
)
from .simulator import ServingReport, ServingScenario, simulate
from .sweep import (
    policy_fleet_sweep,
    serving_sweep,
    throughput_latency_curve,
)

__all__ = [
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "TraceArrivals",
    "SharedModulator",
    "make_arrivals",
    "thin_nhpp",
    "Engine",
    "EngineHooks",
    "EngineRun",
    "Request",
    "RequestArena",
    "TDigest",
    "StreamingLatencyStats",
    "Batch",
    "Instance",
    "Fleet",
    "SchedulingPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "AffinityPolicy",
    "DeadlineAwarePolicy",
    "EnergyAwarePolicy",
    "POLICIES",
    "make_policy",
    "ServiceProfile",
    "service_profile",
    "ScenarioMix",
    "SCENARIO_MIXES",
    "build_mix",
    "ServingScenario",
    "ServingReport",
    "simulate",
    "serving_sweep",
    "policy_fleet_sweep",
    "throughput_latency_curve",
]
