"""Per-model service-time profiles for the serving simulator.

A serving request's service time on one accelerator instance is the
fastpath network latency: the closed-form per-layer cycle counts of
:func:`repro.sim.pipeline.layer_latency` (validated cycle-for-cycle
against the event-driven model) summed over the model's DSC stack.
Profiles are pure geometry — no training, calibration, or tensors — so
any :mod:`repro.nn.zoo` entry can join a traffic mix instantly.

Model switches are not free: an instance that last served a different
network must stream that model's weights and Non-Conv constants from
external memory before the first image of the batch.  The profile
carries the weight footprint and converts it to a setup latency at a
configurable external bandwidth, which is what makes network-affinity
scheduling worth having in mixed-model traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..arch.params import EDEA_CONFIG, ArchConfig
from ..errors import ConfigError
from ..nn.mobilenet import DSCLayerSpec
from ..nn.zoo import zoo_specs
from ..sim.pipeline import layer_latency

__all__ = [
    "ServiceProfile",
    "service_profile",
    "ScenarioMix",
    "SCENARIO_MIXES",
    "build_mix",
]

#: Q8.16 Non-Conv constants are 24-bit values, two (k, b) per channel.
_NONCONV_BYTES_PER_CHANNEL = 2 * 3

#: Default external-memory bandwidth for weight streaming (bytes/s).
DEFAULT_WEIGHT_BANDWIDTH = 8e9


@dataclass(frozen=True)
class ServiceProfile:
    """Deterministic service-time model of one network on one instance.

    Attributes:
        name: Zoo model name.
        layer_cycles: Per-layer fastpath latency in cycles.
        weight_bytes: int8 weights + Q8.16 constants the instance must
            stream on a model switch.
        clock_hz: Accelerator clock for cycle-to-seconds conversion.
        weight_bandwidth: External bandwidth for the switch transfer.
    """

    name: str
    layer_cycles: tuple[int, ...]
    weight_bytes: int
    clock_hz: float = EDEA_CONFIG.clock_hz
    weight_bandwidth: float = DEFAULT_WEIGHT_BANDWIDTH

    # The three derived quantities below sit on the event loop's
    # hottest paths (every enqueue, launch, and placement estimate), so
    # they are cached per profile instead of re-summed per access.
    @cached_property
    def total_cycles(self) -> int:
        """Network latency of one image in cycles."""
        return sum(self.layer_cycles)

    @cached_property
    def per_image_seconds(self) -> float:
        """Service time of one image (fastpath latency)."""
        return self.total_cycles / self.clock_hz

    @cached_property
    def setup_seconds(self) -> float:
        """Weight-streaming latency paid on a model switch."""
        return self.weight_bytes / self.weight_bandwidth

    def per_image_seconds_at(self, frequency_hz: float) -> float:
        """Service time of one image at a DVFS-scaled clock (the cycle
        count is frequency-independent; only the period stretches)."""
        if frequency_hz <= 0:
            raise ConfigError(
                f"frequency_hz must be positive ({frequency_hz})"
            )
        return self.total_cycles / frequency_hz

    def batch_seconds(self, batch_size: int, cold: bool) -> float:
        """Service time of a batch (no inter-image parallelism: the EDEA
        design runs one DSC layer across both engines, so images stream
        back to back; ``cold`` adds the model-switch setup)."""
        if batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1 ({batch_size})")
        setup = self.setup_seconds if cold else 0.0
        return setup + batch_size * self.per_image_seconds


def service_profile(
    name: str,
    specs: list[DSCLayerSpec] | None = None,
    config: ArchConfig = EDEA_CONFIG,
    weight_bandwidth: float = DEFAULT_WEIGHT_BANDWIDTH,
) -> ServiceProfile:
    """Build the :class:`ServiceProfile` of a zoo model (or explicit specs).

    Args:
        name: Zoo model name (resolved via
            :func:`repro.nn.zoo.zoo_specs` when ``specs`` is omitted).
        specs: Optional explicit layer geometry.
        config: Architecture parameters (clock, tiling).
        weight_bandwidth: External bandwidth for model-switch transfers.
    """
    if weight_bandwidth <= 0:
        raise ConfigError(
            f"weight_bandwidth must be positive ({weight_bandwidth})"
        )
    if specs is None:
        specs = zoo_specs(name)
    cycles = tuple(
        layer_latency(spec, config).total_cycles for spec in specs
    )
    k2 = config.kernel_size**2
    weight_bytes = sum(
        spec.in_channels * k2  # int8 depthwise kernels
        + spec.out_channels * spec.in_channels  # int8 pointwise kernels
        + _NONCONV_BYTES_PER_CHANNEL
        * (spec.in_channels + spec.out_channels)  # folded (k, b) pairs
        for spec in specs
    )
    return ServiceProfile(
        name=name,
        layer_cycles=cycles,
        weight_bytes=weight_bytes,
        clock_hz=config.clock_hz,
        weight_bandwidth=weight_bandwidth,
    )


@dataclass(frozen=True)
class ScenarioMix:
    """A weighted set of models sharing one serving fleet.

    Attributes:
        name: Mix name (CLI handle).
        profiles: One :class:`ServiceProfile` per model.
        weights: Sampling weight per model, normalized to sum 1.
    """

    name: str
    profiles: tuple[ServiceProfile, ...]
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.profiles) != len(self.weights) or not self.profiles:
            raise ConfigError("mix needs matching, non-empty profiles")
        if any(w <= 0 for w in self.weights):
            raise ConfigError("mix weights must be positive")

    @property
    def model_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.profiles)

    def profile(self, name: str) -> ServiceProfile:
        for p in self.profiles:
            if p.name == name:
                return p
        raise ConfigError(f"model {name!r} not in mix {self.name!r}")

    def mean_service_seconds(self) -> float:
        """Traffic-weighted mean per-image service time."""
        total = sum(self.weights)
        return (
            sum(
                w * p.per_image_seconds
                for w, p in zip(self.weights, self.profiles)
            )
            / total
        )

    def sample(self, rng) -> str:
        """Draw a model name with the mix's weights.

        The simulators draw whole request streams through the
        vectorized :func:`repro.serve.engine.build_requests`, which
        must stay draw-for-draw identical to this scalar form (a test
        pins the two together); change them in lockstep.
        """
        total = sum(self.weights)
        u = rng.random() * total
        acc = 0.0
        for w, p in zip(self.weights, self.profiles):
            acc += w
            if u < acc:
                return p.name
        return self.profiles[-1].name


#: Named scenario mixes: model name -> sampling weight.
SCENARIO_MIXES: dict[str, dict[str, float]] = {
    "v1-224": {"mobilenet-v1-224": 1.0},
    "v2-dsc": {"mobilenet-v2-dsc": 1.0},
    "edge": {"edge-tiny": 1.0},
    # Heterogeneous traffic: heavyweight classification, mid-size V2
    # blocks, and a light edge model with a ~50x service-time spread.
    "mixed": {
        "mobilenet-v1-224": 0.4,
        "mobilenet-v2-dsc": 0.3,
        "edge-tiny": 0.3,
    },
}


def build_mix(
    name: str,
    config: ArchConfig = EDEA_CONFIG,
    weight_bandwidth: float = DEFAULT_WEIGHT_BANDWIDTH,
) -> ScenarioMix:
    """Materialize a named mix into profiles under ``config``.

    Raises:
        ConfigError: On an unknown mix name.
    """
    try:
        weighting = SCENARIO_MIXES[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIO_MIXES))
        raise ConfigError(
            f"unknown scenario mix {name!r} (known: {known})"
        ) from None
    models = sorted(weighting)
    return ScenarioMix(
        name=name,
        profiles=tuple(
            service_profile(
                m, config=config, weight_bandwidth=weight_bandwidth
            )
            for m in models
        ),
        weights=tuple(weighting[m] for m in models),
    )
