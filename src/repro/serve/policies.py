"""Scheduling policies: which instance gets an arriving request.

Policies are deliberately small objects with one decision method, so
sweeping them against each other through :mod:`repro.parallel` is cheap.
Three ship here:

* **round-robin** — arrival order striped across the fleet; the
  baseline every serving paper compares against.
* **least-loaded** — join-shortest-queue by *pending work in seconds*
  (not request count: a MobileNetV1-224 request is ~50x an edge-tiny
  one, so counting requests misroutes heterogeneous traffic).
* **affinity** — least-loaded, but prefers an instance whose resident
  weights already match the request's model when that detour costs less
  than the weight reload it avoids.  Only meaningful for mixed-model
  traffic; degrades to least-loaded on single-model mixes.
"""

from __future__ import annotations

from ..errors import ConfigError
from .fleet import Fleet, Request

__all__ = [
    "SchedulingPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "AffinityPolicy",
    "POLICIES",
    "make_policy",
]


class SchedulingPolicy:
    """Base class: route one request to one fleet index."""

    name = "base"

    def choose(self, request: Request, fleet: Fleet, now: float) -> int:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear any per-run state (called once per simulation)."""


class RoundRobinPolicy(SchedulingPolicy):
    """Stripe arrivals across instances in order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def reset(self) -> None:
        self._next = 0

    def choose(self, request: Request, fleet: Fleet, now: float) -> int:
        index = self._next % len(fleet)
        self._next += 1
        return index


class LeastLoadedPolicy(SchedulingPolicy):
    """Join the instance with the least pending work (seconds)."""

    name = "least-loaded"

    def choose(self, request: Request, fleet: Fleet, now: float) -> int:
        return min(
            range(len(fleet)),
            key=lambda i: (fleet[i].pending_seconds(now), i),
        )


class AffinityPolicy(SchedulingPolicy):
    """Least-loaded with a model-affinity detour.

    An instance whose loaded model matches the request avoids one weight
    reload (``setup_seconds``); routing there is worth up to exactly that
    much extra queueing, so the policy picks the best warm instance
    whenever its backlog exceeds the global minimum by less than the
    setup cost, and falls back to least-loaded otherwise.
    """

    name = "affinity"

    def choose(self, request: Request, fleet: Fleet, now: float) -> int:
        loads = [fleet[i].pending_seconds(now) for i in range(len(fleet))]
        best = min(range(len(fleet)), key=lambda i: (loads[i], i))
        warm = [
            i
            for i in range(len(fleet))
            if fleet[i].loaded_model == request.model
        ]
        if not warm:
            return best
        best_warm = min(warm, key=lambda i: (loads[i], i))
        detour = loads[best_warm] - loads[best]
        if detour <= request.profile.setup_seconds:
            return best_warm
        return best


#: Policy name -> factory, for the CLI and sweeps.
POLICIES = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    LeastLoadedPolicy.name: LeastLoadedPolicy,
    AffinityPolicy.name: AffinityPolicy,
}


def make_policy(name: str) -> SchedulingPolicy:
    """Instantiate a policy by name.

    Raises:
        ConfigError: On an unknown name (the message lists valid ones).
    """
    try:
        factory = POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(POLICIES))
        raise ConfigError(
            f"unknown scheduling policy {name!r} (known: {known})"
        ) from None
    return factory()
