"""Scheduling policies: which instance gets an arriving request.

Policies are deliberately small objects with one decision method, so
sweeping them against each other through :mod:`repro.parallel` is cheap.
A policy sees an indexed collection of instances — the whole
:class:`~repro.serve.fleet.Fleet`, or the *active* slice of it that the
:class:`~repro.serve.engine.Engine` passes when an autoscaler has
powered instances down — and returns a position in that collection.
Five ship here:

* **round-robin** — arrival order striped across the fleet; the
  baseline every serving paper compares against.
* **least-loaded** — join-shortest-queue by *pending work in seconds*
  (not request count: a MobileNetV1-224 request is ~50x an edge-tiny
  one, so counting requests misroutes heterogeneous traffic).
* **affinity** — least-loaded, but prefers an instance whose resident
  weights already match the request's model when that detour costs less
  than the weight reload it avoids.  Only meaningful for mixed-model
  traffic; degrades to least-loaded on single-model mixes.
* **deadline-aware** — admission-aware placement: the scheduler reads
  the request's deadline and places it on an instance that can still
  meet it, spending backlog headroom only when needed.  Degrades to
  least-loaded for traffic without deadlines.
* **energy-aware** — for DVFS-heterogeneous fleets: weighs each
  instance's joules-per-request against the queueing delay it would
  add, so cheap (low-voltage) instances absorb traffic until their
  backlog costs more than the energy they save.  Degrades to
  least-loaded on unmetered (powerless) fleets.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ConfigError
from .fleet import Instance, Request

__all__ = [
    "SchedulingPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "AffinityPolicy",
    "DeadlineAwarePolicy",
    "EnergyAwarePolicy",
    "POLICIES",
    "make_policy",
]

_EPS = 1e-12
_INF = float("inf")


def _least_loaded(
    fleet: Sequence[Instance],
    now: float,
    indices: Sequence[int] | None = None,
) -> int:
    """Index of the least pending work, ties to the lowest index.

    The single hottest decision in every simulation, shared by the
    least-loaded policy and every policy that falls back to it: an
    explicit scan (strict < keeps the lowest-index tie-break) instead
    of min()-with-lambda, which allocates a tuple per instance.
    """
    candidates = range(len(fleet)) if indices is None else indices
    best = -1
    best_load = _INF
    for i in candidates:
        load = fleet[i].pending_seconds(now)
        if load < best_load:
            best = i
            best_load = load
    return best


class SchedulingPolicy:
    """Base class: route one request to a position in ``fleet``.

    ``fleet`` is any indexed collection of instances (``len`` +
    integer ``[]``): the :class:`~repro.serve.fleet.Fleet` itself or
    the engine's active slice.  The returned index addresses *that
    collection*, not the global fleet.
    """

    name = "base"

    def choose(
        self, request: Request, fleet: Sequence[Instance], now: float
    ) -> int:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear any per-run state (called once per simulation)."""

    def state_dict(self) -> dict:
        """Picklable mid-run state for checkpointing (base policies
        are stateless and return an empty dict)."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""


class RoundRobinPolicy(SchedulingPolicy):
    """Stripe arrivals across instances in order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def reset(self) -> None:
        self._next = 0

    def state_dict(self) -> dict:
        return {"next": self._next}

    def load_state_dict(self, state: dict) -> None:
        self._next = state["next"]

    def choose(self, request, fleet, now):
        index = self._next % len(fleet)
        self._next += 1
        return index


class LeastLoadedPolicy(SchedulingPolicy):
    """Join the instance with the least pending work (seconds)."""

    name = "least-loaded"

    def choose(self, request, fleet, now):
        return _least_loaded(fleet, now)


class AffinityPolicy(SchedulingPolicy):
    """Least-loaded with a model-affinity detour.

    An instance whose loaded model matches the request avoids one weight
    reload (``setup_seconds``); routing there is worth up to exactly that
    much extra queueing, so the policy picks the best warm instance
    whenever its backlog exceeds the global minimum by less than the
    setup cost, and falls back to least-loaded otherwise.
    """

    name = "affinity"

    def choose(self, request, fleet, now):
        loads = [fleet[i].pending_seconds(now) for i in range(len(fleet))]
        best = min(range(len(fleet)), key=lambda i: (loads[i], i))
        warm = [
            i
            for i in range(len(fleet))
            if fleet[i].loaded_model == request.model
        ]
        if not warm:
            return best
        best_warm = min(warm, key=lambda i: (loads[i], i))
        detour = loads[best_warm] - loads[best]
        if detour <= request.profile.setup_seconds:
            return best_warm
        return best


class DeadlineAwarePolicy(SchedulingPolicy):
    """Place each request on an instance that can still meet its deadline.

    Among the instances whose first-order completion estimate
    (:meth:`~repro.serve.fleet.Instance.estimated_completion`) lands at
    or before the request's deadline, the least-loaded one wins —
    feasibility first, headroom preserved.  When no instance can meet
    the deadline the policy minimizes the estimated completion instead,
    so the miss (and the work a deadline shedder would reject) stays as
    small as possible.  Deadline-free requests fall back to
    least-loaded, making the policy safe as a serve-plane default.
    """

    name = "deadline-aware"

    def choose(self, request, fleet, now):
        indices = range(len(fleet))
        if request.deadline == _INF:
            return _least_loaded(fleet, now)
        completions = [
            fleet[i].estimated_completion(request, now) for i in indices
        ]
        feasible = [
            i
            for i in indices
            if completions[i] <= request.deadline + _EPS
        ]
        if feasible:
            return _least_loaded(fleet, now, feasible)
        return min(indices, key=lambda i: (completions[i], i))


class EnergyAwarePolicy(SchedulingPolicy):
    """Weigh joules-per-request against queue delay across the fleet.

    Each candidate is scored ``E_i + P_ref * D_i``: the energy this
    request would burn there (busy power x its DVFS-stretched service
    time) plus the queueing delay it would suffer, priced at the
    fleet's highest busy power — the opportunity cost of waiting
    instead of running on the fastest instance.  Low-voltage instances
    therefore soak up traffic while their queues stay short and shed it
    to fast instances once the delay outweighs the joules saved.  On a
    fleet without power metering (the plain serve data plane) every
    score reduces to the queue delay, i.e. least-loaded.
    """

    name = "energy-aware"

    def choose(self, request, fleet, now):
        indices = range(len(fleet))
        price = max(fleet[i].busy_power_w for i in indices)
        if price <= 0.0:
            return _least_loaded(fleet, now)

        def score(i: int):
            instance = fleet[i]
            profile = (
                instance.profile_for(request.model) or request.profile
            )
            energy = instance.busy_power_w * (
                profile.per_image_seconds * instance.latency_scale
            )
            return (
                energy + price * instance.pending_seconds(now),
                i,
            )

        return min(indices, key=score)


#: Policy name -> factory, for the CLI and sweeps.
POLICIES = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    LeastLoadedPolicy.name: LeastLoadedPolicy,
    AffinityPolicy.name: AffinityPolicy,
    DeadlineAwarePolicy.name: DeadlineAwarePolicy,
    EnergyAwarePolicy.name: EnergyAwarePolicy,
}


def make_policy(name: str) -> SchedulingPolicy:
    """Instantiate a policy by name.

    Raises:
        ConfigError: On an unknown name (the message lists valid ones).
    """
    try:
        factory = POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(POLICIES))
        raise ConfigError(
            f"unknown scheduling policy {name!r} (known: {known})"
        ) from None
    return factory()
