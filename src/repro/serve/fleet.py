"""Requests, accelerator instances, and the fleet they form.

Each instance models one EDEA accelerator behind its own FIFO batching
queue: requests wait until a batch launches (full, or the head request
has waited the configured maximum), then stream through the accelerator
back to back — the design has no inter-image parallelism, so a batch's
benefit is amortizing the model-switch weight load, not parallel
compute.  The fleet is just the indexed collection a scheduling policy
chooses from.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..errors import ConfigError
from .arena import Request
from .profile import ServiceProfile

__all__ = ["Request", "Batch", "Instance", "Fleet"]


@dataclass(frozen=True, slots=True)
class Batch:
    """A same-model run of requests launched together."""

    requests: tuple[Request, ...]

    @property
    def model(self) -> str:
        return self.requests[0].model

    @property
    def profile(self) -> ServiceProfile:
        return self.requests[0].profile

    def __len__(self) -> int:
        return len(self.requests)


@dataclass(slots=True)
class Instance:
    """One accelerator instance with its FIFO batching queue.

    Attributes:
        index: Position in the fleet.
        busy_until: Completion time of the in-flight batch (<= now when
            idle).
        loaded_model: Model whose weights are resident (None when cold).
        queue: Waiting requests in arrival order.
        busy_seconds: Accumulated service time (utilization numerator).
        served: Completed request count.
        batches: Launched batch count.
        setups: Model switches paid (weight reloads).
        queued_seconds: Running sum of the queued requests' per-image
            service times (kept incrementally so scheduling decisions
            stay O(1) even when a queue grows long under overload).
        active: Whether the control plane routes new requests here (an
            autoscaler powers instances up/down; drained instances keep
            serving their queue).
        latency_scale: Service-time multiplier from the instance's DVFS
            operating point (nominal clock / actual clock; 1.0 at the
            published operating point).
        busy_power_w / idle_power_w: Power draw while serving / while
            powered but idle (0.0 outside the control plane).
        energy_joules: Accumulated busy-time energy.
        powered_since: Start of the current powered interval (None when
            powered off).
        powered_seconds: Closed powered intervals, accumulated.
        window_end: End of the busy-window accounting interval (the last
            arrival); busy time inside it accrues separately so reports
            can exclude the drain tail.
        busy_seconds_window: Busy time accrued inside the window.
        profiles: Optional per-instance service profiles (heterogeneous
            ``ArchConfig`` fleets); None falls back to each request's
            own profile.
    """

    index: int
    busy_until: float = 0.0
    loaded_model: str | None = None
    queue: deque = field(default_factory=deque)
    busy_seconds: float = 0.0
    served: int = 0
    batches: int = 0
    setups: int = 0
    queued_seconds: float = 0.0
    active: bool = True
    latency_scale: float = 1.0
    busy_power_w: float = 0.0
    idle_power_w: float = 0.0
    energy_joules: float = 0.0
    powered_since: float | None = 0.0
    powered_seconds: float = 0.0
    window_end: float | None = None
    busy_seconds_window: float = 0.0
    profiles: dict[str, ServiceProfile] | None = None

    #: Scalar fields that round-trip through ``state_dict`` — the
    #: queue (engine-owned, serialized as stream positions by
    #: ``Engine.snapshot``) and the deterministically rebuilt ``index``
    #: and ``profiles`` are deliberately excluded.
    _STATE_FIELDS = (
        "busy_until",
        "loaded_model",
        "busy_seconds",
        "served",
        "batches",
        "setups",
        "queued_seconds",
        "active",
        "latency_scale",
        "busy_power_w",
        "idle_power_w",
        "energy_joules",
        "powered_since",
        "powered_seconds",
        "window_end",
        "busy_seconds_window",
    )

    def state_dict(self) -> dict:
        """Picklable mid-run state (see :data:`_STATE_FIELDS`)."""
        return {
            name: getattr(self, name) for name in self._STATE_FIELDS
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore the fields captured by :meth:`state_dict`; extra
        keys (e.g. the engine's serialized queue) are ignored."""
        for name in self._STATE_FIELDS:
            setattr(self, name, state[name])

    def enqueue(
        self, request: Request, priority_aware: bool = False
    ) -> None:
        """Append a request; with ``priority_aware`` the queue is kept
        sorted by ``(priority, index)`` so urgent classes batch first.

        The insertion point is found scanning from the *tail*: arrivals
        have monotonically increasing indices, so same-or-lower-priority
        traffic (the common case) appends in O(1) and only a
        strictly-higher-priority arrival walks past the lower-priority
        backlog it overtakes — keeping the overload baselines, whose
        single-class queues grow long, linear rather than quadratic.
        """
        if priority_aware and self.queue:
            key = (request.priority, request.index)
            pos = len(self.queue)
            for queued in reversed(self.queue):
                if (queued.priority, queued.index) <= key:
                    break
                pos -= 1
            if pos == len(self.queue):
                self.queue.append(request)
            else:
                self.queue.insert(pos, request)
        else:
            self.queue.append(request)
        self.queued_seconds += request.profile.per_image_seconds

    def remove(self, request: Request) -> None:
        """Drop a queued request (priority-preemptive shedding)."""
        self.queue.remove(request)
        self.queued_seconds -= request.profile.per_image_seconds
        if not self.queue:
            self.queued_seconds = 0.0

    def is_idle(self, now: float) -> bool:
        return self.busy_until <= now

    def queue_depth(self) -> int:
        return len(self.queue)

    def profile_for(self, model: str) -> ServiceProfile | None:
        """This instance's own profile of ``model`` (None = use the
        request's profile, i.e. the fleet is architecturally uniform)."""
        if self.profiles is None:
            return None
        return self.profiles.get(model)

    def pending_seconds(self, now: float) -> float:
        """Work the instance still owes: in-flight remainder + queued
        service time (model-switch costs excluded — they depend on the
        batching outcome, and the estimate only ranks instances)."""
        pending = self.busy_until - now
        if pending < 0.0:
            pending = 0.0
        queued = self.queued_seconds
        if queued > 0.0:
            pending += queued * self.latency_scale
        return pending

    def estimated_completion(self, request: Request, now: float) -> float:
        """First-order completion estimate if ``request`` joined now
        (in-flight remainder + queued work + its own service time)."""
        profile = self.profile_for(request.model) or request.profile
        return (
            now
            + self.pending_seconds(now)
            + profile.per_image_seconds * self.latency_scale
        )

    def _accrue_busy(self, now: float, duration: float) -> None:
        self.busy_seconds += duration
        if self.window_end is not None:
            start = min(now, self.window_end)
            end = min(now + duration, self.window_end)
            self.busy_seconds_window += max(0.0, end - start)
        self.energy_joules += self.busy_power_w * duration

    def power_up(self, now: float, warmup_s: float) -> None:
        """Bring a powered-off instance online; the warm-up (weight
        reload) occupies it — and burns busy power — before it serves."""
        self.active = True
        if self.powered_since is None:
            self.powered_since = now
        self.loaded_model = None
        start = max(self.busy_until, now)
        self.busy_until = start + warmup_s
        if warmup_s > 0:
            self._accrue_busy(start, warmup_s)

    def close_power_interval(self, now: float) -> None:
        """Close the current powered interval (instance fully drained)."""
        if self.powered_since is not None:
            self.powered_seconds += now - self.powered_since
            self.powered_since = None

    def next_batch(self, max_batch: int) -> Batch:
        """The batch that would launch now: the longest same-model run
        at the queue head, capped at ``max_batch`` (FIFO order is never
        violated — a different model behind the head waits its turn)."""
        if not self.queue:
            raise ConfigError("no queued requests to batch")
        head_model = self.queue[0].model
        members = []
        for request in self.queue:
            if request.model != head_model or len(members) == max_batch:
                break
            members.append(request)
        return Batch(requests=tuple(members))

    def launch(self, batch: Batch, now: float) -> float:
        """Start serving ``batch``; returns its completion time.

        Images stream sequentially, so the i-th request of the batch
        finishes after ``setup + (i+1) * per_image`` — completion times
        inside a batch are staggered, not simultaneous.  Service times
        come from the instance's own profile (heterogeneous fleets) when
        one is set, stretched by its DVFS ``latency_scale``.
        """
        return self._serve(batch.requests, now)

    def launch_head(self, max_batch: int, now: float) -> float:
        """Launch the due head batch without materializing a
        :class:`Batch`: pops the longest same-model run at the queue
        head (capped at ``max_batch``) and serves it.  The engine's hot
        path — identical outcome to ``launch(next_batch(max_batch))``.
        """
        queue = self.queue
        if not queue:
            raise ConfigError("no queued requests to batch")
        model = queue[0].model
        members = [queue.popleft()]
        while (
            len(members) < max_batch
            and queue
            and queue[0].model == model
        ):
            members.append(queue.popleft())
        return self._serve(members, now)

    def _serve(self, requests, now: float) -> float:
        """Serve an already-selected same-model run (shared by
        :meth:`launch` and :meth:`launch_head`)."""
        queue = self.queue
        queued_seconds = self.queued_seconds
        for request in requests:
            if queue and queue[0] is request:
                queue.popleft()
            queued_seconds -= request.profile.per_image_seconds
        self.queued_seconds = queued_seconds if queue else 0.0
        head = requests[0]
        model = head.model
        cold = self.loaded_model != model
        profile = self.profile_for(model) or head.profile
        setup = profile.setup_seconds if cold else 0.0
        per_image = profile.per_image_seconds * self.latency_scale
        base = now + setup
        count = 0
        for request in requests:
            count += 1
            request.start = now
            request.finish = base + count * per_image
        service = setup + count * per_image
        self.busy_until = now + service
        self._accrue_busy(now, service)
        self.served += count
        self.batches += 1
        if cold:
            self.setups += 1
        self.loaded_model = model
        return self.busy_until


class Fleet:
    """An indexed collection of :class:`Instance` objects."""

    def __init__(self, instances: int) -> None:
        if instances < 1:
            raise ConfigError(
                f"fleet needs at least one instance ({instances})"
            )
        self.instances = [Instance(index=i) for i in range(instances)]

    def __len__(self) -> int:
        return len(self.instances)

    def __iter__(self):
        return iter(self.instances)

    def __getitem__(self, index: int) -> Instance:
        return self.instances[index]

    def active_indices(self) -> list[int]:
        """Fleet indices the control plane currently routes to."""
        return [i.index for i in self.instances if i.active]
