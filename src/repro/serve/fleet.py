"""Requests, accelerator instances, and the fleet they form.

Each instance models one EDEA accelerator behind its own FIFO batching
queue: requests wait until a batch launches (full, or the head request
has waited the configured maximum), then stream through the accelerator
back to back — the design has no inter-image parallelism, so a batch's
benefit is amortizing the model-switch weight load, not parallel
compute.  The fleet is just the indexed collection a scheduling policy
chooses from.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..errors import ConfigError
from .profile import ServiceProfile

__all__ = ["Request", "Batch", "Instance", "Fleet"]


@dataclass
class Request:
    """One inference request travelling through the serving system.

    Attributes:
        index: Submission order (also the tiebreaker in event ordering).
        model: Zoo model name.
        profile: Service profile of that model.
        arrival: Arrival timestamp in seconds.
        start: Service start (batch launch), -1 until served.
        finish: Completion timestamp, -1 until served.
    """

    index: int
    model: str
    profile: ServiceProfile
    arrival: float
    start: float = -1.0
    finish: float = -1.0

    @property
    def latency(self) -> float:
        """Arrival-to-completion latency."""
        return self.finish - self.arrival

    @property
    def queue_wait(self) -> float:
        """Arrival-to-launch wait."""
        return self.start - self.arrival


@dataclass(frozen=True)
class Batch:
    """A same-model run of requests launched together."""

    requests: tuple[Request, ...]

    @property
    def model(self) -> str:
        return self.requests[0].model

    @property
    def profile(self) -> ServiceProfile:
        return self.requests[0].profile

    def __len__(self) -> int:
        return len(self.requests)


@dataclass
class Instance:
    """One accelerator instance with its FIFO batching queue.

    Attributes:
        index: Position in the fleet.
        busy_until: Completion time of the in-flight batch (<= now when
            idle).
        loaded_model: Model whose weights are resident (None when cold).
        queue: Waiting requests in arrival order.
        busy_seconds: Accumulated service time (utilization numerator).
        served: Completed request count.
        batches: Launched batch count.
        setups: Model switches paid (weight reloads).
        queued_seconds: Running sum of the queued requests' per-image
            service times (kept incrementally so scheduling decisions
            stay O(1) even when a queue grows long under overload).
    """

    index: int
    busy_until: float = 0.0
    loaded_model: str | None = None
    queue: deque = field(default_factory=deque)
    busy_seconds: float = 0.0
    served: int = 0
    batches: int = 0
    setups: int = 0
    queued_seconds: float = 0.0

    def enqueue(self, request: Request) -> None:
        self.queue.append(request)
        self.queued_seconds += request.profile.per_image_seconds

    def is_idle(self, now: float) -> bool:
        return self.busy_until <= now

    def queue_depth(self) -> int:
        return len(self.queue)

    def pending_seconds(self, now: float) -> float:
        """Work the instance still owes: in-flight remainder + queued
        service time (model-switch costs excluded — they depend on the
        batching outcome, and the estimate only ranks instances)."""
        return max(0.0, self.busy_until - now) + max(
            0.0, self.queued_seconds
        )

    def next_batch(self, max_batch: int) -> Batch:
        """The batch that would launch now: the longest same-model run
        at the queue head, capped at ``max_batch`` (FIFO order is never
        violated — a different model behind the head waits its turn)."""
        if not self.queue:
            raise ConfigError("no queued requests to batch")
        head_model = self.queue[0].model
        members = []
        for request in self.queue:
            if request.model != head_model or len(members) == max_batch:
                break
            members.append(request)
        return Batch(requests=tuple(members))

    def launch(self, batch: Batch, now: float) -> float:
        """Start serving ``batch``; returns its completion time.

        Images stream sequentially, so the i-th request of the batch
        finishes after ``setup + (i+1) * per_image`` — completion times
        inside a batch are staggered, not simultaneous.
        """
        for _ in batch.requests:
            popped = self.queue.popleft()
            self.queued_seconds -= popped.profile.per_image_seconds
        if not self.queue:
            self.queued_seconds = 0.0  # shed float residue when empty
        cold = self.loaded_model != batch.model
        profile = batch.profile
        setup = profile.setup_seconds if cold else 0.0
        per_image = profile.per_image_seconds
        for i, request in enumerate(batch.requests):
            request.start = now
            request.finish = now + setup + (i + 1) * per_image
        service = batch.profile.batch_seconds(len(batch), cold)
        self.busy_until = now + service
        self.busy_seconds += service
        self.served += len(batch)
        self.batches += 1
        if cold:
            self.setups += 1
        self.loaded_model = batch.model
        return self.busy_until


class Fleet:
    """An indexed collection of :class:`Instance` objects."""

    def __init__(self, instances: int) -> None:
        if instances < 1:
            raise ConfigError(
                f"fleet needs at least one instance ({instances})"
            )
        self.instances = [Instance(index=i) for i in range(instances)]

    def __len__(self) -> int:
        return len(self.instances)

    def __iter__(self):
        return iter(self.instances)

    def __getitem__(self, index: int) -> Instance:
        return self.instances[index]
