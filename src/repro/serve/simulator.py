"""Request-level serving simulation over a fleet of accelerators.

One :func:`simulate` call plays a whole serving story: requests arrive
under a configured traffic process, a scheduling policy routes each one
to an instance, per-instance batching queues amortize model switches,
and every service time is the deterministic fastpath latency of the
request's network.  The event machinery itself lives in
:mod:`repro.serve.engine` — ``simulate`` is a thin configuration of the
shared kernel with all hooks at their no-op defaults, the same kernel
the SLO/energy control plane (:func:`repro.control.simulate_controlled`)
drives through its admission/governor hooks.

Everything is deterministic for a given :class:`ServingScenario`
(a frozen dataclass of primitives), which makes scenarios cacheable
content keys and reports reproducible across processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..arch.params import EDEA_CONFIG, ArchConfig
from ..errors import ConfigError
from ..parallel.cache import extension_field, restore_extended
from .arrival import capture_rng_state, make_arrivals
from .engine import (
    Engine,
    EngineHooks,
    build_requests,
    realized_offered_qps,
    run_streaming_round_robin,
    summarize_requests,
)
from .fleet import Fleet
from .policies import make_policy
from .profile import DEFAULT_WEIGHT_BANDWIDTH, build_mix

__all__ = [
    "ServingScenario",
    "ServingReport",
    "ServingExecution",
    "prepare_serving",
    "finalize_serving",
    "simulate",
]

#: Default offered load as a fraction of fleet capacity when no QPS is
#: requested: high enough to queue, low enough to be stable.
_DEFAULT_LOAD = 0.7


@dataclass(frozen=True)
class ServingScenario:
    """Complete, hashable description of one serving simulation.

    Attributes:
        mix: Scenario mix name (see
            :data:`repro.serve.profile.SCENARIO_MIXES`).
        arrival: Traffic shape: ``"poisson"``, ``"bursty"``,
            ``"diurnal"``, ``"trace"``.
        qps: Offered rate; ``None`` picks 70% of fleet capacity.
        burst_factor: Burst multiplier for bursty traffic.
        trace: Arrival timestamps for trace replay.
        requests: Number of requests to play (traces clamp to length).
        instances: Fleet size.
        policy: Scheduling policy name.
        max_batch: Largest same-model batch an instance launches.
        max_wait_ms: Longest a queue head waits for its batch to fill.
        seed: RNG seed (arrival draws and mix sampling).
        config: Architecture parameters for the service-time model.
        weight_bandwidth: External bandwidth for model switches.
        diurnal_period_s: One day/night cycle for diurnal traffic.
        diurnal_amplitude: Peak-to-mean swing of the diurnal rate.
        stats: ``"exact"`` retains every latency and reports exact
            percentiles (the PR-4 behaviour, bit-for-bit); ``"sketch"``
            streams latencies through a t-digest
            (:mod:`repro.serve.sketch`) so memory stays flat in
            ``requests`` — and, for hook-free round-robin scenarios,
            generates arrivals chunk-at-a-time too (the
            million-request mode).  Streaming interleaves arrival and
            model draws per chunk, so its RNG stream (and therefore
            its request content) differs from exact mode at the same
            seed; sketch-mode scenarios hash to distinct cache keys,
            so cached exact reports are never shadowed.
    """

    mix: str = "mixed"
    arrival: str = "poisson"
    qps: float | None = None
    burst_factor: float = 4.0
    trace: tuple[float, ...] | None = None
    requests: int = 10_000
    instances: int = 4
    policy: str = "least-loaded"
    max_batch: int = 8
    max_wait_ms: float = 2.0
    seed: int = 0
    config: ArchConfig = EDEA_CONFIG
    weight_bandwidth: float = DEFAULT_WEIGHT_BANDWIDTH
    diurnal_period_s: float = extension_field(60.0)
    diurnal_amplitude: float = extension_field(0.8)
    stats: str = extension_field("exact")

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ConfigError(f"requests must be >= 1 ({self.requests})")
        if self.instances < 1:
            raise ConfigError(f"instances must be >= 1 ({self.instances})")
        if self.max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1 ({self.max_batch})")
        if self.max_wait_ms < 0:
            raise ConfigError(
                f"max_wait_ms must be >= 0 ({self.max_wait_ms})"
            )
        if self.qps is not None and self.qps <= 0:
            raise ConfigError(f"qps must be positive ({self.qps})")
        if self.stats not in ("exact", "sketch"):
            raise ConfigError(
                f"unknown stats mode {self.stats!r} "
                "(known: exact, sketch)"
            )
        # The diurnal knobs are validated by DiurnalArrivals when the
        # arrival process is built, like burst_factor by BurstyArrivals.


@dataclass(frozen=True)
class ServingReport:
    """Aggregate outcome of one serving simulation.

    Latencies are arrival-to-completion, in seconds.  ``utilization``
    is each instance's busy fraction of the makespan;
    ``per_model_counts`` is sorted ``(model, completed)`` pairs.

    The makespan includes the drain after the last arrival, which
    understates steady-state utilization, so ``utilization_busy`` also
    reports each instance's busy fraction of the *busy window* — the
    offered-traffic span ``[0, last arrival]`` (``busy_window_s``), with
    busy time truncated to it.

    Control-plane runs (:func:`repro.control.simulate_controlled`) fill
    the remaining fields: ``requests`` is then the *completed* count,
    ``offered_requests``/``shed_requests`` split the offered traffic,
    ``class_stats`` holds per-SLO-class
    :class:`~repro.control.slo.ClassStats`, and the energy fields
    integrate per-instance power over the run (None outside the control
    plane).
    """

    mix: str
    arrival: str
    policy: str
    instances: int
    requests: int
    offered_qps: float
    capacity_qps: float
    makespan_s: float
    sustained_qps: float
    latency_mean_s: float
    latency_p50_s: float
    latency_p95_s: float
    latency_p99_s: float
    latency_max_s: float
    mean_wait_s: float
    mean_batch_size: float
    setups: int
    utilization: tuple[float, ...]
    served_per_instance: tuple[int, ...]
    per_model_counts: tuple[tuple[str, int], ...]
    busy_window_s: float = 0.0
    utilization_busy: tuple[float, ...] = ()
    offered_requests: int = 0
    shed_requests: int = 0
    energy_joules: float | None = None
    joules_per_request: float | None = None
    class_stats: tuple = ()
    autoscale_events: int = 0
    mean_active_instances: float | None = None
    #: Per-model (tenant) aggregates, filled only when the scenario
    #: binds SLO classes to models (kept empty otherwise so the JSON
    #: form of pre-existing reports is byte-stable).
    model_stats: tuple = ()
    #: Engine execution counters — diagnostics about *how* the run
    #: executed, not *what* it computed.  ``compare=False`` keeps
    #: report equality (parity goldens, cache round-trips, the
    #: epoch-vs-monolith check) about the physics, and
    #: ``report_to_dict`` drops them so the JSON report payloads stay
    #: byte-stable; the CLI surfaces them in a separate section.
    engine_events: int = field(default=0, compare=False)
    engine_peak_heap: int = field(default=0, compare=False)
    engine_dispatch: str = field(default="", compare=False)
    #: First failing fast-path precondition when the general loop ran
    #: (empty when a fast path served the run) — makes a fallback to
    #: the general loop diagnosable from ``--json``.
    engine_fallback: str = field(default="", compare=False)

    def __setstate__(self, state: dict) -> None:
        # Reports unpickled from caches written before a field existed
        # backfill its default (see restore_extended).
        restore_extended(self, state)

    @property
    def offered_load(self) -> float:
        """Offered rate as a fraction of fleet capacity (rho)."""
        if self.capacity_qps <= 0:
            return 0.0
        return self.offered_qps / self.capacity_qps

    @property
    def mean_utilization(self) -> float:
        return float(np.mean(self.utilization))

    @property
    def mean_utilization_busy(self) -> float:
        """Mean busy-window utilization (steady-state view)."""
        if not self.utilization_busy:
            return self.mean_utilization
        return float(np.mean(self.utilization_busy))

    @property
    def slo_attainment(self) -> float | None:
        """Offered-weighted fraction of requests meeting their deadline
        (shed requests count as misses); None without SLO classes."""
        if not self.class_stats:
            return None
        offered = sum(cs.offered for cs in self.class_stats)
        if offered == 0:
            return None
        return sum(cs.met for cs in self.class_stats) / offered


def simulate(
    scenario: ServingScenario,
    hooks: EngineHooks | None = None,
    *,
    obs=None,
) -> ServingReport:
    """Run one serving scenario to completion.

    Deterministic for a given scenario; safe to cache and to fan out
    across worker processes.

    Args:
        scenario: The frozen scenario description.
        hooks: Optional custom :class:`~repro.serve.engine.EngineHooks`
            (e.g. an admission controller); the default runs the plain
            data plane.  A shedding hook makes the report's completed
            count diverge from the offered one — all throughput and
            batch statistics are computed from requests that actually
            *entered* a batch, never from shed traffic.
        obs: Optional :class:`~repro.obs.Observability` session; an
            active one wraps the hooks in telemetry observers (which
            routes the run down the general loop) without changing the
            reported physics.
    """
    mix = build_mix(
        scenario.mix, scenario.config, scenario.weight_bandwidth
    )
    capacity = scenario.instances / mix.mean_service_seconds()
    qps = scenario.qps if scenario.qps is not None else (
        _DEFAULT_LOAD * capacity
    )
    arrivals = make_arrivals(
        scenario.arrival,
        qps,
        burst_factor=scenario.burst_factor,
        trace=scenario.trace,
        diurnal_period_s=scenario.diurnal_period_s,
        diurnal_amplitude=scenario.diurnal_amplitude,
    )
    n = scenario.requests
    if scenario.arrival == "trace":
        n = min(n, len(scenario.trace))

    rng = np.random.default_rng(scenario.seed)
    if (
        scenario.stats == "sketch"
        and hooks is None
        and (obs is None or not obs.active)
        and scenario.policy == "round-robin"
        and scenario.max_wait_ms > 0
    ):
        return _simulate_streaming(scenario, mix, arrivals, n, rng, qps, capacity)
    execution = _prepare(
        scenario, hooks, mix, arrivals, n, rng, qps, capacity, obs=obs
    )
    # engine.run (not begin/run_until) so the columnar fast paths keep
    # dispatching for hook-free arena configurations.
    execution.engine.run(execution.requests)
    return finalize_serving(execution)


@dataclass
class ServingExecution:
    """One built serving run, ready to execute.

    :func:`prepare_serving` materializes the stream and the engine;
    the caller drives the engine — ``engine.run(requests)`` for the
    one-shot path (fast dispatch included), or ``engine.begin`` +
    bounded ``run_until`` slices for checkpointed execution — and
    :func:`finalize_serving` aggregates the drained execution into
    the :class:`ServingReport`.
    """

    scenario: ServingScenario
    mix: object
    capacity: float
    qps: float
    times: np.ndarray
    requests: object
    fleet: Fleet
    engine: Engine
    #: Bit-generator state captured right after stream construction —
    #: all randomness is consumed pre-run, so this is the position a
    #: checkpoint must round-trip exactly.  ``None`` when the stream
    #: was loaded from a checkpoint instead of generated.
    rng_state: dict | None = None


def _prepare(
    scenario, hooks, mix, arrivals, n, rng, qps, capacity, obs=None
) -> ServingExecution:
    times = arrivals.times(n, rng)
    requests = build_requests(mix, times, rng)
    rng_state = capture_rng_state(rng)

    fleet = Fleet(scenario.instances)
    window_end = float(times[-1])
    for instance in fleet:
        instance.window_end = window_end
    policy = make_policy(scenario.policy)
    policy.reset()

    tick_s = None
    if obs is not None and obs.active:
        hooks = obs.wrap(hooks, pid=0)
        obs.register_fleet(0, f"fleet ({scenario.mix})", fleet)
        tick_s = obs.engine_tick_s(None)
    engine = Engine(
        fleet,
        policy,
        max_batch=scenario.max_batch,
        max_wait_s=scenario.max_wait_ms * 1e-3,
        hooks=hooks,
        tick_s=tick_s,
    )
    return ServingExecution(
        scenario=scenario,
        mix=mix,
        capacity=capacity,
        qps=qps,
        times=times,
        requests=requests,
        fleet=fleet,
        engine=engine,
        rng_state=rng_state,
    )


def prepare_serving(
    scenario: ServingScenario,
    hooks: EngineHooks | None = None,
    *,
    obs=None,
) -> ServingExecution:
    """Build the non-streaming execution for ``scenario``.

    The head half of :func:`simulate` (identical build sequence, so
    identical RNG consumption): mix, capacity, arrival stream, request
    arena, fleet, policy, engine.  Always takes the build-then-run
    path — checkpointed runs step the general loop, never the
    chunk-interleaved streaming mode.
    """
    mix = build_mix(
        scenario.mix, scenario.config, scenario.weight_bandwidth
    )
    capacity = scenario.instances / mix.mean_service_seconds()
    qps = scenario.qps if scenario.qps is not None else (
        _DEFAULT_LOAD * capacity
    )
    arrivals = make_arrivals(
        scenario.arrival,
        qps,
        burst_factor=scenario.burst_factor,
        trace=scenario.trace,
        diurnal_period_s=scenario.diurnal_period_s,
        diurnal_amplitude=scenario.diurnal_amplitude,
    )
    n = scenario.requests
    if scenario.arrival == "trace":
        n = min(n, len(scenario.trace))
    rng = np.random.default_rng(scenario.seed)
    return _prepare(
        scenario, hooks, mix, arrivals, n, rng, qps, capacity, obs=obs
    )


def finalize_serving(execution: ServingExecution) -> ServingReport:
    """Aggregate a drained :class:`ServingExecution` into its report.

    The tail half of :func:`simulate`; identical whether the engine
    drained via ``run``, via checkpointed ``run_until`` slices, or
    after a restore in a fresh process.
    """
    scenario = execution.scenario
    fleet = execution.fleet
    capacity = execution.capacity
    qps = execution.qps
    times = execution.times
    requests = execution.requests
    n = len(requests)
    window_end = float(times[-1])

    summary = summarize_requests(requests, stats=scenario.stats)
    completed = summary.completed
    # An all-shed run (a shedding hook under heavy overload) completes
    # nothing: report explicit zeros instead of feeding empty arrays to
    # mean/percentile (NaN + RuntimeWarning) or a -inf max_finish.
    makespan = summary.max_finish if completed else 0.0
    total_batches = sum(i.batches for i in fleet)

    return ServingReport(
        mix=scenario.mix,
        arrival=scenario.arrival,
        policy=scenario.policy,
        instances=scenario.instances,
        requests=completed,
        offered_qps=realized_offered_qps(
            scenario.arrival, times, n, qps
        ),
        capacity_qps=float(capacity),
        makespan_s=makespan,
        sustained_qps=completed / makespan if makespan > 0 else 0.0,
        latency_mean_s=summary.latency_mean() if completed else 0.0,
        latency_p50_s=(
            summary.latency_percentile(50) if completed else 0.0
        ),
        latency_p95_s=(
            summary.latency_percentile(95) if completed else 0.0
        ),
        latency_p99_s=(
            summary.latency_percentile(99) if completed else 0.0
        ),
        latency_max_s=summary.latency_max() if completed else 0.0,
        mean_wait_s=summary.wait_mean() if completed else 0.0,
        # Shed requests never enter a batch: the mean batch size is
        # completed (served) work per launch, not offered work.
        mean_batch_size=(
            completed / total_batches if total_batches else 0.0
        ),
        setups=sum(i.setups for i in fleet),
        utilization=tuple(
            i.busy_seconds / makespan if makespan > 0 else 0.0
            for i in fleet
        ),
        served_per_instance=tuple(i.served for i in fleet),
        per_model_counts=summary.model_counts,
        busy_window_s=window_end,
        utilization_busy=tuple(
            i.busy_seconds_window / window_end if window_end > 0 else 0.0
            for i in fleet
        ),
        offered_requests=n,
        shed_requests=n - completed,
        engine_events=(
            execution.engine.last_run.events
            if execution.engine.last_run is not None
            else 0
        ),
        engine_peak_heap=(
            execution.engine.last_run.peak_heap
            if execution.engine.last_run is not None
            else 0
        ),
        engine_dispatch=(
            execution.engine.last_run.dispatch
            if execution.engine.last_run is not None
            else ""
        ),
        engine_fallback=(
            execution.engine.last_run.fallback
            if execution.engine.last_run is not None
            else ""
        ),
    )


def _simulate_streaming(
    scenario: ServingScenario,
    mix,
    arrivals,
    n: int,
    rng: np.random.Generator,
    qps: float,
    capacity: float,
) -> ServingReport:
    """The flat-memory round-robin mode behind ``stats="sketch"``.

    Arrivals are generated chunk-at-a-time and fed through the same
    vectorized round-robin kernel the exact fast path uses (see
    :func:`repro.serve.engine.run_streaming_round_robin`); completed
    latencies fold into a t-digest and are discarded.  Only hook-free
    round-robin scenarios with a positive batching timeout qualify —
    anything else takes the ordinary build-then-run path with sketch
    summarization (still flat in *latency retention*, not in arrival
    storage).
    """
    fleet = Fleet(scenario.instances)
    stream = run_streaming_round_robin(
        fleet,
        mix,
        arrivals,
        n,
        rng,
        max_batch=scenario.max_batch,
        max_wait_s=scenario.max_wait_ms * 1e-3,
    )
    completed = stream.completed
    makespan = stream.max_finish if completed else 0.0
    window_end = stream.window_end
    total_batches = sum(i.batches for i in fleet)
    return ServingReport(
        mix=scenario.mix,
        arrival=scenario.arrival,
        policy=scenario.policy,
        instances=scenario.instances,
        requests=completed,
        offered_qps=realized_offered_qps(
            scenario.arrival, np.array([window_end]), n, qps
        ),
        capacity_qps=float(capacity),
        makespan_s=makespan,
        sustained_qps=completed / makespan if makespan > 0 else 0.0,
        latency_mean_s=stream.latency.mean if completed else 0.0,
        latency_p50_s=(
            stream.latency.quantile(0.50) if completed else 0.0
        ),
        latency_p95_s=(
            stream.latency.quantile(0.95) if completed else 0.0
        ),
        latency_p99_s=(
            stream.latency.quantile(0.99) if completed else 0.0
        ),
        latency_max_s=stream.latency.max if completed else 0.0,
        mean_wait_s=stream.wait_mean if completed else 0.0,
        mean_batch_size=(
            completed / total_batches if total_batches else 0.0
        ),
        setups=sum(i.setups for i in fleet),
        utilization=tuple(
            i.busy_seconds / makespan if makespan > 0 else 0.0
            for i in fleet
        ),
        served_per_instance=tuple(i.served for i in fleet),
        per_model_counts=stream.model_counts,
        busy_window_s=window_end,
        utilization_busy=tuple(
            i.busy_seconds_window / window_end if window_end > 0 else 0.0
            for i in fleet
        ),
        offered_requests=n,
        shed_requests=n - completed,
        engine_events=stream.events,
        engine_dispatch="streaming",
    )
