"""The discrete-event kernel shared by every serving simulation.

One :class:`Engine` runs under both :func:`repro.serve.simulate` and
:func:`repro.control.simulate_controlled`: requests arrive in time
order, a scheduling policy places each one on an instance, per-instance
batching queues launch when full or timed out, and an optional periodic
tick drives a control loop.  The simulators differ only in the
:class:`EngineHooks` they plug in:

* ``on_arrival`` — admission control: shed or preempt at the chosen
  instance (the control plane's shedding policies).
* ``on_tick`` — a governor evaluated at a fixed interval (autoscaling,
  DVFS re-pointing).  Only scheduled when ``tick_s`` is set.
* ``on_complete`` — per-instance accounting after its queue was
  re-examined (the control plane closes drained power intervals).

Routing is a policy, not a hook: policies receive the *active* slice of
the fleet as a plain indexed sequence and return a position in it, so
the same policy objects serve both planes without adapter shims.

The kernel is deliberately fast.  Arrivals are non-decreasing by
construction, so they are merged from the request list directly instead
of being heaped — the event heap only ever holds the in-flight
completions, batching timeouts, and the next tick (a handful of
entries, not tens of thousands), and a batching timeout peeks at the
queue head instead of materializing a batch it may not launch.  Event
ordering is bit-for-bit the legacy ``(time, seq)`` heap order: at equal
timestamps arrivals precede every scheduled event (their sequence
numbers were seeded first) and scheduled events pop in push order.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Sequence

import numpy as np

from ..errors import ConfigError
from .fleet import Fleet, Instance, Request
from .policies import SchedulingPolicy
from .profile import ScenarioMix

__all__ = [
    "EngineHooks",
    "Engine",
    "EngineRun",
    "RequestSummary",
    "build_requests",
    "summarize_requests",
    "realized_offered_qps",
]

_COMPLETE, _WAKE, _TICK = 1, 2, 3
_EPS = 1e-12
_INF = float("inf")


class EngineHooks:
    """Pluggable decision points of the kernel (default: no-ops).

    Subclass and override what the scenario needs; the engine skips the
    dispatch for hooks left at their base implementation, so unused
    hooks cost nothing on the per-event path.
    """

    def on_arrival(
        self,
        request: Request,
        instance: Instance,
        now: float,
        engine: "Engine",
    ) -> bool:
        """Admission decision at the instance the policy chose.

        Return ``False`` to shed ``request`` (the engine marks it);
        preempting a queued victim is the hook's own business.
        """
        return True

    def on_tick(self, now: float, engine: "Engine") -> int:
        """Periodic control-loop evaluation; returns actions taken."""
        return 0

    def on_complete(
        self, instance: Instance, now: float, engine: "Engine"
    ) -> None:
        """Accounting after ``instance``'s queue was re-examined."""


@dataclass(slots=True)
class EngineRun:
    """Outcome counters of one kernel run.

    Attributes:
        events: Events processed (arrivals + completions + wakes +
            ticks) — the numerator of the events/sec kernel benchmark.
        tick_actions: Sum of the ``on_tick`` hook's action counts.
    """

    events: int
    tick_actions: int


class Engine:
    """One discrete-event loop over a fleet.

    Args:
        fleet: The instances (mutated in place during the run).
        policy: Scheduling policy; sees the active instances as an
            indexed sequence and returns a position in it.
        max_batch: Largest same-model batch an instance launches.
        max_wait_s: Longest a queue head waits for its batch to fill.
        hooks: Decision points (admission, ticks, accounting).
        tick_s: ``on_tick`` interval; ``None`` schedules no ticks.
        priority_queues: Keep instance queues priority-ordered.
    """

    __slots__ = (
        "fleet",
        "policy",
        "max_batch",
        "max_wait_s",
        "hooks",
        "tick_s",
        "priority_queues",
        "_admit",
        "_on_complete",
        "_heap",
        "_seq",
    )

    def __init__(
        self,
        fleet: Fleet,
        policy: SchedulingPolicy,
        max_batch: int,
        max_wait_s: float,
        hooks: EngineHooks | None = None,
        tick_s: float | None = None,
        priority_queues: bool = False,
    ) -> None:
        if max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1 ({max_batch})")
        if max_wait_s < 0:
            raise ConfigError(
                f"max_wait_s must be >= 0 ({max_wait_s})"
            )
        if tick_s is not None and tick_s <= 0:
            raise ConfigError(f"tick_s must be positive ({tick_s})")
        self.fleet = fleet
        self.policy = policy
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.hooks = hooks if hooks is not None else EngineHooks()
        self.tick_s = tick_s
        self.priority_queues = priority_queues
        cls = type(self.hooks)
        # Bind overridden hooks only: the serve plane runs with all
        # three at their base no-ops and pays zero dispatch for them.
        self._admit = (
            self.hooks.on_arrival
            if cls.on_arrival is not EngineHooks.on_arrival
            else None
        )
        self._on_complete = (
            self.hooks.on_complete
            if cls.on_complete is not EngineHooks.on_complete
            else None
        )
        self._heap: list = []
        self._seq = 0

    def _maybe_launch(self, instance: Instance, now: float) -> None:
        """Launch the head batch if it is due, else schedule its
        timeout.  A batch is due when the head request has waited out
        the fill window or a full same-model run is queued behind it."""
        if instance.busy_until > now or not instance.queue:
            return
        queue = instance.queue
        head = queue[0]
        max_batch = self.max_batch
        deadline = head.arrival + self.max_wait_s
        if now >= deadline - _EPS:
            due = True
        elif len(queue) >= max_batch:
            model = head.model
            count = 0
            for queued in queue:
                if queued.model != model:
                    break
                count += 1
                if count == max_batch:
                    break
            due = count == max_batch
        else:
            due = False
        self._seq += 1
        if due:
            finish = instance.launch_head(max_batch, now)
            heappush(
                self._heap,
                (finish, self._seq, _COMPLETE, instance.index),
            )
        else:
            heappush(
                self._heap, (deadline, self._seq, _WAKE, instance.index)
            )

    def run(self, requests: Sequence[Request]) -> EngineRun:
        """Play ``requests`` (non-decreasing arrival order) to drain."""
        instances = self.fleet.instances
        policy = self.policy
        admit = self._admit
        on_complete = self._on_complete
        hooks = self.hooks
        priority = self.priority_queues
        tick_s = self.tick_s
        heap = self._heap = []
        n = len(requests)
        # Arrivals implicitly own sequence numbers 1..n, so at equal
        # timestamps they order before every scheduled event, exactly
        # as when the legacy loops seeded them into the heap first.
        self._seq = n
        if tick_s is not None:
            self._seq += 1
            heappush(heap, (tick_s, self._seq, _TICK, None))
        # With no ticks and no custom hooks nothing can change instance
        # activity mid-run, so the active slice is the fleet itself
        # (skip per-arrival filtering).  Any hook — not just on_tick —
        # may power instances down, so their presence forces the
        # rebuild, exactly like the legacy control loop's per-arrival
        # active view.
        static_fleet = (
            tick_s is None
            and admit is None
            and on_complete is None
            and all(instance.active for instance in instances)
        )
        i = 0
        events = 0
        tick_actions = 0
        next_arrival = requests[0].arrival if n else _INF
        while True:
            if i < n and (
                not heap or next_arrival <= heap[0][0]
            ):
                request = requests[i]
                i += 1
                next_arrival = (
                    requests[i].arrival if i < n else _INF
                )
                events += 1
                now = request.arrival
                active = (
                    instances
                    if static_fleet
                    else [
                        instance
                        for instance in instances
                        if instance.active
                    ]
                )
                instance = active[policy.choose(request, active, now)]
                if admit is not None and not admit(
                    request, instance, now, self
                ):
                    request.shed = True
                    continue
                instance.enqueue(request, priority_aware=priority)
                self._maybe_launch(instance, now)
                continue
            if not heap:
                break
            now, _, kind, payload = heappop(heap)
            events += 1
            if kind == _TICK:
                before = [
                    instance.busy_until for instance in instances
                ]
                tick_actions += hooks.on_tick(now, self)
                # A tick may extend busy_until (e.g. a power-up warm-up)
                # without launching a batch, which would swallow the
                # instance's pending completion; re-arm a wake at any
                # grown horizon so its queue is re-examined (the loop
                # invariant is "busy implies an event at busy_until").
                for instance in instances:
                    grown = instance.busy_until
                    if grown > before[instance.index] and grown > now:
                        self._seq += 1
                        heappush(
                            heap,
                            (grown, self._seq, _WAKE, instance.index),
                        )
                if i < n or any(
                    instance.queue or instance.busy_until > now + _EPS
                    for instance in instances
                ):
                    self._seq += 1
                    heappush(
                        heap, (now + tick_s, self._seq, _TICK, None)
                    )
            else:  # _COMPLETE and _WAKE both just re-examine the queue
                instance = instances[payload]
                self._maybe_launch(instance, now)
                if on_complete is not None:
                    on_complete(instance, now, self)
        return EngineRun(events=events, tick_actions=tick_actions)


def _class_pools(
    mix: ScenarioMix, slo_classes: tuple
) -> dict[str, tuple[list[int], np.ndarray]]:
    """Per-model class-draw pools for model-bound SLO classes.

    Each mix model maps to ``(class positions, cumulative shares)``:
    the classes bound to it when any are, else the unbound defaults.
    """
    unbound = [
        i
        for i, cls in enumerate(slo_classes)
        if not getattr(cls, "model", None)
    ]
    pools: dict[str, tuple[list[int], np.ndarray]] = {}
    for name in mix.model_names:
        members = [
            i
            for i, cls in enumerate(slo_classes)
            if getattr(cls, "model", None) == name
        ] or unbound
        if not members:
            raise ConfigError(
                f"model {name!r} has no applicable SLO class: every "
                "class is bound to another model — bind one with "
                "model= or add an unbound default class"
            )
        pools[name] = (
            members,
            np.cumsum(
                [slo_classes[i].share for i in members],
                dtype=np.float64,
            ),
        )
    return pools


def build_requests(
    mix: ScenarioMix,
    times: np.ndarray,
    rng: np.random.Generator,
    slo_classes: tuple | None = None,
) -> list[Request]:
    """Materialize the request stream for one run.

    Draws each request's model from the mix's weights (and, when
    ``slo_classes`` is given, its SLO class from the class shares,
    interleaved model-then-class per request — the draw order the
    legacy per-request sampling loops used, so fixed seeds reproduce).
    The inverse-CDF draws are vectorized: one uniform block replaces
    2 x n Python-level generator calls on the same bit stream.

    A class bound to a model (``SLOClass.model``) applies only to that
    model's requests: each model draws its class from the classes bound
    to it, falling back to the unbound (tenant-default) classes when
    none are.  The uniform block is identical either way, so adding a
    binding never perturbs another model's draws.

    Raises:
        ConfigError: If bindings leave some mix model with no
            applicable class.
    """
    n = len(times)
    weights = np.asarray(mix.weights, dtype=np.float64)
    cum_weights = np.cumsum(weights)
    if slo_classes is None:
        u_model = rng.random(n)
        u_class = None
    else:
        u = rng.random(2 * n)
        u_model = u[0::2]
        u_class = u[1::2]
    model_idx = np.minimum(
        np.searchsorted(
            cum_weights, u_model * cum_weights[-1], side="right"
        ),
        len(cum_weights) - 1,
    ).tolist()
    profiles = mix.profiles
    if slo_classes is not None and any(
        getattr(cls, "model", None) for cls in slo_classes
    ):
        # One vectorized inverse-CDF draw per pool (the bound-class
        # counterpart of the unbound branch below): requests are
        # grouped by the model they drew, and each group's uniforms
        # map through that model's cumulative shares at once.
        pools = _class_pools(mix, slo_classes)
        model_arr = np.asarray(model_idx)
        class_arr = np.empty(n, dtype=np.int64)
        for position, profile in enumerate(profiles):
            members, cum = pools[profile.name]
            mask = model_arr == position
            if not mask.any():
                continue
            drawn = np.minimum(
                np.searchsorted(
                    cum, u_class[mask] * cum[-1], side="right"
                ),
                len(members) - 1,
            )
            class_arr[mask] = np.asarray(members)[drawn]
        class_idx = class_arr.tolist()
    elif slo_classes is not None:
        shares = np.asarray(
            [cls.share for cls in slo_classes], dtype=np.float64
        )
        cum_shares = np.cumsum(shares)
        class_idx = np.minimum(
            np.searchsorted(
                cum_shares, u_class * cum_shares[-1], side="right"
            ),
            len(cum_shares) - 1,
        ).tolist()
    requests = []
    append = requests.append
    for i in range(n):
        profile = profiles[model_idx[i]]
        arrival = float(times[i])
        if slo_classes is None:
            append(
                Request(
                    index=i,
                    model=profile.name,
                    profile=profile,
                    arrival=arrival,
                )
            )
        else:
            cls = slo_classes[class_idx[i]]
            append(
                Request(
                    index=i,
                    model=profile.name,
                    profile=profile,
                    arrival=arrival,
                    slo=cls.name,
                    priority=cls.priority,
                    deadline=arrival + cls.deadline_s,
                )
            )
    return requests


@dataclass(slots=True)
class RequestSummary:
    """Single-pass aggregate of a drained request stream.

    Attributes:
        completed: Requests that finished (offered minus shed).
        latencies: Arrival-to-completion seconds, arrival order —
            genuinely *empty* when nothing completed (an all-shed
            overload run); report builders must special-case
            ``completed == 0`` instead of feeding the array to
            ``mean``/``percentile`` (NaN + RuntimeWarning).
        waits: Arrival-to-launch seconds, same shape.
        model_counts: Sorted ``(model, completed)`` pairs.
        max_finish: Latest completion (``-inf`` when none).
        class_buckets: SLO-class name -> ``[offered, met, latencies]``
            (``None`` unless class tracking was requested).
        model_buckets: Model name -> ``[offered, met, latencies]``
            over *all* of the model's requests including shed ones
            (``None`` unless model tracking was requested) — the
            per-tenant view behind per-model SLO reporting.
    """

    completed: int
    latencies: np.ndarray
    waits: np.ndarray
    model_counts: tuple
    max_finish: float
    class_buckets: dict | None
    model_buckets: dict | None = None


def summarize_requests(
    requests: Sequence[Request],
    track_classes: bool = False,
    track_models: bool = False,
) -> RequestSummary:
    """Aggregate a drained run in one pass over the requests.

    Replaces the legacy per-metric rescans (one list comprehension per
    statistic, plus one per SLO class) with a single O(n) walk.

    Raises:
        ConfigError: If any admitted request never completed — the
            event loop's drain invariant was violated.
    """
    latencies: list[float] = []
    waits: list[float] = []
    counts: dict[str, int] = {}
    buckets: dict[str, list] | None = {} if track_classes else None
    model_buckets: dict[str, list] | None = (
        {} if track_models else None
    )
    unserved = 0
    max_finish = float("-inf")
    for request in requests:
        if track_classes:
            bucket = buckets.get(request.slo)
            if bucket is None:
                bucket = buckets[request.slo] = [0, 0, []]
            bucket[0] += 1
        if track_models:
            mbucket = model_buckets.get(request.model)
            if mbucket is None:
                mbucket = model_buckets[request.model] = [0, 0, []]
            mbucket[0] += 1
        if request.shed:
            continue
        finish = request.finish
        if finish < 0:
            unserved += 1
            continue
        arrival = request.arrival
        latency = finish - arrival
        latencies.append(latency)
        waits.append(request.start - arrival)
        model = request.model
        counts[model] = counts.get(model, 0) + 1
        if finish > max_finish:
            max_finish = finish
        met = finish <= request.deadline
        if track_classes:
            bucket[1] += met
            bucket[2].append(latency)
        if track_models:
            mbucket[1] += met
            mbucket[2].append(latency)
    if unserved:
        raise ConfigError(
            f"simulation ended with {unserved} unserved requests"
        )
    return RequestSummary(
        completed=len(latencies),
        latencies=np.array(latencies),
        waits=np.array(waits),
        model_counts=tuple(sorted(counts.items())),
        max_finish=max_finish,
        class_buckets=buckets,
        model_buckets=model_buckets,
    )


def realized_offered_qps(
    arrival: str, times: np.ndarray, n: int, qps: float
) -> float:
    """The offered rate a report should carry: trace replays report the
    rate of the prefix actually played, everything else the configured
    rate."""
    if arrival == "trace":
        span = float(times[-1])
        return n / span if span > 0 else float(n)
    return float(qps)
